//! Batched GEMM for attention heads — Stream-K across "other
//! GEMM-like workloads" (§7).
//!
//! Multi-head attention computes one small `seq × seq × d_head` GEMM
//! per head. Each instance produces only a handful of output tiles,
//! so a per-head data-parallel launch leaves a wide processor almost
//! idle; batched Stream-K folds the batch axis into the linearization
//! (`batch → m → n → k`) and splits the aggregate work evenly across
//! a single grid.
//!
//! ```text
//! cargo run --release --example batched_attention
//! ```

use streamk::core::{BatchedDecomposition, BatchedSpace};
use streamk::matrix::reference::gemm_naive;
use streamk::prelude::*;
use streamk::types::quantization_efficiency;

fn main() {
    let heads = 16;
    let seq = 96;
    let d_head = 64;
    // Attention scores: S_h = Q_h · K_hᵀ, one m×n×k = seq×seq×d_head
    // GEMM per head (we materialize Kᵀ for clarity).
    let shape = GemmShape::new(seq, seq, d_head);
    let tile = TileShape::new(32, 32, 16);
    let workers = 8;

    println!("multi-head attention scores: {heads} heads x {shape} GEMM, blocking {tile}");
    let per_head_tiles = tile.output_tiles(shape);
    println!("per-head output tiles: {per_head_tiles} — on a {workers}-worker pool a per-head");
    println!(
        "data-parallel launch quantizes at {:.0}% and pays {heads} launches.\n",
        quantization_efficiency(per_head_tiles, workers) * 100.0
    );

    let space = BatchedSpace::new(heads, shape, tile);
    println!(
        "batched space: {} global tiles, {} MAC-loop iterations",
        space.tiles(),
        space.total_iters()
    );

    let decomp = BatchedDecomposition::stream_k(space, workers);
    let crossing = decomp
        .ctas()
        .iter()
        .filter(|c| {
            let per_instance = shape.m.div_ceil(tile.blk_m) * shape.n.div_ceil(tile.blk_n) * tile.iters_per_tile(shape);
            c.iter_begin / per_instance != (c.iter_end.max(1) - 1) / per_instance
        })
        .count();
    println!(
        "batched stream-k: {} CTAs, imbalance {} iteration(s), {} CTAs straddle head boundaries, one launch\n",
        decomp.grid_size(),
        decomp.iter_imbalance(),
        crossing
    );

    // Execute and verify every head.
    let q: Vec<Matrix<f64>> = (0..heads)
        .map(|h| Matrix::<f64>::random::<f64>(seq, d_head, Layout::RowMajor, 1000 + h as u64))
        .collect();
    let kt: Vec<Matrix<f64>> = (0..heads)
        .map(|h| Matrix::<f64>::random::<f64>(d_head, seq, Layout::RowMajor, 2000 + h as u64))
        .collect();

    let exec = CpuExecutor::with_threads(workers);
    let scores = exec.gemm_batched::<f64, f64>(&q, &kt, &decomp);

    let mut worst = 0.0f64;
    for h in 0..heads {
        let reference = gemm_naive::<f64, f64>(&q[h], &kt[h]);
        worst = worst.max(scores[h].max_rel_diff(&reference));
    }
    println!("executed on {workers} threads; worst per-head relative error vs reference: {worst:.3e}");
    assert!(worst < 1e-12);
    println!("all {heads} heads verified. ok");
}
