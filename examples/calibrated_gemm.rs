//! The paper's deployment recipe, end to end, on *this machine*:
//!
//! 1. microbenchmark the executor to fit the Appendix A.1 constants
//!    `{a, b, c, d}` ("trivially chosen with empirical measurements…
//!    once per target architecture", §5.1);
//! 2. build a grid-size model from the fitted constants;
//! 3. for a set of problems, let the model pick the launch
//!    configuration and execute it on worker threads;
//! 4. verify every result against the sequential reference.
//!
//! ```text
//! cargo run --release --example calibrated_gemm
//! ```

use streamk::cpu::calibrate::{calibrate, CalibrationConfig};
use streamk::matrix::reference::gemm_naive;
use streamk::prelude::*;

fn main() {
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get).min(8);
    let config = CalibrationConfig::default();

    println!("calibrating the {} microkernel on {threads} threads...", config.tile);
    let cost = calibrate(&config).expect("calibration fit");
    println!(
        "fitted Appendix A.1 constants (seconds): a={:.3e} b={:.3e} c={:.3e} d={:.3e}",
        cost.a, cost.b, cost.c, cost.d
    );
    println!("ratios vs one MAC-loop iteration: a={:.1}c b={:.1}c d={:.1}c\n", cost.a / cost.c, cost.b / cost.c, cost.d / cost.c);

    let model = GridSizeModel::new(cost, threads);
    let tile = config.tile;
    let exec = CpuExecutor::with_threads(threads);

    println!("{:<18} {:>6} {:>5} {:>24}", "problem", "tiles", "g*", "strategy");
    for (m, n, k) in [(64, 64, 2048), (96, 96, 512), (256, 256, 256), (320, 192, 640)] {
        let shape = GemmShape::new(m, n, k);
        let decomp = model.decompose(shape, tile);
        println!(
            "{:<18} {:>6} {:>5} {:>24}",
            shape.to_string(),
            tile.output_tiles(shape),
            decomp.grid_size(),
            decomp.strategy().to_string()
        );

        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 7);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 8);
        let c = exec.gemm::<f64, f64>(&a, &b, &decomp);
        c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 1e-10);
    }
    println!("\nall model-selected launches verified against the sequential reference.");
}
