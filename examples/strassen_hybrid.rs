//! Strassen-on-Stream-K hybrid: seven sub-products, one grouped
//! launch, a documented error bound.
//!
//! One Strassen–Winograd level trades one multiplication for extra
//! additions: 7 half-size products instead of 8, a 12.5% MAC saving
//! per level. The catch on a fixed-width machine is *skew* — seven
//! independent launches quantize badly. Here the seven (or 7^d)
//! leaf products are concatenated into a single grouped Stream-K
//! launch, so the pool splits the aggregate MAC loop evenly and the
//! saving survives.
//!
//! The hybrid is opt-in (`StrassenConfig`), falls back to the
//! classical path below a calibrated cutoff, and every result is
//! checked against the DESIGN.md §15 forward-error bound.
//!
//! ```text
//! cargo run --release --example strassen_hybrid
//! ```

use std::time::Instant;
use streamk::cpu::{
    leaf_decomposition, machine_epsilon, max_abs, strassen_error_bound, KernelKind, StrassenArena,
    StrassenConfig,
};
use streamk::prelude::*;

fn main() {
    let n = 1024;
    let shape = GemmShape::new(n, n, n);
    let tile = TileShape::new(64, 64, 16);
    let threads = 8;
    let reps = 3;

    let exec = CpuExecutor::with_threads(threads).with_kernel(KernelKind::Simd8x32);
    let a = Matrix::<f32>::random::<f32>(shape.m, shape.k, Layout::RowMajor, 1);
    let b = Matrix::<f32>::random::<f32>(shape.k, shape.n, Layout::RowMajor, 2);

    println!("strassen hybrid at {shape}, f32, {threads} threads, blocking {tile}\n");

    // Classical baseline: one Stream-K launch over the full shape.
    let decomp = leaf_decomposition(shape, tile, threads);
    let mut classical: Matrix<f32> = exec.gemm(&a, &b, &decomp);
    let mut classical_s = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        classical = exec.gemm(&a, &b, &decomp);
        classical_s = classical_s.min(t.elapsed().as_secs_f64());
    }
    println!("classical stream-k        {:>8.1} ms", classical_s * 1e3);

    // Hybrid: depth forced to 1 (cutoff n/2) and then adaptive. The
    // arena is reused across repetitions — steady state allocates
    // nothing (DESIGN.md §8 discipline).
    for (label, config) in [
        ("hybrid depth 1", StrassenConfig::enabled().with_cutoff(n / 2).with_max_depth(1)),
        ("hybrid adaptive", StrassenConfig::enabled().with_cutoff(256).with_max_depth(3)),
    ] {
        let mut arena = StrassenArena::new();
        let (mut c, mut report) =
            exec.gemm_strassen_with_arena::<f32, f32>(&a, &b, tile, &config, &mut arena);
        let mut hybrid_s = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            (c, report) = exec.gemm_strassen_with_arena::<f32, f32>(&a, &b, tile, &config, &mut arena);
            hybrid_s = hybrid_s.min(t.elapsed().as_secs_f64());
        }

        let eps = machine_epsilon::<f32>();
        let err = c.max_abs_diff(&classical) as f64;
        // The comparison target is itself computed in f32, so it
        // carries its own classical bound on top of the hybrid's.
        let bound = strassen_error_bound(shape, report.depth, max_abs(&a), max_abs(&b), eps)
            + strassen_error_bound(shape, 0, max_abs(&a), max_abs(&b), eps);
        assert!(err <= bound, "hybrid error {err:.3e} exceeds bound {bound:.3e}");

        println!(
            "{label:<25} {:>8.1} ms   {:+5.1}% vs classical   depth {}  leaves {}",
            hybrid_s * 1e3,
            (classical_s / hybrid_s - 1.0) * 100.0,
            report.depth,
            report.leaf_products,
        );
        println!(
            "{:<25} max |err| {err:.3e}  <=  bound {bound:.3e}",
            "",
        );
    }

    println!("\nevery hybrid result verified within the DESIGN.md §15 forward-error bound.");
}
