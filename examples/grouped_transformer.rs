//! Grouped GEMM: one Stream-K grid over the *different* GEMMs of a
//! transformer layer.
//!
//! The four projection/MLP products of one layer have unrelated
//! shapes. Launched one by one, each quantizes poorly at small token
//! counts; concatenated into one grouped Stream-K launch, the
//! aggregate iteration count splits evenly and the machine stays
//! full.
//!
//! ```text
//! cargo run --release --example grouped_transformer
//! ```

use streamk::core::{Decomposition, GroupedDecomposition, GroupedSpace};
use streamk::matrix::reference::gemm_naive;
use streamk::prelude::*;
use streamk::sim::simulate_grouped;
use streamk::types::Precision;

fn main() {
    let hidden = 2048;
    let tokens = 192;
    let shapes = vec![
        GemmShape::new(tokens, 3 * hidden, hidden), // QKV projection
        GemmShape::new(tokens, hidden, hidden),     // attention output
        GemmShape::new(tokens, 4 * hidden, hidden), // MLP up
        GemmShape::new(tokens, hidden, 4 * hidden), // MLP down
    ];
    let gpu = GpuSpec::a100();
    let precision = Precision::Fp16To32;
    let tile = TileShape::streamk_default(precision);

    println!("one transformer layer (hidden {hidden}, tokens {tokens}) on the simulated A100\n");

    // Sequential per-GEMM data-parallel launches.
    let mut sequential = 0.0;
    println!("{:<22} {:>7} {:>10}", "gemm", "tiles", "dp util");
    for s in &shapes {
        let r = simulate(&Decomposition::data_parallel(*s, tile), &gpu, precision);
        println!("{:<22} {:>7} {:>9.1}%", s.to_string(), tile.output_tiles(*s), r.utilization() * 100.0);
        sequential += r.makespan;
    }

    // One grouped Stream-K launch.
    let space = GroupedSpace::new(&shapes, tile);
    println!(
        "\ngrouped: {} global tiles, {} MAC-loop iterations across {} instances",
        space.tiles(),
        space.total_iters(),
        space.groups()
    );
    let decomp = GroupedDecomposition::stream_k(space, gpu.sms);
    let r = simulate_grouped(&decomp, &gpu, precision);
    println!(
        "grouped stream-k: {} CTAs, imbalance {} iter(s), utilization {:.1}%",
        decomp.grid_size(),
        decomp.iter_imbalance(),
        r.utilization() * 100.0
    );
    println!(
        "layer time: {:.3e}s grouped vs {:.3e}s sequential launches ({:.2}x)\n",
        r.makespan,
        sequential,
        sequential / r.makespan
    );

    // Execute a scaled-down version on threads and verify every GEMM.
    let small: Vec<GemmShape> = shapes
        .iter()
        .map(|s| GemmShape::new(s.m / 8, s.n / 32, s.k / 32))
        .collect();
    let cpu_tile = TileShape::new(16, 16, 8);
    let a: Vec<Matrix<f64>> = small
        .iter()
        .enumerate()
        .map(|(i, s)| Matrix::<f64>::random::<f64>(s.m, s.k, Layout::RowMajor, i as u64))
        .collect();
    let b: Vec<Matrix<f64>> = small
        .iter()
        .enumerate()
        .map(|(i, s)| Matrix::<f64>::random::<f64>(s.k, s.n, Layout::RowMajor, 100 + i as u64))
        .collect();
    let decomp = GroupedDecomposition::stream_k(GroupedSpace::new(&small, cpu_tile), 8);
    let c = CpuExecutor::with_threads(8).gemm_grouped::<f64, f64>(&a, &b, &decomp);
    let mut worst = 0.0f64;
    for i in 0..small.len() {
        worst = worst.max(c[i].max_rel_diff(&gemm_naive::<f64, f64>(&a[i], &b[i])));
    }
    println!("CPU execution of the scaled-down group: worst relative error {worst:.3e}");
    assert!(worst < 1e-12);
    println!("all instances verified. ok");
}
