//! Quickstart: decompose a GEMM with Stream-K, simulate it on the
//! A100 model, execute it for real on CPU threads, and verify the
//! numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use streamk::prelude::*;
use streamk::core::{CostModel, Decomposition};
use streamk::matrix::reference::gemm_naive;
use streamk::sim::render_gantt;

fn main() {
    // A quantization-hostile problem: 9 output tiles never divide
    // evenly across 4 cores.
    let shape = GemmShape::new(384, 384, 128);
    let tile = TileShape::new(128, 128, 4);
    println!("problem: {shape} GEMM, blocking {tile}");
    println!("         {} output tiles, {} MAC-loop iterations\n", tile.output_tiles(shape), tile.total_iters(shape));

    // --- 1. Decompose --------------------------------------------------
    let dp = Decomposition::data_parallel(shape, TileShape::new(128, 128, 128));
    let sk = Decomposition::stream_k(shape, tile, 4);
    println!("data-parallel: {} CTAs (one per tile)", dp.grid_size());
    println!("stream-k     : {} CTAs x {} iterations each\n", sk.grid_size(), sk.max_iters_per_cta());

    // --- 2. Simulate on the paper's hypothetical 4-SM GPU --------------
    let gpu = GpuSpec::hypothetical_4sm();
    let dp_report = simulate(&dp, &gpu, Precision::Fp64);
    let sk_report = simulate(&sk, &gpu, Precision::Fp64);
    println!("data-parallel schedule ({:.0}% quantization efficiency):", dp_report.quantization_efficiency() * 100.0);
    print!("{}", render_gantt(&dp_report, 64));
    println!("\nstream-k schedule ({:.0}% quantization efficiency):", sk_report.quantization_efficiency() * 100.0);
    print!("{}", render_gantt(&sk_report, 64));
    println!("\nsimulated speedup: {:.2}x\n", sk_report.speedup_over(&dp_report));

    // --- 3. Execute on real threads and verify -------------------------
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 42);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 43);
    let exec = CpuExecutor::with_threads(4);
    let c = exec.gemm::<f64, f64>(&a, &b, &sk);
    let reference = gemm_naive::<f64, f64>(&a, &b);
    let err = c.max_rel_diff(&reference);
    println!("CPU execution on 4 threads: max relative error vs reference = {err:.3e}");
    assert!(err < 1e-12);

    // --- 4. The production path: model-selected hybrid -----------------
    let model = GridSizeModel::new(CostModel::for_precision(Precision::Fp64), 4);
    let launch = model.decompose(shape, TileShape::streamk_default(Precision::Fp64));
    println!("\nproduction launch for {shape}: {} with {} CTAs", launch.strategy(), launch.grid_size());
    let c2 = exec.gemm::<f64, f64>(&a, &b, &launch);
    c2.assert_close(&reference, 1e-12);
    println!("verified. ok");
}
