//! Domain scenario: the GEMM shapes of transformer inference.
//!
//! The paper's introduction motivates Stream-K with deep-learning
//! workloads, where "transformer architectures … are almost entirely
//! limited by the performance of large matrix products" (§2). During
//! *inference* the batch/sequence dimension is often small, which is
//! exactly where tile quantization bites: the projection and MLP
//! GEMMs produce too few output tiles to fill a 108-SM GPU.
//!
//! This example walks a GPT-style layer (hidden 4096, MLP 16384,
//! vocabulary-free) across batch·sequence sizes from 16 to 8192 and
//! compares the simulated A100 utilization of the single-blocking
//! data-parallel kernel, the cuBLAS-like ensemble, and Stream-K.
//!
//! ```text
//! cargo run --release --example transformer_inference
//! ```

use streamk::ensemble::runners;
use streamk::prelude::*;

struct LayerGemm {
    name: &'static str,
    // C = [tokens × out] = [tokens × in] · [in × out]
    out: usize,
    inner: usize,
}

fn main() {
    let hidden = 4096;
    let gemms = [
        LayerGemm { name: "qkv_proj  (h -> 3h)", out: 3 * hidden, inner: hidden },
        LayerGemm { name: "attn_out  (h -> h) ", out: hidden, inner: hidden },
        LayerGemm { name: "mlp_up    (h -> 4h)", out: 4 * hidden, inner: hidden },
        LayerGemm { name: "mlp_down  (4h -> h)", out: hidden, inner: 4 * hidden },
    ];
    let gpu = GpuSpec::a100();
    let precision = Precision::Fp16To32;
    let tile = TileShape::streamk_default(precision);

    println!("GPT-style layer GEMMs (hidden={hidden}) on the simulated A100, FP16->32");
    println!("utilization = achieved fraction of the 222.3 TFLOP/s tensor-core peak\n");
    println!(
        "{:<22} {:>6} {:>7} {:>7} {:>9} {:>9} {:>9}  {:>9}",
        "gemm", "tokens", "tiles", "waves", "dp", "cublas~", "stream-k", "sk vs dp"
    );

    for tokens in [16usize, 128, 512, 1024, 2048, 8192] {
        for g in &gemms {
            let shape = GemmShape::new(tokens, g.out, g.inner);
            let tiles = tile.output_tiles(shape);
            let dp = runners::run_dp_single(shape, precision, &gpu);
            let heur = runners::run_heuristic(shape, precision, &gpu);
            let sk = runners::run_stream_k(shape, precision, &gpu);
            println!(
                "{:<22} {:>6} {:>7} {:>7} {:>8.1}% {:>8.1}% {:>8.1}%  {:>8.2}x",
                g.name,
                tokens,
                tiles,
                streamk::types::waves(tiles, gpu.sms),
                dp.utilization() * 100.0,
                heur.utilization() * 100.0,
                sk.utilization() * 100.0,
                sk.speedup_over(&dp)
            );
        }
        println!();
    }

    println!("reading guide: at small token counts the output tiling can't fill 108 SMs,");
    println!("so the data-parallel kernel idles most of the machine while Stream-K");
    println!("splits the deep k-axis across it; at large token counts everyone converges.");
}
