//! Interactive schedule explorer: print the execution schedule of
//! every decomposition strategy for a GEMM shape of your choosing on
//! a hypothetical overhead-free GPU.
//!
//! ```text
//! cargo run --release --example schedule_explorer -- [m n k [sms [blk_m blk_n blk_k]]]
//! cargo run --release --example schedule_explorer -- 896 384 128 4
//! ```

use streamk::core::Decomposition;
use streamk::sim::render_gantt;
use streamk::prelude::*;

fn main() {
    let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
    let (m, n, k) = match args[..] {
        [m, n, k, ..] => (m, n, k),
        _ => (896, 384, 128),
    };
    let sms = args.get(3).copied().unwrap_or(4);
    let tile = match args[4..] {
        [bm, bn, bk, ..] => TileShape::new(bm, bn, bk),
        _ => TileShape::new(128, 128, 32),
    };
    let shape = GemmShape::new(m, n, k);

    let mut gpu = GpuSpec::hypothetical_4sm();
    gpu.sms = sms;

    let tiles = tile.output_tiles(shape);
    println!("{shape} GEMM, blocking {tile}, {sms}-SM overhead-free GPU");
    println!(
        "{tiles} output tiles x {} iterations = {} MAC-loop iterations; {} full + {} partial wave(s)\n",
        tile.iters_per_tile(shape),
        tile.total_iters(shape),
        streamk::types::grid::full_waves(tiles, sms),
        usize::from(streamk::types::grid::partial_wave_ctas(tiles, sms) > 0),
    );

    let split = 2;
    let cases = [
        ("data-parallel".to_string(), Decomposition::data_parallel(shape, tile)),
        (format!("fixed-split s={split}"), Decomposition::fixed_split(shape, tile, split)),
        (format!("basic stream-k g={sms}"), Decomposition::stream_k(shape, tile, sms)),
        ("dp + one-tile stream-k".to_string(), Decomposition::dp_one_tile_stream_k(shape, tile, sms)),
        ("two-tile stream-k + dp".to_string(), Decomposition::two_tile_stream_k_dp(shape, tile, sms)),
    ];

    for (name, decomp) in cases {
        let report = simulate(&decomp, &gpu, Precision::Fp64);
        println!(
            "--- {name}: {} CTAs, {} seams, quantization {:.1}% ---",
            decomp.grid_size(),
            decomp.split_tiles(),
            report.quantization_efficiency() * 100.0
        );
        print!("{}", render_gantt(&report, 72));
        println!();
    }
}
