//! Numerical behaviour of tile splitting.
//!
//! Stream-K and fixed-split reassociate the k-axis sum at every
//! splitting seam. Reassociation is harmless for the paper's
//! evaluation (GPU tensor cores reassociate internally anyway), but a
//! library user deserves to see the effect quantified: this example
//! measures the worst relative deviation from the sequential
//! reference as the split depth grows, in both f64 and f32
//! accumulation, and checks the deviation stays within the expected
//! `O(ε·k)` envelope.
//!
//! ```text
//! cargo run --release --example split_numerics
//! ```

use streamk::core::Decomposition;
use streamk::matrix::reference::gemm_naive;
use streamk::prelude::*;

fn main() {
    let shape = GemmShape::new(32, 32, 4096);
    let tile = TileShape::new(32, 32, 8); // 1 tile, 512 iterations
    let a64 = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 7);
    let b64 = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 8);
    let a32 = Matrix::<f32>::random::<f32>(shape.m, shape.k, Layout::RowMajor, 7);
    let b32 = Matrix::<f32>::random::<f32>(shape.k, shape.n, Layout::RowMajor, 8);

    let ref64 = gemm_naive::<f64, f64>(&a64, &b64);
    let ref32 = gemm_naive::<f32, f32>(&a32, &b32);

    println!("reassociation error vs sequential reference, {shape} (one output tile)\n");
    println!("{:>6} | {:>14} | {:>14}", "splits", "f64 max rel", "f32 max rel");

    for splits in [1usize, 2, 4, 8, 16, 32, 64] {
        let decomp = Decomposition::stream_k(shape, tile, splits);
        let exec = CpuExecutor::with_threads(splits.max(2));

        let c64 = exec.gemm::<f64, f64>(&a64, &b64, &decomp);
        let c32 = exec.gemm::<f32, f32>(&a32, &b32, &decomp);
        let e64 = c64.max_rel_diff(&ref64);
        let e32 = c32.max_rel_diff(&ref32);
        println!("{splits:>6} | {e64:>14.3e} | {e32:>14.3e}");

        // Envelope check: the deviation of a k-term sum regrouped into
        // `splits` chunks is bounded by ~ε·k·max|term| in the worst
        // case; random ±1 inputs keep it far below that.
        assert!(e64 < 1e-12, "f64 deviation {e64:.3e} out of envelope at {splits} splits");
        assert!(e32 < 1e-3, "f32 deviation {e32:.3e} out of envelope at {splits} splits");
    }

    println!("\nsplits = 1 is bit-exact (same accumulation order as the reference);");
    println!("deeper splits reassociate at seam boundaries only — the error envelope");
    println!("stays O(eps * k) and is unaffected by thread count or scheduling.");
}
