//! Convolution layers as implicit GEMM — the paper's motivating
//! deep-learning operator (§2), scheduled by Stream-K.
//!
//! Walks a few ResNet-style layers, shows the GEMM each one lowers
//! to, lets the grid-size model pick the launch, simulates the
//! quantization gap on the A100 model, and verifies the executed
//! result against the direct 7-loop reference.
//!
//! ```text
//! cargo run --release --example conv_layer
//! ```

use streamk::conv::direct::conv2d_direct;
use streamk::conv::{conv2d, Conv2dConfig, ConvShape, Tensor4};
use streamk::core::Decomposition;
use streamk::ensemble::runners;
use streamk::prelude::*;

fn main() {
    let gpu = GpuSpec::a100();
    let sim_tile = TileShape::streamk_default(Precision::Fp16To32);

    // Inference-sized (batch 1) ResNet-ish layers: the implied GEMMs
    // are small in M·N and deep in K — quantization-hostile.
    let layers = [
        ("conv3x3 56x56x64->64 ", ConvShape::same(1, 64, 56, 64, 3)),
        ("conv3x3 28x28x128->128", ConvShape::same(1, 128, 28, 128, 3)),
        ("conv1x1 14x14x256->512", ConvShape::new(1, 256, 14, 14, 512, 1, 1, 0, 0, 1, 1)),
        ("conv3x3 7x7x512->512  ", ConvShape::same(1, 512, 7, 512, 3)),
    ];

    println!("ResNet-style layers lowered to implicit GEMM (batch 1, simulated A100, FP16->32)\n");
    println!(
        "{:<24} {:>18} {:>7} {:>10} {:>10} {:>8}",
        "layer", "implied gemm", "tiles", "dp util", "sk util", "speedup"
    );
    for (name, conv) in &layers {
        let g = conv.gemm_shape();
        let tiles = sim_tile.output_tiles(g);
        let dp = runners::run_dp_single(g, Precision::Fp16To32, &gpu);
        let sk = runners::run_stream_k(g, Precision::Fp16To32, &gpu);
        println!(
            "{:<24} {:>18} {:>7} {:>9.1}% {:>9.1}% {:>7.2}x",
            name,
            g.to_string(),
            tiles,
            dp.utilization() * 100.0,
            sk.utilization() * 100.0,
            sk.speedup_over(&dp)
        );
    }

    // Execute a small layer end to end on threads and verify.
    println!("\nexecuting conv3x3 12x12x8->16 on the CPU pool and verifying...");
    let conv = ConvShape::same(2, 8, 12, 16, 3);
    let input = Tensor4::<f64>::random::<f64>([conv.n, conv.h, conv.w, conv.c], 1);
    let filter = Tensor4::<f64>::random::<f64>([conv.k, conv.r, conv.s, conv.c], 2);
    let config = Conv2dConfig { threads: 4, tile: TileShape::new(16, 16, 8), ..Conv2dConfig::default() };

    let got = conv2d::<f64, f64>(&input, &filter, &conv, &config);
    let want = conv2d_direct::<f64, f64>(&input, &filter, &conv);
    let diff = got.max_abs_diff(&want);
    println!("max abs diff vs direct 7-loop reference: {diff:.3e}");
    assert!(diff < 1e-11);

    // Show what the launch model chose for that layer's GEMM.
    let model = GridSizeModel::new(streamk::core::CostModel::a100_fp16(), config.threads);
    let decomp: Decomposition = model.decompose(conv.gemm_shape(), config.tile);
    println!(
        "launch for {} -> {} with {} CTAs over {} MAC-loop iterations. ok",
        conv.gemm_shape(),
        decomp.strategy(),
        decomp.grid_size(),
        decomp.space().total_iters()
    );
}
