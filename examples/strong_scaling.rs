//! Strong scaling across the accumulation axis — the paper's
//! Figure 9 regime, executed both in the simulator and for real on
//! CPU threads.
//!
//! A 64×64 output tile with a growing k-extent is the worst case for
//! the data-parallel decomposition (one CTA does everything) and the
//! best case for Stream-K (the k-axis parallelism is there for the
//! taking). We sweep k and report, side by side:
//!
//! - simulated A100 speedup of Stream-K over data-parallel, and the
//!   grid size the Appendix A.1 model selects;
//! - measured wall-clock speedup of the CPU executor with 8 worker
//!   threads on this machine.
//!
//! ```text
//! cargo run --release --example strong_scaling
//! ```

use std::time::Instant;
use streamk::core::{CostModel, Decomposition};
use streamk::ensemble::runners;
use streamk::matrix::reference::gemm_naive;
use streamk::prelude::*;

fn time_best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let _ = f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let precision = Precision::Fp64;
    let gpu = GpuSpec::a100();
    let sim_tile = TileShape::streamk_default(precision);

    // CPU side: small tile so each MAC-loop iteration is quick.
    let threads = 8;
    let cpu_tile = TileShape::new(64, 64, 16);
    let exec = CpuExecutor::with_threads(threads);
    let model = GridSizeModel::new(CostModel::for_precision(precision), threads);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("strong scaling a single 64x64 output tile across k (FP64)");
    println!(
        "note: this host exposes {cores} core(s); the CPU columns show real parallel \
         speedup only when cores > 1 — on a single core they measure protocol overhead.\n"
    );
    println!(
        "{:>6} | {:>8} {:>12} | {:>10} {:>10} {:>9}",
        "k", "sim g*", "sim speedup", "cpu dp (s)", "cpu sk (s)", "cpu spdup"
    );

    for k in [256usize, 512, 1024, 2048, 4096, 8192] {
        // --- simulated A100 at the paper's blocking ---
        let sim_shape = GemmShape::new(64, 64, k);
        let sk_sim = runners::run_stream_k(sim_shape, precision, &gpu);
        let dp_sim = runners::run_dp_single(sim_shape, precision, &gpu);
        let a100_model = GridSizeModel::new(CostModel::for_precision(precision), gpu.sms);
        let g_star = a100_model.best_grid(sim_shape, sim_tile);

        // --- real CPU threads ---
        let shape = GemmShape::new(64, 64, k);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 1);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 2);
        let dp = Decomposition::data_parallel(shape, cpu_tile);
        let sk = Decomposition::stream_k(shape, cpu_tile, model.best_grid(shape, cpu_tile));

        let t_dp = time_best_of(5, || exec.gemm::<f64, f64>(&a, &b, &dp));
        let t_sk = time_best_of(5, || exec.gemm::<f64, f64>(&a, &b, &sk));

        // Verify the Stream-K result while we're here.
        let c = exec.gemm::<f64, f64>(&a, &b, &sk);
        c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 1e-10);

        println!(
            "{:>6} | {:>8} {:>11.2}x | {:>10.5} {:>10.5} {:>8.2}x",
            k,
            g_star,
            sk_sim.speedup_over(&dp_sim),
            t_dp,
            t_sk,
            t_dp / t_sk
        );
    }

    println!("\nall Stream-K results verified against the sequential reference.");
}
