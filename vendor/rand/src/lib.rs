//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand`'s API it actually uses: a seeded
//! deterministic generator ([`rngs::StdRng`]), [`SeedableRng::seed_from_u64`],
//! and [`RngExt::random_range`] over the numeric range types the
//! corpus/matrix/tensor fills draw from.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `rand` family uses for its small RNGs. It is
//! deterministic per seed (all the workspace needs for reproducible
//! experiments) but makes no claim of stream-compatibility with
//! crates.io `rand`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

/// Seeding trait: construct a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose output is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The uniform-sampling extension trait (the `rand` 0.10 spelling of
/// the old `Rng::gen_range`).
pub trait RngExt {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from this range using `rng`.
    fn sample_from<G: RngExt>(self, rng: &mut G) -> T;
}

/// `[0, 1)` from the high 53 bits — the standard double construction.
fn unit_f64<G: RngExt>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<G: RngExt>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<G: RngExt>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<G: RngExt>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<G: RngExt>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<G: RngExt>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8);

/// Generator implementations.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// A seeded deterministic generator (xoshiro256++, SplitMix64
    /// seed expansion). Stands in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self { s: std::array::from_fn(|_| splitmix64(&mut sm)) }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..16).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w: f64 = rng.random_range(2.5..=3.5);
            assert!((2.5..=3.5).contains(&w));
        }
    }

    #[test]
    fn integer_ranges_hit_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v: u64 = rng.random_range(5u64..=5);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn values_look_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
