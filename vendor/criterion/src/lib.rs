//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small surface the workspace's benches use —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a deliberately
//! cheap measurement loop (median of short samples, hard per-bench
//! time budget) so the binaries stay fast even when `cargo test`
//! builds and runs them. No statistics, plots, or baselines.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::time::{Duration, Instant};

/// Per-bench wall-clock budget; keeps `cargo test` runs of the bench
/// binaries from dominating CI time.
const TIME_BUDGET: Duration = Duration::from_millis(250);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _criterion: self, sample_size: 10 }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f`'s routine and prints a one-line median.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let mut bencher = Bencher { iters: 0, elapsed: Duration::ZERO };
            f(&mut bencher);
            if bencher.iters > 0 {
                samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
            }
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        match samples.get(samples.len() / 2) {
            Some(median) => println!("  {id:<32} {:>12.3e} s/iter ({} samples)", median, samples.len()),
            None => println!("  {id:<32} (no samples)"),
        }
        self
    }

    /// Ends the group (output is already flushed per bench).
    pub fn finish(self) {}
}

/// Passed to each bench closure; `iter` runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly under the harness's time budget,
    /// accumulating elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let mut batch = 0u64;
        loop {
            std::hint::black_box(routine());
            batch += 1;
            // At least one execution, then stop quickly: samples are
            // aggregated by the caller.
            if batch >= 4 || start.elapsed() > TIME_BUDGET / 8 {
                break;
            }
        }
        self.iters += batch;
        self.elapsed += start.elapsed();
    }
}

/// Bundles bench target functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_respects_budget() {
        let mut c = Criterion::default();
        let started = Instant::now();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(1000);
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
