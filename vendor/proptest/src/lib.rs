//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] test
//! macro, range/tuple/[`Just`](strategy::Just)/`prop_oneof!` strategies with
//! `prop_map`/`prop_filter`/`prop_filter_map` combinators, and the
//! `prop_assert*` family.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) but is not minimized.
//! - **Deterministic per test.** Each test's RNG is seeded from the
//!   test's name (override with `PROPTEST_SEED=<u64>` to explore a
//!   different stream), so failures reproduce exactly under
//!   `cargo test`.

#![deny(unsafe_code)]

/// Test-runner plumbing: config, RNG, case-level error type.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::hash::{DefaultHasher, Hash, Hasher};

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// The deterministic case-generation RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds from the test name (or `PROPTEST_SEED` if set), so
        /// every test draws an independent, reproducible stream.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    let mut h = DefaultHasher::new();
                    name.hash(&mut h);
                    h.finish()
                });
            Self(StdRng::seed_from_u64(seed))
        }

        /// The next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// A uniform sample from `range`.
        pub fn random_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
            self.0.random_range(range)
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the whole test fails.
        Fail(String),
        /// A `prop_assume!` rejected the inputs — draw another case.
        Reject(&'static str),
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of `Value` from the test RNG.
    ///
    /// Unlike real proptest there is no value tree: `sample` draws a
    /// concrete value directly (no shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values passing `keep`; `whence` labels the
        /// filter in exhaustion panics.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, keep: F) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence, keep }
        }

        /// Maps through a partial function, resampling on `None`.
        fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap { inner: self, whence, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy (the element type of [`Union`]).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Boxes a strategy — the `prop_oneof!` elements go through here
    /// so the macro needs no type ascription.
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between strategies of a common value type —
    /// what `prop_oneof!` builds.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A uniform union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Resampling bound for filters: beyond this many consecutive
    /// rejections the filter is considered unsatisfiable.
    const FILTER_RETRIES: u32 = 10_000;

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        keep: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.inner.sample(rng);
                if (self.keep)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.whence);
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = (self.f)(self.inner.sample(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map exhausted retries: {}", self.whence);
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A/0);
    tuple_strategy!(A/0, B/1);
    tuple_strategy!(A/0, B/1, C/2);
    tuple_strategy!(A/0, B/1, C/2, D/3);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10, L/11);
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(50).max(5_000),
                                "prop_assume rejected too many cases ({why})"
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property failed after {passed} passing cases: {msg}");
                        }
                    }
                }
            }
        )*
    };
}

/// Case-level assertion: fails the whole property with the inputs'
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Case-level equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, "assert_eq failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Rejects the current case (drawing a fresh one) when its inputs
/// don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($option)),+])
    };
}

/// The glob-import surface test files pull in.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in 0u64..5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 5);
        }

        #[test]
        fn tuples_and_maps(v in (1usize..4, 1usize..4).prop_map(|(x, y)| x * y)) {
            prop_assert!((1..=9).contains(&v));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(2usize), Just(7), 20usize..23]) {
            prop_assert!(v == 2 || v == 7 || (20..23).contains(&v), "v = {v}");
        }

        #[test]
        fn assume_rejects_without_failing(v in 0usize..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn filter_map_resamples() {
        let strat = (0usize..100).prop_filter_map("even only", |v| (v % 2 == 0).then_some(v));
        let mut rng = TestRng::for_test("filter_map_resamples");
        for _ in 0..200 {
            assert_eq!(strat.sample(&mut rng) % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_propagate() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(v in 0usize..10) {
                prop_assert!(v > 100, "v was {v}");
            }
        }
        always_fails();
    }
}
