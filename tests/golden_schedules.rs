//! Golden-output tests: the ASCII schedules of the paper's figures
//! are pinned character-for-character. Any change to dispatch order,
//! cost derivation or rendering shows up here first.

use streamk::core::Decomposition;
use streamk::sim::render_gantt;
use streamk::prelude::*;
use streamk::types::Precision;

fn gantt(decomp: &Decomposition, width: usize) -> String {
    let report = simulate(decomp, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
    render_gantt(&report, width)
}

/// Figure 1a, pinned: 9 tiles over 4 SMs in 3 waves, SMs 1-3 idle in
/// the last.
#[test]
fn figure1a_golden() {
    let d = Decomposition::data_parallel(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 128));
    let expected = "\
SM0  |[0000000][0404040][0808080]
SM1  |[0101010][0505050]·········
SM2  |[0202020][0606060]·········
SM3  |[0303030][0707070]·········
";
    let got = gantt(&d, 27);
    let body: Vec<&str> = got.lines().take(4).collect();
    assert_eq!(body.join("\n") + "\n", expected, "got:\n{got}");
    assert!(got.contains("quantization 75.0%"));
}

/// Figure 2b, pinned: four CTAs, one uninterrupted span each.
#[test]
fn figure2b_golden() {
    let d = Decomposition::stream_k(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 4), 4);
    let got = gantt(&d, 24);
    let expected = "\
SM0  |[0000000000000000000000]
SM1  |[0101010101010101010101]
SM2  |[0202020202020202020202]
SM3  |[0303030303030303030303]
";
    let body: Vec<&str> = got.lines().take(4).collect();
    assert_eq!(body.join("\n") + "\n", expected, "got:\n{got}");
    assert!(got.contains("quantization 100.0%"));
}

/// Figure 9, pinned: the data-parallel schedule leaves three SMs
/// completely idle.
#[test]
fn figure9_dp_golden() {
    let d = Decomposition::data_parallel(GemmShape::new(128, 128, 384), TileShape::new(128, 128, 4));
    let got = gantt(&d, 20);
    let lines: Vec<&str> = got.lines().collect();
    assert!(lines[0].starts_with("SM0  |[00"));
    for line in &lines[1..4] {
        assert!(line.ends_with(&"·".repeat(20)), "expected fully idle lane: {line}");
    }
    assert!(got.contains("quantization 25.0%"));
}

/// The two-tile hybrid's structure is pinned loosely: SK CTAs 0-3
/// first (longer spans), then four DP waves.
#[test]
fn figure3c_structure_golden() {
    let d = Decomposition::two_tile_stream_k_dp(GemmShape::new(896, 384, 128), TileShape::new(128, 128, 32), 4);
    let report = simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
    // First four spans are the Stream-K CTAs, one per SM, starting at 0.
    for (i, span) in report.spans[..4].iter().enumerate() {
        assert_eq!(span.cta_id, i);
        assert_eq!(span.start, 0.0);
        assert_eq!(span.iters, 5);
    }
    // All DP spans have 4 iterations and start after the SK CTAs of
    // their SM.
    for span in &report.spans[4..] {
        assert_eq!(span.iters, 4);
        assert!(span.start > 0.0);
    }
}
