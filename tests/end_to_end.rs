//! End-to-end integration: corpus → decomposition → simulator →
//! statistics, and corpus → CPU execution → numerical verification.

use streamk::core::{CostModel, Decomposition, GridSizeModel, Strategy};
use streamk::corpus::{Corpus, CorpusConfig, RatioStats};
use streamk::cpu::CpuExecutor;
use streamk::ensemble::runners;
use streamk::matrix::reference::gemm_naive;
use streamk::matrix::Matrix;
use streamk::prelude::*;

/// The full evaluation pipeline on a sampled corpus: every contender
/// simulates every shape, and the aggregate statistics are
/// well-formed.
#[test]
fn corpus_to_statistics_pipeline() {
    let corpus = Corpus::generate(CorpusConfig::smoke(120));
    let gpu = GpuSpec::a100();

    for precision in streamk::types::Precision::ALL {
        let ratios: Vec<f64> = corpus
            .shapes()
            .iter()
            .map(|&shape| {
                let sk = runners::run_stream_k(shape, precision, &gpu);
                let dp = runners::run_dp_single(shape, precision, &gpu);
                sk.speedup_over(&dp)
            })
            .collect();
        let stats = RatioStats::of(&ratios);
        assert!(stats.avg >= 1.0, "{precision}: Stream-K loses to DP on average: {}", stats.table_row());
        assert!(stats.min > 0.3 && stats.max < 100.0, "{precision}: implausible range: {}", stats.table_row());
    }
}

/// Every strategy, executed on real threads over a grid of ragged
/// shapes, reproduces the sequential reference.
#[test]
fn all_strategies_execute_correctly_on_threads() {
    let tile = TileShape::new(16, 16, 8);
    let exec = CpuExecutor::with_threads(6);
    let shapes = [
        GemmShape::new(33, 47, 61),
        GemmShape::new(64, 64, 64),
        GemmShape::new(17, 128, 40),
        GemmShape::new(96, 16, 200),
    ];
    let strategies = [
        Strategy::DataParallel,
        Strategy::FixedSplit { split: 2 },
        Strategy::FixedSplit { split: 5 },
        Strategy::StreamK { grid: 3 },
        Strategy::StreamK { grid: 6 },
        Strategy::DpOneTileStreamK { sms: 6 },
        Strategy::TwoTileStreamKDp { sms: 6 },
    ];
    for shape in shapes {
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, shape.m as u64);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, shape.n as u64);
        let reference = gemm_naive::<f64, f64>(&a, &b);
        for strategy in strategies {
            let decomp = Decomposition::from_strategy(shape, tile, strategy);
            let c = exec.gemm::<f64, f64>(&a, &b, &decomp);
            c.assert_close(&reference, 1e-11);
        }
    }
}

/// The launch path a library would use: grid-size model → hybrid or
/// model-sized Stream-K → threads → verified output; and the launch
/// decision agrees with the simulator about which option is faster.
#[test]
fn model_driven_launch_is_correct_and_sensible() {
    let threads = 8;
    let tile = TileShape::new(32, 32, 8);
    let model = GridSizeModel::new(CostModel::a100_fp16(), threads);
    let exec = CpuExecutor::with_threads(threads);

    for (m, n, k) in [(96, 64, 400), (64, 64, 1024), (320, 320, 64)] {
        let shape = GemmShape::new(m, n, k);
        let decomp = model.decompose(shape, tile);
        assert!(decomp.validate().is_ok());

        let a = Matrix::<f64>::random::<f64>(m, k, Layout::RowMajor, 5);
        let b = Matrix::<f64>::random::<f64>(k, n, Layout::RowMajor, 6);
        let c = exec.gemm::<f64, f64>(&a, &b, &decomp);
        c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 1e-11);
    }
}

/// bf16 inputs through the executor: the other mixed precision
/// CUTLASS ships Stream-K kernels for.
#[test]
fn bf16_end_to_end() {
    use streamk::matrix::bf16;
    let shape = GemmShape::new(48, 40, 96);
    let tile = TileShape::new(16, 16, 8);
    let a = Matrix::<bf16>::random::<f32>(shape.m, shape.k, Layout::RowMajor, 21);
    let b = Matrix::<bf16>::random::<f32>(shape.k, shape.n, Layout::RowMajor, 22);
    let reference = gemm_naive::<bf16, f32>(&a, &b);
    let decomp = Decomposition::two_tile_stream_k_dp(shape, tile, 6);
    let c = CpuExecutor::with_threads(6).gemm::<bf16, f32>(&a, &b, &decomp);
    c.assert_close(&reference, 1e-4);
}

/// Mixed precision end to end: f16 inputs through the full stack.
#[test]
fn mixed_precision_end_to_end() {
    use streamk::matrix::f16;
    let shape = GemmShape::new(72, 56, 144);
    let tile = TileShape::new(16, 16, 8);
    let a = Matrix::<f16>::random::<f32>(shape.m, shape.k, Layout::RowMajor, 9);
    let b = Matrix::<f16>::random::<f32>(shape.k, shape.n, Layout::RowMajor, 10);
    let reference = gemm_naive::<f16, f32>(&a, &b);
    let exec = CpuExecutor::with_threads(4);
    for strategy in [Strategy::StreamK { grid: 4 }, Strategy::TwoTileStreamKDp { sms: 4 }] {
        let decomp = Decomposition::from_strategy(shape, tile, strategy);
        let c = exec.gemm::<f16, f32>(&a, &b, &decomp);
        c.assert_close(&reference, 1e-4);
    }
}
