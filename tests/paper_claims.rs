//! The paper's qualitative claims, asserted against the simulator.
//!
//! Each test names the paper section it checks. These are the "shape"
//! of the results — who wins, roughly by how much, where crossovers
//! fall — which is what a reproduction on a different substrate can
//! and should hold (absolute hardware numbers cannot).

use streamk::core::{CostModel, Decomposition, GridSizeModel};
use streamk::corpus::{Corpus, CorpusConfig, RatioStats};
use streamk::ensemble::runners;
use streamk::prelude::*;
use streamk::types::Precision;

/// §1 / Figure 1: the quantization-efficiency ceilings of the
/// motivating example are exactly 75% and 90%.
#[test]
fn figure1_ceilings() {
    let gpu = GpuSpec::hypothetical_4sm();
    let shape = GemmShape::new(384, 384, 128);
    let big = simulate(&Decomposition::data_parallel(shape, TileShape::new(128, 128, 128)), &gpu, Precision::Fp64);
    let small = simulate(&Decomposition::data_parallel(shape, TileShape::new(128, 64, 128)), &gpu, Precision::Fp64);
    assert!((big.quantization_efficiency() - 0.75).abs() < 1e-9);
    assert!((small.quantization_efficiency() - 0.90).abs() < 1e-9);
}

/// §4 / Figure 2b: basic Stream-K reaches ~100% quantization
/// efficiency with 72 iterations per CTA.
#[test]
fn figure2b_stream_k_is_perfect() {
    let gpu = GpuSpec::hypothetical_4sm();
    let shape = GemmShape::new(384, 384, 128);
    let d = Decomposition::stream_k(shape, TileShape::new(128, 128, 4), 4);
    assert_eq!(d.max_iters_per_cta(), 72);
    assert_eq!(d.min_iters_per_cta(), 72);
    let r = simulate(&d, &gpu, Precision::Fp64);
    assert!((r.quantization_efficiency() - 1.0).abs() < 1e-9);
}

/// Appendix A.1 / Figure 8: the grid-size model selects 108, 64 and 8
/// for the three published scenarios.
#[test]
fn figure8_grid_selections() {
    let model = GridSizeModel::new(CostModel::a100_fp16(), 108);
    let tile = TileShape::new(128, 128, 32);
    assert_eq!(model.best_grid(GemmShape::new(256, 3584, 8192), tile), 108);
    assert_eq!(model.best_grid(GemmShape::new(1024, 1024, 1024), tile), 64);
    assert_eq!(model.best_grid(GemmShape::new(128, 128, 16384), tile), 8);
}

/// §6 / Tables 1-2, first column: Stream-K's performance response vs
/// the same-blocking data-parallel kernel is higher on average and
/// never catastrophically worse.
#[test]
fn tables_stream_k_vs_data_parallel() {
    let corpus = Corpus::generate(CorpusConfig::smoke(250));
    let gpu = GpuSpec::a100();
    for precision in Precision::ALL {
        let ratios: Vec<f64> = corpus
            .shapes()
            .iter()
            .map(|&s| {
                runners::run_stream_k(s, precision, &gpu)
                    .speedup_over(&runners::run_dp_single(s, precision, &gpu))
            })
            .collect();
        let stats = RatioStats::of(&ratios);
        assert!(stats.avg > 1.05, "{precision}: {}", stats.table_row());
        assert!(stats.max > 1.8, "{precision}: no strong-scaling wins: {}", stats.table_row());
        assert!(stats.min > 0.5, "{precision}: catastrophic loss: {}", stats.table_row());
    }
}

/// §6 / Figure 7: restricted to compute-bound problems, Stream-K is
/// (essentially) unilaterally at least as fast as the cuBLAS-like
/// ensemble — the paper reports min 0.99×/0.98×.
#[test]
fn figure7_compute_bound_dominance() {
    let corpus = Corpus::generate(CorpusConfig::smoke(400));
    let gpu = GpuSpec::a100();
    for precision in Precision::ALL {
        let ratios: Vec<f64> = corpus
            .shapes()
            .iter()
            .filter(|s| s.is_compute_bound(precision))
            .map(|&s| {
                runners::run_stream_k(s, precision, &gpu)
                    .speedup_over(&runners::run_heuristic(s, precision, &gpu))
            })
            .collect();
        assert!(ratios.len() > 10, "{precision}: corpus too small for the filter");
        let stats = RatioStats::of(&ratios);
        assert!(stats.min > 0.95, "{precision}: compute-bound slowdown: {}", stats.table_row());
        assert!(RatioStats::win_fraction(&ratios) > 0.9, "{precision}");
    }
}

/// §6 / Figures 5-6: Stream-K's utilization band is *tighter* than
/// the single data-parallel kernel's — performance consistency is the
/// second headline claim.
#[test]
fn figures5_6_consistency() {
    let corpus = Corpus::generate(CorpusConfig::smoke(250));
    let gpu = GpuSpec::a100();
    for precision in Precision::ALL {
        // Stddev of utilization among compute-bound problems (the
        // bandwidth regime's spread is hardware-driven for everyone).
        let (mut sk, mut dp): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
        for &s in corpus.shapes().iter().filter(|s| s.is_compute_bound(precision)) {
            sk.push(runners::run_stream_k(s, precision, &gpu).utilization());
            dp.push(runners::run_dp_single(s, precision, &gpu).utilization());
        }
        let spread = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64).sqrt()
        };
        assert!(
            spread(&sk) < spread(&dp),
            "{precision}: sk spread {} >= dp spread {}",
            spread(&sk),
            spread(&dp)
        );
        // And the mean is higher.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&sk) > mean(&dp), "{precision}");
    }
}

/// §4: Stream-K's splitting-seam count (and hence temporary storage)
/// scales with the processor, not the problem.
#[test]
fn seam_count_scales_with_processor() {
    let tile = TileShape::FP16_STREAMK;
    let small = Decomposition::two_tile_stream_k_dp(GemmShape::new(1024, 1024, 1024), tile, 108);
    let huge = Decomposition::two_tile_stream_k_dp(GemmShape::new(8192, 8192, 8192), tile, 108);
    assert!(small.split_tiles() <= 108);
    assert!(huge.split_tiles() <= 108);
    // Fixed-split by contrast scales with tiles.
    let fs = Decomposition::fixed_split(GemmShape::new(8192, 8192, 8192), tile, 2);
    assert_eq!(fs.split_tiles(), 64 * 64);
}

/// §5.2: the two-tile hybrid eliminates fixup-wait stalls that the
/// "DP + one-tile" hybrid suffers when many CTAs cover the last tile.
#[test]
fn two_tile_hybrid_hides_latency() {
    let gpu = GpuSpec::a100();
    // t = 3·108 + 1: the leftover tile would be split 108 ways by the
    // one-tile hybrid (deep fixup), but only 2 ways by the two-tile
    // hybrid.
    let tile = TileShape::FP16_STREAMK;
    let shape = GemmShape::new(25 * 128, 13 * 128, 8192); // 325 tiles
    let one = Decomposition::dp_one_tile_stream_k(shape, tile, gpu.sms);
    let two = Decomposition::two_tile_stream_k_dp(shape, tile, gpu.sms);
    let max_cover = |d: &Decomposition| d.fixups().iter().map(|f| f.covering_ctas()).max().unwrap();
    assert!(max_cover(&one) > 2 * max_cover(&two));
    let r_one = simulate(&one, &gpu, Precision::Fp16To32);
    let r_two = simulate(&two, &gpu, Precision::Fp16To32);
    assert!(r_two.makespan <= r_one.makespan, "{} vs {}", r_two.makespan, r_one.makespan);
}
