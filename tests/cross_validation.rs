//! Cross-validation between the three views of a decomposition: the
//! pure shape math in `streamk-core`, the timing model in
//! `streamk-sim`, and the real execution in `streamk-cpu`.

use streamk::core::Decomposition;
use streamk::cpu::CpuExecutor;
use streamk::matrix::Matrix;
use streamk::prelude::*;
use streamk::types::Precision;

/// §4's generalization argument, verified in all three views at once:
/// Stream-K with g = t is data-parallel — identical CTA ranges,
/// identical simulated makespan, bit-identical executed output.
#[test]
fn stream_k_at_t_is_data_parallel_everywhere() {
    let shape = GemmShape::new(160, 96, 80);
    let tile = TileShape::new(32, 32, 16);
    let t = tile.output_tiles(shape);

    let sk = Decomposition::stream_k(shape, tile, t);
    let dp = Decomposition::data_parallel(shape, tile);
    assert_eq!(sk.ctas(), dp.ctas());

    let gpu = GpuSpec::a100();
    let r_sk = simulate(&sk, &gpu, Precision::Fp64);
    let r_dp = simulate(&dp, &gpu, Precision::Fp64);
    assert_eq!(r_sk.makespan, r_dp.makespan);

    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 1);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 2);
    let exec = CpuExecutor::with_threads(4);
    let c_sk = exec.gemm::<f64, f64>(&a, &b, &sk);
    let c_dp = exec.gemm::<f64, f64>(&a, &b, &dp);
    assert_eq!(c_sk.max_abs_diff(&c_dp), 0.0, "results must be bit-identical");
}

/// The simulator's MAC accounting matches the decomposition's
/// iteration accounting exactly: Σ busy = total_iters · c.
#[test]
fn simulator_conserves_work() {
    let gpu = GpuSpec::a100();
    let shape = GemmShape::new(1000, 700, 900);
    let tile = TileShape::FP64_STREAMK;
    for d in [
        Decomposition::data_parallel(shape, tile),
        Decomposition::stream_k(shape, tile, 108),
        Decomposition::two_tile_stream_k_dp(shape, tile, 108),
        Decomposition::fixed_split(shape, tile, 3),
    ] {
        let r = simulate(&d, &gpu, Precision::Fp64);
        let total_iters: usize = d.ctas().iter().map(|c| c.len()).sum();
        assert_eq!(total_iters, d.space().total_iters());
        // mac_busy / c == total iterations (c recovered from a 1-iter
        // problem would be circular; instead check proportionality
        // across two strategies).
        let per_iter = r.mac_busy / total_iters as f64;
        assert!(per_iter > 0.0);
        // Same tile, same precision → same per-iteration cost across
        // strategies.
        let r2 = simulate(&Decomposition::data_parallel(shape, tile), &gpu, Precision::Fp64);
        let per_iter2 = r2.mac_busy / d.space().total_iters() as f64;
        assert!((per_iter - per_iter2).abs() / per_iter < 1e-12);
    }
}

/// The simulator's utilization is bounded by the quantization
/// efficiency of the schedule (you can't beat your own idle time).
#[test]
fn utilization_never_exceeds_quantization() {
    let gpu = GpuSpec::a100_ideal();
    for (m, n, k) in [(384, 384, 128), (4096, 512, 256), (129, 129, 129)] {
        let shape = GemmShape::new(m, n, k);
        let tile = TileShape::FP64_STREAMK;
        for d in [
            Decomposition::data_parallel(shape, tile),
            Decomposition::stream_k(shape, tile, 108),
        ] {
            let r = simulate(&d, &gpu, Precision::Fp64);
            assert!(
                r.utilization() <= r.quantization_efficiency() + 1e-9,
                "{m}x{n}x{k}: util {} > quant {}",
                r.utilization(),
                r.quantization_efficiency()
            );
        }
    }
}

/// Executed results are invariant to the thread count (the protocol
/// is deterministic in its arithmetic, whatever the interleaving).
#[test]
fn executor_thread_count_invariance() {
    let shape = GemmShape::new(96, 96, 160);
    let tile = TileShape::new(32, 32, 16);
    let d = Decomposition::stream_k(shape, tile, 5);
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 3);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 4);

    let baseline = CpuExecutor::with_threads(5).gemm::<f64, f64>(&a, &b, &d);
    for threads in [6, 8, 12] {
        let c = CpuExecutor::with_threads(threads).gemm::<f64, f64>(&a, &b, &d);
        assert_eq!(c.max_abs_diff(&baseline), 0.0, "threads={threads} changed the result");
    }
}

/// Repeated executions are bit-stable (no schedule-dependent
/// reassociation sneaks in).
#[test]
fn executor_is_deterministic_across_runs() {
    let shape = GemmShape::new(80, 112, 96);
    let tile = TileShape::new(16, 16, 8);
    let d = Decomposition::two_tile_stream_k_dp(shape, tile, 6);
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 5);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 6);
    let exec = CpuExecutor::with_threads(6);
    let first = exec.gemm::<f64, f64>(&a, &b, &d);
    for _ in 0..10 {
        let again = exec.gemm::<f64, f64>(&a, &b, &d);
        assert_eq!(first.max_abs_diff(&again), 0.0);
    }
}
