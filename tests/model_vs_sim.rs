//! Cross-validation of the Appendix A.1 analytical model against the
//! event-driven simulator.
//!
//! The paper's deployment leans on the model being *good enough* to
//! pick the launch configuration (§5.1). Since the simulator derives
//! its costs from the same calibrated constants but additionally
//! resolves dispatch, skew and wait dependencies, agreement between
//! "what the model predicts" and "what the engine measures" is a real
//! consistency check, not a tautology: the model ignores waits and
//! ceiling effects the engine simulates.

use streamk::core::{CostModel, Decomposition, GridSizeModel};
use streamk::prelude::*;
use streamk::sim::CtaCosts;
use streamk::types::Precision;

fn strong_scaling_shapes() -> Vec<GemmShape> {
    vec![
        GemmShape::new(256, 3584, 8192), // Figure 8a
        GemmShape::new(1024, 1024, 1024), // Figure 8b
        GemmShape::new(128, 128, 16384), // Figure 8c
        GemmShape::new(384, 384, 4096),
        GemmShape::new(128, 512, 2048),
    ]
}

/// The model's absolute prediction tracks the simulated makespan
/// within 2× for single-wave Stream-K launches (it ignores waits and
/// per-CTA `b` placement, so exact equality is not expected).
#[test]
fn modeled_time_tracks_simulated_makespan() {
    let gpu = GpuSpec::a100();
    let precision = Precision::Fp16To32;
    let tile = TileShape::streamk_default(precision);
    let model = GridSizeModel::new(CostModel::for_precision(precision), gpu.sms);
    let costs = CtaCosts::derive(&gpu, precision, tile, 0.99);

    for shape in strong_scaling_shapes() {
        for g in [8usize, 32, 64, 108] {
            if g > tile.total_iters(shape) {
                continue;
            }
            let modeled_units = model.time_cta(shape, tile, g);
            let modeled_seconds = modeled_units * costs.c; // c = 1 unit
            let des = simulate(&Decomposition::stream_k(shape, tile, g), &gpu, precision);
            let ratio = des.compute_makespan / modeled_seconds;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{shape} g={g}: DES {:.3e} vs model {modeled_seconds:.3e} (ratio {ratio:.2})",
                des.compute_makespan
            );
        }
    }
}

/// The model-selected grid is near-optimal *in the simulator's own
/// terms*: its DES makespan is within 15% of the best candidate grid.
#[test]
fn model_selection_is_near_optimal_in_des() {
    let gpu = GpuSpec::a100();
    let precision = Precision::Fp16To32;
    let tile = TileShape::streamk_default(precision);
    let model = GridSizeModel::new(CostModel::for_precision(precision), gpu.sms);

    for shape in strong_scaling_shapes() {
        let g_star = model.best_grid(shape, tile);
        let run = |g: usize| {
            simulate(&Decomposition::stream_k(shape, tile, g), &gpu, precision).makespan
        };
        let starred = run(g_star);
        let best = (1..=gpu.sms.min(tile.total_iters(shape)))
            .step_by(1)
            .map(run)
            .fold(f64::INFINITY, f64::min);
        assert!(
            starred <= best * 1.15,
            "{shape}: model picked g={g_star} at {starred:.3e}, best candidate {best:.3e}"
        );
    }
}

/// Fitted-from-simulation constants recover the configured ones: run
/// single-wave launches, regress the DES makespans with
/// `CostModel::fit`, and compare the per-iteration cost against the
/// known `c` (the microbenchmark loop of §5.1, closed on itself).
#[test]
fn fit_from_des_recovers_iteration_cost() {
    let gpu = GpuSpec::a100();
    let precision = Precision::Fp16To32;
    let tile = TileShape::streamk_default(precision);
    let costs = CtaCosts::derive(&gpu, precision, tile, 0.99);
    let model = GridSizeModel::new(CostModel::for_precision(precision), gpu.sms);

    let mut samples = Vec::new();
    // Single-tile problems with varying depth and split: clean
    // (iters, peers) coverage.
    for k_iters in [32usize, 64, 128, 256] {
        let shape = GemmShape::new(128, 128, k_iters * 32);
        for g in [1usize, 2, 4, 8] {
            if g > k_iters {
                continue;
            }
            let des = simulate(&Decomposition::stream_k(shape, tile, g), &gpu, precision);
            samples.push((
                model.iters_per_cta(shape, tile, g),
                model.fixup_peers(shape, tile, g),
                des.compute_makespan,
            ));
        }
    }
    let fitted = CostModel::fit(&samples).expect("well-determined fit");
    let rel = (fitted.c - costs.c).abs() / costs.c;
    assert!(rel < 0.05, "fitted c {:.3e} vs configured {:.3e} ({rel:.3} rel)", fitted.c, costs.c);
}
