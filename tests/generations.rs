//! The paper's motivating trend (§1), across GPU generations: "such
//! oversubscription has shrunk considerably as processors have grown
//! in size" — so Stream-K's advantage over the data-parallel
//! decomposition must not shrink as the machine widens from V100-like
//! to A100 to H100-like.

use streamk::corpus::{stats::geometric_mean, Corpus, CorpusConfig};
use streamk::ensemble::runners;
use streamk::prelude::*;
use streamk::types::Precision;

fn geomean_advantage(gpu: &GpuSpec, corpus: &Corpus) -> f64 {
    let ratios: Vec<f64> = corpus
        .shapes()
        .iter()
        .map(|&s| {
            runners::run_stream_k(s, Precision::Fp16To32, gpu)
                .speedup_over(&runners::run_dp_single(s, Precision::Fp16To32, gpu))
        })
        .collect();
    geometric_mean(&ratios)
}

#[test]
fn stream_k_advantage_grows_with_processor_width() {
    let corpus = Corpus::generate(CorpusConfig::smoke(200));
    let v100 = geomean_advantage(&GpuSpec::v100_like(), &corpus);
    let a100 = geomean_advantage(&GpuSpec::a100(), &corpus);
    let h100 = geomean_advantage(&GpuSpec::h100_like(), &corpus);
    assert!(v100 >= 1.0, "v100 {v100}");
    assert!(a100 >= v100 * 0.99, "a100 {a100} vs v100 {v100}");
    assert!(h100 >= a100 * 0.99, "h100 {h100} vs a100 {a100}");
    // And the widest machine shows a solidly positive advantage.
    assert!(h100 > 1.05, "h100 {h100}");
}

#[test]
fn stream_k_never_catastrophic_on_any_generation() {
    let corpus = Corpus::generate(CorpusConfig::smoke(150));
    for gpu in [GpuSpec::v100_like(), GpuSpec::a100(), GpuSpec::h100_like()] {
        for &shape in corpus.shapes() {
            let sk = runners::run_stream_k(shape, Precision::Fp16To32, &gpu);
            let dp = runners::run_dp_single(shape, Precision::Fp16To32, &gpu);
            let ratio = sk.speedup_over(&dp);
            assert!(ratio > 0.5, "{shape} on {}: {ratio}", gpu.name);
        }
    }
}
