//! Property tests spanning the full stack: random problems, random
//! strategies, random thread counts → the CPU executor must always
//! reproduce the sequential reference, and the simulator must always
//! produce a consistent report.

#![allow(ambiguous_glob_imported_traits)]

use proptest::prelude::*;
use streamk::core::Decomposition;
use streamk::core::Strategy as Decomp;
use streamk::cpu::CpuExecutor;
use streamk::matrix::reference::gemm_naive;
use streamk::matrix::Matrix;
use streamk::prelude::*;
use streamk::types::Precision;

fn small_shapes() -> impl proptest::strategy::Strategy<Value = GemmShape> {
    (1usize..80, 1usize..80, 1usize..120).prop_map(|(m, n, k)| GemmShape::new(m, n, k))
}

fn small_tiles() -> impl proptest::strategy::Strategy<Value = TileShape> {
    (
        prop_oneof![Just(8usize), Just(16), Just(13)],
        prop_oneof![Just(8usize), Just(16), Just(11)],
        prop_oneof![Just(4usize), Just(8), Just(7)],
    )
        .prop_map(|(m, n, k)| TileShape::new(m, n, k))
}

fn strategies() -> impl proptest::strategy::Strategy<Value = Decomp> {
    prop_oneof![
        Just(Decomp::DataParallel),
        (1usize..5).prop_map(|split| Decomp::FixedSplit { split }),
        (1usize..9).prop_map(|grid| Decomp::StreamK { grid }),
        (1usize..9).prop_map(|sms| Decomp::DpOneTileStreamK { sms }),
        (1usize..9).prop_map(|sms| Decomp::TwoTileStreamKDp { sms }),
    ]
}

proptest! {
    // Thread spawning makes these pricier than pure-math proptests;
    // 48 cases still covers a wide cross-section every run.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline whole-stack property: execute any decomposition
    /// on real threads, get the reference GEMM.
    #[test]
    fn executor_always_matches_reference(
        shape in small_shapes(),
        tile in small_tiles(),
        strategy in strategies(),
    ) {
        let decomp = Decomposition::from_strategy(shape, tile, strategy);
        // The executor requires every owner+peers group to fit in the
        // worker pool.
        let residency = decomp.fixups().iter().map(|f| f.covering_ctas()).max().unwrap_or(1);
        let threads = residency.max(4);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 0xA);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 0xB);
        let c = CpuExecutor::with_threads(threads).gemm::<f64, f64>(&a, &b, &decomp);
        let reference = gemm_naive::<f64, f64>(&a, &b);
        let err = c.max_rel_diff(&reference);
        prop_assert!(err < 1e-10, "{strategy} on {shape}/{tile}: err {err:.3e}");
    }

    /// The simulator accepts anything the decomposition layer
    /// produces and reports self-consistent numbers.
    #[test]
    fn simulator_report_is_consistent(
        shape in small_shapes(),
        tile in small_tiles(),
        strategy in strategies(),
    ) {
        let decomp = Decomposition::from_strategy(shape, tile, strategy);
        let r = simulate(&decomp, &GpuSpec::a100(), Precision::Fp64);
        prop_assert!(r.makespan > 0.0);
        prop_assert!(r.makespan + 1e-18 >= r.compute_makespan.max(r.memory_time));
        prop_assert!(r.utilization() > 0.0 && r.utilization() <= 1.0 + 1e-9);
        prop_assert!(r.quantization_efficiency() > 0.0 && r.quantization_efficiency() <= 1.0 + 1e-9);
        prop_assert_eq!(r.spans.len(), decomp.grid_size());
        let iters: usize = r.spans.iter().map(|s| s.iters).sum();
        prop_assert_eq!(iters, decomp.space().total_iters());
    }
}
