//! Fallible construction APIs.
//!
//! The panicking constructors suit the workspace's internal use
//! (invalid launch parameters are programming errors), but a library
//! embedding this crate behind user input — the CLI, a server
//! endpoint — needs `Result`s. This module provides the typed error
//! and `try_` counterparts of every `Decomposition` constructor.

use crate::decomposition::{Decomposition, Strategy};
use std::fmt;
use streamk_types::{GemmShape, TileShape};

/// Why a decomposition could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecomposeError {
    /// A grid, split or SM count of zero was requested.
    ZeroParameter(
        /// Which parameter.
        &'static str,
    ),
    /// The parameter is so large the decomposition would be all-empty
    /// CTAs beyond any plausible use (guard against resource
    /// exhaustion from untrusted input).
    UnreasonableParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: usize,
        /// The accepted ceiling.
        limit: usize,
    },
}

impl fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecomposeError::ZeroParameter(name) => write!(f, "{name} must be at least 1"),
            DecomposeError::UnreasonableParameter { name, value, limit } => {
                write!(f, "{name} = {value} exceeds the accepted limit of {limit}")
            }
        }
    }
}

impl std::error::Error for DecomposeError {}

/// A generous ceiling on grids/splits/SM counts accepted through the
/// fallible API: far beyond any real processor, small enough to bound
/// allocation from hostile input.
pub const PARAMETER_LIMIT: usize = 1 << 24;

impl Decomposition {
    /// Fallible [`stream_k`](Decomposition::stream_k).
    ///
    /// # Errors
    ///
    /// Rejects `grid == 0` and `grid > PARAMETER_LIMIT`.
    pub fn try_stream_k(shape: GemmShape, tile: TileShape, grid: usize) -> Result<Self, DecomposeError> {
        check("grid", grid)?;
        Ok(Self::stream_k(shape, tile, grid))
    }

    /// Fallible [`fixed_split`](Decomposition::fixed_split).
    ///
    /// # Errors
    ///
    /// Rejects `split == 0` and `split > PARAMETER_LIMIT`.
    pub fn try_fixed_split(shape: GemmShape, tile: TileShape, split: usize) -> Result<Self, DecomposeError> {
        check("split", split)?;
        Ok(Self::fixed_split(shape, tile, split))
    }

    /// Fallible [`two_tile_stream_k_dp`](Decomposition::two_tile_stream_k_dp).
    ///
    /// # Errors
    ///
    /// Rejects `sms == 0` and `sms > PARAMETER_LIMIT`.
    pub fn try_two_tile_stream_k_dp(shape: GemmShape, tile: TileShape, sms: usize) -> Result<Self, DecomposeError> {
        check("sms", sms)?;
        Ok(Self::two_tile_stream_k_dp(shape, tile, sms))
    }

    /// Fallible [`dp_one_tile_stream_k`](Decomposition::dp_one_tile_stream_k).
    ///
    /// # Errors
    ///
    /// Rejects `sms == 0` and `sms > PARAMETER_LIMIT`.
    pub fn try_dp_one_tile_stream_k(shape: GemmShape, tile: TileShape, sms: usize) -> Result<Self, DecomposeError> {
        check("sms", sms)?;
        Ok(Self::dp_one_tile_stream_k(shape, tile, sms))
    }

    /// Fallible [`from_strategy`](Decomposition::from_strategy).
    ///
    /// # Errors
    ///
    /// Rejects zero or unreasonable strategy parameters.
    pub fn try_from_strategy(shape: GemmShape, tile: TileShape, strategy: Strategy) -> Result<Self, DecomposeError> {
        match strategy {
            Strategy::DataParallel => Ok(Self::data_parallel(shape, tile)),
            Strategy::FixedSplit { split } => Self::try_fixed_split(shape, tile, split),
            Strategy::StreamK { grid } => Self::try_stream_k(shape, tile, grid),
            Strategy::DpOneTileStreamK { sms } => Self::try_dp_one_tile_stream_k(shape, tile, sms),
            Strategy::TwoTileStreamKDp { sms } => Self::try_two_tile_stream_k_dp(shape, tile, sms),
        }
    }
}

fn check(name: &'static str, value: usize) -> Result<(), DecomposeError> {
    if value == 0 {
        return Err(DecomposeError::ZeroParameter(name));
    }
    if value > PARAMETER_LIMIT {
        return Err(DecomposeError::UnreasonableParameter { name, value, limit: PARAMETER_LIMIT });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: GemmShape = GemmShape { m: 256, n: 256, k: 256 };
    const TILE: TileShape = TileShape { blk_m: 64, blk_n: 64, blk_k: 16 };

    #[test]
    fn happy_paths_match_panicking_constructors() {
        let a = Decomposition::try_stream_k(SHAPE, TILE, 7).unwrap();
        let b = Decomposition::stream_k(SHAPE, TILE, 7);
        assert_eq!(a, b);
        let a = Decomposition::try_fixed_split(SHAPE, TILE, 3).unwrap();
        let b = Decomposition::fixed_split(SHAPE, TILE, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_parameters_are_rejected() {
        assert_eq!(
            Decomposition::try_stream_k(SHAPE, TILE, 0),
            Err(DecomposeError::ZeroParameter("grid"))
        );
        assert_eq!(
            Decomposition::try_fixed_split(SHAPE, TILE, 0),
            Err(DecomposeError::ZeroParameter("split"))
        );
        assert_eq!(
            Decomposition::try_two_tile_stream_k_dp(SHAPE, TILE, 0),
            Err(DecomposeError::ZeroParameter("sms"))
        );
        assert_eq!(
            Decomposition::try_dp_one_tile_stream_k(SHAPE, TILE, 0),
            Err(DecomposeError::ZeroParameter("sms"))
        );
    }

    #[test]
    fn unreasonable_parameters_are_rejected() {
        let err = Decomposition::try_stream_k(SHAPE, TILE, PARAMETER_LIMIT + 1).unwrap_err();
        assert!(matches!(err, DecomposeError::UnreasonableParameter { name: "grid", .. }));
        // The message is user-presentable.
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn every_try_constructor_enforces_the_ceiling() {
        let over = PARAMETER_LIMIT + 1;
        assert_eq!(
            Decomposition::try_stream_k(SHAPE, TILE, over),
            Err(DecomposeError::UnreasonableParameter { name: "grid", value: over, limit: PARAMETER_LIMIT })
        );
        assert_eq!(
            Decomposition::try_fixed_split(SHAPE, TILE, over),
            Err(DecomposeError::UnreasonableParameter { name: "split", value: over, limit: PARAMETER_LIMIT })
        );
        assert_eq!(
            Decomposition::try_two_tile_stream_k_dp(SHAPE, TILE, over),
            Err(DecomposeError::UnreasonableParameter { name: "sms", value: over, limit: PARAMETER_LIMIT })
        );
        assert_eq!(
            Decomposition::try_dp_one_tile_stream_k(SHAPE, TILE, over),
            Err(DecomposeError::UnreasonableParameter { name: "sms", value: over, limit: PARAMETER_LIMIT })
        );
    }

    #[test]
    fn the_ceiling_itself_is_accepted() {
        // PARAMETER_LIMIT is inclusive: a grid exactly at the limit
        // builds (mostly-empty CTAs, but bounded allocation).
        let tiny = GemmShape::new(16, 16, 16);
        let tile = TileShape::new(16, 16, 16);
        // Use a still-large but test-tractable probe for the boundary
        // semantics of `check`, then the real limit for the contract.
        assert!(Decomposition::try_stream_k(tiny, tile, 1).is_ok());
        let err = Decomposition::try_stream_k(tiny, tile, PARAMETER_LIMIT + 1).unwrap_err();
        assert_eq!(
            err,
            DecomposeError::UnreasonableParameter { name: "grid", value: PARAMETER_LIMIT + 1, limit: PARAMETER_LIMIT }
        );
    }

    #[test]
    fn error_display_and_source() {
        let zero = DecomposeError::ZeroParameter("grid");
        assert_eq!(zero.to_string(), "grid must be at least 1");
        let big = DecomposeError::UnreasonableParameter { name: "sms", value: 1 << 30, limit: PARAMETER_LIMIT };
        assert!(big.to_string().contains("sms"));
        assert!(big.to_string().contains("exceeds the accepted limit"));
        assert!(std::error::Error::source(&zero).is_none());
        assert!(std::error::Error::source(&big).is_none());
    }

    #[test]
    fn try_from_strategy_covers_all_variants() {
        for strategy in [
            Strategy::DataParallel,
            Strategy::FixedSplit { split: 2 },
            Strategy::StreamK { grid: 5 },
            Strategy::DpOneTileStreamK { sms: 4 },
            Strategy::TwoTileStreamKDp { sms: 4 },
        ] {
            assert!(Decomposition::try_from_strategy(SHAPE, TILE, strategy).is_ok(), "{strategy}");
        }
        assert!(Decomposition::try_from_strategy(SHAPE, TILE, Strategy::StreamK { grid: 0 }).is_err());
    }

    #[test]
    fn try_from_strategy_propagates_each_parameters_error() {
        let over = PARAMETER_LIMIT + 1;
        assert_eq!(
            Decomposition::try_from_strategy(SHAPE, TILE, Strategy::FixedSplit { split: 0 }),
            Err(DecomposeError::ZeroParameter("split"))
        );
        assert_eq!(
            Decomposition::try_from_strategy(SHAPE, TILE, Strategy::StreamK { grid: over }),
            Err(DecomposeError::UnreasonableParameter { name: "grid", value: over, limit: PARAMETER_LIMIT })
        );
        assert_eq!(
            Decomposition::try_from_strategy(SHAPE, TILE, Strategy::DpOneTileStreamK { sms: 0 }),
            Err(DecomposeError::ZeroParameter("sms"))
        );
        assert_eq!(
            Decomposition::try_from_strategy(SHAPE, TILE, Strategy::TwoTileStreamKDp { sms: over }),
            Err(DecomposeError::UnreasonableParameter { name: "sms", value: over, limit: PARAMETER_LIMIT })
        );
    }
}
