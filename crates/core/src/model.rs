//! The Appendix A.1 analytical grid-size model.
//!
//! Stream-K is a tile-splitting approach, so it pays fixup costs the
//! plain data-parallel decomposition does not. Whether more
//! parallelism pays off is a strong-scaling question, and the paper
//! answers it with a four-constant model of a tile-outputting CTA's
//! runtime:
//!
//! ```text
//! time_cta(g) = a + b·[FixupPeers(g) > 1] + c·ItersPerCta(g) + d·(FixupPeers(g) − 1)
//! ```
//!
//! where `a` is fixed per-CTA cost (launch latency, compulsory misses,
//! output-tile store), `b` the conditional cost of emitting temporary
//! partials, `c` the per-MAC-iteration workload, and `d` the
//! per-collaborator cost of reading and accumulating one peer's
//! partial sums. `{a, b, c, d}` are unique to each (blocking factor,
//! data type, microarchitecture) and measured once via
//! microbenchmarks.

use crate::decomposition::Decomposition;
use streamk_types::{ceil_div, GemmShape, Precision, TileShape};

/// The `{a, b, c, d}` workload constants of the Appendix A.1 CTA
/// runtime model, in arbitrary consistent time units (this workspace
/// uses "cost units" ≈ one tensor-core-saturated MAC-loop iteration of
/// the default blocking ≈ `c = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// One-time fixed cost per CTA: grid launch latency, compulsory
    /// cache misses, storing the final output tile.
    pub a: f64,
    /// Conditional cost of writing temporary partial sums (paid once
    /// by a CTA whose tile work doesn't align with tile boundaries).
    pub b: f64,
    /// Instruction and stall cost of one MAC-loop iteration.
    pub c: f64,
    /// Cost of reading and accumulating one peer's partial sums.
    pub d: f64,
}

impl CostModel {
    /// Constants calibrated for this workspace's A100-like simulator
    /// at the paper's FP16→32 blocking (128×128×32). Chosen — as the
    /// paper prescribes, by fitting microbenchmark behaviour — to
    /// reproduce the three grid-size selections of Figure 8:
    /// `g* = 108` for 256×3584×8192, `g* = 64` for 1024³, and
    /// `g* = 8` for 128×128×16384.
    #[must_use]
    pub fn a100_fp16() -> Self {
        CostModel { a: 2.0, b: 8.0, c: 1.0, d: 8.0 }
    }

    /// Constants for the paper's FP64 blocking (64×64×16). FP64 tiles
    /// are 8× smaller in MACs but move proportionally more data per
    /// flop; the fixup-to-iteration cost ratios stay similar.
    #[must_use]
    pub fn a100_fp64() -> Self {
        CostModel { a: 2.0, b: 5.0, c: 1.0, d: 5.0 }
    }

    /// The calibrated constants for `precision`'s default Stream-K
    /// blocking.
    #[must_use]
    pub fn for_precision(precision: Precision) -> Self {
        match precision {
            Precision::Fp64 => Self::a100_fp64(),
            Precision::Fp16To32 => Self::a100_fp16(),
        }
    }

    /// Fits the four constants from measured samples of
    /// `(iters_per_cta, fixup_peers, observed_time)` by ordinary least
    /// squares on the model's four regressors. This is the
    /// "determined empirically via microbenchmarks" step of Appendix
    /// A.1; `streamk-cpu` uses it to calibrate against real thread
    /// timings.
    ///
    /// Returns `None` if the system is under-determined (fewer than 4
    /// independent samples).
    #[must_use]
    pub fn fit(samples: &[(usize, usize, f64)]) -> Option<Self> {
        if samples.len() < 4 {
            return None;
        }
        // Regressors: x0 = 1, x1 = [peers > 1], x2 = iters, x3 = peers − 1.
        let rows: Vec<[f64; 4]> = samples
            .iter()
            .map(|&(iters, peers, _)| {
                [1.0, f64::from(u8::from(peers > 1)), iters as f64, (peers.max(1) - 1) as f64]
            })
            .collect();
        let y: Vec<f64> = samples.iter().map(|&(_, _, t)| t).collect();
        // Normal equations: (XᵀX) β = Xᵀy, solved by Gaussian
        // elimination with partial pivoting on the 4×4 system.
        let mut xtx = [[0.0f64; 4]; 4];
        let mut xty = [0.0f64; 4];
        for (row, &yi) in rows.iter().zip(&y) {
            for i in 0..4 {
                for j in 0..4 {
                    xtx[i][j] += row[i] * row[j];
                }
                xty[i] += row[i] * yi;
            }
        }
        let beta = solve4(xtx, xty)?;
        Some(CostModel { a: beta[0], b: beta[1], c: beta[2], d: beta[3] })
    }
}

/// Solves a 4×4 linear system by Gaussian elimination with partial
/// pivoting. Returns `None` for (numerically) singular systems.
fn solve4(mut m: [[f64; 4]; 4], mut rhs: [f64; 4]) -> Option<[f64; 4]> {
    for col in 0..4 {
        // Pivot.
        let pivot = (col..4).max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        rhs.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..4 {
            let f = m[row][col] / m[col][col];
            let (above, below) = m.split_at_mut(row);
            let pivot_row = &above[col];
            for (rv, pv) in below[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *rv -= f * pv;
            }
            rhs[row] -= f * rhs[col];
        }
    }
    // Back-substitute.
    let mut x = [0.0f64; 4];
    for row in (0..4).rev() {
        let mut acc = rhs[row];
        for j in (row + 1)..4 {
            acc -= m[row][j] * x[j];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

/// The grid-size selection model: given a problem, a blocking factor
/// and the processor width, predicts the runtime of every candidate
/// grid size and picks the best (Appendix A.1).
///
/// ```
/// use streamk_core::{CostModel, GridSizeModel};
/// use streamk_types::{GemmShape, TileShape};
///
/// let model = GridSizeModel::new(CostModel::a100_fp16(), 108);
/// let tile = TileShape::new(128, 128, 32);
///
/// // The paper's Figure 8 selections reproduce exactly:
/// assert_eq!(model.best_grid(GemmShape::new(256, 3584, 8192), tile), 108);
/// assert_eq!(model.best_grid(GemmShape::new(1024, 1024, 1024), tile), 64);
/// assert_eq!(model.best_grid(GemmShape::new(128, 128, 16384), tile), 8);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GridSizeModel {
    /// The workload constants in use.
    pub cost: CostModel,
    /// Processor cores `p` (maximum concurrently resident CTAs).
    pub sms: usize,
}

impl GridSizeModel {
    /// Creates a model for a `sms`-core processor with the given
    /// constants.
    ///
    /// # Panics
    ///
    /// Panics if `sms == 0`.
    #[must_use]
    pub fn new(cost: CostModel, sms: usize) -> Self {
        assert!(sms > 0, "sms must be at least 1");
        Self { cost, sms }
    }

    /// `ItersPerCta(g)` — the ceiling share of MAC-loop iterations per
    /// CTA.
    #[must_use]
    pub fn iters_per_cta(&self, shape: GemmShape, tile: TileShape, g: usize) -> usize {
        ceil_div(tile.total_iters(shape), g)
    }

    /// `FixupPeers(g)` — the model's estimate of how many CTAs
    /// collaborate on one output tile.
    #[must_use]
    pub fn fixup_peers(&self, shape: GemmShape, tile: TileShape, g: usize) -> usize {
        ceil_div(tile.iters_per_tile(shape), self.iters_per_cta(shape, tile, g))
    }

    /// `time_cta(g)` — the modeled runtime of a tile-outputting CTA,
    /// and therefore of the whole single-wave Stream-K schedule.
    #[must_use]
    pub fn time_cta(&self, shape: GemmShape, tile: TileShape, g: usize) -> f64 {
        let peers = self.fixup_peers(shape, tile, g);
        let iters = self.iters_per_cta(shape, tile, g);
        self.cost.a
            + self.cost.b * f64::from(u8::from(peers > 1))
            + self.cost.c * iters as f64
            + self.cost.d * (peers - 1) as f64
    }

    /// The modeled-best grid size: the `g ∈ [1, min(p, total_iters)]`
    /// minimizing `time_cta(g)`, with ties broken toward smaller
    /// grids (less fixup surface for the same predicted time).
    ///
    /// Depending on shape this lands anywhere from full-processor
    /// splitting (`g = p`), to no splitting at all (`g = t`), to a
    /// strong-scaling sweet spot in between (Figure 8).
    #[must_use]
    pub fn best_grid(&self, shape: GemmShape, tile: TileShape) -> usize {
        let max_g = self.sms.min(tile.total_iters(shape)).max(1);
        (1..=max_g)
            .min_by(|&g1, &g2| {
                self.time_cta(shape, tile, g1).total_cmp(&self.time_cta(shape, tile, g2))
            })
            .expect("candidate range is non-empty")
    }

    /// The full `(g, time_cta(g))` curve for plotting (Figure 8).
    #[must_use]
    pub fn curve(&self, shape: GemmShape, tile: TileShape) -> Vec<(usize, f64)> {
        let max_g = self.sms.min(tile.total_iters(shape)).max(1);
        (1..=max_g).map(|g| (g, self.time_cta(shape, tile, g))).collect()
    }

    /// Builds the launch-ready decomposition for `shape`: the two-tile
    /// hybrid when a full data-parallel wave exists, otherwise basic
    /// Stream-K at the modeled-best grid size. This is the "dynamic
    /// problem-specific configuration" step of §5.1.
    #[must_use]
    pub fn decompose(&self, shape: GemmShape, tile: TileShape) -> Decomposition {
        let tiles = tile.output_tiles(shape);
        if tiles >= self.sms {
            Decomposition::two_tile_stream_k_dp(shape, tile, self.sms)
        } else {
            Decomposition::stream_k(shape, tile, self.best_grid(shape, tile))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TILE: TileShape = TileShape { blk_m: 128, blk_n: 128, blk_k: 32 };

    fn model() -> GridSizeModel {
        GridSizeModel::new(CostModel::a100_fp16(), 108)
    }

    /// Figure 8a: 256×3584×8192 → 56 tiles × 256 iters; best grid is
    /// maximal parallelism, g* = 108 with 132/133 iters per CTA.
    #[test]
    fn figure8a_best_grid_is_full_processor() {
        let shape = GemmShape::new(256, 3584, 8192);
        let m = model();
        assert_eq!(m.best_grid(shape, TILE), 108);
        assert_eq!(m.iters_per_cta(shape, TILE, 108), 133);
    }

    /// Figure 8b: 1024×1024×1024 → 64 tiles × 32 iters; fixup costs
    /// outweigh iteration savings, the model dips at g* = 64.
    #[test]
    fn figure8b_best_grid_is_tile_count() {
        let shape = GemmShape::new(1024, 1024, 1024);
        assert_eq!(model().best_grid(shape, TILE), 64);
    }

    /// Figure 8c: 128×128×16384 → 1 tile × 512 iters; serial reduction
    /// costs cap useful splitting at g* = 8.
    #[test]
    fn figure8c_best_grid_is_eight() {
        let shape = GemmShape::new(128, 128, 16384);
        assert_eq!(model().best_grid(shape, TILE), 8);
    }

    #[test]
    fn fixup_peers_matches_paper_quantities() {
        let shape = GemmShape::new(128, 128, 16384);
        let m = model();
        // Single tile split g ways: every CTA is a peer of the owner.
        assert_eq!(m.fixup_peers(shape, TILE, 8), 8);
        assert_eq!(m.fixup_peers(shape, TILE, 1), 1);
    }

    #[test]
    fn time_is_monotone_in_iters_for_fixed_peers() {
        let m = model();
        let s1 = GemmShape::new(128, 128, 4096);
        let s2 = GemmShape::new(128, 128, 8192);
        // Same single-tile structure, g=1 → no fixup, more iterations
        // must cost more.
        assert!(m.time_cta(s2, TILE, 1) > m.time_cta(s1, TILE, 1));
    }

    #[test]
    fn curve_covers_candidate_range() {
        let shape = GemmShape::new(1024, 1024, 1024);
        let curve = model().curve(shape, TILE);
        assert_eq!(curve.len(), 108);
        assert_eq!(curve[0].0, 1);
        assert_eq!(curve[107].0, 108);
    }

    #[test]
    fn decompose_picks_hybrid_for_many_tiles() {
        let m = model();
        // 4096x4096: 1024 tiles >> 108 SMs → two-tile hybrid.
        let d = m.decompose(GemmShape::new(4096, 4096, 1024), TILE);
        assert!(matches!(d.strategy(), crate::Strategy::TwoTileStreamKDp { .. }));
        // Single tile → basic Stream-K at the modeled grid.
        let d = m.decompose(GemmShape::new(128, 128, 16384), TILE);
        assert!(matches!(d.strategy(), crate::Strategy::StreamK { grid: 8 }));
    }

    #[test]
    fn fit_recovers_known_constants() {
        let truth = CostModel { a: 17.0, b: 6.5, c: 1.25, d: 4.0 };
        // Synthesize exact samples over a spread of (iters, peers).
        let mut samples = Vec::new();
        for &iters in &[8usize, 16, 32, 64, 128, 256] {
            for &peers in &[1usize, 2, 3, 5, 9] {
                let t = truth.a
                    + truth.b * f64::from(u8::from(peers > 1))
                    + truth.c * iters as f64
                    + truth.d * (peers - 1) as f64;
                samples.push((iters, peers, t));
            }
        }
        let fitted = CostModel::fit(&samples).expect("well-determined system");
        assert!((fitted.a - truth.a).abs() < 1e-6);
        assert!((fitted.b - truth.b).abs() < 1e-6);
        assert!((fitted.c - truth.c).abs() < 1e-6);
        assert!((fitted.d - truth.d).abs() < 1e-6);
    }

    #[test]
    fn fit_rejects_underdetermined() {
        assert!(CostModel::fit(&[(1, 1, 1.0), (2, 1, 2.0)]).is_none());
        // Plenty of samples but no variation → singular.
        let degenerate: Vec<_> = (0..10).map(|_| (32usize, 2usize, 40.0)).collect();
        assert!(CostModel::fit(&degenerate).is_none());
    }
}
