//! The linearized MAC-iteration space.
//!
//! Stream-K's unit of workload quantization is one MAC-loop iteration.
//! The aggregate iteration space has extent
//! `total = ⌈m/BLK_M⌉ · ⌈n/BLK_N⌉ · ⌈k/BLK_K⌉` and is ordered
//! m → n → k: output tiles in row-major order (the m-tile index
//! outermost), with a tile's `⌈k/BLK_K⌉` accumulation iterations
//! contiguous and innermost (paper §4).
//!
//! Note: Algorithm 3 of the paper computes tile coordinates as
//! `mm = BLK_M · (tile_idx / ⌈m/BLK_M⌉)` and
//! `nn = BLK_N · (tile_idx mod ⌈m/BLK_M⌉)`, dividing by the *m*-tile
//! count in both places — a typo (it would leave most tiles unaddressed
//! whenever the tile grid is not square). We use the standard
//! row-major mapping over the `tiles_m × tiles_n` grid.

use crate::order::{shared_permutation, TileOrder};
use std::sync::Arc;
use streamk_types::{GemmShape, TileShape};

/// The linearized iteration space of one (shape, tile) pair, with the
/// index arithmetic every decomposition and executor relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterSpace {
    shape: GemmShape,
    tile: TileShape,
    tiles_m: usize,
    tiles_n: usize,
    iters_per_tile: usize,
    order: TileOrder,
    /// Schedule-tile → output-tile coordinates, present for non
    /// row-major orders (shared so clones stay cheap).
    perm: Option<Arc<[(usize, usize)]>>,
}

impl IterSpace {
    /// Builds the iteration space for `shape` blocked by `tile`, in
    /// the default row-major tile order.
    #[must_use]
    pub fn new(shape: GemmShape, tile: TileShape) -> Self {
        Self::with_order(shape, tile, TileOrder::RowMajor)
    }

    /// Builds the iteration space with a cache-aware tile traversal
    /// order (§7 future work): schedule tile `s` maps to the `s`-th
    /// coordinate of the order's permutation. Iteration ranges,
    /// ownership and fixup structure are all unaffected — only the
    /// output coordinates a schedule tile lands on change.
    #[must_use]
    pub fn with_order(shape: GemmShape, tile: TileShape, order: TileOrder) -> Self {
        let tiles_m = tile.tiles_m(shape);
        let tiles_n = tile.tiles_n(shape);
        let perm = match order {
            TileOrder::RowMajor => None,
            other => Some(shared_permutation(other, tiles_m, tiles_n)),
        };
        Self {
            shape,
            tile,
            tiles_m,
            tiles_n,
            iters_per_tile: tile.iters_per_tile(shape),
            order,
            perm,
        }
    }

    /// The tile traversal order in effect.
    #[must_use]
    pub fn order(&self) -> TileOrder {
        self.order
    }

    /// The GEMM problem shape.
    #[must_use]
    pub fn shape(&self) -> GemmShape {
        self.shape
    }

    /// The blocking factors.
    #[must_use]
    pub fn tile(&self) -> TileShape {
        self.tile
    }

    /// Output tiles along m.
    #[must_use]
    pub fn tiles_m(&self) -> usize {
        self.tiles_m
    }

    /// Output tiles along n.
    #[must_use]
    pub fn tiles_n(&self) -> usize {
        self.tiles_n
    }

    /// Total output tiles `t`.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.tiles_m * self.tiles_n
    }

    /// MAC-loop iterations per output tile `⌈k/BLK_K⌉`.
    #[must_use]
    pub fn iters_per_tile(&self) -> usize {
        self.iters_per_tile
    }

    /// Total MAC-loop iterations `t · iters_per_tile`.
    #[must_use]
    pub fn total_iters(&self) -> usize {
        self.tiles() * self.iters_per_tile
    }

    /// The output tile containing linear iteration `iter`.
    ///
    /// # Panics
    ///
    /// Panics if `iter` is out of range.
    #[inline]
    #[must_use]
    pub fn tile_of(&self, iter: usize) -> usize {
        assert!(iter < self.total_iters(), "iteration {iter} out of range");
        iter / self.iters_per_tile
    }

    /// The first linear iteration of `tile_idx`.
    #[inline]
    #[must_use]
    pub fn tile_first_iter(&self, tile_idx: usize) -> usize {
        tile_idx * self.iters_per_tile
    }

    /// Output-tile coordinates `(tile_m, tile_n)` of schedule tile
    /// `tile_idx`, through the traversal order in effect (row-major
    /// by default).
    ///
    /// # Panics
    ///
    /// Panics if `tile_idx` is out of range.
    #[inline]
    #[must_use]
    pub fn tile_coords(&self, tile_idx: usize) -> (usize, usize) {
        assert!(tile_idx < self.tiles(), "tile {tile_idx} out of range");
        match &self.perm {
            None => (tile_idx / self.tiles_n, tile_idx % self.tiles_n),
            Some(perm) => perm[tile_idx],
        }
    }

    /// Inverse of [`tile_coords`](Self::tile_coords) for the default
    /// row-major order.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is out of range, or if a
    /// non-row-major order is in effect (the inverse is not needed on
    /// that path and keeping it row-major-only avoids a reverse map).
    #[inline]
    #[must_use]
    pub fn tile_index(&self, tile_m: usize, tile_n: usize) -> usize {
        assert!(self.perm.is_none(), "tile_index requires the row-major order");
        assert!(tile_m < self.tiles_m && tile_n < self.tiles_n, "tile coords ({tile_m},{tile_n}) out of range");
        tile_m * self.tiles_n + tile_n
    }

    /// The element extents covered by `tile_idx` in the output matrix:
    /// `(row_begin..row_end, col_begin..col_end)`. Edge tiles are
    /// clamped to the problem extents.
    #[must_use]
    pub fn tile_extents(&self, tile_idx: usize) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let (tm, tn) = self.tile_coords(tile_idx);
        let r0 = tm * self.tile.blk_m;
        let c0 = tn * self.tile.blk_n;
        (r0..(r0 + self.tile.blk_m).min(self.shape.m), c0..(c0 + self.tile.blk_n).min(self.shape.n))
    }

    /// The k-axis extents of local MAC-loop iteration `local_iter`
    /// within any tile: `k_begin..k_end`, clamped to `k`.
    ///
    /// # Panics
    ///
    /// Panics if `local_iter ≥ iters_per_tile`.
    #[must_use]
    pub fn k_extents(&self, local_iter: usize) -> std::ops::Range<usize> {
        assert!(local_iter < self.iters_per_tile, "local iteration {local_iter} out of range");
        let k0 = local_iter * self.tile.blk_k;
        k0..(k0 + self.tile.blk_k).min(self.shape.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> IterSpace {
        // 384x384x128 with 128x128x4 blocking: 3x3 tiles, 32 iters each
        // (the paper's Figure 2b example).
        IterSpace::new(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 4))
    }

    #[test]
    fn figure2b_extents() {
        let s = space();
        assert_eq!(s.tiles_m(), 3);
        assert_eq!(s.tiles_n(), 3);
        assert_eq!(s.tiles(), 9);
        assert_eq!(s.iters_per_tile(), 32);
        assert_eq!(s.total_iters(), 288);
    }

    #[test]
    fn tile_of_boundaries() {
        let s = space();
        assert_eq!(s.tile_of(0), 0);
        assert_eq!(s.tile_of(31), 0);
        assert_eq!(s.tile_of(32), 1);
        assert_eq!(s.tile_of(287), 8);
    }

    #[test]
    fn coords_round_trip() {
        let s = space();
        for t in 0..s.tiles() {
            let (tm, tn) = s.tile_coords(t);
            assert_eq!(s.tile_index(tm, tn), t);
        }
    }

    #[test]
    fn row_major_tile_order() {
        let s = space();
        // Tile 1 is the same tile-row, next tile-column.
        assert_eq!(s.tile_coords(1), (0, 1));
        assert_eq!(s.tile_coords(3), (1, 0));
    }

    #[test]
    fn tile_extents_interior_and_edge() {
        let s = IterSpace::new(GemmShape::new(300, 200, 50), TileShape::new(128, 128, 16));
        // 3x2 tile grid.
        assert_eq!(s.tiles_m(), 3);
        assert_eq!(s.tiles_n(), 2);
        let (rows, cols) = s.tile_extents(0);
        assert_eq!((rows, cols), (0..128, 0..128));
        // Bottom-right tile is clamped.
        let (rows, cols) = s.tile_extents(5);
        assert_eq!((rows, cols), (256..300, 128..200));
    }

    #[test]
    fn k_extents_clamped() {
        let s = IterSpace::new(GemmShape::new(300, 200, 50), TileShape::new(128, 128, 16));
        assert_eq!(s.iters_per_tile(), 4);
        assert_eq!(s.k_extents(0), 0..16);
        assert_eq!(s.k_extents(3), 48..50);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_of_out_of_range_panics() {
        let s = space();
        let _ = s.tile_of(288);
    }
}
