//! Cache-aware tile traversal orders.
//!
//! The paper's future-work list (§7) names "cache-aware, tile-access
//! patterns such as Morton Order" as an optimization avenue: the
//! order in which a schedule walks output tiles determines how many
//! distinct **A** row-panels and **B** column-panels one wave of CTAs
//! touches, and therefore how well the L2 can serve the wave.
//!
//! This module provides three orders — row-major (the default
//! m→n→k linearization), a CUTLASS-style column-grouped swizzle, and
//! Morton (Z-curve) — plus the *wave footprint* metric that
//! quantifies their cache friendliness. Orders plug into
//! [`IterSpace`](crate::IterSpace) via
//! [`Decomposition::with_tile_order`](crate::Decomposition::with_tile_order):
//! the schedule keeps its iteration ranges, and only the mapping from
//! schedule-tile to output-tile coordinates changes.

use std::sync::Arc;

/// A traversal order over the `tiles_m × tiles_n` output-tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TileOrder {
    /// Row-major: tile `s` maps to `(s / tiles_n, s mod tiles_n)`.
    #[default]
    RowMajor,
    /// CUTLASS-style swizzle: tiles are walked in column groups of
    /// the given width, row-major within a group, so a wave stays
    /// within a few **B** column-panels.
    ColumnGrouped(
        /// Group width in tiles (≥ 1).
        usize,
    ),
    /// Morton (Z-curve): tiles sorted by the bit-interleave of their
    /// coordinates, giving quadrant-recursive locality in both
    /// operands.
    Morton,
}

/// Interleaves the low 32 bits of `x` (even positions) and `y` (odd
/// positions) — the Morton code of `(x, y)`.
#[must_use]
pub fn morton_code(x: u32, y: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut v = u64::from(v);
        v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
        v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
        v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    spread(x) | (spread(y) << 1)
}

/// The permutation `schedule position → (tile_m, tile_n)` for `order`
/// over a `tiles_m × tiles_n` grid.
///
/// # Panics
///
/// Panics on an empty grid or a zero group width.
#[must_use]
pub fn tile_permutation(order: TileOrder, tiles_m: usize, tiles_n: usize) -> Vec<(usize, usize)> {
    assert!(tiles_m > 0 && tiles_n > 0, "empty tile grid");
    match order {
        TileOrder::RowMajor => {
            (0..tiles_m * tiles_n).map(|s| (s / tiles_n, s % tiles_n)).collect()
        }
        TileOrder::ColumnGrouped(group) => {
            assert!(group > 0, "group width must be at least 1");
            let mut out = Vec::with_capacity(tiles_m * tiles_n);
            let mut g0 = 0;
            while g0 < tiles_n {
                let g1 = (g0 + group).min(tiles_n);
                for tm in 0..tiles_m {
                    for tn in g0..g1 {
                        out.push((tm, tn));
                    }
                }
                g0 = g1;
            }
            out
        }
        TileOrder::Morton => {
            let mut coords: Vec<(usize, usize)> = (0..tiles_m)
                .flat_map(|tm| (0..tiles_n).map(move |tn| (tm, tn)))
                .collect();
            coords.sort_by_key(|&(tm, tn)| morton_code(tm as u32, tn as u32));
            coords
        }
    }
}

/// Fragment-level swizzle: the storage slot of fragment `(p, q)` on a
/// `frags_m × frags_n` fragment grid under `order`.
///
/// This extends the tile permutation one level down, to the
/// `FRAG × FRAG` fragments of the native block-major matrix layouts
/// (`streamk_types::Layout::BlockMajor{,Z}`). Unlike
/// [`tile_permutation`], which materializes a sorted vector, fragment
/// slots must be O(1) both ways — `Layout::index` evaluates them per
/// element — so the Morton variant uses the *dense* z-order rank
/// ([`streamk_types::zorder_rank`]) and is only available when the
/// fragment grid is a power of two in both dimensions. On ragged grids
/// every order degrades to linear row-panel order: compact Morton
/// (sort-by-`morton_code`, as `tile_permutation` does) has no O(1)
/// inverse without a rank table. `ColumnGrouped` at fragment
/// granularity would break the packed-panel equivalence that gives
/// block-major its zero-pack bypass, so it also maps to linear order.
///
/// # Panics
///
/// Panics (debug) if `(p, q)` is outside the grid.
#[inline]
#[must_use]
pub fn fragment_slot(order: TileOrder, p: usize, q: usize, frags_m: usize, frags_n: usize) -> usize {
    debug_assert!(p < frags_m && q < frags_n, "fragment ({p},{q}) outside {frags_m}x{frags_n}");
    match order {
        TileOrder::Morton if frags_m.is_power_of_two() && frags_n.is_power_of_two() => {
            streamk_types::zorder_rank(p, q, frags_m, frags_n)
        }
        _ => p * frags_n + q,
    }
}

/// Inverse of [`fragment_slot`]: the fragment coordinates stored at
/// `slot`.
#[inline]
#[must_use]
pub fn fragment_coords(
    order: TileOrder,
    slot: usize,
    frags_m: usize,
    frags_n: usize,
) -> (usize, usize) {
    debug_assert!(slot < frags_m * frags_n);
    match order {
        TileOrder::Morton if frags_m.is_power_of_two() && frags_n.is_power_of_two() => {
            streamk_types::zorder_unrank(slot, frags_m, frags_n)
        }
        _ => (slot / frags_n, slot % frags_n),
    }
}

/// [`tile_permutation`] shared behind an `Arc` (the form `IterSpace`
/// stores).
#[must_use]
pub fn shared_permutation(order: TileOrder, tiles_m: usize, tiles_n: usize) -> Arc<[(usize, usize)]> {
    tile_permutation(order, tiles_m, tiles_n).into()
}

/// The *wave footprint* of an order: walking the permutation in waves
/// of `wave` consecutive tiles, the mean count of distinct tile-rows
/// plus distinct tile-columns per wave.
///
/// Each distinct tile-row is an **A** row-panel the wave must hold,
/// each distinct tile-column a **B** column-panel; smaller footprints
/// mean more cross-CTA reuse in the L2 (§5.2's motivation, §7's
/// future work).
///
/// # Panics
///
/// Panics if `wave == 0`.
#[must_use]
pub fn wave_footprint(perm: &[(usize, usize)], wave: usize) -> f64 {
    assert!(wave > 0, "wave must be at least 1");
    if perm.is_empty() {
        return 0.0;
    }
    let mut total = 0usize;
    let mut waves = 0usize;
    for chunk in perm.chunks(wave) {
        let mut rows: Vec<usize> = chunk.iter().map(|&(tm, _)| tm).collect();
        rows.sort_unstable();
        rows.dedup();
        let mut cols: Vec<usize> = chunk.iter().map(|&(_, tn)| tn).collect();
        cols.sort_unstable();
        cols.dedup();
        total += rows.len() + cols.len();
        waves += 1;
    }
    total as f64 / waves as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(perm: &[(usize, usize)], tiles_m: usize, tiles_n: usize) -> bool {
        let mut seen = vec![false; tiles_m * tiles_n];
        for &(tm, tn) in perm {
            if tm >= tiles_m || tn >= tiles_n {
                return false;
            }
            let i = tm * tiles_n + tn;
            if seen[i] {
                return false;
            }
            seen[i] = true;
        }
        seen.iter().all(|&s| s)
    }

    #[test]
    fn morton_code_interleaves() {
        assert_eq!(morton_code(0, 0), 0);
        assert_eq!(morton_code(1, 0), 1);
        assert_eq!(morton_code(0, 1), 2);
        assert_eq!(morton_code(1, 1), 3);
        assert_eq!(morton_code(2, 0), 4);
        assert_eq!(morton_code(0b11, 0b11), 0b1111);
        assert_eq!(morton_code(u32::MAX, 0), 0x5555_5555_5555_5555);
    }

    #[test]
    fn all_orders_are_permutations() {
        for (tm, tn) in [(1, 1), (4, 4), (7, 3), (3, 13), (16, 16), (5, 1)] {
            for order in [TileOrder::RowMajor, TileOrder::ColumnGrouped(2), TileOrder::ColumnGrouped(5), TileOrder::Morton] {
                let perm = tile_permutation(order, tm, tn);
                assert!(is_permutation(&perm, tm, tn), "{order:?} {tm}x{tn}");
            }
        }
    }

    #[test]
    fn row_major_is_identity_order() {
        let perm = tile_permutation(TileOrder::RowMajor, 3, 4);
        assert_eq!(perm[0], (0, 0));
        assert_eq!(perm[1], (0, 1));
        assert_eq!(perm[4], (1, 0));
    }

    #[test]
    fn morton_square_pow2_is_z_curve() {
        let perm = tile_permutation(TileOrder::Morton, 2, 2);
        assert_eq!(perm, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn column_grouped_stays_in_group() {
        let perm = tile_permutation(TileOrder::ColumnGrouped(2), 3, 5);
        // First 6 entries cover columns {0,1} only.
        for &(_, tn) in &perm[..6] {
            assert!(tn < 2);
        }
    }

    /// The future-work claim, quantified: on a square grid, Morton
    /// waves touch fewer distinct panels than row-major waves.
    #[test]
    fn morton_has_smaller_wave_footprint() {
        let (tm, tn) = (16, 16);
        let wave = 16;
        let rm = wave_footprint(&tile_permutation(TileOrder::RowMajor, tm, tn), wave);
        let mo = wave_footprint(&tile_permutation(TileOrder::Morton, tm, tn), wave);
        // Row-major: a 16-tile wave is one whole row → 1 + 16 = 17.
        assert!((rm - 17.0).abs() < 1e-12, "rm = {rm}");
        // Morton: a 16-tile wave is a 4x4 quadrant → 4 + 4 = 8.
        assert!((mo - 8.0).abs() < 1e-12, "mo = {mo}");
    }

    #[test]
    fn column_grouping_trades_rows_for_cols() {
        let (tm, tn) = (16, 16);
        let wave = 16;
        let cg = wave_footprint(&tile_permutation(TileOrder::ColumnGrouped(2), tm, tn), wave);
        // Groups of 2 columns: a 16-tile wave covers 8 rows x 2 cols = 10.
        assert!((cg - 10.0).abs() < 1e-12, "cg = {cg}");
    }

    #[test]
    fn footprint_handles_ragged_tail() {
        let perm = tile_permutation(TileOrder::RowMajor, 3, 3);
        // Waves of 4 over 9 tiles: tail wave of 1 → footprint 2.
        let f = wave_footprint(&perm, 4);
        assert!(f > 0.0);
    }

    #[test]
    fn morton_non_pow2_is_sorted_compact_permutation() {
        // On ragged grids compact Morton must still be a permutation,
        // visited in strictly ascending morton_code order.
        for (tm, tn) in [(7, 3), (3, 13), (5, 6), (9, 2), (15, 17)] {
            let perm = tile_permutation(TileOrder::Morton, tm, tn);
            assert!(is_permutation(&perm, tm, tn), "{tm}x{tn}");
            for w in perm.windows(2) {
                let a = morton_code(w[0].0 as u32, w[0].1 as u32);
                let b = morton_code(w[1].0 as u32, w[1].1 as u32);
                assert!(a < b, "{tm}x{tn}: out of z-order at {w:?}");
            }
        }
    }

    #[test]
    fn morton_degenerate_grids_are_identity_walks() {
        // 1×N and N×1 grids: the z-curve collapses to a straight walk
        // along the single axis.
        for n in [1, 2, 5, 8, 13] {
            let row = tile_permutation(TileOrder::Morton, 1, n);
            assert_eq!(row, (0..n).map(|tn| (0, tn)).collect::<Vec<_>>(), "1x{n}");
            let col = tile_permutation(TileOrder::Morton, n, 1);
            assert_eq!(col, (0..n).map(|tm| (tm, 0)).collect::<Vec<_>>(), "{n}x1");
        }
    }

    #[test]
    fn fragment_slot_matches_tile_permutation_on_pow2_grids() {
        // At tile granularity the dense fragment rank and the sorted
        // compact permutation agree wherever both are defined (square
        // and rectangular pow2 grids).
        for (fm, fn_) in [(1, 1), (2, 2), (4, 4), (8, 8), (2, 8), (8, 2), (1, 4), (4, 1)] {
            let perm = tile_permutation(TileOrder::Morton, fm, fn_);
            for (slot, &(p, q)) in perm.iter().enumerate() {
                assert_eq!(
                    fragment_slot(TileOrder::Morton, p, q, fm, fn_),
                    slot,
                    "({p},{q}) on {fm}x{fn_}"
                );
            }
        }
    }

    #[test]
    fn fragment_slot_ragged_grids_degrade_to_linear() {
        for order in [TileOrder::RowMajor, TileOrder::ColumnGrouped(3), TileOrder::Morton] {
            for (p, q) in [(0, 0), (2, 4), (6, 1)] {
                assert_eq!(fragment_slot(order, p, q, 7, 5), p * 5 + q, "{order:?}");
            }
        }
    }
}

#[cfg(test)]
mod fragment_swizzle_props {
    use super::*;
    use proptest::prelude::*;

    fn orders() -> impl proptest::strategy::Strategy<Value = TileOrder> {
        prop_oneof![
            Just(TileOrder::RowMajor),
            (1usize..6).prop_map(TileOrder::ColumnGrouped),
            Just(TileOrder::Morton),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Round trip: index → fragment slot → index, for every order
        /// on arbitrary (pow2 and ragged) fragment grids.
        #[test]
        fn slot_round_trips(order in orders(), fm in 1usize..40, fn_ in 1usize..40) {
            for p in 0..fm {
                for q in 0..fn_ {
                    let slot = fragment_slot(order, p, q, fm, fn_);
                    prop_assert!(slot < fm * fn_, "{order:?}: slot {slot} out of range");
                    prop_assert_eq!(fragment_coords(order, slot, fm, fn_), (p, q));
                }
            }
        }

        /// Density: slots are a bijection onto 0 .. fm·fn for every
        /// order and grid — the layouts built on them waste no storage.
        #[test]
        fn slots_are_dense(order in orders(), fm in 1usize..32, fn_ in 1usize..32) {
            let mut seen = vec![false; fm * fn_];
            for p in 0..fm {
                for q in 0..fn_ {
                    let slot = fragment_slot(order, p, q, fm, fn_);
                    prop_assert!(!seen[slot], "{:?}: duplicate slot {}", order, slot);
                    seen[slot] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
