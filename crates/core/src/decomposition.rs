//! Work decomposition strategies.

use crate::space::IterSpace;
use crate::work::{CtaWork, TileFixup};
use std::fmt;
use streamk_types::{ceil_div, GemmShape, TileShape};

/// A work-decomposition strategy from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Algorithm 2: one CTA per output tile.
    DataParallel,
    /// Algorithm 4: `split` CTAs per output tile, splitting the
    /// accumulation axis uniformly.
    FixedSplit {
        /// The splitting factor `s ≥ 1`.
        split: usize,
    },
    /// Algorithm 5: `grid` CTAs, each receiving an even share (within
    /// one) of all MAC-loop iterations.
    StreamK {
        /// The grid size `g ≥ 1`.
        grid: usize,
    },
    /// §5.2's simplest hybrid: full data-parallel waves, with Stream-K
    /// iteration balancing applied only to the tiles that would have
    /// formed the final, partially full wave.
    DpOneTileStreamK {
        /// Processor cores `p` (CTAs per full wave).
        sms: usize,
    },
    /// §5.2's production hybrid: one *fewer* full data-parallel wave,
    /// so each Stream-K CTA receives between one and two tiles' worth
    /// of iterations — better latency hiding, at most one fixup peer
    /// per tile when `w ≥ 2`.
    TwoTileStreamKDp {
        /// Processor cores `p`.
        sms: usize,
    },
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::DataParallel => write!(f, "data-parallel"),
            Strategy::FixedSplit { split } => write!(f, "fixed-split(s={split})"),
            Strategy::StreamK { grid } => write!(f, "stream-k(g={grid})"),
            Strategy::DpOneTileStreamK { sms } => write!(f, "dp+1tile-sk(p={sms})"),
            Strategy::TwoTileStreamKDp { sms } => write!(f, "2tile-sk+dp(p={sms})"),
        }
    }
}

/// A concrete assignment of the iteration space to a grid of CTAs.
///
/// This is the paper's contribution reified as data: both the GPU
/// simulator and the CPU executor consume a `Decomposition` verbatim,
/// and its invariants (exact cover, unique tile ownership, consecutive
/// fixup peers) are what make the consolidation protocol of
/// Algorithm 5 correct.
///
/// ```
/// use streamk_core::Decomposition;
/// use streamk_types::{GemmShape, TileShape};
///
/// // The paper's Figure 2b: 9 tiles x 32 iterations over 4 CTAs.
/// let shape = GemmShape::new(384, 384, 128);
/// let tile = TileShape::new(128, 128, 4);
/// let d = Decomposition::stream_k(shape, tile, 4);
///
/// // Every CTA receives exactly 72 MAC-loop iterations...
/// assert_eq!(d.max_iters_per_cta(), 72);
/// assert_eq!(d.iter_imbalance(), 0);
/// // ...and only 3 of the 9 tiles need cross-CTA consolidation.
/// assert_eq!(d.split_tiles(), 3);
/// assert!(d.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    space: IterSpace,
    strategy: Strategy,
    ctas: Vec<CtaWork>,
}

impl Decomposition {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// The classic *data-parallel* decomposition (Algorithm 2): grid
    /// size `g = t`, CTA `x` produces output tile `x` alone.
    #[must_use]
    pub fn data_parallel(shape: GemmShape, tile: TileShape) -> Self {
        let space = IterSpace::new(shape, tile);
        let ipt = space.iters_per_tile();
        let ctas = (0..space.tiles())
            .map(|x| CtaWork { cta_id: x, iter_begin: x * ipt, iter_end: (x + 1) * ipt })
            .collect();
        Self { space, strategy: Strategy::DataParallel, ctas }
    }

    /// The *fixed-split* decomposition (Algorithm 4): `split` CTAs per
    /// tile, each covering `⌈iters_per_tile / split⌉` iterations of the
    /// accumulation. CTAs are numbered tile-major (`x·s + y`), so the
    /// tile's splits have consecutive ids with the owner first.
    ///
    /// # Panics
    ///
    /// Panics if `split == 0`.
    #[must_use]
    pub fn fixed_split(shape: GemmShape, tile: TileShape, split: usize) -> Self {
        assert!(split > 0, "splitting factor must be at least 1");
        let space = IterSpace::new(shape, tile);
        let ipt = space.iters_per_tile();
        let ips = ceil_div(ipt, split);
        let mut ctas = Vec::with_capacity(space.tiles() * split);
        for x in 0..space.tiles() {
            let first = space.tile_first_iter(x);
            for y in 0..split {
                let begin = (y * ips).min(ipt);
                let end = ((y + 1) * ips).min(ipt);
                ctas.push(CtaWork {
                    cta_id: x * split + y,
                    iter_begin: first + begin,
                    iter_end: first + end,
                });
            }
        }
        Self { space, strategy: Strategy::FixedSplit { split }, ctas }
    }

    /// The basic *Stream-K* decomposition (Algorithm 5): `grid` CTAs,
    /// each receiving an even share — within one iteration — of the
    /// aggregate workload, mapped contiguously into the m→n→k
    /// linearization.
    ///
    /// (Algorithm 5 as printed uses `⌈total/g⌉` for every CTA, which
    /// can leave trailing CTAs idle; we distribute the remainder so
    /// the shares differ by at most one, which is what the paper's
    /// text specifies: "an even share (within one)".)
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0`.
    #[must_use]
    pub fn stream_k(shape: GemmShape, tile: TileShape, grid: usize) -> Self {
        let space = IterSpace::new(shape, tile);
        let ctas = balanced_ranges(space.total_iters(), grid, 0, 0);
        Self { space, strategy: Strategy::StreamK { grid }, ctas }
    }

    /// §5.2's "*data-parallel + one-tile Stream-K*" hybrid: all `⌊t/p⌋`
    /// full waves run data-parallel; the `t mod p` leftover tiles are
    /// iteration-balanced across `p` Stream-K CTAs, each receiving
    /// less than one tile's worth.
    ///
    /// Degenerates to pure data-parallel when `t mod p == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `sms == 0`.
    #[must_use]
    pub fn dp_one_tile_stream_k(shape: GemmShape, tile: TileShape, sms: usize) -> Self {
        assert!(sms > 0, "sms must be at least 1");
        let space = IterSpace::new(shape, tile);
        let t = space.tiles();
        let ipt = space.iters_per_tile();
        let r = t % sms;
        let strategy = Strategy::DpOneTileStreamK { sms };
        if r == 0 {
            let mut dp = Self::data_parallel(shape, tile);
            dp.strategy = strategy;
            return dp;
        }
        let dp_tiles = t - r;
        let mut ctas: Vec<CtaWork> = (0..dp_tiles)
            .map(|x| CtaWork { cta_id: x, iter_begin: x * ipt, iter_end: (x + 1) * ipt })
            .collect();
        let sk_iters = r * ipt;
        let sk_grid = sms.min(sk_iters);
        ctas.extend(balanced_ranges(sk_iters, sk_grid, dp_tiles * ipt, dp_tiles));
        Self { space, strategy, ctas }
    }

    /// §5.2's "*two-tile Stream-K + data-parallel*" hybrid — the
    /// schedule the paper's evaluated kernels implement. One fewer
    /// full data-parallel wave runs; the last full wave *plus* the
    /// partial wave (`p + t mod p` tiles) is iteration-balanced across
    /// `p` Stream-K CTAs, so each receives between one and two tiles'
    /// worth of iterations. The Stream-K CTAs are numbered first
    /// (dispatched first), the data-parallel waves follow.
    ///
    /// Degenerates to pure data-parallel when `t mod p == 0`, and to
    /// basic Stream-K with `g = min(p, total_iters)` when `t < p`.
    ///
    /// # Panics
    ///
    /// Panics if `sms == 0`.
    #[must_use]
    pub fn two_tile_stream_k_dp(shape: GemmShape, tile: TileShape, sms: usize) -> Self {
        assert!(sms > 0, "sms must be at least 1");
        let space = IterSpace::new(shape, tile);
        let t = space.tiles();
        let ipt = space.iters_per_tile();
        let w = t / sms;
        let r = t % sms;
        let strategy = Strategy::TwoTileStreamKDp { sms };
        if r == 0 {
            let mut dp = Self::data_parallel(shape, tile);
            dp.strategy = strategy;
            return dp;
        }
        if w == 0 {
            // Fewer tiles than cores: the whole problem is the
            // Stream-K region.
            let grid = sms.min(space.total_iters());
            let mut sk = Self::stream_k(shape, tile, grid);
            sk.strategy = strategy;
            return sk;
        }
        let sk_tiles = sms + r; // between p+1 and 2p-1
        let sk_iters = sk_tiles * ipt;
        let mut ctas = balanced_ranges(sk_iters, sms, 0, 0);
        let dp_tiles = t - sk_tiles;
        ctas.extend((0..dp_tiles).map(|i| {
            let first = sk_iters + i * ipt;
            CtaWork { cta_id: sms + i, iter_begin: first, iter_end: first + ipt }
        }));
        Self { space, strategy, ctas }
    }

    /// Builds the decomposition `strategy` describes.
    #[must_use]
    pub fn from_strategy(shape: GemmShape, tile: TileShape, strategy: Strategy) -> Self {
        match strategy {
            Strategy::DataParallel => Self::data_parallel(shape, tile),
            Strategy::FixedSplit { split } => Self::fixed_split(shape, tile, split),
            Strategy::StreamK { grid } => Self::stream_k(shape, tile, grid),
            Strategy::DpOneTileStreamK { sms } => Self::dp_one_tile_stream_k(shape, tile, sms),
            Strategy::TwoTileStreamKDp { sms } => Self::two_tile_stream_k_dp(shape, tile, sms),
        }
    }

    /// Re-targets this decomposition onto a cache-aware tile
    /// traversal order (§7 future work). CTA iteration ranges,
    /// ownership and fixup structure are untouched — schedule tile
    /// `s` simply lands on the `s`-th coordinate of the order's
    /// permutation instead of the row-major one.
    #[must_use]
    pub fn with_tile_order(mut self, order: crate::order::TileOrder) -> Self {
        self.space = IterSpace::with_order(self.space.shape(), self.space.tile(), order);
        self
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The iteration space being decomposed.
    #[must_use]
    pub fn space(&self) -> &IterSpace {
        &self.space
    }

    /// The strategy that produced this decomposition.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The grid size (number of CTAs, including empty ones).
    #[must_use]
    pub fn grid_size(&self) -> usize {
        self.ctas.len()
    }

    /// The per-CTA work assignments, in CTA-id order.
    #[must_use]
    pub fn ctas(&self) -> &[CtaWork] {
        &self.ctas
    }

    /// The largest per-CTA iteration count.
    #[must_use]
    pub fn max_iters_per_cta(&self) -> usize {
        self.ctas.iter().map(CtaWork::len).max().unwrap_or(0)
    }

    /// The smallest *non-empty* per-CTA iteration count (0 if all CTAs
    /// are empty).
    #[must_use]
    pub fn min_iters_per_cta(&self) -> usize {
        self.ctas.iter().map(CtaWork::len).filter(|&l| l > 0).min().unwrap_or(0)
    }

    /// Iteration-count imbalance `max − min` over non-empty CTAs. The
    /// paper's Stream-K guarantee is that this is ≤ 1.
    #[must_use]
    pub fn iter_imbalance(&self) -> usize {
        self.max_iters_per_cta() - self.min_iters_per_cta()
    }

    /// The consolidation structure of every output tile, in tile
    /// order. Tiles wholly produced by one CTA have no peers.
    #[must_use]
    pub fn fixups(&self) -> Vec<TileFixup> {
        let mut by_tile: Vec<(Option<usize>, Vec<usize>)> = vec![(None, Vec::new()); self.space.tiles()];
        for cta in &self.ctas {
            for seg in cta.segments(&self.space) {
                let entry = &mut by_tile[seg.tile_idx];
                if seg.starts_tile {
                    entry.0 = Some(cta.cta_id);
                } else {
                    entry.1.push(cta.cta_id);
                }
            }
        }
        by_tile
            .into_iter()
            .enumerate()
            .map(|(tile_idx, (owner, peers))| TileFixup {
                tile_idx,
                owner: owner.unwrap_or_else(|| panic!("tile {tile_idx} has no owner — invalid decomposition")),
                peers,
            })
            .collect()
    }

    /// Number of tiles that require cross-CTA consolidation — the
    /// count of "splitting seams", which for Stream-K is O(g) rather
    /// than O(t) (paper §7).
    #[must_use]
    pub fn split_tiles(&self) -> usize {
        self.fixups().iter().filter(|f| !f.is_data_parallel()).count()
    }

    /// Checks every structural invariant, returning a description of
    /// the first violation. Used by tests and property tests; cheap
    /// enough to run on every simulator input in debug builds.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a human-readable description if any invariant
    /// fails.
    pub fn validate(&self) -> Result<(), String> {
        let total = self.space.total_iters();
        // 1. CTA ids are dense and ordered.
        for (i, cta) in self.ctas.iter().enumerate() {
            if cta.cta_id != i {
                return Err(format!("cta at position {i} has id {}", cta.cta_id));
            }
            if cta.iter_begin > cta.iter_end {
                return Err(format!("cta {i} has inverted range [{}, {})", cta.iter_begin, cta.iter_end));
            }
        }
        // 2. Ranges form a contiguous ascending cover of [0, total).
        let mut cursor = 0;
        for cta in &self.ctas {
            if cta.iter_begin != cursor {
                return Err(format!(
                    "cta {} begins at {} but previous coverage ended at {cursor}",
                    cta.cta_id, cta.iter_begin
                ));
            }
            cursor = cta.iter_end;
        }
        if cursor != total {
            return Err(format!("coverage ends at {cursor}, expected {total}"));
        }
        // 3. Every CTA stores at most one partial record: only its
        //    first segment may be a non-starting contribution.
        for cta in &self.ctas {
            for (i, seg) in cta.segments(&self.space).enumerate() {
                if i > 0 && !seg.starts_tile {
                    return Err(format!("cta {} has a non-starting segment after its first", cta.cta_id));
                }
            }
        }
        // 4. Tile ownership and peer consecutiveness.
        for fixup in self.fixups() {
            for (i, &peer) in fixup.peers.iter().enumerate() {
                if peer != fixup.owner + i + 1 {
                    return Err(format!(
                        "tile {} peers {:?} not consecutive after owner {}",
                        fixup.tile_idx, fixup.peers, fixup.owner
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Splits `total` iterations across `grid` CTAs so shares differ by at
/// most one, offset by `iter_offset` and with CTA ids starting at
/// `id_offset`.
///
/// # Panics
///
/// Panics if `grid == 0`.
pub(crate) fn balanced_ranges(total: usize, grid: usize, iter_offset: usize, id_offset: usize) -> Vec<CtaWork> {
    assert!(grid > 0, "grid size must be at least 1");
    let base = total / grid;
    let rem = total % grid;
    let mut ctas = Vec::with_capacity(grid);
    let mut cursor = iter_offset;
    for i in 0..grid {
        let len = base + usize::from(i < rem);
        ctas.push(CtaWork { cta_id: id_offset + i, iter_begin: cursor, iter_end: cursor + len });
        cursor += len;
    }
    ctas
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2_SHAPE: GemmShape = GemmShape { m: 384, n: 384, k: 128 };
    const FIG2_TILE: TileShape = TileShape { blk_m: 128, blk_n: 128, blk_k: 4 };

    #[test]
    fn data_parallel_one_cta_per_tile() {
        let d = Decomposition::data_parallel(FIG2_SHAPE, FIG2_TILE);
        assert_eq!(d.grid_size(), 9);
        assert!(d.validate().is_ok());
        assert_eq!(d.iter_imbalance(), 0);
        assert_eq!(d.split_tiles(), 0);
        for f in d.fixups() {
            assert!(f.is_data_parallel());
            assert_eq!(f.owner, f.tile_idx);
        }
    }

    /// Figure 2a: fixed-split s=2 over 9 tiles → 18 CTAs, each with 16
    /// of the 32 per-tile iterations.
    #[test]
    fn fixed_split_figure2a() {
        let d = Decomposition::fixed_split(FIG2_SHAPE, FIG2_TILE, 2);
        assert_eq!(d.grid_size(), 18);
        assert!(d.validate().is_ok());
        assert_eq!(d.max_iters_per_cta(), 16);
        assert_eq!(d.min_iters_per_cta(), 16);
        // Every tile is a seam with exactly one peer.
        for f in d.fixups() {
            assert_eq!(f.covering_ctas(), 2);
            assert_eq!(f.owner, f.tile_idx * 2);
            assert_eq!(f.peers, vec![f.tile_idx * 2 + 1]);
        }
    }

    #[test]
    fn fixed_split_ragged_leaves_empty_ctas() {
        // 5 iterations per tile split 4 ways: ⌈5/4⌉=2 → splits of
        // 2,2,1,0.
        let shape = GemmShape::new(64, 64, 5 * 16);
        let tile = TileShape::new(64, 64, 16);
        let d = Decomposition::fixed_split(shape, tile, 4);
        assert!(d.validate().is_ok());
        let lens: Vec<_> = d.ctas().iter().map(CtaWork::len).collect();
        assert_eq!(lens, vec![2, 2, 1, 0]);
    }

    /// Figure 2b: basic Stream-K with g=4 over 288 iterations → every
    /// CTA gets exactly 72.
    #[test]
    fn stream_k_figure2b() {
        let d = Decomposition::stream_k(FIG2_SHAPE, FIG2_TILE, 4);
        assert_eq!(d.grid_size(), 4);
        assert!(d.validate().is_ok());
        assert_eq!(d.max_iters_per_cta(), 72);
        assert_eq!(d.min_iters_per_cta(), 72);
        // 9 tiles over 4 CTAs: tiles 2, 4 (covered half/half) — the
        // seams are wherever 72 doesn't align with 32.
        assert_eq!(d.split_tiles(), 3); // tiles 2, 4, 6 are split
    }

    #[test]
    fn stream_k_within_one_balance() {
        for g in 1..40 {
            let d = Decomposition::stream_k(FIG2_SHAPE, FIG2_TILE, g);
            assert!(d.validate().is_ok(), "g={g}: {:?}", d.validate());
            assert!(d.iter_imbalance() <= 1, "g={g} imbalance {}", d.iter_imbalance());
        }
    }

    /// Paper §4: Stream-K with g = t behaves exactly as data-parallel.
    #[test]
    fn stream_k_generalizes_data_parallel() {
        let sk = Decomposition::stream_k(FIG2_SHAPE, FIG2_TILE, 9);
        let dp = Decomposition::data_parallel(FIG2_SHAPE, FIG2_TILE);
        assert_eq!(sk.ctas(), dp.ctas());
    }

    /// Paper §4: Stream-K with g = s·t behaves exactly as fixed-split
    /// when the split divides the per-tile iteration count.
    #[test]
    fn stream_k_generalizes_fixed_split() {
        // 32 iters per tile, s=2 divides evenly.
        let sk = Decomposition::stream_k(FIG2_SHAPE, FIG2_TILE, 18);
        let fs = Decomposition::fixed_split(FIG2_SHAPE, FIG2_TILE, 2);
        assert_eq!(sk.ctas(), fs.ctas());
    }

    #[test]
    fn stream_k_grid_larger_than_iters() {
        let shape = GemmShape::new(64, 64, 32);
        let tile = TileShape::new(64, 64, 16);
        // 2 iterations total, 5 CTAs: 3 empty.
        let d = Decomposition::stream_k(shape, tile, 5);
        assert!(d.validate().is_ok());
        let nonempty = d.ctas().iter().filter(|c| !c.is_empty()).count();
        assert_eq!(nonempty, 2);
    }

    #[test]
    fn one_tile_hybrid_figure3b() {
        // Figure 3: 896×384×128 on 4 SMs with 128×128×32 blocking →
        // 7×3 = 21 tiles, 4 iters/tile; w = 5 full waves, r = 1.
        let shape = GemmShape::new(896, 384, 128);
        let tile = TileShape::new(128, 128, 32);
        let d = Decomposition::dp_one_tile_stream_k(shape, tile, 4);
        assert!(d.validate().is_ok());
        // 20 DP CTAs + 4 SK CTAs over the last tile's 4 iterations.
        assert_eq!(d.grid_size(), 24);
        let sk_lens: Vec<_> = d.ctas()[20..].iter().map(CtaWork::len).collect();
        assert_eq!(sk_lens, vec![1, 1, 1, 1]);
        // The final tile is owned by CTA 20 with peers 21..24.
        let f = d.fixups().pop().unwrap();
        assert_eq!(f.owner, 20);
        assert_eq!(f.peers, vec![21, 22, 23]);
    }

    #[test]
    fn two_tile_hybrid_figure3c() {
        let shape = GemmShape::new(896, 384, 128);
        let tile = TileShape::new(128, 128, 32);
        let d = Decomposition::two_tile_stream_k_dp(shape, tile, 4);
        assert!(d.validate().is_ok());
        // SK region: 4 + 1 = 5 tiles (20 iters) over 4 CTAs (5 each);
        // DP region: 16 tiles. Grid = 4 + 16 = 20 = exactly 5 waves.
        assert_eq!(d.grid_size(), 20);
        for cta in &d.ctas()[..4] {
            assert_eq!(cta.len(), 5);
        }
        for cta in &d.ctas()[4..] {
            assert_eq!(cta.len(), 4);
        }
        // Every SK CTA receives more than one tile's worth (5 > 4) but
        // fewer than two (5 < 8) — the "two-tile" property.
        // Each split tile has exactly one peer.
        for f in d.fixups() {
            assert!(f.covering_ctas() <= 2, "tile {} covered by {}", f.tile_idx, f.covering_ctas());
        }
    }

    #[test]
    fn hybrids_degenerate_to_dp_on_perfect_quantization() {
        // 8 tiles on 4 SMs: two full waves, r = 0.
        let shape = GemmShape::new(256, 512, 64);
        let tile = TileShape::new(128, 128, 16);
        let one = Decomposition::dp_one_tile_stream_k(shape, tile, 4);
        let two = Decomposition::two_tile_stream_k_dp(shape, tile, 4);
        let dp = Decomposition::data_parallel(shape, tile);
        assert_eq!(one.ctas(), dp.ctas());
        assert_eq!(two.ctas(), dp.ctas());
    }

    #[test]
    fn two_tile_hybrid_degenerates_to_stream_k_when_few_tiles() {
        // 2 tiles on 4 SMs (t < p).
        let shape = GemmShape::new(128, 256, 512);
        let tile = TileShape::new(128, 128, 16);
        let d = Decomposition::two_tile_stream_k_dp(shape, tile, 4);
        assert!(d.validate().is_ok());
        assert_eq!(d.grid_size(), 4);
        assert_eq!(d.iter_imbalance(), 0); // 64 iters over 4 CTAs
    }

    #[test]
    fn from_strategy_round_trips() {
        for strategy in [
            Strategy::DataParallel,
            Strategy::FixedSplit { split: 3 },
            Strategy::StreamK { grid: 4 },
            Strategy::DpOneTileStreamK { sms: 4 },
            Strategy::TwoTileStreamKDp { sms: 4 },
        ] {
            let d = Decomposition::from_strategy(FIG2_SHAPE, FIG2_TILE, strategy);
            assert_eq!(d.strategy(), strategy);
            assert!(d.validate().is_ok(), "{strategy}: {:?}", d.validate());
        }
    }

    #[test]
    fn split_tiles_scale_with_grid_not_tiles() {
        // A large problem: Stream-K's seams stay bounded by g while
        // fixed-split's grow with t.
        let shape = GemmShape::new(2048, 2048, 512);
        let tile = TileShape::new(128, 128, 32);
        let sk = Decomposition::stream_k(shape, tile, 108);
        assert!(sk.split_tiles() <= 108);
        let fs = Decomposition::fixed_split(shape, tile, 2);
        assert_eq!(fs.split_tiles(), 256); // every tile
    }

    #[test]
    fn strategy_display() {
        assert_eq!(Strategy::DataParallel.to_string(), "data-parallel");
        assert_eq!(Strategy::StreamK { grid: 7 }.to_string(), "stream-k(g=7)");
    }
}
