//! Static contiguous work assignment — the CPU scheduler's analogue
//! of Algorithm 4's iteration-range arithmetic.
//!
//! Stream-K assigns each CTA a contiguous share (within one) of the
//! aggregate MAC-loop iteration space; the CPU executor applies the
//! same idea one level up, assigning each *worker* a contiguous share
//! of the CTA dispatch sequence. Contiguity is what preserves the
//! [`TileOrder`](crate::order::TileOrder) swizzle: consecutive CTAs
//! touch neighbouring output tiles (and therefore shared operand
//! panels), so a worker walking its own range reuses panels exactly
//! as a GPU wave walking the dispatch order would.
//!
//! [`contiguous_ranges`] is the one splitting rule, shared by the CPU
//! scheduler and the simulator-facing analysis so the two never
//! disagree about who starts where.

use std::ops::Range;

/// Splits `[0, total)` into `workers` contiguous ranges whose lengths
/// differ by at most one, earlier ranges taking the extra element —
/// the same "even share, within one" rule Stream-K uses for CTA
/// iteration ranges (Algorithm 4).
///
/// Workers beyond `total` receive empty ranges.
///
/// # Panics
///
/// Panics if `workers` is zero.
#[must_use]
pub fn contiguous_ranges(total: usize, workers: usize) -> Vec<Range<usize>> {
    assert!(workers > 0, "need at least one worker");
    (0..workers).map(|w| contiguous_range(total, workers, w)).collect()
}

/// The range worker `w` receives under [`contiguous_ranges`], without
/// materializing the full table.
///
/// # Panics
///
/// Panics if `workers` is zero or `w >= workers`.
#[must_use]
pub fn contiguous_range(total: usize, workers: usize, w: usize) -> Range<usize> {
    assert!(workers > 0, "need at least one worker");
    assert!(w < workers, "worker {w} out of range for {workers} workers");
    let base = total / workers;
    let extra = total % workers;
    let begin = w * base + w.min(extra);
    let len = base + usize::from(w < extra);
    begin..begin + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_total() {
        for total in [0, 1, 5, 16, 17, 97] {
            for workers in [1, 2, 3, 4, 7, 16, 33] {
                let ranges = contiguous_ranges(total, workers);
                assert_eq!(ranges.len(), workers);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "{total}/{workers}: ranges must be contiguous");
                    next = r.end;
                }
                assert_eq!(next, total, "{total}/{workers}: ranges must cover everything");
            }
        }
    }

    #[test]
    fn shares_are_even_within_one() {
        for total in [1, 10, 23, 100] {
            for workers in [1, 3, 7, 12] {
                let lens: Vec<usize> =
                    contiguous_ranges(total, workers).iter().map(Range::len).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "{total}/{workers}: {lens:?}");
            }
        }
    }

    #[test]
    fn excess_workers_get_empty_ranges() {
        let ranges = contiguous_ranges(3, 5);
        assert_eq!(ranges[3], 3..3);
        assert_eq!(ranges[4], 3..3);
    }

    #[test]
    fn single_lookup_matches_table() {
        for total in [0, 9, 50] {
            for workers in [1, 4, 6] {
                let table = contiguous_ranges(total, workers);
                for (w, expected) in table.iter().enumerate() {
                    assert_eq!(&contiguous_range(total, workers, w), expected);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        let _ = contiguous_ranges(10, 0);
    }
}
