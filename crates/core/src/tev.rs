//! Shared Trace Event Format (Chrome trace) JSON writer.
//!
//! Both timeline producers in this workspace — the GPU simulator's
//! predicted schedule (`streamk-sim::trace`) and the CPU executor's
//! measured spans (`streamk-cpu::trace`) — serialize to the Chrome
//! [Trace Event Format], so a run opens interactively in Perfetto or
//! `chrome://tracing`. The format needs only complete events
//! (`{name, ph: "X", ts, dur, pid, tid}`, microsecond timestamps) and
//! `"M"` metadata records naming processes and threads; [`TraceWriter`]
//! emits exactly that by hand, keeping the workspace free of JSON
//! dependencies.
//!
//! One writer, many processes: each producer claims a distinct `pid`
//! (the simulator's predicted timeline and the executor's measured
//! timeline emit into the *same* writer under pid 2 and pid 1), so the
//! merged trace shows model and measurement side by side as two
//! "processes" of one capture.
//!
//! Because the JSON is hand-rolled, [`validate_json`] provides a
//! dependency-free structural parser used by tests to prove the output
//! is well-formed — brackets, commas, and string escaping included.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt;
use std::fmt::Write as _;

/// A JSON value usable in a trace event's `args` record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer, printed without a decimal point.
    U64(u64),
    /// A float, printed via Rust's `Display` (plain decimal notation).
    F64(f64),
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::U64(v) => write!(f, "{v}"),
            // Non-finite floats are not valid JSON; clamp to 0 rather
            // than corrupt the document.
            Self::F64(v) if !v.is_finite() => write!(f, "0"),
            Self::F64(v) => write!(f, "{v}"),
        }
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental Trace Event Format emitter (see module docs).
///
/// Events are appended in call order; [`TraceWriter::finish`] closes
/// the JSON array. The emitted layout (two-space indent, `",\n"`
/// separators, no trailing comma) is shared verbatim by the simulator
/// and executor exporters so their outputs merge byte-compatibly.
#[derive(Debug, Default)]
pub struct TraceWriter {
    body: String,
    events: usize,
}

impl TraceWriter {
    /// A writer with the opening bracket already emitted.
    #[must_use]
    pub fn new() -> Self {
        Self { body: String::from("[\n"), events: 0 }
    }

    fn push(&mut self, event: &str) {
        if self.events > 0 {
            self.body.push_str(",\n");
        }
        self.body.push_str(event);
        self.events += 1;
    }

    /// Emits a `process_name` metadata record for `pid`.
    pub fn process_name(&mut self, pid: usize, name: &str) {
        let name = escape_json(name);
        self.push(&format!(
            r#"  {{"name": "process_name", "ph": "M", "pid": {pid}, "args": {{"name": "{name}"}}}}"#
        ));
    }

    /// Emits a `thread_name` metadata record for `(pid, tid)`.
    pub fn thread_name(&mut self, pid: usize, tid: usize, name: &str) {
        let name = escape_json(name);
        self.push(&format!(
            r#"  {{"name": "thread_name", "ph": "M", "pid": {pid}, "tid": {tid}, "args": {{"name": "{name}"}}}}"#
        ));
    }

    /// Emits a complete (`"ph": "X"`) event. `ts_us`/`dur_us` are in
    /// microseconds; `args` key/value pairs are appended as the
    /// event's `args` record when non-empty.
    pub fn complete(
        &mut self,
        pid: usize,
        tid: usize,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, ArgValue)],
    ) {
        let name = escape_json(name);
        let mut ev = format!(
            r#"  {{"name": "{name}", "ph": "X", "ts": {ts_us:.3}, "dur": {dur_us:.3}, "pid": {pid}, "tid": {tid}"#
        );
        if !args.is_empty() {
            ev.push_str(", \"args\": {");
            for (i, (key, value)) in args.iter().enumerate() {
                if i > 0 {
                    ev.push_str(", ");
                }
                let _ = write!(ev, r#""{}": {value}"#, escape_json(key));
            }
            ev.push('}');
        }
        ev.push('}');
        self.push(&ev);
    }

    /// Number of events emitted so far (metadata included).
    #[must_use]
    pub fn events(&self) -> usize {
        self.events
    }

    /// Closes the array and returns the finished JSON document.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.body.push_str("\n]\n");
        self.body
    }
}

/// Structurally validates `s` as a single JSON document.
///
/// A minimal recursive-descent check — objects, arrays, strings (with
/// escapes), numbers, and literals — used by tests to prove the
/// hand-rolled trace output parses, without pulling a JSON dependency
/// into the workspace. Returns the byte offset and a short message on
/// the first malformation.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing content at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let start = p.i;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            if p.i == start {
                Err(p.err("expected digits"))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_writer_is_an_empty_array() {
        let json = TraceWriter::new().finish();
        assert_eq!(json, "[\n\n]\n");
        validate_json(&json).unwrap();
    }

    #[test]
    fn events_are_comma_separated_without_trailing_comma() {
        let mut w = TraceWriter::new();
        w.process_name(1, "measured");
        w.thread_name(1, 0, "worker0");
        w.complete(1, 0, "mac", 0.0, 12.5, &[("iters", ArgValue::U64(8))]);
        assert_eq!(w.events(), 3);
        let json = w.finish();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(!json.contains(",\n]"));
        assert_eq!(json.matches(r#""ph": "X""#).count(), 1);
        assert!(json.contains(r#""args": {"iters": 8}"#));
        validate_json(&json).unwrap();
    }

    #[test]
    fn names_with_quotes_and_backslashes_stay_parseable() {
        let mut w = TraceWriter::new();
        w.process_name(1, r#"evil "name" with \ and control"#);
        w.complete(1, 3, "say \"hi\"\n\ttab", 1.0, 2.0, &[("x", ArgValue::F64(0.5))]);
        let json = w.finish();
        validate_json(&json).unwrap();
        assert!(json.contains(r#"\"hi\""#));
        assert!(json.contains(r"\n\ttab"));
    }

    #[test]
    fn multiple_processes_share_one_document() {
        let mut w = TraceWriter::new();
        w.process_name(1, "measured");
        w.process_name(2, "predicted");
        w.complete(1, 0, "cta", 0.0, 5.0, &[]);
        w.complete(2, 0, "CTA 0", 0.0, 4.0, &[("iters", ArgValue::U64(3))]);
        let json = w.finish();
        validate_json(&json).unwrap();
        assert!(json.contains(r#""pid": 1"#));
        assert!(json.contains(r#""pid": 2"#));
    }

    #[test]
    fn non_finite_args_do_not_corrupt_the_document() {
        let mut w = TraceWriter::new();
        w.complete(1, 0, "bad", 0.0, 1.0, &[("nan", ArgValue::F64(f64::NAN))]);
        let json = w.finish();
        validate_json(&json).unwrap();
        assert!(json.contains(r#""nan": 0"#));
    }

    #[test]
    fn validator_accepts_real_json_shapes() {
        for ok in [
            "[]",
            "{}",
            r#"{"a": [1, -2.5, 3e4], "b": "xA", "c": null, "d": true}"#,
            "  [ {\"k\": \"v\"} , [ ] ]  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok:?}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "[",
            "[1,]",
            r#"{"a" 1}"#,
            r#"{"a": 1,}"#,
            "[1] trailing",
            "\"unterminated",
            r#""bad \x escape""#,
            "01a",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
