//! The Stream-K work decomposition — the paper's primary contribution.
//!
//! A GEMM's aggregate workload is quantized into *MAC-loop iterations*:
//! `BLK_M × BLK_N × BLK_K` volumes of multiply-accumulate work laid out
//! in the m→n→k linearization of the problem (tiles in row-major order,
//! the k-axis innermost). This crate expresses every decomposition the
//! paper discusses as an assignment of contiguous iteration ranges to
//! CTAs:
//!
//! - **Data-parallel** (Algorithm 2): one CTA per output tile.
//! - **Fixed-split** (Algorithm 4): `s` CTAs per output tile, splitting
//!   the k-axis uniformly.
//! - **Basic Stream-K** (Algorithm 5): a constant-size grid of `g`
//!   CTAs, each receiving an even share (within one) of *all*
//!   iterations, crossing tile boundaries as it may.
//! - **Hybrid schedules** (§5.2): "data-parallel + one-tile Stream-K"
//!   and the production "two-tile Stream-K + data-parallel".
//!
//! The decomposition is *data*: both the GPU simulator
//! (`streamk-sim`) and the multithreaded CPU executor (`streamk-cpu`)
//! consume the same [`Decomposition`], so what gets measured is what
//! gets proved correct.
//!
//! The Appendix A.1 analytical model that selects the Stream-K grid
//! size at kernel-launch time lives in [`model`].

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod assign;
pub mod batched;
pub mod decomposition;
pub mod error;
pub mod grouped;
pub mod model;
pub mod order;
pub mod recovery;
pub mod skew;
pub mod space;
pub mod span;
pub mod tev;
pub mod work;

pub use assign::{contiguous_range, contiguous_ranges};
pub use batched::{BatchedDecomposition, BatchedSpace};
pub use decomposition::{Decomposition, Strategy};
pub use error::DecomposeError;
pub use grouped::{GroupedDecomposition, GroupedSegment, GroupedSpace};
pub use model::{CostModel, GridSizeModel};
pub use order::TileOrder;
pub use recovery::{peer_contribution, recompute_cost, ExecutorError, FixupError};
pub use space::IterSpace;
pub use span::{Phase, SpanKind};
pub use tev::{validate_json, ArgValue, TraceWriter};
pub use work::{CtaWork, PeerTable, TileFixup, TileSegment};
