//! Grouped GEMM — one Stream-K grid over instances of *different*
//! shapes.
//!
//! Where [`batched`](crate::batched) covers a uniform batch, grouped
//! GEMM schedules a set of problems with unrelated extents (the
//! mixture a transformer layer or a multi-tenant serving batch
//! produces) as **one** launch: the per-instance iteration spaces are
//! concatenated — `group₀ → group₁ → …`, each internally m→n→k — and
//! the aggregate iteration count splits evenly across the grid. This
//! is precisely the workload class the paper's §7 points Stream-K at:
//! per-instance tile counts quantize terribly alone, and their *sum*
//! quantizes perfectly.
//!
//! All instances share one blocking factor (one kernel — the paper's
//! single-kernel story), but may differ in every problem extent.

use crate::decomposition::balanced_ranges;
use crate::space::IterSpace;
use crate::work::{CtaWork, TileFixup};
use streamk_types::{GemmShape, TileShape};

/// A segment of one CTA's work within one instance's tile, located in
/// group coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupedSegment {
    /// Which instance.
    pub instance: usize,
    /// Tile index *within* that instance.
    pub local_tile: usize,
    /// Tile index in the global (concatenated) numbering.
    pub global_tile: usize,
    /// First local MAC iteration within the tile (inclusive).
    pub local_begin: usize,
    /// Last local MAC iteration (exclusive).
    pub local_end: usize,
    /// Whether this segment performs the tile's first iteration.
    pub starts_tile: bool,
    /// Whether this segment performs the tile's last iteration.
    pub ends_tile: bool,
}

/// The concatenated iteration space of a group of GEMMs sharing one
/// blocking factor.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedSpace {
    instances: Vec<IterSpace>,
    /// Prefix sums: `iter_offsets[i]` is the first global iteration of
    /// instance `i`; last entry is the total.
    iter_offsets: Vec<usize>,
    /// Prefix sums over tiles, same convention.
    tile_offsets: Vec<usize>,
}

impl GroupedSpace {
    /// Builds the space for `shapes` blocked by `tile`.
    ///
    /// # Panics
    ///
    /// Panics if `shapes` is empty.
    #[must_use]
    pub fn new(shapes: &[GemmShape], tile: TileShape) -> Self {
        assert!(!shapes.is_empty(), "grouped GEMM needs at least one instance");
        let instances: Vec<IterSpace> = shapes.iter().map(|&s| IterSpace::new(s, tile)).collect();
        let mut iter_offsets = Vec::with_capacity(instances.len() + 1);
        let mut tile_offsets = Vec::with_capacity(instances.len() + 1);
        let (mut it, mut tl) = (0usize, 0usize);
        for space in &instances {
            iter_offsets.push(it);
            tile_offsets.push(tl);
            it += space.total_iters();
            tl += space.tiles();
        }
        iter_offsets.push(it);
        tile_offsets.push(tl);
        Self { instances, iter_offsets, tile_offsets }
    }

    /// A group of `count` identically-shaped instances — the burst a
    /// recursive algorithm emits when every sub-problem has the same
    /// extents (Strassen's seven half-size products per level). The
    /// aggregate iteration count quantizes exactly like any other
    /// group; uniformity just makes the per-instance spaces identical.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    #[must_use]
    pub fn uniform(shape: GemmShape, count: usize, tile: TileShape) -> Self {
        assert!(count > 0, "grouped GEMM needs at least one instance");
        Self::new(&vec![shape; count], tile)
    }

    /// The per-instance spaces.
    #[must_use]
    pub fn instances(&self) -> &[IterSpace] {
        &self.instances
    }

    /// Number of instances.
    #[must_use]
    pub fn groups(&self) -> usize {
        self.instances.len()
    }

    /// Total MAC-loop iterations across the group.
    #[must_use]
    pub fn total_iters(&self) -> usize {
        *self.iter_offsets.last().expect("non-empty")
    }

    /// Total output tiles across the group.
    #[must_use]
    pub fn tiles(&self) -> usize {
        *self.tile_offsets.last().expect("non-empty")
    }

    /// The instance containing global iteration `iter` (binary
    /// search over the prefix sums).
    ///
    /// # Panics
    ///
    /// Panics if `iter` is out of range.
    #[must_use]
    pub fn instance_of(&self, iter: usize) -> usize {
        assert!(iter < self.total_iters(), "iteration {iter} out of range");
        self.iter_offsets.partition_point(|&o| o <= iter) - 1
    }

    /// Splits a CTA's contiguous global range into
    /// [`GroupedSegment`]s, crossing tile and instance boundaries.
    #[must_use]
    pub fn segments(&self, cta: &CtaWork) -> Vec<GroupedSegment> {
        let mut out = Vec::new();
        let mut iter = cta.iter_begin;
        while iter < cta.iter_end {
            let instance = self.instance_of(iter);
            let space = &self.instances[instance];
            let base = self.iter_offsets[instance];
            let local_iter = iter - base;
            let ipt = space.iters_per_tile();
            let local_tile = local_iter / ipt;
            let tile_first = base + local_tile * ipt;
            let tile_end = tile_first + ipt;
            let seg_end = cta.iter_end.min(tile_end);
            out.push(GroupedSegment {
                instance,
                local_tile,
                global_tile: self.tile_offsets[instance] + local_tile,
                local_begin: iter - tile_first,
                local_end: seg_end - tile_first,
                starts_tile: iter == tile_first,
                ends_tile: seg_end == tile_end,
            });
            iter = seg_end;
        }
        out
    }
}

/// A Stream-K (or degenerate data-parallel) decomposition of a
/// grouped GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedDecomposition {
    space: GroupedSpace,
    ctas: Vec<CtaWork>,
    grid: usize,
}

impl GroupedDecomposition {
    /// Stream-K across the whole group: `grid` CTAs, each receiving an
    /// even share (within one) of every instance's iterations
    /// combined.
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0`.
    #[must_use]
    pub fn stream_k(space: GroupedSpace, grid: usize) -> Self {
        let ctas = balanced_ranges(space.total_iters(), grid, 0, 0);
        Self { space, ctas, grid }
    }

    /// One CTA per global tile — the grouped data-parallel baseline.
    /// (Unlike uniform batches this is *not* a degenerate Stream-K
    /// grid, because per-instance tile iteration counts differ.)
    #[must_use]
    pub fn data_parallel(space: GroupedSpace) -> Self {
        let mut ctas = Vec::with_capacity(space.tiles());
        let mut id = 0usize;
        for (i, inst) in space.instances.iter().enumerate() {
            let base = space.iter_offsets[i];
            let ipt = inst.iters_per_tile();
            for t in 0..inst.tiles() {
                ctas.push(CtaWork { cta_id: id, iter_begin: base + t * ipt, iter_end: base + (t + 1) * ipt });
                id += 1;
            }
        }
        let grid = ctas.len();
        Self { space, ctas, grid }
    }

    /// The grouped space.
    #[must_use]
    pub fn space(&self) -> &GroupedSpace {
        &self.space
    }

    /// Grid size.
    #[must_use]
    pub fn grid_size(&self) -> usize {
        self.grid
    }

    /// Per-CTA assignments over the concatenated iteration space.
    #[must_use]
    pub fn ctas(&self) -> &[CtaWork] {
        &self.ctas
    }

    /// Consolidation structure over global tile ids.
    #[must_use]
    pub fn fixups(&self) -> Vec<TileFixup> {
        let mut by_tile: Vec<(Option<usize>, Vec<usize>)> = vec![(None, Vec::new()); self.space.tiles()];
        for cta in &self.ctas {
            for seg in self.space.segments(cta) {
                let entry = &mut by_tile[seg.global_tile];
                if seg.starts_tile {
                    entry.0 = Some(cta.cta_id);
                } else {
                    entry.1.push(cta.cta_id);
                }
            }
        }
        by_tile
            .into_iter()
            .enumerate()
            .map(|(tile_idx, (owner, peers))| TileFixup {
                tile_idx,
                owner: owner.unwrap_or_else(|| panic!("tile {tile_idx} has no owner")),
                peers,
            })
            .collect()
    }

    /// Structural validation: contiguous exact cover, dense ids, and
    /// per-tile segment partitions.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let mut cursor = 0;
        for (i, cta) in self.ctas.iter().enumerate() {
            if cta.cta_id != i {
                return Err(format!("cta at position {i} has id {}", cta.cta_id));
            }
            if cta.iter_begin != cursor {
                return Err(format!("cta {i} begins at {} but coverage ended at {cursor}", cta.iter_begin));
            }
            cursor = cta.iter_end;
        }
        if cursor != self.space.total_iters() {
            return Err(format!("coverage ends at {cursor}, expected {}", self.space.total_iters()));
        }
        // Every tile's segments partition its iteration count.
        let mut covered = vec![0usize; self.space.tiles()];
        for cta in &self.ctas {
            for seg in self.space.segments(cta) {
                covered[seg.global_tile] += seg.local_end - seg.local_begin;
            }
        }
        for (i, inst) in self.space.instances.iter().enumerate() {
            for t in 0..inst.tiles() {
                let g = self.space.tile_offsets[i] + t;
                if covered[g] != inst.iters_per_tile() {
                    return Err(format!(
                        "global tile {g} covered {} of {}",
                        covered[g],
                        inst.iters_per_tile()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Iteration imbalance across non-empty CTAs.
    #[must_use]
    pub fn iter_imbalance(&self) -> usize {
        let max = self.ctas.iter().map(CtaWork::len).max().unwrap_or(0);
        let min = self.ctas.iter().map(CtaWork::len).filter(|&l| l > 0).min().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_space() -> GroupedSpace {
        // Three very different instances sharing a 16x16x8 blocking:
        //  - 32x32x32: 4 tiles x 4 iters = 16
        //  - 48x16x64: 3 tiles x 8 iters = 24
        //  - 16x16x8 : 1 tile  x 1 iter  = 1
        GroupedSpace::new(
            &[GemmShape::new(32, 32, 32), GemmShape::new(48, 16, 64), GemmShape::new(16, 16, 8)],
            TileShape::new(16, 16, 8),
        )
    }

    #[test]
    fn prefix_sums() {
        let s = mixed_space();
        assert_eq!(s.groups(), 3);
        assert_eq!(s.total_iters(), 16 + 24 + 1);
        assert_eq!(s.tiles(), 4 + 3 + 1);
        assert_eq!(s.instance_of(0), 0);
        assert_eq!(s.instance_of(15), 0);
        assert_eq!(s.instance_of(16), 1);
        assert_eq!(s.instance_of(39), 1);
        assert_eq!(s.instance_of(40), 2);
    }

    #[test]
    fn segments_cross_instances() {
        let s = mixed_space();
        // A CTA spanning the end of instance 0 and start of instance 1.
        let cta = CtaWork { cta_id: 0, iter_begin: 14, iter_end: 30 };
        let segs = s.segments(&cta);
        // [14,16): tail of instance 0 tile 3; [16,24): instance 1 tile
        // 0 iters 0..8 (whole); [24,30): instance 1 tile 1 iters 0..6.
        assert_eq!(segs.len(), 3);
        assert_eq!((segs[0].instance, segs[0].local_tile, segs[0].local_begin, segs[0].local_end), (0, 3, 2, 4));
        assert!(!segs[0].starts_tile && segs[0].ends_tile);
        assert_eq!((segs[1].instance, segs[1].local_tile), (1, 0));
        assert!(segs[1].starts_tile && segs[1].ends_tile);
        assert_eq!((segs[2].instance, segs[2].local_tile, segs[2].local_end), (1, 1, 6));
        assert!(segs[2].starts_tile && !segs[2].ends_tile);
    }

    #[test]
    fn stream_k_validates_and_balances() {
        for g in [1usize, 2, 3, 5, 7, 11, 41] {
            let d = GroupedDecomposition::stream_k(mixed_space(), g);
            assert!(d.validate().is_ok(), "g={g}: {:?}", d.validate());
            assert!(d.iter_imbalance() <= 1, "g={g}");
        }
    }

    #[test]
    fn data_parallel_one_cta_per_global_tile() {
        let d = GroupedDecomposition::data_parallel(mixed_space());
        assert_eq!(d.grid_size(), 8);
        assert!(d.validate().is_ok());
        assert!(d.fixups().iter().all(|f| f.is_data_parallel()));
        // CTA lengths reflect per-instance iteration depths: 4,4,4,4,
        // 8,8,8, 1.
        let lens: Vec<usize> = d.ctas().iter().map(CtaWork::len).collect();
        assert_eq!(lens, vec![4, 4, 4, 4, 8, 8, 8, 1]);
    }

    #[test]
    fn fixup_peers_are_consecutive() {
        let d = GroupedDecomposition::stream_k(mixed_space(), 5);
        for f in d.fixups() {
            for (i, &p) in f.peers.iter().enumerate() {
                assert_eq!(p, f.owner + i + 1, "tile {}", f.tile_idx);
            }
        }
    }

    #[test]
    fn single_group_matches_plain_stream_k() {
        let shape = GemmShape::new(96, 80, 64);
        let tile = TileShape::new(32, 32, 16);
        let grouped = GroupedDecomposition::stream_k(GroupedSpace::new(&[shape], tile), 5);
        let plain = crate::Decomposition::stream_k(shape, tile, 5);
        assert_eq!(grouped.ctas(), plain.ctas());
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_group_panics() {
        let _ = GroupedSpace::new(&[], TileShape::new(8, 8, 8));
    }

    #[test]
    fn uniform_matches_repeated_new() {
        let shape = GemmShape::new(48, 32, 64);
        let tile = TileShape::new(16, 16, 8);
        let uniform = GroupedSpace::uniform(shape, 7, tile);
        assert_eq!(uniform, GroupedSpace::new(&[shape; 7], tile));
        assert_eq!(uniform.groups(), 7);
        assert_eq!(uniform.total_iters(), 7 * IterSpace::new(shape, tile).total_iters());
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn uniform_zero_count_panics() {
        let _ = GroupedSpace::uniform(GemmShape::new(8, 8, 8), 0, TileShape::new(8, 8, 8));
    }
}
