//! Per-CTA work descriptors.

use crate::space::IterSpace;

/// The contiguous range of linear MAC-loop iterations assigned to one
/// CTA (Algorithm 5 lines 7-8).
///
/// An empty range (`iter_begin == iter_end`) is legal — e.g. a
/// fixed-split launch whose splitting factor exceeds a tile's
/// iteration count leaves some CTAs with nothing to do — and executors
/// treat such CTAs as immediate no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtaWork {
    /// This CTA's index within the grid.
    pub cta_id: usize,
    /// First linear iteration (inclusive).
    pub iter_begin: usize,
    /// Last linear iteration (exclusive).
    pub iter_end: usize,
}

impl CtaWork {
    /// Number of MAC-loop iterations assigned to this CTA.
    #[must_use]
    pub fn len(&self) -> usize {
        self.iter_end - self.iter_begin
    }

    /// `true` when the CTA has no work.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.iter_begin == self.iter_end
    }

    /// Splits this CTA's range at tile boundaries, yielding one
    /// [`TileSegment`] per output tile it touches, in execution order
    /// (Algorithm 5's iteration-processing outer loop).
    pub fn segments(&self, space: &IterSpace) -> impl Iterator<Item = TileSegment> + '_ {
        SegmentIter { iters_per_tile: space.iters_per_tile(), iter: self.iter_begin, iter_end: self.iter_end }
    }
}

/// One CTA's slice of one output tile: a range of *local* MAC-loop
/// iterations `[local_begin, local_end)` within `tile_idx`'s
/// `iters_per_tile`-long accumulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSegment {
    /// The output tile this segment accumulates into.
    pub tile_idx: usize,
    /// First local iteration (inclusive); 0 means this CTA *starts*
    /// the tile and will own its output.
    pub local_begin: usize,
    /// Last local iteration (exclusive); `iters_per_tile` means this
    /// CTA *ends* the tile.
    pub local_end: usize,
    /// Whether this segment performs the tile's k=0 iteration.
    pub starts_tile: bool,
    /// Whether this segment performs the tile's final iteration.
    pub ends_tile: bool,
}

impl TileSegment {
    /// Number of local iterations in this segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.local_end - self.local_begin
    }

    /// `true` when the segment is empty (never produced by
    /// [`CtaWork::segments`], but useful defensively).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.local_begin == self.local_end
    }

    /// `true` when this CTA covers the whole tile alone (the
    /// data-parallel case — no fixup needed).
    #[must_use]
    pub fn covers_whole_tile(&self) -> bool {
        self.starts_tile && self.ends_tile
    }
}

struct SegmentIter {
    iters_per_tile: usize,
    iter: usize,
    iter_end: usize,
}

impl Iterator for SegmentIter {
    type Item = TileSegment;

    fn next(&mut self) -> Option<TileSegment> {
        if self.iter >= self.iter_end {
            return None;
        }
        let ipt = self.iters_per_tile;
        let tile_idx = self.iter / ipt;
        let tile_first = tile_idx * ipt;
        let seg_end = self.iter_end.min(tile_first + ipt);
        let seg = TileSegment {
            tile_idx,
            local_begin: self.iter - tile_first,
            local_end: seg_end - tile_first,
            starts_tile: self.iter == tile_first,
            ends_tile: seg_end == tile_first + ipt,
        };
        self.iter = seg_end;
        Some(seg)
    }
}

/// The consolidation ("fixup") structure of one output tile: which CTA
/// owns the output and which CTAs contribute partial sums (§4).
///
/// The owner is the CTA that performed the tile's k=0 iteration; every
/// other covering CTA stores a partial-sum record and signals a flag,
/// and the owner waits on each peer before accumulating and writing
/// the final tile (Algorithm 5 lines 20-39).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileFixup {
    /// The output tile.
    pub tile_idx: usize,
    /// The CTA that starts the tile and writes the final output.
    pub owner: usize,
    /// CTAs contributing partial sums, in ascending id order. Empty in
    /// the data-parallel case. Because every strategy assigns
    /// iteration ranges in ascending CTA order, peers are exactly
    /// `owner+1 ..= owner+peers.len()`.
    pub peers: Vec<usize>,
}

impl TileFixup {
    /// Total CTAs covering this tile (owner + peers) — the
    /// `FixupPeers` quantity of the Appendix A.1 model.
    #[must_use]
    pub fn covering_ctas(&self) -> usize {
        1 + self.peers.len()
    }

    /// `true` when the tile needs no cross-CTA consolidation.
    #[must_use]
    pub fn is_data_parallel(&self) -> bool {
        self.peers.is_empty()
    }
}

/// Per-owner peer lists in one flat CSR table, indexed by CTA id.
///
/// Executors consult "who are CTA `i`'s fixup peers?" once per owner
/// segment; building that lookup by cloning each [`TileFixup`]'s peers
/// vector costs one heap allocation per split tile per launch. The
/// table stores all peer lists in two flat vectors instead (offsets +
/// concatenated ids) — two allocations per launch, borrowed slices
/// everywhere after.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerTable {
    /// `offsets[i]..offsets[i + 1]` indexes `peers` for owner `i`.
    offsets: Vec<usize>,
    /// All peer ids, concatenated in owner order, each list ascending.
    peers: Vec<usize>,
}

impl PeerTable {
    /// Builds the table for a grid of `grid` CTAs from its fixups.
    ///
    /// # Panics
    ///
    /// Panics if a fixup names an owner outside the grid.
    #[must_use]
    pub fn new(grid: usize, fixups: &[TileFixup]) -> Self {
        let mut counts = vec![0usize; grid + 1];
        for f in fixups {
            assert!(f.owner < grid, "fixup owner {} outside grid of {grid}", f.owner);
            counts[f.owner + 1] += f.peers.len();
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut peers = vec![0usize; counts[grid]];
        let mut cursor = counts.clone();
        for f in fixups {
            for &p in &f.peers {
                peers[cursor[f.owner]] = p;
                cursor[f.owner] += 1;
            }
        }
        Self { offsets: counts, peers }
    }

    /// The fixup peers of CTA `owner`, in ascending id order (empty
    /// for CTAs that own no split tile).
    ///
    /// # Panics
    ///
    /// Panics if `owner` is outside the grid.
    #[must_use]
    pub fn peers(&self, owner: usize) -> &[usize] {
        &self.peers[self.offsets[owner]..self.offsets[owner + 1]]
    }

    /// The grid size this table was built for.
    #[must_use]
    pub fn grid(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total peer entries across all owners.
    #[must_use]
    pub fn total_peers(&self) -> usize {
        self.peers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_types::{GemmShape, TileShape};

    fn space() -> IterSpace {
        // 9 tiles x 32 iters = 288 total (Figure 2b).
        IterSpace::new(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 4))
    }

    #[test]
    fn single_tile_segment() {
        let s = space();
        let cta = CtaWork { cta_id: 0, iter_begin: 32, iter_end: 64 };
        let segs: Vec<_> = cta.segments(&s).collect();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].tile_idx, 1);
        assert!(segs[0].starts_tile && segs[0].ends_tile);
        assert!(segs[0].covers_whole_tile());
    }

    #[test]
    fn cross_tile_segments() {
        let s = space();
        // Figure 2b, CTA 0: iterations [0, 72) = tile 0 fully + first
        // 40 of ... no: 72 = 32 + 32 + 8, so tiles 0, 1 fully and the
        // first 8 iterations of tile 2.
        let cta = CtaWork { cta_id: 0, iter_begin: 0, iter_end: 72 };
        let segs: Vec<_> = cta.segments(&s).collect();
        assert_eq!(segs.len(), 3);
        assert!(segs[0].covers_whole_tile());
        assert!(segs[1].covers_whole_tile());
        assert_eq!(segs[2].tile_idx, 2);
        assert_eq!((segs[2].local_begin, segs[2].local_end), (0, 8));
        assert!(segs[2].starts_tile);
        assert!(!segs[2].ends_tile);
    }

    #[test]
    fn mid_tile_start_segment() {
        let s = space();
        // Figure 2b, CTA 1: iterations [72, 144) — finishes tile 2
        // (local 8..32), covers tile 3, starts tile 4 (local 0..16).
        let cta = CtaWork { cta_id: 1, iter_begin: 72, iter_end: 144 };
        let segs: Vec<_> = cta.segments(&s).collect();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].tile_idx, 2);
        assert_eq!((segs[0].local_begin, segs[0].local_end), (8, 32));
        assert!(!segs[0].starts_tile);
        assert!(segs[0].ends_tile);
        assert_eq!(segs[1].tile_idx, 3);
        assert!(segs[1].covers_whole_tile());
        assert_eq!(segs[2].tile_idx, 4);
        assert_eq!((segs[2].local_begin, segs[2].local_end), (0, 16));
    }

    #[test]
    fn segments_partition_the_range() {
        let s = space();
        for (b, e) in [(0usize, 288usize), (5, 200), (31, 33), (100, 101), (0, 1)] {
            let cta = CtaWork { cta_id: 0, iter_begin: b, iter_end: e };
            let total: usize = cta.segments(&s).map(|seg| seg.len()).sum();
            assert_eq!(total, e - b, "range [{b},{e})");
        }
    }

    #[test]
    fn empty_cta_yields_no_segments() {
        let s = space();
        let cta = CtaWork { cta_id: 3, iter_begin: 100, iter_end: 100 };
        assert!(cta.is_empty());
        assert_eq!(cta.segments(&s).count(), 0);
    }

    #[test]
    fn fixup_counts() {
        let f = TileFixup { tile_idx: 0, owner: 2, peers: vec![3, 4] };
        assert_eq!(f.covering_ctas(), 3);
        assert!(!f.is_data_parallel());
        let dp = TileFixup { tile_idx: 1, owner: 0, peers: vec![] };
        assert!(dp.is_data_parallel());
    }

    #[test]
    fn peer_table_matches_fixups() {
        let fixups = vec![
            TileFixup { tile_idx: 0, owner: 0, peers: vec![1, 2] },
            TileFixup { tile_idx: 3, owner: 2, peers: vec![] },
            TileFixup { tile_idx: 5, owner: 4, peers: vec![5, 6, 7] },
        ];
        let table = PeerTable::new(8, &fixups);
        assert_eq!(table.grid(), 8);
        assert_eq!(table.total_peers(), 5);
        assert_eq!(table.peers(0), &[1, 2]);
        assert_eq!(table.peers(2), &[] as &[usize]);
        assert_eq!(table.peers(4), &[5, 6, 7]);
        for owner in [1, 3, 5, 6, 7] {
            assert!(table.peers(owner).is_empty(), "owner {owner}");
        }
    }

    #[test]
    fn peer_table_of_empty_grid() {
        let table = PeerTable::new(0, &[]);
        assert_eq!(table.grid(), 0);
        assert_eq!(table.total_peers(), 0);
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn peer_table_rejects_out_of_grid_owner() {
        let _ = PeerTable::new(2, &[TileFixup { tile_idx: 0, owner: 5, peers: vec![6] }]);
    }
}
