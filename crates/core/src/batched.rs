//! Batched GEMM — Stream-K for "other GEMM-like workloads" (§7).
//!
//! A batched GEMM computes `C_b = A_b · B_b` for `b ∈ [0, batch)`,
//! every instance sharing one shape. Deep-learning inference issues
//! these constantly (per-head attention products, grouped
//! convolutions lowered to GEMM), and small-instance batches suffer
//! exactly the quantization inefficiency the paper targets: each
//! instance's few output tiles quantize badly on a wide processor,
//! and per-instance kernel launches serialize.
//!
//! Stream-K generalizes directly: extend the m→n→k linearization with
//! an outermost batch axis — `batch → m → n → k` — and split the
//! aggregate iteration count evenly across one grid of CTAs that
//! crosses instance boundaries as freely as tile boundaries. All the
//! machinery (contiguous ranges, unique tile ownership, consecutive
//! fixup peers) carries over with *global* tile ids
//! `b · tiles_per_instance + tile`.

use crate::decomposition::balanced_ranges;
use crate::space::IterSpace;
use crate::work::{CtaWork, TileFixup};
use streamk_types::{GemmShape, TileShape};

/// The iteration space of a uniform batch of GEMMs.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedSpace {
    instance: IterSpace,
    batch: usize,
}

impl BatchedSpace {
    /// Builds the space for `batch` instances of `shape` blocked by
    /// `tile`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    #[must_use]
    pub fn new(batch: usize, shape: GemmShape, tile: TileShape) -> Self {
        assert!(batch > 0, "batch must be at least 1");
        Self { instance: IterSpace::new(shape, tile), batch }
    }

    /// The per-instance iteration space.
    #[must_use]
    pub fn instance(&self) -> &IterSpace {
        &self.instance
    }

    /// Number of GEMM instances.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Output tiles per instance.
    #[must_use]
    pub fn tiles_per_instance(&self) -> usize {
        self.instance.tiles()
    }

    /// Global output tiles: `batch · tiles_per_instance`.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.batch * self.instance.tiles()
    }

    /// MAC-loop iterations per tile (same for every instance).
    #[must_use]
    pub fn iters_per_tile(&self) -> usize {
        self.instance.iters_per_tile()
    }

    /// Aggregate MAC-loop iterations across the batch.
    #[must_use]
    pub fn total_iters(&self) -> usize {
        self.batch * self.instance.total_iters()
    }

    /// Splits a global tile id into `(instance, local tile)`.
    ///
    /// # Panics
    ///
    /// Panics if `global_tile` is out of range.
    #[inline]
    #[must_use]
    pub fn locate(&self, global_tile: usize) -> (usize, usize) {
        assert!(global_tile < self.tiles(), "tile {global_tile} out of range");
        (global_tile / self.instance.tiles(), global_tile % self.instance.tiles())
    }
}

/// A Stream-K (or degenerate data-parallel) decomposition of a
/// batched GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedDecomposition {
    space: BatchedSpace,
    ctas: Vec<CtaWork>,
    grid: usize,
}

impl BatchedDecomposition {
    /// Stream-K across the whole batch: `grid` CTAs, each receiving an
    /// even share (within one) of *all* instances' MAC-loop
    /// iterations.
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0`.
    #[must_use]
    pub fn stream_k(space: BatchedSpace, grid: usize) -> Self {
        let ctas = balanced_ranges(space.total_iters(), grid, 0, 0);
        Self { space, ctas, grid }
    }

    /// One CTA per global output tile — the batched data-parallel
    /// baseline (equivalent to Stream-K at `g = batch · t`).
    #[must_use]
    pub fn data_parallel(space: BatchedSpace) -> Self {
        let tiles = space.tiles();
        Self::stream_k(space, tiles)
    }

    /// The batched space.
    #[must_use]
    pub fn space(&self) -> &BatchedSpace {
        &self.space
    }

    /// Grid size.
    #[must_use]
    pub fn grid_size(&self) -> usize {
        self.grid
    }

    /// Per-CTA assignments over the global iteration space.
    #[must_use]
    pub fn ctas(&self) -> &[CtaWork] {
        &self.ctas
    }

    /// Consolidation structure over *global* tile ids, computed the
    /// same way as the single-instance
    /// [`Decomposition::fixups`](crate::Decomposition::fixups).
    #[must_use]
    pub fn fixups(&self) -> Vec<TileFixup> {
        let ipt = self.space.iters_per_tile();
        let mut by_tile: Vec<(Option<usize>, Vec<usize>)> = vec![(None, Vec::new()); self.space.tiles()];
        for cta in &self.ctas {
            let mut iter = cta.iter_begin;
            while iter < cta.iter_end {
                let tile = iter / ipt;
                let tile_first = tile * ipt;
                let seg_end = cta.iter_end.min(tile_first + ipt);
                if iter == tile_first {
                    by_tile[tile].0 = Some(cta.cta_id);
                } else {
                    by_tile[tile].1.push(cta.cta_id);
                }
                iter = seg_end;
            }
        }
        by_tile
            .into_iter()
            .enumerate()
            .map(|(tile_idx, (owner, peers))| TileFixup {
                tile_idx,
                owner: owner.unwrap_or_else(|| panic!("tile {tile_idx} has no owner")),
                peers,
            })
            .collect()
    }

    /// Structural validation: contiguous exact cover and dense ids.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let mut cursor = 0;
        for (i, cta) in self.ctas.iter().enumerate() {
            if cta.cta_id != i {
                return Err(format!("cta at position {i} has id {}", cta.cta_id));
            }
            if cta.iter_begin != cursor {
                return Err(format!("cta {i} begins at {} but coverage ended at {cursor}", cta.iter_begin));
            }
            cursor = cta.iter_end;
        }
        if cursor != self.space.total_iters() {
            return Err(format!("coverage ends at {cursor}, expected {}", self.space.total_iters()));
        }
        Ok(())
    }

    /// Iteration imbalance across non-empty CTAs (≤ 1 by
    /// construction).
    #[must_use]
    pub fn iter_imbalance(&self) -> usize {
        let max = self.ctas.iter().map(CtaWork::len).max().unwrap_or(0);
        let min = self.ctas.iter().map(CtaWork::len).filter(|&l| l > 0).min().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> BatchedSpace {
        // 8 instances of a 2x2-tile GEMM with 4 iters/tile:
        // 32 global tiles, 128 iterations.
        BatchedSpace::new(8, GemmShape::new(64, 64, 32), TileShape::new(32, 32, 8))
    }

    #[test]
    fn space_accounting() {
        let s = space();
        assert_eq!(s.tiles_per_instance(), 4);
        assert_eq!(s.tiles(), 32);
        assert_eq!(s.iters_per_tile(), 4);
        assert_eq!(s.total_iters(), 128);
    }

    #[test]
    fn locate_splits_global_ids() {
        let s = space();
        assert_eq!(s.locate(0), (0, 0));
        assert_eq!(s.locate(3), (0, 3));
        assert_eq!(s.locate(4), (1, 0));
        assert_eq!(s.locate(31), (7, 3));
    }

    #[test]
    fn stream_k_covers_whole_batch_evenly() {
        let d = BatchedDecomposition::stream_k(space(), 6);
        assert!(d.validate().is_ok());
        assert_eq!(d.grid_size(), 6);
        assert!(d.iter_imbalance() <= 1);
        let total: usize = d.ctas().iter().map(CtaWork::len).sum();
        assert_eq!(total, 128);
    }

    #[test]
    fn ctas_cross_instance_boundaries() {
        // 128 iterations over 6 CTAs: ~21.3 each; instance boundary at
        // every 16 iterations — CTAs necessarily straddle them.
        let d = BatchedDecomposition::stream_k(space(), 6);
        let straddles = d.ctas().iter().any(|c| {
            let first_instance = c.iter_begin / 16;
            let last_instance = (c.iter_end - 1) / 16;
            first_instance != last_instance
        });
        assert!(straddles, "no CTA crossed an instance boundary");
    }

    #[test]
    fn fixups_have_unique_owners_and_consecutive_peers() {
        let d = BatchedDecomposition::stream_k(space(), 7);
        let fixups = d.fixups();
        assert_eq!(fixups.len(), 32);
        for f in &fixups {
            for (i, &p) in f.peers.iter().enumerate() {
                assert_eq!(p, f.owner + i + 1);
            }
        }
    }

    #[test]
    fn data_parallel_is_one_cta_per_global_tile() {
        let d = BatchedDecomposition::data_parallel(space());
        assert_eq!(d.grid_size(), 32);
        assert!(d.fixups().iter().all(|f| f.is_data_parallel()));
    }

    #[test]
    fn single_instance_matches_unbatched_stream_k() {
        let shape = GemmShape::new(96, 96, 64);
        let tile = TileShape::new(32, 32, 16);
        let batched = BatchedDecomposition::stream_k(BatchedSpace::new(1, shape, tile), 5);
        let plain = crate::Decomposition::stream_k(shape, tile, 5);
        assert_eq!(batched.ctas(), plain.ctas());
    }

    #[test]
    #[should_panic(expected = "batch must be")]
    fn zero_batch_panics() {
        let _ = BatchedSpace::new(0, GemmShape::new(8, 8, 8), TileShape::new(8, 8, 8));
    }
}
