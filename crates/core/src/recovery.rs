//! Fault model and recovery arithmetic for the fixup protocol.
//!
//! Stream-K's correctness hangs on the cross-CTA `Signal`/`Wait`
//! consolidation of Algorithms 4-5: a tile-owning CTA blocks until
//! every contributing peer has published its partial record. On real
//! hardware (and on the CPU executor's thread pool) a peer can be
//! *slow* (straggler), *lost* (preempted and never re-dispatched), or
//! *corrupted* (its partial record fails validation — modeled as a
//! poisoned flag). This module provides the pieces every layer shares:
//!
//! - typed errors for protocol violations and execution failures
//!   ([`FixupError`], [`ExecutorError`]);
//! - the **recovery identity**: a peer's contribution to a tile is a
//!   closed-form function of its [`CtaWork`] descriptor, so the owner
//!   can *recompute* a missing peer's k-range instead of deadlocking
//!   ([`peer_contribution`]). Because the recomputation runs the same
//!   MAC loop over the same local iteration range, the recovered
//!   partial is bit-identical to what the peer would have produced,
//!   and the final output is bit-exact under every fault.

use crate::space::IterSpace;
use crate::work::{CtaWork, TileSegment};
use std::fmt;
use std::time::Duration;

/// A violation or failure of the `Signal`/`Wait` fixup protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixupError {
    /// A CTA signaled the same slot twice — a protocol violation
    /// (each CTA contributes partials to at most one tile).
    DoubleSignal {
        /// The offending CTA.
        cta: usize,
    },
    /// A CTA signaled a slot that was already poisoned; the poison is
    /// sticky and the late signal is rejected.
    SignalAfterPoison {
        /// The offending CTA.
        cta: usize,
    },
    /// A slot index outside the board's grid.
    SlotOutOfRange {
        /// The requested slot.
        cta: usize,
        /// The board's grid size.
        grid: usize,
    },
    /// A watchdog deadline expired while waiting on a peer's signal.
    WatchdogTimeout {
        /// The peer that never signaled.
        peer: usize,
        /// How long the owner waited.
        waited: Duration,
    },
    /// A peer's partial record was poisoned (lost or corrupted) and
    /// recovery was not enabled.
    PoisonedPartials {
        /// The poisoned peer.
        cta: usize,
    },
}

impl fmt::Display for FixupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixupError::DoubleSignal { cta } => write!(f, "CTA {cta} signaled twice"),
            FixupError::SignalAfterPoison { cta } => {
                write!(f, "CTA {cta} signaled a slot already poisoned")
            }
            FixupError::SlotOutOfRange { cta, grid } => {
                write!(f, "fixup slot {cta} out of range for grid of {grid}")
            }
            FixupError::WatchdogTimeout { peer, waited } => {
                write!(f, "watchdog expired after {waited:?} waiting for CTA {peer}")
            }
            FixupError::PoisonedPartials { cta } => {
                write!(f, "CTA {cta}'s partial record was poisoned")
            }
        }
    }
}

impl std::error::Error for FixupError {}

/// Why a grid execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutorError {
    /// An operand's dimensions don't match the decomposition's
    /// problem shape.
    ShapeMismatch {
        /// Which operand (`"op(A)"`, `"op(B)"`, `"C"`).
        operand: &'static str,
        /// The `rows x cols` the decomposition requires.
        expected: (usize, usize),
        /// The `rows x cols` actually supplied.
        got: (usize, usize),
    },
    /// The decomposition failed structural validation.
    InvalidDecomposition(
        /// The validator's message.
        String,
    ),
    /// The grid's fixup structure needs more co-resident CTAs than the
    /// executor has workers — running it would risk deadlock, so it is
    /// refused up front.
    InsufficientResidency {
        /// Co-resident CTAs the widest owner+peers group needs.
        needed: usize,
        /// Workers available.
        threads: usize,
    },
    /// The fixup protocol failed and recovery could not mask it.
    Fixup(FixupError),
}

impl fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorError::ShapeMismatch { operand, expected, got } => write!(
                f,
                "{operand} must be {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            ExecutorError::InvalidDecomposition(why) => write!(f, "invalid decomposition: {why}"),
            ExecutorError::InsufficientResidency { needed, threads } => write!(
                f,
                "decomposition needs {needed} co-resident CTAs but the executor has {threads} threads"
            ),
            ExecutorError::Fixup(e) => write!(f, "fixup protocol failure: {e}"),
        }
    }
}

impl std::error::Error for ExecutorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecutorError::Fixup(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FixupError> for ExecutorError {
    fn from(e: FixupError) -> Self {
        ExecutorError::Fixup(e)
    }
}

/// The [`TileSegment`] a peer CTA contributes to `tile_idx`, or
/// `None` if the CTA does not contribute partials to that tile.
///
/// This is the recovery identity: the segment depends only on the
/// peer's static [`CtaWork`] descriptor and the iteration space, so a
/// tile owner holding the grid's work descriptors can recompute a
/// lost peer's exact k-range without any communication. A CTA
/// *contributes* to a tile when it covers part of the tile but does
/// not start it (Algorithm 5: the k=0 CTA owns the tile and performs
/// the consolidation instead of storing partials).
#[must_use]
pub fn peer_contribution(peer: &CtaWork, space: &IterSpace, tile_idx: usize) -> Option<TileSegment> {
    peer.segments(space).find(|seg| seg.tile_idx == tile_idx && !seg.starts_tile)
}

/// The number of MAC-loop iterations the owner must re-execute to
/// reconstruct `peer`'s contribution to `tile_idx` (0 when the peer
/// contributes nothing).
#[must_use]
pub fn recompute_cost(peer: &CtaWork, space: &IterSpace, tile_idx: usize) -> usize {
    peer_contribution(peer, space, tile_idx).map_or(0, |seg| seg.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::Decomposition;
    use streamk_types::{GemmShape, TileShape};

    fn space() -> IterSpace {
        // 9 tiles x 32 iters, the Figure 2b space.
        IterSpace::new(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 4))
    }

    #[test]
    fn contribution_is_the_unowned_first_segment() {
        let s = space();
        // CTA 1 of the g=4 Stream-K launch: [72, 144) finishes tile 2.
        let cta = CtaWork { cta_id: 1, iter_begin: 72, iter_end: 144 };
        let seg = peer_contribution(&cta, &s, 2).expect("contributes to tile 2");
        assert_eq!((seg.local_begin, seg.local_end), (8, 32));
        assert!(!seg.starts_tile && seg.ends_tile);
        assert_eq!(recompute_cost(&cta, &s, 2), 24);
        // It owns tiles 3 and 4 — no contribution records there.
        assert!(peer_contribution(&cta, &s, 3).is_none());
        assert!(peer_contribution(&cta, &s, 4).is_none());
        assert_eq!(recompute_cost(&cta, &s, 3), 0);
    }

    #[test]
    fn contributions_reconstruct_every_fixup() {
        // For every split tile of several decompositions, the owner's
        // peers' recomputed ranges exactly tile the part of the tile
        // the owner didn't execute itself.
        let shape = GemmShape::new(96, 80, 640);
        let tile = TileShape::new(32, 32, 16);
        for decomp in [
            Decomposition::stream_k(shape, tile, 7),
            Decomposition::fixed_split(shape, tile, 3),
            Decomposition::two_tile_stream_k_dp(shape, tile, 4),
        ] {
            let space = decomp.space();
            let ctas = decomp.ctas();
            for fixup in decomp.fixups() {
                let covered: usize = fixup
                    .peers
                    .iter()
                    .map(|&p| recompute_cost(&ctas[p], space, fixup.tile_idx))
                    .sum();
                let owner_part: usize = ctas[fixup.owner]
                    .segments(space)
                    .filter(|seg| seg.tile_idx == fixup.tile_idx)
                    .map(|seg| seg.len())
                    .sum();
                assert_eq!(
                    covered + owner_part,
                    space.iters_per_tile(),
                    "tile {} of {}",
                    fixup.tile_idx,
                    decomp.strategy()
                );
            }
        }
    }

    #[test]
    fn errors_display_and_chain() {
        let e = FixupError::WatchdogTimeout { peer: 3, waited: Duration::from_millis(250) };
        assert!(e.to_string().contains("CTA 3"));
        let exec: ExecutorError = e.clone().into();
        assert!(exec.to_string().contains("fixup protocol failure"));
        assert_eq!(
            std::error::Error::source(&exec).map(std::string::ToString::to_string),
            Some(e.to_string())
        );
        let shape = ExecutorError::ShapeMismatch { operand: "op(A)", expected: (4, 8), got: (4, 7) };
        assert!(shape.to_string().contains("op(A) must be 4x8"));
        assert!(std::error::Error::source(&shape).is_none());
        assert!(FixupError::DoubleSignal { cta: 2 }.to_string().contains("twice"));
        assert!(FixupError::SlotOutOfRange { cta: 9, grid: 4 }.to_string().contains("out of range"));
        assert!(FixupError::SignalAfterPoison { cta: 1 }.to_string().contains("poisoned"));
        assert!(FixupError::PoisonedPartials { cta: 5 }.to_string().contains("poisoned"));
        assert!(ExecutorError::InsufficientResidency { needed: 8, threads: 2 }.to_string().contains("co-resident"));
        assert!(ExecutorError::InvalidDecomposition("gap".into()).to_string().contains("gap"));
    }
}
