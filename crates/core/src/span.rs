//! Span and phase vocabulary for measured executor timelines.
//!
//! The CPU executor's tracer (`streamk-cpu::trace`) records what each
//! worker was doing as typed spans; the profiler and the metrics
//! registry aggregate them per [`Phase`]. The vocabulary lives here —
//! next to the decomposition the events describe — so exporters,
//! reports, and tests across crates agree on names without string
//! matching.

/// What one traced worker event was doing.
///
/// Kinds mirror the stages of the paper's Stream-K kernel loop
/// (Algorithm 5 + §4): claiming a CTA's iteration range, packing
/// operand panels, the MAC loop itself, and the fixup protocol
/// (store/signal, wait, load-partials) — plus the executor's own
/// mechanisms (deferral, range stealing, fault recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// Claiming the next CTA from the worker's own range queue.
    Claim,
    /// Claiming a CTA stolen from another worker's range queue.
    Steal,
    /// One whole CTA execution (container for the spans below).
    Cta,
    /// A contiguous run of MAC-loop iterations on one tile segment.
    Mac,
    /// Packing operand panels into worker-private buffers.
    PackPrivate,
    /// Packing a grid-shared pack-cache panel on behalf of everyone.
    PackCached,
    /// `StorePartials` + `Signal`: publishing a partial to the owner.
    Signal,
    /// An owner stalled in `Wait` on an unfinished peer.
    Wait,
    /// `LoadPartials`: folding one signaled partial into the tile.
    LoadPartials,
    /// Parking a tile consolidation because a peer was still pending.
    DeferPark,
    /// Resuming and completing a parked consolidation (container).
    DeferResume,
    /// Recomputing a lost or poisoned peer's contribution.
    Recovery,
    /// A serve-layer request waiting in its admission lane before the
    /// first CTA claim (admit → first claim).
    QueueWait,
}

impl SpanKind {
    /// Every kind, in a fixed order usable for dense indexing.
    pub const ALL: [Self; 13] = [
        Self::Claim,
        Self::Steal,
        Self::Cta,
        Self::Mac,
        Self::PackPrivate,
        Self::PackCached,
        Self::Signal,
        Self::Wait,
        Self::LoadPartials,
        Self::DeferPark,
        Self::DeferResume,
        Self::Recovery,
        Self::QueueWait,
    ];

    /// Stable display name (also the event name in Chrome traces).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Claim => "claim",
            Self::Steal => "steal",
            Self::Cta => "cta",
            Self::Mac => "mac",
            Self::PackPrivate => "pack(private)",
            Self::PackCached => "pack(cached)",
            Self::Signal => "signal",
            Self::Wait => "wait",
            Self::LoadPartials => "load_partials",
            Self::DeferPark => "defer_park",
            Self::DeferResume => "defer_resume",
            Self::Recovery => "recovery",
            Self::QueueWait => "queue_wait",
        }
    }

    /// Position of `self` in [`SpanKind::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|k| *k == self).expect("every kind is in ALL")
    }

    /// The aggregation phase this kind belongs to.
    #[must_use]
    pub fn phase(self) -> Phase {
        match self {
            Self::Claim | Self::Steal | Self::DeferPark | Self::DeferResume => Phase::Schedule,
            Self::Cta | Self::Mac => Phase::Compute,
            Self::PackPrivate | Self::PackCached => Phase::Pack,
            Self::Signal | Self::LoadPartials => Phase::Fixup,
            Self::Wait => Phase::Stall,
            Self::Recovery => Phase::Recovery,
            Self::QueueWait => Phase::Queue,
        }
    }

    /// Whether spans of this kind *contain* other spans on the same
    /// worker ([`Cta`](Self::Cta) wraps a whole CTA;
    /// [`DeferResume`](Self::DeferResume) wraps the waits and folds of
    /// a resumed consolidation). Container durations overlap their
    /// children, so per-phase time breakdowns must sum leaf kinds only.
    #[must_use]
    pub fn is_container(self) -> bool {
        matches!(self, Self::Cta | Self::DeferResume)
    }
}

/// Coarse activity classes for per-phase time breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Claiming, stealing, and deferral bookkeeping.
    Schedule,
    /// MAC-loop iterations (useful flops).
    Compute,
    /// Operand panel packing, private or cache-shared.
    Pack,
    /// Fixup traffic: signaling and folding partials.
    Fixup,
    /// Owners stalled waiting on peers.
    Stall,
    /// Recomputing lost or poisoned contributions.
    Recovery,
    /// Serve-layer admission-lane waiting (request queued, not yet
    /// claimed by any worker).
    Queue,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Self; 7] = [
        Self::Compute,
        Self::Pack,
        Self::Fixup,
        Self::Stall,
        Self::Schedule,
        Self::Recovery,
        Self::Queue,
    ];

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Schedule => "schedule",
            Self::Compute => "compute",
            Self::Pack => "pack",
            Self::Fixup => "fixup",
            Self::Stall => "stall",
            Self::Recovery => "recovery",
            Self::Queue => "queue",
        }
    }

    /// Position of `self` in [`Phase::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|p| *p == self).expect("every phase is in ALL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_a_distinct_name_and_index() {
        let mut names: Vec<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SpanKind::ALL.len());
        for (i, k) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn containers_are_excluded_from_leaf_phases() {
        assert!(SpanKind::Cta.is_container());
        assert!(SpanKind::DeferResume.is_container());
        let leaves = SpanKind::ALL.iter().filter(|k| !k.is_container()).count();
        assert_eq!(leaves, SpanKind::ALL.len() - 2);
    }

    #[test]
    fn every_phase_is_reachable_from_some_kind() {
        for phase in Phase::ALL {
            assert!(
                SpanKind::ALL.iter().any(|k| k.phase() == phase),
                "phase {} unused",
                phase.name()
            );
            assert_eq!(Phase::ALL[phase.index()], phase);
        }
    }
}
