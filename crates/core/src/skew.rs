//! Tile-processing skew metrics.
//!
//! Basic Stream-K's workload balancing makes different CTAs begin
//! their first MAC-loop iteration at different k-offsets (§5.2). That
//! skew can defeat cross-CTA reuse of **A**/**B** fragments in the
//! GPU's cache: in the paper's Figure 3a example the four CTAs start
//! at k = 0, 32, 64 and 96 and stay 32 elements apart for the whole
//! computation. The hybrid schedules exist to bound this skew, and
//! these metrics quantify it for the ablation benches.

use crate::decomposition::Decomposition;

/// Skew statistics of one decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewReport {
    /// Each non-empty CTA's starting k-offset (in elements) within its
    /// first tile, in CTA order.
    pub start_k_offsets: Vec<usize>,
    /// Number of distinct starting offsets. 1 means perfectly aligned
    /// (pure data-parallel waves); larger values mean cache-unfriendly
    /// skew.
    pub distinct_offsets: usize,
    /// The largest pairwise difference between starting offsets, in
    /// k-axis elements.
    pub max_skew_elements: usize,
    /// Fraction of non-empty CTAs that begin exactly at a tile
    /// boundary (k = 0).
    pub aligned_fraction: f64,
}

/// Computes the skew of `decomp`'s schedule.
#[must_use]
pub fn skew_report(decomp: &Decomposition) -> SkewReport {
    let space = decomp.space();
    let blk_k = space.tile().blk_k;
    let start_k_offsets: Vec<usize> = decomp
        .ctas()
        .iter()
        .filter(|c| !c.is_empty())
        .map(|c| {
            let first = c
                .segments(space)
                .next()
                .expect("non-empty CTA has at least one segment");
            first.local_begin * blk_k
        })
        .collect();

    let mut distinct: Vec<usize> = start_k_offsets.clone();
    distinct.sort_unstable();
    distinct.dedup();

    let max_skew_elements = match (start_k_offsets.iter().max(), start_k_offsets.iter().min()) {
        (Some(&max), Some(&min)) => max - min,
        _ => 0,
    };
    let aligned = start_k_offsets.iter().filter(|&&o| o == 0).count();
    let total = start_k_offsets.len().max(1);

    SkewReport {
        distinct_offsets: distinct.len(),
        max_skew_elements,
        aligned_fraction: aligned as f64 / total as f64,
        start_k_offsets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_types::{GemmShape, TileShape};

    /// Figure 3a: 896×384×128 with 128×128×32 blocking, basic
    /// Stream-K g=4. 21 tiles × 4 iters = 84 iterations, 21 per CTA;
    /// CTAs start at local iterations 0, 1, 2, 3 → k-offsets 0, 32,
    /// 64, 96 — exactly the skew the paper describes.
    #[test]
    fn figure3a_skew_offsets() {
        let shape = GemmShape::new(896, 384, 128);
        let tile = TileShape::new(128, 128, 32);
        let d = Decomposition::stream_k(shape, tile, 4);
        let report = skew_report(&d);
        assert_eq!(report.start_k_offsets, vec![0, 32, 64, 96]);
        assert_eq!(report.distinct_offsets, 4);
        assert_eq!(report.max_skew_elements, 96);
        assert!((report.aligned_fraction - 0.25).abs() < 1e-12);
    }

    /// The two-tile hybrid bounds skew to the Stream-K region: its DP
    /// CTAs are all aligned.
    #[test]
    fn two_tile_hybrid_mostly_aligned() {
        let shape = GemmShape::new(896, 384, 128);
        let tile = TileShape::new(128, 128, 32);
        let basic = skew_report(&Decomposition::stream_k(shape, tile, 4));
        let hybrid = skew_report(&Decomposition::two_tile_stream_k_dp(shape, tile, 4));
        assert!(hybrid.aligned_fraction > basic.aligned_fraction);
        // 16 DP CTAs aligned + SK CTA 0 aligned = 17 of 20.
        assert!((hybrid.aligned_fraction - 17.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn data_parallel_has_no_skew() {
        let shape = GemmShape::new(896, 384, 128);
        let tile = TileShape::new(128, 128, 32);
        let report = skew_report(&Decomposition::data_parallel(shape, tile));
        assert_eq!(report.distinct_offsets, 1);
        assert_eq!(report.max_skew_elements, 0);
        assert_eq!(report.aligned_fraction, 1.0);
    }

    #[test]
    fn fixed_split_offsets_are_split_boundaries() {
        let shape = GemmShape::new(128, 128, 128);
        let tile = TileShape::new(128, 128, 32); // 1 tile, 4 iters
        let report = skew_report(&Decomposition::fixed_split(shape, tile, 2));
        assert_eq!(report.start_k_offsets, vec![0, 64]);
    }
}
