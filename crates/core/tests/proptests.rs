//! Property tests for the decomposition invariants.
//!
//! These are the load-bearing guarantees of the whole reproduction:
//! every strategy must assign every MAC-loop iteration exactly once,
//! tile ownership must be unique, and fixup peers must be consecutive
//! — otherwise the Algorithm 5 consolidation protocol (and everything
//! the simulator and CPU executor compute) is wrong.

use proptest::prelude::*;
use streamk_core::Decomposition;
use streamk_core::Strategy as Decomp;
use streamk_types::{GemmShape, TileShape};

/// Arbitrary problem shapes: small enough to keep iteration spaces
/// tractable, ragged on purpose (primes, off-by-ones).
fn shapes() -> impl proptest::strategy::Strategy<Value = GemmShape> {
    (1usize..600, 1usize..600, 1usize..600).prop_map(|(m, n, k)| GemmShape::new(m, n, k))
}

/// Arbitrary blocking factors, including degenerate 1-wide tiles.
fn tiles() -> impl proptest::strategy::Strategy<Value = TileShape> {
    (1usize..129, 1usize..129, 1usize..65).prop_map(|(m, n, k)| TileShape::new(m, n, k))
}

fn strategies() -> impl proptest::strategy::Strategy<Value = Decomp> {
    prop_oneof![
        Just(Decomp::DataParallel),
        (1usize..12).prop_map(|split| Decomp::FixedSplit { split }),
        (1usize..200).prop_map(|grid| Decomp::StreamK { grid }),
        (1usize..24).prop_map(|sms| Decomp::DpOneTileStreamK { sms }),
        (1usize..24).prop_map(|sms| Decomp::TwoTileStreamKDp { sms }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every strategy yields a structurally valid decomposition:
    /// contiguous exact cover, dense CTA ids, unique tile owners,
    /// consecutive peers, one partial store per CTA.
    #[test]
    fn every_strategy_validates(shape in shapes(), tile in tiles(), strategy in strategies()) {
        let d = Decomposition::from_strategy(shape, tile, strategy);
        prop_assert!(d.validate().is_ok(), "{strategy} on {shape}/{tile}: {:?}", d.validate());
    }

    /// Exact cover, independently recomputed: for every tile the
    /// per-CTA segments partition [0, iters_per_tile).
    #[test]
    fn segments_partition_every_tile(shape in shapes(), tile in tiles(), strategy in strategies()) {
        let d = Decomposition::from_strategy(shape, tile, strategy);
        let space = d.space();
        let ipt = space.iters_per_tile();
        let mut covered = vec![0usize; space.tiles()];
        for cta in d.ctas() {
            for seg in cta.segments(space) {
                covered[seg.tile_idx] += seg.len();
            }
        }
        for (t, &c) in covered.iter().enumerate() {
            prop_assert_eq!(c, ipt, "tile {} covered {} of {}", t, c, ipt);
        }
    }

    /// Stream-K's headline guarantee: an even share within one
    /// iteration, for every grid size.
    #[test]
    fn stream_k_imbalance_at_most_one(shape in shapes(), tile in tiles(), grid in 1usize..300) {
        let d = Decomposition::stream_k(shape, tile, grid);
        prop_assert!(d.iter_imbalance() <= 1);
    }

    /// §4 generalization: Stream-K at g = t is exactly data-parallel.
    #[test]
    fn stream_k_at_tile_count_is_data_parallel(shape in shapes(), tile in tiles()) {
        let t = tile.output_tiles(shape);
        let sk = Decomposition::stream_k(shape, tile, t);
        let dp = Decomposition::data_parallel(shape, tile);
        prop_assert_eq!(sk.ctas(), dp.ctas());
    }

    /// §4 generalization: Stream-K at g = s·t equals fixed-split
    /// whenever s divides the per-tile iteration count (we construct k
    /// as blk_k · split · j so divisibility always holds).
    #[test]
    fn stream_k_at_multiple_is_fixed_split(shape in shapes(), tile in tiles(), split in 1usize..9, j in 1usize..6) {
        let shape = GemmShape::new(shape.m, shape.n, tile.blk_k * split * j);
        let t = tile.output_tiles(shape);
        let sk = Decomposition::stream_k(shape, tile, t * split);
        let fs = Decomposition::fixed_split(shape, tile, split);
        prop_assert_eq!(sk.ctas(), fs.ctas());
    }

    /// Stream-K's seam count is bounded by the grid size, never the
    /// tile count (§7: overheads scale with processor width).
    #[test]
    fn stream_k_seams_bounded_by_grid(shape in shapes(), tile in tiles(), grid in 1usize..200) {
        let d = Decomposition::stream_k(shape, tile, grid);
        prop_assert!(d.split_tiles() < grid.max(1) + 1);
    }

    /// The two-tile hybrid's Stream-K CTAs receive at least one and
    /// fewer than two tiles' worth of iterations whenever it doesn't
    /// degenerate (w ≥ 1, r > 0).
    #[test]
    fn two_tile_hybrid_share_bounds(shape in shapes(), tile in tiles(), sms in 1usize..24) {
        let t = tile.output_tiles(shape);
        let ipt = tile.iters_per_tile(shape);
        prop_assume!(t >= sms && !t.is_multiple_of(sms));
        let d = Decomposition::two_tile_stream_k_dp(shape, tile, sms);
        for cta in &d.ctas()[..sms] {
            prop_assert!(cta.len() >= ipt, "SK CTA below one tile: {} < {}", cta.len(), ipt);
            prop_assert!(cta.len() <= 2 * ipt, "SK CTA above two tiles: {} > {}", cta.len(), 2 * ipt);
            // The strict "fewer than two tiles" property needs enough
            // iterations per tile to absorb the ceiling (ipt ≥ p).
            if ipt >= sms {
                prop_assert!(cta.len() < 2 * ipt, "SK CTA at two tiles: {} >= {}", cta.len(), 2 * ipt);
            }
        }
        // And every DP CTA gets exactly one tile.
        for cta in &d.ctas()[sms..] {
            prop_assert_eq!(cta.len(), ipt);
        }
    }

    /// Hybrid fixup depth: with at least two full waves, every tile in
    /// the two-tile schedule is covered by at most two CTAs (§5.2).
    #[test]
    fn two_tile_hybrid_at_most_one_peer(shape in shapes(), tile in tiles(), sms in 1usize..24) {
        let t = tile.output_tiles(shape);
        prop_assume!(t >= 2 * sms && !t.is_multiple_of(sms));
        let d = Decomposition::two_tile_stream_k_dp(shape, tile, sms);
        for f in d.fixups() {
            prop_assert!(f.covering_ctas() <= 2, "tile {} covered by {}", f.tile_idx, f.covering_ctas());
        }
    }

    /// The owner of every tile is the CTA covering its first
    /// iteration, and owners are strictly increasing across tiles.
    #[test]
    fn owners_are_monotone(shape in shapes(), tile in tiles(), strategy in strategies()) {
        let d = Decomposition::from_strategy(shape, tile, strategy);
        let fixups = d.fixups();
        for pair in fixups.windows(2) {
            prop_assert!(pair[0].owner <= pair[1].owner);
        }
    }
}
