//! Kernel ensembles and selection baselines.
//!
//! The paper compares its single-kernel Stream-K against three
//! tile-centric alternatives (§6 "Methodology"):
//!
//! 1. the default *data-parallel* CUTLASS kernel at the same blocking
//!    factor ([`runners::run_dp_single`]);
//! 2. the cuBLAS ensemble, whose trained heuristics choose among many
//!    pre-compiled kernels — reproduced here as a rule-based
//!    [`HeuristicSelector`] over the same ensemble (imperfect by
//!    construction, as the paper observes of cuBLAS);
//! 3. an idealized [`Oracle`] that always picks the
//!    highest-performing *data-parallel* blocking factor for each
//!    problem.
//!
//! The ensembles themselves ([`TileEnsemble`]) are the paper's
//! published CUTLASS specialization lists, with per-configuration
//! sustained-efficiency ceilings: smaller blockings expose fewer
//! instructions for latency hiding and a higher memory-op proportion,
//! so they cannot reach peak (§3.2).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod heuristic;
pub mod oracle;
pub mod runners;
pub mod tiles;

pub use heuristic::HeuristicSelector;
pub use oracle::Oracle;
pub use tiles::{TileConfig, TileEnsemble};
