//! One-call runners for the four contenders of the paper's
//! evaluation.
//!
//! Every table and figure in §6 compares the same four
//! implementations on a problem; these helpers make that comparison a
//! four-line affair for the bench harness.

use crate::heuristic::HeuristicSelector;
use crate::oracle::Oracle;
use crate::tiles::TileEnsemble;
use streamk_core::{CostModel, Decomposition, GridSizeModel};
use streamk_sim::{simulate_with_efficiency, GpuSpec, SimReport};
use streamk_types::{GemmShape, Precision};

/// The paper's Stream-K contender: the single default blocking factor
/// per precision, the two-tile hybrid schedule for tile-rich
/// problems, and the Appendix A.1 model-selected grid in the
/// strong-scaling regime (§5).
#[must_use]
pub fn run_stream_k(shape: GemmShape, precision: Precision, gpu: &GpuSpec) -> SimReport {
    let config = TileEnsemble::streamk_config(precision);
    let model = GridSizeModel::new(CostModel::for_precision(precision), gpu.sms);
    let decomp = model.decompose(shape, config.tile);
    simulate_with_efficiency(&decomp, gpu, precision, config.mac_efficiency)
}

/// Contender 1: the default data-parallel kernel of the same blocking
/// factor as Stream-K.
#[must_use]
pub fn run_dp_single(shape: GemmShape, precision: Precision, gpu: &GpuSpec) -> SimReport {
    let config = TileEnsemble::streamk_config(precision);
    let decomp = Decomposition::data_parallel(shape, config.tile);
    simulate_with_efficiency(&decomp, gpu, precision, config.mac_efficiency)
}

/// Contender 2: the cuBLAS-like heuristic ensemble.
#[must_use]
pub fn run_heuristic(shape: GemmShape, precision: Precision, gpu: &GpuSpec) -> SimReport {
    let selector = HeuristicSelector::new(TileEnsemble::for_precision(precision), gpu.sms);
    let (config, decomp) = selector.decompose(shape);
    simulate_with_efficiency(&decomp, gpu, precision, config.mac_efficiency)
}

/// Contender 3: the idealized data-parallel oracle.
#[must_use]
pub fn run_oracle(shape: GemmShape, precision: Precision, gpu: &GpuSpec) -> SimReport {
    let (_, report) = Oracle::new(TileEnsemble::for_precision(precision)).select(shape, gpu);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's headline strong-scaling case (Figure 9 / the "up
    /// to 14×" claims come from small-m×n, large-k shapes): Stream-K
    /// must crush single-blocking data-parallel there.
    #[test]
    fn stream_k_dominates_dp_on_strong_scaling_shapes() {
        let gpu = GpuSpec::a100();
        let shape = GemmShape::new(128, 128, 16384);
        let sk = run_stream_k(shape, Precision::Fp16To32, &gpu);
        let dp = run_dp_single(shape, Precision::Fp16To32, &gpu);
        let speedup = sk.speedup_over(&dp);
        // The paper measures up to 14.7× on hardware; the analytic
        // cost model (serial fixup, d ≈ 8c per Figure 8c) bounds the
        // achievable ratio near 4× at corpus-scale k. Direction and
        // regime match; magnitude compresses (see EXPERIMENTS.md).
        assert!(speedup > 3.0, "speedup = {speedup:.2}");
    }

    /// On huge well-quantized problems everybody is near peak and
    /// Stream-K neither wins nor loses much.
    #[test]
    fn contenders_converge_on_large_cubes() {
        let gpu = GpuSpec::a100();
        let shape = GemmShape::new(8192, 8192, 4096);
        let sk = run_stream_k(shape, Precision::Fp16To32, &gpu);
        let oracle = run_oracle(shape, Precision::Fp16To32, &gpu);
        let ratio = sk.speedup_over(&oracle);
        assert!((0.9..1.2).contains(&ratio), "ratio = {ratio:.3}");
    }

    /// The oracle never loses to the single DP kernel (it can always
    /// pick it... the same blocking is in both ensembles).
    #[test]
    fn oracle_at_least_matches_dp_single() {
        let gpu = GpuSpec::a100();
        for (m, n, k) in [(384, 384, 384), (1024, 1024, 1024), (200, 3000, 500)] {
            let shape = GemmShape::new(m, n, k);
            for p in Precision::ALL {
                let dp = run_dp_single(shape, p, &gpu);
                let oracle = run_oracle(shape, p, &gpu);
                assert!(
                    oracle.makespan <= dp.makespan * 1.0001,
                    "{shape} {p}: oracle {} vs dp {}",
                    oracle.makespan,
                    dp.makespan
                );
            }
        }
    }

    /// Stream-K vs the oracle on a quantization-hostile shape: the
    /// oracle's best tiling still wastes most of a wave; Stream-K
    /// doesn't.
    #[test]
    fn stream_k_beats_oracle_on_hostile_quantization() {
        let gpu = GpuSpec::a100();
        // 109 tiles at 128×128 → two waves, second 1/108 full; smaller
        // blockings quantize badly too (109·4 = 436 = 4·108 + 4).
        let shape = GemmShape::new(109 * 128, 128, 8192);
        let sk = run_stream_k(shape, Precision::Fp16To32, &gpu);
        let oracle = run_oracle(shape, Precision::Fp16To32, &gpu);
        assert!(sk.speedup_over(&oracle) > 1.2, "speedup = {:.3}", sk.speedup_over(&oracle));
    }
}
