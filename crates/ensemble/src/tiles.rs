//! The paper's published tile-configuration ensembles.

use streamk_types::{Precision, TileShape};

/// One kernel specialization: a blocking factor plus the fraction of
/// peak throughput it can sustain on large volumes.
///
/// Efficiency ceilings are a property of the blocking factor on a
/// given architecture (§3.2, §5.1): below the paper's chosen defaults
/// (64×64×16 FP64, 128×128×32 FP16→32 — "the smallest CTA-wide tile
/// size capable of achieving 99% of the GPU's peak") each halving of
/// tile area costs substantial sustained throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileConfig {
    /// The blocking factor.
    pub tile: TileShape,
    /// Sustained fraction of peak in `(0, 1]`.
    pub mac_efficiency: f64,
}

/// An ordered set of kernel specializations for one precision,
/// largest blocking first.
#[derive(Debug, Clone, PartialEq)]
pub struct TileEnsemble {
    /// The precision these kernels serve.
    pub precision: Precision,
    /// Member configurations, largest (most efficient) first.
    pub configs: Vec<TileConfig>,
}

impl TileEnsemble {
    /// The paper's FP64 oracle ensemble (§6 "Methodology"):
    /// {32×32×16, 32×64×16, 64×64×16, 64×128×16, 128×128×16}.
    #[must_use]
    pub fn fp64() -> Self {
        TileEnsemble {
            precision: Precision::Fp64,
            configs: vec![
                TileConfig { tile: TileShape::new(128, 128, 16), mac_efficiency: 0.99 },
                TileConfig { tile: TileShape::new(64, 128, 16), mac_efficiency: 0.99 },
                TileConfig { tile: TileShape::new(64, 64, 16), mac_efficiency: 0.99 },
                TileConfig { tile: TileShape::new(32, 64, 16), mac_efficiency: 0.70 },
                TileConfig { tile: TileShape::new(32, 32, 16), mac_efficiency: 0.50 },
            ],
        }
    }

    /// The paper's FP16→32 oracle ensemble (§6 "Methodology"):
    /// {64×64×64, 64×128×32, 128×128×32, 128×256×32}.
    #[must_use]
    pub fn fp16t32() -> Self {
        TileEnsemble {
            precision: Precision::Fp16To32,
            configs: vec![
                TileConfig { tile: TileShape::new(128, 256, 32), mac_efficiency: 0.99 },
                TileConfig { tile: TileShape::new(128, 128, 32), mac_efficiency: 0.99 },
                TileConfig { tile: TileShape::new(64, 128, 32), mac_efficiency: 0.55 },
                TileConfig { tile: TileShape::new(64, 64, 64), mac_efficiency: 0.40 },
            ],
        }
    }

    /// The ensemble for `precision`.
    #[must_use]
    pub fn for_precision(precision: Precision) -> Self {
        match precision {
            Precision::Fp64 => Self::fp64(),
            Precision::Fp16To32 => Self::fp16t32(),
        }
    }

    /// The single-kernel Stream-K configuration for `precision`: the
    /// paper's default blocking at its 99% efficiency.
    #[must_use]
    pub fn streamk_config(precision: Precision) -> TileConfig {
        TileConfig { tile: TileShape::streamk_default(precision), mac_efficiency: 0.99 }
    }

    /// Number of member kernels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// `true` if the ensemble is empty (never true for the presets).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp64_ensemble_matches_paper_list() {
        let e = TileEnsemble::fp64();
        assert_eq!(e.len(), 5);
        let tiles: Vec<_> = e.configs.iter().map(|c| c.tile).collect();
        assert!(tiles.contains(&TileShape::new(32, 32, 16)));
        assert!(tiles.contains(&TileShape::new(32, 64, 16)));
        assert!(tiles.contains(&TileShape::new(64, 64, 16)));
        assert!(tiles.contains(&TileShape::new(64, 128, 16)));
        assert!(tiles.contains(&TileShape::new(128, 128, 16)));
    }

    #[test]
    fn fp16_ensemble_matches_paper_list() {
        let e = TileEnsemble::fp16t32();
        assert_eq!(e.len(), 4);
        let tiles: Vec<_> = e.configs.iter().map(|c| c.tile).collect();
        assert!(tiles.contains(&TileShape::new(64, 64, 64)));
        assert!(tiles.contains(&TileShape::new(64, 128, 32)));
        assert!(tiles.contains(&TileShape::new(128, 128, 32)));
        assert!(tiles.contains(&TileShape::new(128, 256, 32)));
    }

    #[test]
    fn ensembles_ordered_largest_first() {
        for e in [TileEnsemble::fp64(), TileEnsemble::fp16t32()] {
            for pair in e.configs.windows(2) {
                assert!(pair[0].tile.tile_elements() >= pair[1].tile.tile_elements());
            }
        }
    }

    #[test]
    fn paper_default_is_smallest_at_99() {
        for p in Precision::ALL {
            let e = TileEnsemble::for_precision(p);
            let default = TileShape::streamk_default(p);
            let at_99: Vec<_> = e.configs.iter().filter(|c| c.mac_efficiency >= 0.99).collect();
            let smallest_99 = at_99.iter().min_by_key(|c| c.tile.tile_elements()).unwrap();
            assert_eq!(smallest_99.tile, default, "{p}");
        }
    }

    #[test]
    fn efficiencies_are_valid_fractions() {
        for e in [TileEnsemble::fp64(), TileEnsemble::fp16t32()] {
            for c in &e.configs {
                assert!(c.mac_efficiency > 0.0 && c.mac_efficiency <= 1.0);
            }
        }
    }
}
