//! A cuBLAS-like rule-based kernel selector.
//!
//! cuBLAS dispatches each GEMM to one of many pre-compiled kernels
//! using trained heuristics. Those heuristics are good on average but
//! — as the paper's Figures 5b/6b show — they mis-select on a long
//! tail of shapes, exhibiting "substantially wider dynamic ranges
//! than the idealized data-parallel CUTLASS oracle" despite choosing
//! from the same blocking factors.
//!
//! This selector reproduces that behaviour class honestly: hand-coded
//! rules in the spirit of the MAGMA/cuBLAS size-threshold heuristics
//! (§2). They are deliberately *static* — based on occupancy targets
//! and output extents, blind to the exact wave quantization and to
//! interactions with the k-extent — which is precisely where such
//! rules go wrong in practice.

use crate::tiles::{TileConfig, TileEnsemble};
use streamk_core::{Decomposition, Strategy};
use streamk_types::GemmShape;

/// A rule-based selector over a tile ensemble, standing in for the
/// cuBLAS kernel-selection heuristics.
///
/// ```
/// use streamk_ensemble::{HeuristicSelector, TileEnsemble};
/// use streamk_types::GemmShape;
///
/// let selector = HeuristicSelector::new(TileEnsemble::fp16t32(), 108);
/// let (config, decomp) = selector.decompose(GemmShape::new(8192, 8192, 1024));
/// assert_eq!(config.tile.to_string(), "128x256x32"); // big problem, big tile
/// assert!(decomp.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct HeuristicSelector {
    ensemble: TileEnsemble,
    /// Processor cores the rules target for occupancy.
    sms: usize,
}

impl HeuristicSelector {
    /// Builds a selector over `ensemble` targeting a `sms`-core
    /// processor.
    ///
    /// # Panics
    ///
    /// Panics on an empty ensemble or `sms == 0`.
    #[must_use]
    pub fn new(ensemble: TileEnsemble, sms: usize) -> Self {
        assert!(!ensemble.is_empty(), "selector needs at least one kernel");
        assert!(sms > 0, "sms must be at least 1");
        Self { ensemble, sms }
    }

    /// The underlying ensemble.
    #[must_use]
    pub fn ensemble(&self) -> &TileEnsemble {
        &self.ensemble
    }

    /// Applies the selection rules to `shape`, returning the chosen
    /// configuration and decomposition strategy.
    ///
    /// Rules (in order):
    /// 1. Prefer the largest (most efficient) blocking whose output
    ///    tiling oversubscribes the processor by at least 2 waves —
    ///    the classic "enough tiles to balance" rule.
    /// 2. Failing that, prefer the largest blocking that at least
    ///    fills one wave.
    /// 3. Failing that (strong-scaling regime), take the *smallest*
    ///    blocking, and if it still can't fill the processor, apply a
    ///    power-of-two fixed-split chosen to approach one CTA per
    ///    core — cuBLAS's split-k kernels.
    #[must_use]
    pub fn select(&self, shape: GemmShape) -> (TileConfig, Strategy) {
        // Rule 1: 2-wave oversubscription with the biggest tile.
        for &config in &self.ensemble.configs {
            if config.tile.output_tiles(shape) >= 2 * self.sms {
                return (config, Strategy::DataParallel);
            }
        }
        // Rule 2: at least one full wave.
        for &config in &self.ensemble.configs {
            if config.tile.output_tiles(shape) >= self.sms {
                return (config, Strategy::DataParallel);
            }
        }
        // Rule 3: strong scaling with the smallest blocking.
        let config = *self.ensemble.configs.last().expect("non-empty ensemble");
        let tiles = config.tile.output_tiles(shape);
        let iters_per_tile = config.tile.iters_per_tile(shape);
        let mut split = 1usize;
        while tiles * split * 2 <= self.sms && split * 2 <= iters_per_tile {
            split *= 2;
        }
        let strategy = if split > 1 { Strategy::FixedSplit { split } } else { Strategy::DataParallel };
        (config, strategy)
    }

    /// Builds the decomposition the rules select for `shape`.
    #[must_use]
    pub fn decompose(&self, shape: GemmShape) -> (TileConfig, Decomposition) {
        let (config, strategy) = self.select(shape);
        (config, Decomposition::from_strategy(shape, config.tile, strategy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_types::TileShape;

    fn selector() -> HeuristicSelector {
        HeuristicSelector::new(TileEnsemble::fp16t32(), 108)
    }

    #[test]
    fn big_problems_get_big_tiles() {
        let (config, strategy) = selector().select(GemmShape::new(8192, 8192, 1024));
        assert_eq!(config.tile, TileShape::new(128, 256, 32));
        assert_eq!(strategy, Strategy::DataParallel);
    }

    #[test]
    fn mid_problems_step_down_the_ensemble() {
        // 1024×1024: 128×256 gives 32 tiles (< 108), 128×128 gives 64,
        // 64×128 gives 128 (≥ 108 but < 216), 64×64 gives 256 (≥ 216).
        let (config, strategy) = selector().select(GemmShape::new(1024, 1024, 1024));
        assert_eq!(config.tile, TileShape::new(64, 64, 64));
        assert_eq!(strategy, Strategy::DataParallel);
    }

    #[test]
    fn strong_scaling_gets_fixed_split() {
        // One 64×64 tile, enormous k: rule 3 with a deep split.
        let (config, strategy) = selector().select(GemmShape::new(64, 64, 16384));
        assert_eq!(config.tile, TileShape::new(64, 64, 64));
        match strategy {
            Strategy::FixedSplit { split } => {
                assert!(split >= 16, "split = {split}");
                assert!(split.is_power_of_two());
            }
            other => panic!("expected fixed-split, got {other}"),
        }
    }

    #[test]
    fn split_never_exceeds_iteration_count() {
        // k = 256 at BLK_K 64 → only 4 iterations per tile: split ≤ 4.
        let (config, strategy) = selector().select(GemmShape::new(64, 64, 256));
        assert_eq!(config.tile.blk_k, 64);
        if let Strategy::FixedSplit { split } = strategy {
            assert!(split <= 4);
        }
    }

    #[test]
    fn decompose_is_always_valid() {
        let s = selector();
        for (m, n, k) in [(128, 128, 128), (8192, 128, 8192), (333, 777, 1111), (64, 64, 8192)] {
            let (_, d) = s.decompose(GemmShape::new(m, n, k));
            assert!(d.validate().is_ok(), "{m}x{n}x{k}");
        }
    }

    /// The defining weakness: the rules are blind to wave
    /// quantization. A shape that produces 2·sms + 1 tiles at the
    /// biggest blocking passes rule 1 and eats a nearly empty third
    /// wave — the oracle would have stepped down.
    #[test]
    fn heuristic_accepts_bad_quantization() {
        let s = HeuristicSelector::new(TileEnsemble::fp16t32(), 108);
        // 217 tiles of 128×256 → 31×7: m = 31·128 = 3968, n = 7·256 = 1792.
        let shape = GemmShape::new(3968, 1792, 1024);
        let (config, _) = s.select(shape);
        assert_eq!(config.tile, TileShape::new(128, 256, 32));
        let tiles = config.tile.output_tiles(shape);
        assert_eq!(tiles, 217);
        // Third wave is 1/108 full: utilization ceiling 217/324 ≈ 67%.
        assert!(streamk_types::quantization_efficiency(tiles, 108) < 0.70);
    }
}
