//! The idealized kernel-selection oracle.

use crate::tiles::{TileConfig, TileEnsemble};
use streamk_core::Decomposition;
use streamk_sim::{simulate_with_efficiency, GpuSpec, SimReport};
use streamk_types::GemmShape;

/// An oracle that "will always select the highest performing
/// *data-parallel* CUTLASS blocking factor to execute for a given
/// GEMM instance" (§6 "Methodology") — implemented literally: run
/// every ensemble member, keep the fastest.
///
/// This is the strongest possible tile-centric baseline; anything the
/// oracle still loses to Stream-K is a utilization level "simply not
/// possible from tile-centric work decompositions".
#[derive(Debug, Clone)]
pub struct Oracle {
    ensemble: TileEnsemble,
}

impl Oracle {
    /// Builds an oracle over `ensemble`.
    ///
    /// # Panics
    ///
    /// Panics on an empty ensemble.
    #[must_use]
    pub fn new(ensemble: TileEnsemble) -> Self {
        assert!(!ensemble.is_empty(), "oracle needs at least one kernel");
        Self { ensemble }
    }

    /// The underlying ensemble.
    #[must_use]
    pub fn ensemble(&self) -> &TileEnsemble {
        &self.ensemble
    }

    /// Simulates every member on `shape` and returns the fastest
    /// (configuration, report) pair.
    #[must_use]
    pub fn select(&self, shape: GemmShape, gpu: &GpuSpec) -> (TileConfig, SimReport) {
        self.ensemble
            .configs
            .iter()
            .map(|&config| {
                let d = Decomposition::data_parallel(shape, config.tile);
                let report = simulate_with_efficiency(&d, gpu, self.ensemble.precision, config.mac_efficiency);
                (config, report)
            })
            .min_by(|a, b| a.1.makespan.total_cmp(&b.1.makespan))
            .expect("non-empty ensemble")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_types::{Precision, TileShape};

    #[test]
    fn oracle_picks_big_tiles_for_big_cubes() {
        // A huge, perfectly divisible cube: the most efficient large
        // blocking should win.
        let oracle = Oracle::new(TileEnsemble::fp16t32());
        let (config, report) = oracle.select(GemmShape::new(8192, 8192, 8192), &GpuSpec::a100());
        assert!(config.mac_efficiency >= 0.99);
        assert!(report.utilization() > 0.8, "{}", report.utilization());
    }

    #[test]
    fn oracle_avoids_padding_waste_on_small_m() {
        // m = 32: a 128-row tile would waste 75% of its compute on
        // padding; the oracle must pick a 32-row blocking.
        let oracle = Oracle::new(TileEnsemble::fp64());
        let (config, _) = oracle.select(GemmShape::new(32, 8192, 4096), &GpuSpec::a100());
        assert_eq!(config.tile.blk_m, 32, "picked {}", config.tile);
    }

    #[test]
    fn oracle_beats_or_matches_every_member() {
        let oracle = Oracle::new(TileEnsemble::fp64());
        let gpu = GpuSpec::a100();
        for shape in [
            GemmShape::new(384, 384, 384),
            GemmShape::new(1000, 700, 300),
            GemmShape::new(130, 130, 8000),
        ] {
            let (_, best) = oracle.select(shape, &gpu);
            for &config in &oracle.ensemble().configs {
                let d = Decomposition::data_parallel(shape, config.tile);
                let r = simulate_with_efficiency(&d, &gpu, Precision::Fp64, config.mac_efficiency);
                assert!(best.makespan <= r.makespan + 1e-15, "{shape} {}", config.tile);
            }
        }
    }

    #[test]
    fn oracle_prefers_quantization_over_raw_efficiency_when_it_pays() {
        // 9 tiles of 128x128 on 4 SMs is the Figure 1 problem: the
        // oracle (given only two configs) must choose the one with the
        // better end-to-end time, which on an ideal GPU is the
        // better-quantizing smaller tile despite lower efficiency.
        let ensemble = TileEnsemble {
            precision: Precision::Fp64,
            configs: vec![
                TileConfig { tile: TileShape::new(128, 128, 16), mac_efficiency: 0.99 },
                TileConfig { tile: TileShape::new(128, 64, 16), mac_efficiency: 0.90 },
            ],
        };
        let oracle = Oracle::new(ensemble);
        let (config, _) = oracle.select(GemmShape::new(384, 384, 128), &GpuSpec::hypothetical_4sm());
        // 75% ceiling at 0.99 eff (≈0.74 effective) loses to 90%
        // ceiling at 0.90 eff (≈0.81 effective).
        assert_eq!(config.tile, TileShape::new(128, 64, 16));
    }
}
