//! MAGMA-style ensemble distillation.
//!
//! §2: MAGMA "evaluated these variants to distill a small ensemble of
//! typically three to five kernels that collectively perform well
//! across a diversity of problem shapes". This module reproduces that
//! process with greedy forward selection: starting from nothing,
//! repeatedly add the candidate configuration that most improves the
//! training corpus's geometric-mean best-of-ensemble runtime.

use crate::space::{candidate_tiles, estimated_efficiency};
use streamk_core::Decomposition;
use streamk_ensemble::{TileConfig, TileEnsemble};
use streamk_sim::{simulate_with_efficiency, GpuSpec};
use streamk_types::{GemmShape, Precision};

/// Distills an ensemble of at most `size` data-parallel kernel
/// configurations from the candidate space, trained on `corpus`.
///
/// Returns the ensemble ordered by selection (first pick = best
/// single configuration).
///
/// # Panics
///
/// Panics if `corpus` is empty or `size == 0`.
#[must_use]
pub fn distill_ensemble(
    corpus: &[GemmShape],
    precision: Precision,
    gpu: &GpuSpec,
    size: usize,
) -> TileEnsemble {
    assert!(!corpus.is_empty(), "training corpus must be non-empty");
    assert!(size > 0, "ensemble size must be at least 1");

    // Precompute the full (candidate × shape) runtime matrix.
    let candidates: Vec<TileConfig> = candidate_tiles(precision)
        .into_iter()
        .map(|tile| TileConfig { tile, mac_efficiency: estimated_efficiency(tile, precision) })
        .collect();
    let runtimes: Vec<Vec<f64>> = candidates
        .iter()
        .map(|config| {
            corpus
                .iter()
                .map(|&shape| {
                    let d = Decomposition::data_parallel(shape, config.tile);
                    simulate_with_efficiency(&d, gpu, precision, config.mac_efficiency).makespan
                })
                .collect()
        })
        .collect();

    // Greedy forward selection on log-mean best-of-ensemble runtime.
    let mut chosen: Vec<usize> = Vec::new();
    let mut best_per_shape = vec![f64::INFINITY; corpus.len()];
    for _ in 0..size {
        let mut best_candidate: Option<(usize, f64)> = None;
        for (ci, times) in runtimes.iter().enumerate() {
            if chosen.contains(&ci) {
                continue;
            }
            let score: f64 = times
                .iter()
                .zip(&best_per_shape)
                .map(|(&t, &b)| t.min(b).ln())
                .sum();
            if best_candidate.is_none_or(|(_, s)| score < s) {
                best_candidate = Some((ci, score));
            }
        }
        let (ci, _) = best_candidate.expect("candidates remain");
        for (b, &t) in best_per_shape.iter_mut().zip(&runtimes[ci]) {
            *b = b.min(t);
        }
        chosen.push(ci);
    }

    TileEnsemble { precision, configs: chosen.into_iter().map(|ci| candidates[ci]).collect() }
}

/// A binary CART-style decision tree over numeric feature vectors.
///
/// This is the second half of the distillation story: once a
/// selection table has converged (per-shape-class measured winners),
/// the table is compiled into a tree so steady-state dispatch needs
/// no table lookup at all — ISAAC's "predict a tiling per shape"
/// approach (§2), trained on measurements instead of a model.
///
/// Training is deterministic: splits minimize weighted Gini impurity,
/// with ties broken toward the lowest feature index and threshold, so
/// the same table always distills to the same tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<TreeNode>,
}

#[derive(Debug, Clone)]
enum TreeNode {
    Leaf { label: usize },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

impl DecisionTree {
    /// Trains a tree on `(features, label)` samples.
    ///
    /// Recursion stops at `max_depth`, when a node holds fewer than
    /// `2 · min_leaf` samples, or when no split separates the labels;
    /// leaves predict their majority label (ties toward the smallest).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or feature vectors have unequal
    /// lengths.
    #[must_use]
    pub fn train(samples: &[(Vec<f64>, usize)], max_depth: usize, min_leaf: usize) -> Self {
        assert!(!samples.is_empty(), "training set must be non-empty");
        let width = samples[0].0.len();
        assert!(
            samples.iter().all(|(f, _)| f.len() == width),
            "all feature vectors must have the same length"
        );
        let mut nodes = Vec::new();
        let subset: Vec<usize> = (0..samples.len()).collect();
        build_node(&mut nodes, samples, &subset, max_depth, min_leaf.max(1));
        Self { nodes }
    }

    /// Predicts the label for `features` by walking the tree.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than a split feature index
    /// encountered on the walk.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> usize {
        let mut at = 0;
        loop {
            match self.nodes[at] {
                TreeNode::Leaf { label } => return label,
                TreeNode::Split { feature, threshold, left, right } => {
                    at = if features[feature] <= threshold { left } else { right };
                }
            }
        }
    }

    /// Total node count (splits + leaves).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, TreeNode::Leaf { .. })).count()
    }

    /// Maximum root-to-leaf depth (a lone leaf has depth 0).
    #[must_use]
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[TreeNode], at: usize) -> usize {
            match nodes[at] {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Split { left, right, .. } => 1 + walk(nodes, left).max(walk(nodes, right)),
            }
        }
        walk(&self.nodes, 0)
    }
}

/// Recursively grows the subtree for `subset`, returning its root's
/// index in `nodes`.
fn build_node(
    nodes: &mut Vec<TreeNode>,
    samples: &[(Vec<f64>, usize)],
    subset: &[usize],
    depth_left: usize,
    min_leaf: usize,
) -> usize {
    let leaf = |nodes: &mut Vec<TreeNode>| {
        let label = majority_label(samples, subset);
        nodes.push(TreeNode::Leaf { label });
        nodes.len() - 1
    };
    if depth_left == 0 || subset.len() < 2 * min_leaf || gini(samples, subset) == 0.0 {
        return leaf(nodes);
    }
    let Some((feature, threshold)) = best_split(samples, subset, min_leaf) else {
        return leaf(nodes);
    };
    let (lo, hi): (Vec<usize>, Vec<usize>) =
        subset.iter().partition(|&&i| samples[i].0[feature] <= threshold);
    // Reserve the split slot before building children so the root of
    // every subtree precedes its descendants.
    let at = nodes.len();
    nodes.push(TreeNode::Leaf { label: 0 });
    let left = build_node(nodes, samples, &lo, depth_left - 1, min_leaf);
    let right = build_node(nodes, samples, &hi, depth_left - 1, min_leaf);
    nodes[at] = TreeNode::Split { feature, threshold, left, right };
    at
}

/// Gini impurity of the label distribution over `subset`.
fn gini(samples: &[(Vec<f64>, usize)], subset: &[usize]) -> f64 {
    let mut counts: Vec<(usize, f64)> = Vec::new();
    for &i in subset {
        let label = samples[i].1;
        match counts.iter_mut().find(|(l, _)| *l == label) {
            Some((_, c)) => *c += 1.0,
            None => counts.push((label, 1.0)),
        }
    }
    let n = subset.len() as f64;
    1.0 - counts.iter().map(|(_, c)| (c / n) * (c / n)).sum::<f64>()
}

/// Most frequent label in `subset` (ties toward the smallest label).
fn majority_label(samples: &[(Vec<f64>, usize)], subset: &[usize]) -> usize {
    let mut counts: Vec<(usize, usize)> = Vec::new();
    for &i in subset {
        let label = samples[i].1;
        match counts.iter_mut().find(|(l, _)| *l == label) {
            Some((_, c)) => *c += 1,
            None => counts.push((label, 1)),
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts.first().map_or(0, |&(l, _)| l)
}

/// The `(feature, threshold)` minimizing weighted child Gini, or
/// `None` when no candidate split leaves both children with at least
/// `min_leaf` samples or improves on the parent.
fn best_split(
    samples: &[(Vec<f64>, usize)],
    subset: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64)> {
    let width = samples[subset[0]].0.len();
    let parent = gini(samples, subset);
    let mut best: Option<(f64, usize, f64)> = None; // (score, feature, threshold)
    for feature in 0..width {
        let mut values: Vec<f64> = subset.iter().map(|&i| samples[i].0[feature]).collect();
        values.sort_by(f64::total_cmp);
        values.dedup();
        for pair in values.windows(2) {
            let threshold = (pair[0] + pair[1]) / 2.0;
            let (lo, hi): (Vec<usize>, Vec<usize>) =
                subset.iter().partition(|&&i| samples[i].0[feature] <= threshold);
            if lo.len() < min_leaf || hi.len() < min_leaf {
                continue;
            }
            let n = subset.len() as f64;
            let score = gini(samples, &lo) * lo.len() as f64 / n
                + gini(samples, &hi) * hi.len() as f64 / n;
            if score < parent - 1e-12 && best.is_none_or(|(s, _, _)| score < s - 1e-12) {
                best = Some((score, feature, threshold));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_corpus::{Corpus, CorpusConfig};
    use streamk_ensemble::Oracle;

    fn training_corpus(n: usize) -> Vec<GemmShape> {
        Corpus::generate(CorpusConfig::smoke(n)).shapes().to_vec()
    }

    #[test]
    fn first_pick_is_a_large_tile() {
        // Over a broad corpus the single best configuration is a
        // high-efficiency large blocking.
        let gpu = GpuSpec::a100();
        let e = distill_ensemble(&training_corpus(60), Precision::Fp16To32, &gpu, 1);
        assert_eq!(e.len(), 1);
        assert!(e.configs[0].mac_efficiency > 0.9, "picked {}", e.configs[0].tile);
    }

    #[test]
    fn ensemble_members_are_distinct_and_ordered() {
        let gpu = GpuSpec::a100();
        let e = distill_ensemble(&training_corpus(40), Precision::Fp64, &gpu, 4);
        assert_eq!(e.len(), 4);
        for i in 0..e.len() {
            for j in (i + 1)..e.len() {
                assert_ne!(e.configs[i].tile, e.configs[j].tile);
            }
        }
    }

    #[test]
    fn tree_separates_an_axis_aligned_rule() {
        // label = 1 iff x0 > 5, regardless of x1.
        let samples: Vec<(Vec<f64>, usize)> = (0..40)
            .map(|i| {
                let x0 = f64::from(i % 10);
                let x1 = f64::from(i / 10);
                (vec![x0, x1], usize::from(x0 > 5.0))
            })
            .collect();
        let tree = DecisionTree::train(&samples, 4, 1);
        for (f, label) in &samples {
            assert_eq!(tree.predict(f), *label, "features {f:?}");
        }
        // One split suffices: root + two leaves.
        assert_eq!(tree.node_count(), 3);
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn tree_fits_multiclass_training_data_exactly() {
        // Distinct feature vectors, 3 labels laid out in bands.
        let samples: Vec<(Vec<f64>, usize)> =
            (0..30).map(|i| (vec![f64::from(i)], (i as usize) / 10)).collect();
        let tree = DecisionTree::train(&samples, 8, 1);
        for (f, label) in &samples {
            assert_eq!(tree.predict(f), *label);
        }
        assert!(tree.leaf_count() >= 3);
    }

    #[test]
    fn tree_is_deterministic() {
        let samples: Vec<(Vec<f64>, usize)> = (0..25)
            .map(|i| (vec![f64::from(i % 5), f64::from(i / 5)], (i as usize) % 3))
            .collect();
        let a = DecisionTree::train(&samples, 6, 1);
        let b = DecisionTree::train(&samples, 6, 1);
        for (f, _) in &samples {
            assert_eq!(a.predict(f), b.predict(f));
        }
        assert_eq!(a.node_count(), b.node_count());
    }

    #[test]
    fn depth_and_leaf_limits_hold() {
        let samples: Vec<(Vec<f64>, usize)> =
            (0..64).map(|i| (vec![f64::from(i)], (i as usize) % 2)).collect();
        let tree = DecisionTree::train(&samples, 3, 4);
        assert!(tree.depth() <= 3);
        // A pure-noise labeling can't be fully separated at depth 3;
        // the tree still predicts a valid label everywhere.
        for (f, _) in &samples {
            assert!(tree.predict(f) < 2);
        }
    }

    #[test]
    fn single_class_collapses_to_one_leaf() {
        let samples: Vec<(Vec<f64>, usize)> =
            (0..10).map(|i| (vec![f64::from(i)], 7)).collect();
        let tree = DecisionTree::train(&samples, 5, 1);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[3.0]), 7);
    }

    /// Distillation must help: the 3-member ensemble's oracle beats
    /// the best single configuration on the training corpus.
    #[test]
    fn ensemble_oracle_beats_single_config() {
        let gpu = GpuSpec::a100();
        let corpus = training_corpus(50);
        let single = distill_ensemble(&corpus, Precision::Fp16To32, &gpu, 1);
        let trio = distill_ensemble(&corpus, Precision::Fp16To32, &gpu, 3);
        let total = |e: &TileEnsemble| -> f64 {
            let oracle = Oracle::new(e.clone());
            corpus.iter().map(|&s| oracle.select(s, &gpu).1.makespan).sum()
        };
        assert!(total(&trio) < total(&single), "trio {} vs single {}", total(&trio), total(&single));
    }
}
