//! MAGMA-style ensemble distillation.
//!
//! §2: MAGMA "evaluated these variants to distill a small ensemble of
//! typically three to five kernels that collectively perform well
//! across a diversity of problem shapes". This module reproduces that
//! process with greedy forward selection: starting from nothing,
//! repeatedly add the candidate configuration that most improves the
//! training corpus's geometric-mean best-of-ensemble runtime.

use crate::space::{candidate_tiles, estimated_efficiency};
use streamk_core::Decomposition;
use streamk_ensemble::{TileConfig, TileEnsemble};
use streamk_sim::{simulate_with_efficiency, GpuSpec};
use streamk_types::{GemmShape, Precision};

/// Distills an ensemble of at most `size` data-parallel kernel
/// configurations from the candidate space, trained on `corpus`.
///
/// Returns the ensemble ordered by selection (first pick = best
/// single configuration).
///
/// # Panics
///
/// Panics if `corpus` is empty or `size == 0`.
#[must_use]
pub fn distill_ensemble(
    corpus: &[GemmShape],
    precision: Precision,
    gpu: &GpuSpec,
    size: usize,
) -> TileEnsemble {
    assert!(!corpus.is_empty(), "training corpus must be non-empty");
    assert!(size > 0, "ensemble size must be at least 1");

    // Precompute the full (candidate × shape) runtime matrix.
    let candidates: Vec<TileConfig> = candidate_tiles(precision)
        .into_iter()
        .map(|tile| TileConfig { tile, mac_efficiency: estimated_efficiency(tile, precision) })
        .collect();
    let runtimes: Vec<Vec<f64>> = candidates
        .iter()
        .map(|config| {
            corpus
                .iter()
                .map(|&shape| {
                    let d = Decomposition::data_parallel(shape, config.tile);
                    simulate_with_efficiency(&d, gpu, precision, config.mac_efficiency).makespan
                })
                .collect()
        })
        .collect();

    // Greedy forward selection on log-mean best-of-ensemble runtime.
    let mut chosen: Vec<usize> = Vec::new();
    let mut best_per_shape = vec![f64::INFINITY; corpus.len()];
    for _ in 0..size {
        let mut best_candidate: Option<(usize, f64)> = None;
        for (ci, times) in runtimes.iter().enumerate() {
            if chosen.contains(&ci) {
                continue;
            }
            let score: f64 = times
                .iter()
                .zip(&best_per_shape)
                .map(|(&t, &b)| t.min(b).ln())
                .sum();
            if best_candidate.is_none_or(|(_, s)| score < s) {
                best_candidate = Some((ci, score));
            }
        }
        let (ci, _) = best_candidate.expect("candidates remain");
        for (b, &t) in best_per_shape.iter_mut().zip(&runtimes[ci]) {
            *b = b.min(t);
        }
        chosen.push(ci);
    }

    TileEnsemble { precision, configs: chosen.into_iter().map(|ci| candidates[ci]).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_corpus::{Corpus, CorpusConfig};
    use streamk_ensemble::Oracle;

    fn training_corpus(n: usize) -> Vec<GemmShape> {
        Corpus::generate(CorpusConfig::smoke(n)).shapes().to_vec()
    }

    #[test]
    fn first_pick_is_a_large_tile() {
        // Over a broad corpus the single best configuration is a
        // high-efficiency large blocking.
        let gpu = GpuSpec::a100();
        let e = distill_ensemble(&training_corpus(60), Precision::Fp16To32, &gpu, 1);
        assert_eq!(e.len(), 1);
        assert!(e.configs[0].mac_efficiency > 0.9, "picked {}", e.configs[0].tile);
    }

    #[test]
    fn ensemble_members_are_distinct_and_ordered() {
        let gpu = GpuSpec::a100();
        let e = distill_ensemble(&training_corpus(40), Precision::Fp64, &gpu, 4);
        assert_eq!(e.len(), 4);
        for i in 0..e.len() {
            for j in (i + 1)..e.len() {
                assert_ne!(e.configs[i].tile, e.configs[j].tile);
            }
        }
    }

    /// Distillation must help: the 3-member ensemble's oracle beats
    /// the best single configuration on the training corpus.
    #[test]
    fn ensemble_oracle_beats_single_config() {
        let gpu = GpuSpec::a100();
        let corpus = training_corpus(50);
        let single = distill_ensemble(&corpus, Precision::Fp16To32, &gpu, 1);
        let trio = distill_ensemble(&corpus, Precision::Fp16To32, &gpu, 3);
        let total = |e: &TileEnsemble| -> f64 {
            let oracle = Oracle::new(e.clone());
            corpus.iter().map(|&s| oracle.select(s, &gpu).1.makespan).sum()
        };
        assert!(total(&trio) < total(&single), "trio {} vs single {}", total(&trio), total(&single));
    }
}
