//! Auto-tuning machinery — the world the paper argues against.
//!
//! §2 surveys how tile-centric libraries cope with diverse problem
//! shapes: MAGMA generates hundreds of data-parallel variants and
//! distills "a small ensemble of typically three to five kernels";
//! ISAAC predicts a tiling per shape with machine learning; cuBLAS
//! ships dozens of pre-compiled kernels behind trained selection
//! heuristics. This crate rebuilds that machinery against the
//! simulator so the reproduction can quantify what Stream-K's
//! single-kernel approach gives up (§6: almost nothing) and what the
//! ensembles cost (code size, selection complexity):
//!
//! - [`space::candidate_tiles`] — the MAGMA-style constrained
//!   parameter sweep;
//! - [`tuner::AutoTuner`] — per-shape exhaustive tuning (an upper
//!   bound on what any selection heuristic can achieve);
//! - [`distill::distill_ensemble`] — greedy MAGMA-style distillation
//!   of a small ensemble from a training corpus.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod distill;
pub mod space;
pub mod tuner;

pub use distill::{distill_ensemble, DecisionTree};
pub use space::{candidate_tiles, estimated_efficiency};
pub use tuner::{AutoTuner, TunedConfig};
