//! The candidate search space.

use streamk_types::{Precision, TileShape};

/// The MAGMA-style constrained tile sweep: power-of-two extents over
/// a plausible range, filtered to shapes a real kernel could stage
/// through shared memory (bounded tile area and accumulation depth).
///
/// The result is deliberately much larger than the shipped ensembles
/// (§2: MAGMA generated "several hundred data-parallel variants" and
/// distilled them) — [`distill_ensemble`](crate::distill_ensemble)
/// does the distillation.
#[must_use]
pub fn candidate_tiles(precision: Precision) -> Vec<TileShape> {
    let (blk_mn, blk_k): (&[usize], &[usize]) = match precision {
        Precision::Fp64 => (&[16, 32, 64, 128], &[8, 16, 32]),
        Precision::Fp16To32 => (&[32, 64, 128, 256], &[16, 32, 64]),
    };
    let mut out = Vec::new();
    for &m in blk_mn {
        for &n in blk_mn {
            for &k in blk_k {
                let tile = TileShape::new(m, n, k);
                // Shared-memory plausibility: per-iteration fragments
                // and the accumulator tile must stay modest.
                let frag_elems = (m + n) * k;
                let accum_elems = m * n;
                if frag_elems <= 16 * 1024 && (1024..=64 * 1024).contains(&accum_elems) {
                    out.push(tile);
                }
            }
        }
    }
    out
}

/// Estimated sustained fraction of peak for an arbitrary blocking
/// factor.
///
/// A smooth interpolation anchored at the measured ensemble points
/// (DESIGN.md §4): the precision's default blocking sustains 0.99 of
/// peak (§5.1), and efficiency falls as `(area / default_area)^0.65`
/// below it — at one quarter of the default area this gives 0.40,
/// matching the calibrated 64×64×64 FP16 ensemble entry. Larger-than-
/// default tiles stay at the 0.99 ceiling.
#[must_use]
pub fn estimated_efficiency(tile: TileShape, precision: Precision) -> f64 {
    let default = TileShape::streamk_default(precision);
    let ratio = tile.tile_elements() as f64 / default.tile_elements() as f64;
    (0.99 * ratio.powf(0.65)).clamp(0.05, 0.99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_space_is_substantial() {
        for p in Precision::ALL {
            let tiles = candidate_tiles(p);
            assert!(tiles.len() >= 20, "{p}: only {} candidates", tiles.len());
            // The shipped default is in the space.
            assert!(tiles.contains(&TileShape::streamk_default(p)), "{p}");
        }
    }

    #[test]
    fn candidates_respect_resource_bounds() {
        for tile in candidate_tiles(Precision::Fp16To32) {
            assert!((tile.blk_m + tile.blk_n) * tile.blk_k <= 16 * 1024);
            assert!(tile.tile_elements() <= 64 * 1024);
        }
    }

    #[test]
    fn efficiency_anchored_at_default() {
        for p in Precision::ALL {
            let e = estimated_efficiency(TileShape::streamk_default(p), p);
            assert!((e - 0.99).abs() < 1e-12, "{p}: {e}");
        }
    }

    #[test]
    fn efficiency_matches_calibrated_ensemble_points() {
        // Quarter-area fp16 tile: the calibrated 64x64 entry is 0.40.
        let e = estimated_efficiency(TileShape::new(64, 64, 64), Precision::Fp16To32);
        assert!((e - 0.40).abs() < 0.02, "{e}");
        // Half-area: calibrated 64x128 is 0.55; the smooth curve gives ~0.63.
        let e = estimated_efficiency(TileShape::new(64, 128, 32), Precision::Fp16To32);
        assert!((0.5..0.7).contains(&e), "{e}");
    }

    #[test]
    fn efficiency_monotone_in_area() {
        let small = estimated_efficiency(TileShape::new(32, 32, 16), Precision::Fp16To32);
        let mid = estimated_efficiency(TileShape::new(64, 64, 16), Precision::Fp16To32);
        let big = estimated_efficiency(TileShape::new(128, 128, 16), Precision::Fp16To32);
        assert!(small < mid && mid < big);
        // Above the default area the ceiling holds.
        let huge = estimated_efficiency(TileShape::new(256, 256, 16), Precision::Fp16To32);
        assert!((huge - 0.99).abs() < 1e-12);
    }
}
