//! Per-shape exhaustive tuning.

use crate::space::{candidate_tiles, estimated_efficiency};
use streamk_core::{Decomposition, Strategy};
use streamk_sim::{simulate_with_efficiency, GpuSpec, SimReport};
use streamk_types::{GemmShape, Precision, TileShape};

/// The outcome of tuning one shape: the winning configuration and its
/// simulated report.
#[derive(Debug, Clone)]
pub struct TunedConfig {
    /// Winning blocking factor.
    pub tile: TileShape,
    /// Winning strategy.
    pub strategy: Strategy,
    /// Estimated sustained efficiency of the blocking.
    pub mac_efficiency: f64,
    /// The winning simulation.
    pub report: SimReport,
}

/// Exhaustive per-shape tuner: for every candidate tile, try
/// data-parallel and a ladder of fixed splits, keep the fastest. This
/// is the strongest tile-centric configuration a per-shape selector
/// could ever pick — stronger than the paper's oracle, which is
/// restricted to the shipped ensemble and to data-parallel schedules.
#[derive(Debug, Clone)]
pub struct AutoTuner {
    precision: Precision,
    gpu: GpuSpec,
    splits: Vec<usize>,
}

impl AutoTuner {
    /// A tuner for `precision` on `gpu`, trying fixed splits
    /// {1, 2, 4, 8, 16} like cuBLAS's split-k kernel ladder.
    #[must_use]
    pub fn new(precision: Precision, gpu: GpuSpec) -> Self {
        Self { precision, gpu, splits: vec![1, 2, 4, 8, 16] }
    }

    /// The candidate count this tuner sweeps per shape (for the
    /// code-size comparison: one Stream-K kernel vs this many
    /// specializations).
    #[must_use]
    pub fn candidates(&self) -> usize {
        candidate_tiles(self.precision).len() * self.splits.len()
    }

    /// Tunes one shape exhaustively.
    ///
    /// # Panics
    ///
    /// Panics if the candidate space is empty (it never is).
    #[must_use]
    pub fn tune(&self, shape: GemmShape) -> TunedConfig {
        let mut best: Option<TunedConfig> = None;
        for tile in candidate_tiles(self.precision) {
            let eff = estimated_efficiency(tile, self.precision);
            let iters_per_tile = tile.iters_per_tile(shape);
            for &split in &self.splits {
                if split > iters_per_tile {
                    continue;
                }
                let strategy = if split == 1 { Strategy::DataParallel } else { Strategy::FixedSplit { split } };
                let decomp = Decomposition::from_strategy(shape, tile, strategy);
                let report = simulate_with_efficiency(&decomp, &self.gpu, self.precision, eff);
                if best.as_ref().is_none_or(|b| report.makespan < b.report.makespan) {
                    best = Some(TunedConfig { tile, strategy, mac_efficiency: eff, report });
                }
            }
        }
        best.expect("non-empty candidate space")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_ensemble::runners;

    fn tuner() -> AutoTuner {
        AutoTuner::new(Precision::Fp16To32, GpuSpec::a100())
    }

    #[test]
    fn sweeps_a_large_space() {
        assert!(tuner().candidates() > 100);
    }

    #[test]
    fn tuned_beats_or_matches_single_dp() {
        let t = tuner();
        for shape in [GemmShape::new(1024, 1024, 1024), GemmShape::new(300, 5000, 700)] {
            let tuned = t.tune(shape);
            let dp = runners::run_dp_single(shape, Precision::Fp16To32, &GpuSpec::a100());
            assert!(
                tuned.report.makespan <= dp.makespan * 1.0001,
                "{shape}: tuned {} vs dp {}",
                tuned.report.makespan,
                dp.makespan
            );
        }
    }

    #[test]
    fn strong_scaling_shapes_get_split_or_small_tiles() {
        // One default-size tile with deep k: a pure data-parallel
        // default tile wastes the machine; the tuner must do better.
        let shape = GemmShape::new(128, 128, 16384);
        let tuned = tuner().tune(shape);
        let default_dp = runners::run_dp_single(shape, Precision::Fp16To32, &GpuSpec::a100());
        assert!(tuned.report.makespan < default_dp.makespan / 2.0);
        // Either it split, or it chose a smaller blocking.
        let split = matches!(tuned.strategy, Strategy::FixedSplit { .. });
        let smaller = tuned.tile.tile_elements() < TileShape::FP16_STREAMK.tile_elements();
        assert!(split || smaller, "tuned to {} {}", tuned.tile, tuned.strategy);
    }

    /// The paper's comparison, sharpened: even an exhaustive tile-
    /// centric tuner only matches Stream-K's single kernel on average
    /// — run over a handful of mixed shapes and compare totals.
    #[test]
    fn stream_k_is_competitive_with_exhaustive_tuning() {
        let gpu = GpuSpec::a100();
        let t = tuner();
        let shapes = [
            GemmShape::new(512, 512, 512),
            GemmShape::new(3000, 200, 4000),
            GemmShape::new(2048, 2048, 256),
            GemmShape::new(160, 8000, 2000),
        ];
        let tuned_total: f64 = shapes.iter().map(|&s| t.tune(s).report.makespan).sum();
        let sk_total: f64 = shapes
            .iter()
            .map(|&s| runners::run_stream_k(s, Precision::Fp16To32, &gpu).makespan)
            .sum();
        // Stream-K stays within 40% of a tuner that evaluates >100
        // specializations per shape (and often wins on quantization-
        // hostile members).
        assert!(sk_total <= tuned_total * 1.4, "sk {sk_total} vs tuned {tuned_total}");
    }
}
