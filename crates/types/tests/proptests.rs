//! Property tests for the foundational arithmetic.

use proptest::prelude::*;
use streamk_types::{
    ceil_div, grid, quantization_efficiency, waves, GemmShape, Layout, Precision, TileShape,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// ceil_div is exactly ⌈a/b⌉.
    #[test]
    fn ceil_div_definition(a in 0usize..1_000_000, b in 1usize..10_000) {
        let q = ceil_div(a, b);
        prop_assert!(q * b >= a);
        prop_assert!(q == 0 || (q - 1) * b < a);
    }

    /// Wave arithmetic is self-consistent:
    /// grid = full_waves·p + partial, waves = full + (partial > 0).
    #[test]
    fn wave_identities(g in 0usize..100_000, p in 1usize..1_000) {
        let full = grid::full_waves(g, p);
        let partial = grid::partial_wave_ctas(g, p);
        prop_assert_eq!(full * p + partial, g);
        prop_assert_eq!(waves(g, p), full + usize::from(partial > 0));
        prop_assert!(partial < p);
    }

    /// Quantization efficiency is a proper fraction, equal to 1
    /// exactly on multiples of p.
    #[test]
    fn quantization_efficiency_bounds(g in 1usize..100_000, p in 1usize..1_000) {
        let e = quantization_efficiency(g, p);
        prop_assert!(e > 0.0 && e <= 1.0 + 1e-12);
        if g % p == 0 {
            prop_assert!((e - 1.0).abs() < 1e-12);
        }
    }

    /// Tile accounting: total iterations = tiles · iters_per_tile, and
    /// tiles cover at least the problem extents.
    #[test]
    fn tile_accounting(
        m in 1usize..10_000, n in 1usize..10_000, k in 1usize..10_000,
        bm in 1usize..300, bn in 1usize..300, bk in 1usize..300,
    ) {
        let shape = GemmShape::new(m, n, k);
        let tile = TileShape::new(bm, bn, bk);
        prop_assert_eq!(tile.total_iters(shape), tile.output_tiles(shape) * tile.iters_per_tile(shape));
        prop_assert!(tile.tiles_m(shape) * bm >= m);
        prop_assert!((tile.tiles_m(shape) - 1) * bm < m);
        prop_assert!(tile.tiles_n(shape) * bn >= n);
    }

    /// Arithmetic intensity increases with k for fixed m, n (more
    /// reuse per byte of A/B... more precisely more flops per C byte).
    #[test]
    fn intensity_monotone_in_k(m in 1usize..2_000, n in 1usize..2_000, k in 1usize..4_000) {
        let s1 = GemmShape::new(m, n, k);
        let s2 = GemmShape::new(m, n, k * 2);
        for p in Precision::ALL {
            prop_assert!(s2.arithmetic_intensity(p) >= s1.arithmetic_intensity(p) * 0.999);
        }
    }

    /// Layout indexing is a bijection onto [0, rows·cols).
    #[test]
    fn layout_bijection(rows in 1usize..60, cols in 1usize..60) {
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let mut seen = vec![false; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    let i = layout.index(r, c, rows, cols);
                    prop_assert!(i < rows * cols);
                    prop_assert!(!seen[i]);
                    seen[i] = true;
                }
            }
        }
    }

    /// min_bytes matches the elementwise definition.
    #[test]
    fn min_bytes_definition(m in 1usize..3_000, n in 1usize..3_000, k in 1usize..3_000) {
        let s = GemmShape::new(m, n, k);
        for p in Precision::ALL {
            let expected = (m * k + k * n) as u64 * p.input_bytes() as u64
                + (m * n) as u64 * p.output_bytes() as u64;
            prop_assert_eq!(s.min_bytes(p), expected);
        }
    }
}
