//! GEMM problem shapes.

use crate::precision::Precision;
use std::fmt;

/// The volumetric extents of a GEMM computation `C = A · B`.
///
/// An `m × n × k` GEMM consumes an `m × k` input matrix **A** and a
/// `k × n` input matrix **B**, performs `m · n · k` multiply-accumulate
/// operations, and produces an `m × n` output matrix **C** (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of **A** and **C**.
    pub m: usize,
    /// Columns of **B** and **C**.
    pub n: usize,
    /// Columns of **A** / rows of **B** — the accumulation extent.
    pub k: usize,
}

impl GemmShape {
    /// Creates a new shape. All extents must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero; a degenerate GEMM has no
    /// meaningful decomposition and every caller in this workspace
    /// treats it as a programming error.
    #[must_use]
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "GEMM extents must be non-zero: {m}x{n}x{k}");
        Self { m, n, k }
    }

    /// Total multiply-accumulate operations: `m · n · k`.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Total floating-point operations, counting one multiply plus one
    /// add per MAC: `2 · m · n · k`. This is the numerator used by
    /// every utilization and arithmetic-intensity computation in the
    /// paper's evaluation.
    #[must_use]
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }

    /// Bytes of compulsory global-memory traffic for one pass over the
    /// problem: read **A** and **B** once, write **C** once, at the
    /// element widths of `precision`.
    ///
    /// Real kernels re-read portions of **A**/**B** when the working
    /// set exceeds cache; this is the *minimum* traffic and therefore
    /// the denominator of the paper's ops/byte arithmetic intensity.
    #[must_use]
    pub fn min_bytes(&self, precision: Precision) -> u64 {
        let a = self.m as u64 * self.k as u64 * precision.input_bytes() as u64;
        let b = self.k as u64 * self.n as u64 * precision.input_bytes() as u64;
        let c = self.m as u64 * self.n as u64 * precision.output_bytes() as u64;
        a + b + c
    }

    /// Arithmetic intensity in FLOP per byte of compulsory traffic.
    ///
    /// The paper classifies FP64 problems above 150 ops/B and FP16→32
    /// problems above 400 ops/B as compute-bound (§6, Figure 7).
    #[must_use]
    pub fn arithmetic_intensity(&self, precision: Precision) -> f64 {
        self.flops() as f64 / self.min_bytes(precision) as f64
    }

    /// `true` when this problem sits in the compute-bound regime for
    /// `precision`, per the paper's thresholds.
    #[must_use]
    pub fn is_compute_bound(&self, precision: Precision) -> bool {
        self.arithmetic_intensity(precision) > precision.compute_bound_threshold()
    }

    /// The `m · n` extent of the output matrix.
    #[must_use]
    pub fn output_elements(&self) -> u64 {
        self.m as u64 * self.n as u64
    }

    /// Transposes the output: swaps `m` and `n`. Useful when exploring
    /// symmetric corpora.
    #[must_use]
    pub fn transposed(&self) -> Self {
        Self { m: self.n, n: self.m, k: self.k }
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

impl std::str::FromStr for GemmShape {
    type Err = String;

    /// Parses the `MxNxK` form produced by [`fmt::Display`].
    fn from_str(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split('x').collect();
        if parts.len() != 3 {
            return Err(format!("expected MxNxK, got '{s}'"));
        }
        let dims: Result<Vec<usize>, _> = parts.iter().map(|p| p.parse::<usize>()).collect();
        match dims {
            Ok(d) if d.iter().all(|&x| x > 0) => Ok(GemmShape::new(d[0], d[1], d[2])),
            _ => Err(format!("expected positive integers in 'MxNxK', got '{s}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_and_flops() {
        let s = GemmShape::new(384, 384, 128);
        assert_eq!(s.macs(), 384 * 384 * 128);
        assert_eq!(s.flops(), 2 * 384 * 384 * 128);
    }

    #[test]
    fn min_bytes_fp64_counts_all_three_operands() {
        let s = GemmShape::new(4, 8, 2);
        // A: 4*2, B: 2*8, C: 4*8 elements, 8 bytes each.
        assert_eq!(s.min_bytes(Precision::Fp64), (8 + 16 + 32) * 8);
    }

    #[test]
    fn min_bytes_fp16_mixed_widths() {
        let s = GemmShape::new(4, 8, 2);
        // A and B are f16 (2 bytes), C is f32 (4 bytes).
        assert_eq!(s.min_bytes(Precision::Fp16To32), (8 + 16) * 2 + 32 * 4);
    }

    #[test]
    fn intensity_grows_with_k() {
        let small = GemmShape::new(128, 128, 128);
        let large = GemmShape::new(128, 128, 8192);
        assert!(
            large.arithmetic_intensity(Precision::Fp64)
                > small.arithmetic_intensity(Precision::Fp64)
        );
    }

    #[test]
    fn compute_bound_classification() {
        // A large cube is strongly compute-bound in fp64.
        assert!(GemmShape::new(4096, 4096, 4096).is_compute_bound(Precision::Fp64));
        // A tiny rectangle is bandwidth-bound.
        assert!(!GemmShape::new(128, 128, 128).is_compute_bound(Precision::Fp64));
    }

    #[test]
    fn display_formats_as_mxnxk() {
        assert_eq!(GemmShape::new(1, 2, 3).to_string(), "1x2x3");
    }

    #[test]
    fn from_str_round_trips_display() {
        let s = GemmShape::new(384, 1024, 8192);
        assert_eq!(s.to_string().parse::<GemmShape>().unwrap(), s);
        assert!("4x5".parse::<GemmShape>().is_err());
        assert!("4x0x5".parse::<GemmShape>().is_err());
        assert!("axbxc".parse::<GemmShape>().is_err());
    }

    #[test]
    fn transposed_swaps_m_n() {
        assert_eq!(GemmShape::new(1, 2, 3).transposed(), GemmShape::new(2, 1, 3));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_extent_panics() {
        let _ = GemmShape::new(0, 1, 1);
    }
}
