//! CTA blocking factors (output tiling).

use crate::grid::ceil_div;
use crate::precision::Precision;
use crate::shape::GemmShape;
use std::fmt;

/// The CTA-wide blocking factors `BLK_M × BLK_N × BLK_K` of a GEMM
/// kernel (paper §3.1).
///
/// One *MAC-loop iteration* is a `BLK_M × BLK_N × BLK_K` volume of
/// multiply-accumulate work — the unit of workload quantization that
/// Stream-K distributes across processor cores (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileShape {
    /// Output-tile rows.
    pub blk_m: usize,
    /// Output-tile columns.
    pub blk_n: usize,
    /// Accumulation-axis depth of one MAC-loop iteration.
    pub blk_k: usize,
}

impl TileShape {
    /// The paper's single FP64 Stream-K blocking factor for A100
    /// (§5.1): 64 × 64 × 16.
    pub const FP64_STREAMK: TileShape = TileShape { blk_m: 64, blk_n: 64, blk_k: 16 };

    /// The paper's single FP16→32 Stream-K blocking factor for A100
    /// (§5.1): 128 × 128 × 32.
    pub const FP16_STREAMK: TileShape = TileShape { blk_m: 128, blk_n: 128, blk_k: 32 };

    /// Creates a new blocking factor. All extents must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    #[must_use]
    pub fn new(blk_m: usize, blk_n: usize, blk_k: usize) -> Self {
        assert!(
            blk_m > 0 && blk_n > 0 && blk_k > 0,
            "tile extents must be non-zero: {blk_m}x{blk_n}x{blk_k}"
        );
        Self { blk_m, blk_n, blk_k }
    }

    /// The paper's Stream-K blocking factor for `precision` (§5.1).
    #[must_use]
    pub fn streamk_default(precision: Precision) -> Self {
        match precision {
            Precision::Fp64 => Self::FP64_STREAMK,
            Precision::Fp16To32 => Self::FP16_STREAMK,
        }
    }

    /// Number of output tiles along the m axis: `⌈m / BLK_M⌉`.
    #[must_use]
    pub fn tiles_m(&self, shape: GemmShape) -> usize {
        ceil_div(shape.m, self.blk_m)
    }

    /// Number of output tiles along the n axis: `⌈n / BLK_N⌉`.
    #[must_use]
    pub fn tiles_n(&self, shape: GemmShape) -> usize {
        ceil_div(shape.n, self.blk_n)
    }

    /// Total output tiles `t = ⌈m/BLK_M⌉ · ⌈n/BLK_N⌉` — the grid size
    /// of the classic data-parallel decomposition (Algorithm 2).
    #[must_use]
    pub fn output_tiles(&self, shape: GemmShape) -> usize {
        self.tiles_m(shape) * self.tiles_n(shape)
    }

    /// MAC-loop iterations needed to accumulate one output tile:
    /// `⌈k / BLK_K⌉`.
    #[must_use]
    pub fn iters_per_tile(&self, shape: GemmShape) -> usize {
        ceil_div(shape.k, self.blk_k)
    }

    /// Aggregate MAC-loop iterations for the whole problem:
    /// `t · iters_per_tile` — the iteration space Stream-K partitions
    /// evenly across CTAs (Algorithm 5, line 3).
    #[must_use]
    pub fn total_iters(&self, shape: GemmShape) -> usize {
        self.output_tiles(shape) * self.iters_per_tile(shape)
    }

    /// MAC operations in a single MAC-loop iteration:
    /// `BLK_M · BLK_N · BLK_K`.
    #[must_use]
    pub fn macs_per_iter(&self) -> u64 {
        self.blk_m as u64 * self.blk_n as u64 * self.blk_k as u64
    }

    /// Elements in one output tile: `BLK_M · BLK_N`. This is also the
    /// size of one temporary partial-sum record exchanged during
    /// Stream-K fixup.
    #[must_use]
    pub fn tile_elements(&self) -> usize {
        self.blk_m * self.blk_n
    }

    /// Bytes of global traffic for the input fragments of one MAC-loop
    /// iteration (an A fragment of `BLK_M × BLK_K` plus a B fragment of
    /// `BLK_K × BLK_N` at input width). Used by the simulator's memory
    /// model.
    #[must_use]
    pub fn fragment_bytes(&self, precision: Precision) -> u64 {
        ((self.blk_m * self.blk_k + self.blk_k * self.blk_n) * precision.input_bytes()) as u64
    }

    /// Bytes written when storing one output tile at output width.
    #[must_use]
    pub fn tile_output_bytes(&self, precision: Precision) -> u64 {
        (self.tile_elements() * precision.output_bytes()) as u64
    }
}

impl fmt::Display for TileShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.blk_m, self.blk_n, self.blk_k)
    }
}

impl std::str::FromStr for TileShape {
    type Err = String;

    /// Parses the `MxNxK` form produced by [`fmt::Display`].
    fn from_str(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split('x').collect();
        if parts.len() != 3 {
            return Err(format!("expected MxNxK, got '{s}'"));
        }
        let dims: Result<Vec<usize>, _> = parts.iter().map(|p| p.parse::<usize>()).collect();
        match dims {
            Ok(d) if d.iter().all(|&x| x > 0) => Ok(TileShape::new(d[0], d[1], d[2])),
            _ => Err(format!("expected positive integers in 'MxNxK', got '{s}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of the paper's Figure 1a: a 384×384×128
    /// GEMM blocked 128×128×128 gives nine output tiles.
    #[test]
    fn figure1a_tile_count() {
        let shape = GemmShape::new(384, 384, 128);
        let tile = TileShape::new(128, 128, 128);
        assert_eq!(tile.output_tiles(shape), 9);
        assert_eq!(tile.iters_per_tile(shape), 1);
    }

    /// Figure 1b: halving BLK_N doubles the tile count to 18.
    #[test]
    fn figure1b_tile_count() {
        let shape = GemmShape::new(384, 384, 128);
        let tile = TileShape::new(128, 64, 128);
        assert_eq!(tile.output_tiles(shape), 18);
    }

    /// Figure 2b: with BLK_K = 4 each CTA of a g=4 Stream-K launch gets
    /// 72 MAC-loop iterations (9 tiles × 32 iters / 4 CTAs).
    #[test]
    fn figure2b_iteration_accounting() {
        let shape = GemmShape::new(384, 384, 128);
        let tile = TileShape::new(128, 128, 4);
        assert_eq!(tile.iters_per_tile(shape), 32);
        assert_eq!(tile.total_iters(shape), 9 * 32);
        assert_eq!(tile.total_iters(shape) / 4, 72);
    }

    /// Appendix A.1 Figure 8a: 256×3584×8192 under 128×128×32 blocking
    /// has 56 output tiles of 256 iterations each.
    #[test]
    fn figure8a_accounting() {
        let shape = GemmShape::new(256, 3584, 8192);
        let tile = TileShape::FP16_STREAMK;
        assert_eq!(tile.output_tiles(shape), 56);
        assert_eq!(tile.iters_per_tile(shape), 256);
    }

    /// Appendix A.1 Figure 8c: 128×128×16384 is a single tile of 512
    /// iterations.
    #[test]
    fn figure8c_accounting() {
        let shape = GemmShape::new(128, 128, 16384);
        let tile = TileShape::FP16_STREAMK;
        assert_eq!(tile.output_tiles(shape), 1);
        assert_eq!(tile.iters_per_tile(shape), 512);
    }

    #[test]
    fn ragged_edges_round_up() {
        let shape = GemmShape::new(130, 100, 17);
        let tile = TileShape::new(64, 64, 16);
        assert_eq!(tile.tiles_m(shape), 3);
        assert_eq!(tile.tiles_n(shape), 2);
        assert_eq!(tile.iters_per_tile(shape), 2);
        assert_eq!(tile.total_iters(shape), 12);
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(
            TileShape::streamk_default(Precision::Fp64),
            TileShape::new(64, 64, 16)
        );
        assert_eq!(
            TileShape::streamk_default(Precision::Fp16To32),
            TileShape::new(128, 128, 32)
        );
    }

    #[test]
    fn fragment_bytes_mixed_precision() {
        let tile = TileShape::new(128, 128, 32);
        // (128*32 + 32*128) f16 elements, 2 bytes each.
        assert_eq!(tile.fragment_bytes(Precision::Fp16To32), 2 * (128 * 32 + 32 * 128));
        // Output tile written as f32.
        assert_eq!(tile.tile_output_bytes(Precision::Fp16To32), 4 * 128 * 128);
    }

    #[test]
    fn from_str_round_trips_display() {
        let t = TileShape::new(128, 256, 32);
        assert_eq!(t.to_string().parse::<TileShape>().unwrap(), t);
        assert!("128x256".parse::<TileShape>().is_err());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_tile_extent_panics() {
        let _ = TileShape::new(64, 0, 16);
    }
}
