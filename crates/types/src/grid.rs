//! Grid and wave arithmetic.
//!
//! A GPU dispatches CTAs onto its `p` streaming multiprocessors in
//! "waves" of up to `p` concurrent CTAs. When the final wave is only
//! partially full, the idle SMs wait — the *quantization inefficiency*
//! that motivates Stream-K (paper §1, Figure 1).

/// Ceiling division: `⌈a / b⌉`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[must_use]
pub fn ceil_div(a: usize, b: usize) -> usize {
    assert!(b != 0, "ceil_div by zero");
    a.div_ceil(b)
}

/// Number of dispatch waves for `grid` CTAs across `p` cores:
/// `⌈grid / p⌉`. A wave is full when it occupies all `p` cores.
///
/// # Panics
///
/// Panics if `p == 0`.
#[must_use]
pub fn waves(grid: usize, p: usize) -> usize {
    ceil_div(grid, p)
}

/// Number of *full* waves: `⌊grid / p⌋` (the `w` of §5.2's hybrid
/// schedules).
///
/// # Panics
///
/// Panics if `p == 0`.
#[must_use]
pub fn full_waves(grid: usize, p: usize) -> usize {
    assert!(p != 0, "full_waves with zero cores");
    grid / p
}

/// CTAs in the final, possibly partial wave. Zero when the grid
/// quantizes perfectly (`grid % p == 0` and `grid > 0`).
///
/// # Panics
///
/// Panics if `p == 0`.
#[must_use]
pub fn partial_wave_ctas(grid: usize, p: usize) -> usize {
    assert!(p != 0, "partial_wave_ctas with zero cores");
    grid % p
}

/// The theoretical utilization ceiling of a *data-parallel* schedule
/// that runs `grid` equal-duration CTAs on `p` cores:
/// `grid / (waves · p)`.
///
/// Figure 1a: 9 tiles on 4 SMs → 9 / (3·4) = 75%.
/// Figure 1b: 18 tiles on 4 SMs → 18 / (5·4) = 90%.
///
/// Returns a value in `(0, 1]`.
///
/// # Panics
///
/// Panics if `grid == 0` or `p == 0`.
#[must_use]
pub fn quantization_efficiency(grid: usize, p: usize) -> f64 {
    assert!(grid != 0, "quantization efficiency of an empty grid");
    let w = waves(grid, p);
    grid as f64 / (w * p) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_basics() {
        assert_eq!(ceil_div(0, 4), 0);
        assert_eq!(ceil_div(1, 4), 1);
        assert_eq!(ceil_div(4, 4), 1);
        assert_eq!(ceil_div(5, 4), 2);
        assert_eq!(ceil_div(8, 4), 2);
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn ceil_div_zero_divisor_panics() {
        let _ = ceil_div(1, 0);
    }

    #[test]
    fn wave_counts() {
        assert_eq!(waves(9, 4), 3);
        assert_eq!(full_waves(9, 4), 2);
        assert_eq!(partial_wave_ctas(9, 4), 1);
        assert_eq!(partial_wave_ctas(8, 4), 0);
    }

    /// The exact utilization ceilings quoted for Figure 1.
    #[test]
    fn figure1_utilization_ceilings() {
        assert!((quantization_efficiency(9, 4) - 0.75).abs() < 1e-12);
        assert!((quantization_efficiency(18, 4) - 0.90).abs() < 1e-12);
    }

    /// Figure 2a: fixed-split s=2 gives 18 CTAs on 4 SMs → 90%.
    #[test]
    fn figure2a_efficiency() {
        assert!((quantization_efficiency(18, 4) - 0.90).abs() < 1e-12);
    }

    #[test]
    fn perfect_quantization_is_one() {
        assert_eq!(quantization_efficiency(4, 4), 1.0);
        assert_eq!(quantization_efficiency(108, 108), 1.0);
        assert_eq!(quantization_efficiency(216, 108), 1.0);
    }

    #[test]
    fn efficiency_bounded() {
        for grid in 1..200 {
            for p in 1..20 {
                let e = quantization_efficiency(grid, p);
                assert!(e > 0.0 && e <= 1.0, "grid={grid} p={p} e={e}");
            }
        }
    }
}
