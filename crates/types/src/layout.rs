//! Matrix memory layouts.

use std::fmt;

/// The storage order of a dense matrix.
///
/// The paper's kernels support transposed/non-transposed operand
/// combinations (e.g. `hgemm_tt`); in this reproduction layout is a
/// property of the matrix container, and the GEMM implementations are
/// layout-generic through the index math below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Row-major ("C order"): element `(r, c)` lives at `r · cols + c`.
    #[default]
    RowMajor,
    /// Column-major ("Fortran order"): element `(r, c)` lives at
    /// `c · rows + r`.
    ColMajor,
}

impl Layout {
    /// Linear offset of element `(row, col)` in a `rows × cols` matrix
    /// stored in this layout.
    ///
    /// Bounds are *not* checked here; the matrix container checks them.
    #[inline]
    #[must_use]
    pub fn index(self, row: usize, col: usize, rows: usize, cols: usize) -> usize {
        match self {
            Layout::RowMajor => row * cols + col,
            Layout::ColMajor => col * rows + row,
        }
    }

    /// The leading dimension (stride between consecutive rows for
    /// row-major, columns for column-major) of a dense `rows × cols`
    /// matrix.
    #[inline]
    #[must_use]
    pub fn leading_dim(self, rows: usize, cols: usize) -> usize {
        match self {
            Layout::RowMajor => cols,
            Layout::ColMajor => rows,
        }
    }

    /// The opposite layout. A matrix reinterpreted in the opposite
    /// layout is its transpose.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Layout::RowMajor => Layout::ColMajor,
            Layout::ColMajor => Layout::RowMajor,
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layout::RowMajor => write!(f, "row-major"),
            Layout::ColMajor => write!(f, "col-major"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_indexing() {
        // 2x3 matrix: offsets 0..6 in reading order.
        let l = Layout::RowMajor;
        assert_eq!(l.index(0, 0, 2, 3), 0);
        assert_eq!(l.index(0, 2, 2, 3), 2);
        assert_eq!(l.index(1, 0, 2, 3), 3);
        assert_eq!(l.index(1, 2, 2, 3), 5);
    }

    #[test]
    fn col_major_indexing() {
        let l = Layout::ColMajor;
        assert_eq!(l.index(0, 0, 2, 3), 0);
        assert_eq!(l.index(1, 0, 2, 3), 1);
        assert_eq!(l.index(0, 1, 2, 3), 2);
        assert_eq!(l.index(1, 2, 2, 3), 5);
    }

    #[test]
    fn layouts_cover_all_offsets_bijectively() {
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let (rows, cols) = (4, 7);
            let mut seen = vec![false; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    let i = layout.index(r, c, rows, cols);
                    assert!(!seen[i], "{layout} duplicates offset {i}");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn flip_is_involution() {
        assert_eq!(Layout::RowMajor.flipped().flipped(), Layout::RowMajor);
        assert_eq!(Layout::RowMajor.flipped(), Layout::ColMajor);
    }

    #[test]
    fn leading_dims() {
        assert_eq!(Layout::RowMajor.leading_dim(2, 3), 3);
        assert_eq!(Layout::ColMajor.leading_dim(2, 3), 2);
    }
}
