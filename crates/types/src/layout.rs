//! Matrix memory layouts.
//!
//! Besides the classic row/column-major orders this module defines the
//! *native block-major* storage family used by the CPU executor's
//! zero-pack fast path: the matrix is tiled into `FRAG × FRAG`
//! fragments (one 256-byte f32 / 512-byte f64 block, a small whole
//! number of cache lines), each fragment stores its elements
//! column-major, and fragments are laid out row-panel-major
//! ([`Layout::BlockMajor`]) or along a dense z-order curve
//! ([`Layout::BlockMajorZ`]).
//!
//! The row-panel variant is chosen so that each `FRAG`-row panel of an
//! `m × k` matrix is **bit-identical to a BLIS packed-A panel** with
//! `MR = FRAG` over the padded k-extent: within panel `p` the element
//! `(row, col)` sits at `col · FRAG + row % FRAG`, i.e. exactly
//! `pack_a_into`'s `panel[k · MR + i]`. Kernels with `MR == FRAG` can
//! therefore stream block-major operands directly with zero per-launch
//! packing.

use std::fmt;

/// Fragment edge length of the block-major layouts: fragments are
/// `FRAG × FRAG` elements with a column-major interior. 8 matches the
/// widest packed/SIMD kernel `MR` in `streamk-cpu`, which is what makes
/// the zero-pack bypass possible.
pub const FRAG: usize = 8;

/// The storage order of a dense matrix.
///
/// The paper's kernels support transposed/non-transposed operand
/// combinations (e.g. `hgemm_tt`); in this reproduction layout is a
/// property of the matrix container, and the GEMM implementations are
/// layout-generic through the index math below.
///
/// The block-major variants pad both dimensions up to a multiple of
/// [`FRAG`]; use [`Layout::storage_len`] (not `rows * cols`) to size
/// backing storage. Padding elements hold zeros and are never read by
/// the index math.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Row-major ("C order"): element `(r, c)` lives at `r · cols + c`.
    #[default]
    RowMajor,
    /// Column-major ("Fortran order"): element `(r, c)` lives at
    /// `c · rows + r`.
    ColMajor,
    /// Native block-major: `FRAG × FRAG` fragments with column-major
    /// interiors, fragments stored row-panel-major (panel `p = r/FRAG`
    /// outer, `q = c/FRAG` inner). Each row panel is bit-identical to a
    /// BLIS packed-A panel with `MR = FRAG`.
    BlockMajor,
    /// Block-major with the fragment *slots* permuted along a dense
    /// z-order (Morton) curve when the fragment grid is a power of two
    /// in both dimensions; otherwise it degrades to the linear
    /// row-panel order (compact Morton on ragged grids has no O(1)
    /// rank, see `streamk-core::order`).
    BlockMajorZ,
}

/// Dense z-order (Morton) rank of fragment `(row, col)` on a
/// `rows_p2 × cols_p2` grid where both extents are powers of two.
///
/// The low `min(log2 rows_p2, log2 cols_p2)` bits of each coordinate
/// are bit-interleaved (row bits in even positions, matching the
/// `morton_code(tile_m, tile_n)` convention of
/// `streamk-core::order::tile_permutation`), and the remaining high
/// bits of the longer dimension are appended above — so the rank is
/// *dense* in `0 .. rows_p2 · cols_p2` for any pow2 aspect ratio.
#[inline]
#[must_use]
pub fn zorder_rank(row: usize, col: usize, rows_p2: usize, cols_p2: usize) -> usize {
    debug_assert!(rows_p2.is_power_of_two() && cols_p2.is_power_of_two());
    debug_assert!(row < rows_p2 && col < cols_p2);
    let rb = rows_p2.trailing_zeros();
    let cb = cols_p2.trailing_zeros();
    let shared = rb.min(cb);
    let mut rank = 0usize;
    for bit in 0..shared {
        rank |= ((row >> bit) & 1) << (2 * bit);
        rank |= ((col >> bit) & 1) << (2 * bit + 1);
    }
    let high = if rb > cb { row >> shared } else { col >> shared };
    rank | (high << (2 * shared))
}

/// Inverse of [`zorder_rank`]: the fragment coordinates at `rank`.
#[inline]
#[must_use]
pub fn zorder_unrank(rank: usize, rows_p2: usize, cols_p2: usize) -> (usize, usize) {
    debug_assert!(rows_p2.is_power_of_two() && cols_p2.is_power_of_two());
    let rb = rows_p2.trailing_zeros();
    let cb = cols_p2.trailing_zeros();
    let shared = rb.min(cb);
    let (mut row, mut col) = (0usize, 0usize);
    for bit in 0..shared {
        row |= ((rank >> (2 * bit)) & 1) << bit;
        col |= ((rank >> (2 * bit + 1)) & 1) << bit;
    }
    let high = rank >> (2 * shared);
    if rb > cb {
        row |= high << shared;
    } else {
        col |= high << shared;
    }
    (row, col)
}

impl Layout {
    /// Linear offset of element `(row, col)` in a `rows × cols` matrix
    /// stored in this layout.
    ///
    /// Bounds are *not* checked here; the matrix container checks them.
    #[inline]
    #[must_use]
    pub fn index(self, row: usize, col: usize, rows: usize, cols: usize) -> usize {
        match self {
            Layout::RowMajor => row * cols + col,
            Layout::ColMajor => col * rows + row,
            Layout::BlockMajor | Layout::BlockMajorZ => {
                let frags_n = cols.div_ceil(FRAG);
                let (p, q) = (row / FRAG, col / FRAG);
                let slot = if self == Layout::BlockMajorZ {
                    let frags_m = rows.div_ceil(FRAG);
                    if frags_m.is_power_of_two() && frags_n.is_power_of_two() {
                        zorder_rank(p, q, frags_m, frags_n)
                    } else {
                        p * frags_n + q
                    }
                } else {
                    p * frags_n + q
                };
                slot * FRAG * FRAG + (col % FRAG) * FRAG + (row % FRAG)
            }
        }
    }

    /// Number of elements of backing storage a `rows × cols` matrix in
    /// this layout occupies. Equals `rows * cols` for the strided
    /// layouts; the block-major layouts pad both extents to a multiple
    /// of [`FRAG`].
    #[inline]
    #[must_use]
    pub fn storage_len(self, rows: usize, cols: usize) -> usize {
        match self {
            Layout::RowMajor | Layout::ColMajor => rows * cols,
            Layout::BlockMajor | Layout::BlockMajorZ => {
                rows.div_ceil(FRAG) * cols.div_ceil(FRAG) * FRAG * FRAG
            }
        }
    }

    /// Whether this is one of the block-major (fragmented) layouts.
    #[inline]
    #[must_use]
    pub fn is_blocked(self) -> bool {
        matches!(self, Layout::BlockMajor | Layout::BlockMajorZ)
    }

    /// The leading dimension (stride between consecutive rows for
    /// row-major, columns for column-major) of a dense `rows × cols`
    /// matrix. For the block-major layouts this is the padded k-stride
    /// of one row panel (`cols` rounded up to [`FRAG`]); there is no
    /// single element stride.
    #[inline]
    #[must_use]
    pub fn leading_dim(self, rows: usize, cols: usize) -> usize {
        match self {
            Layout::RowMajor => cols,
            Layout::ColMajor => rows,
            Layout::BlockMajor | Layout::BlockMajorZ => cols.div_ceil(FRAG) * FRAG,
        }
    }

    /// The opposite layout. A *strided* matrix reinterpreted in the
    /// opposite layout is its transpose; the block-major layouts have
    /// no such reinterpretation (fragment interiors would also need
    /// transposing) and return themselves — transpose block-major
    /// matrices through views or explicit conversion instead.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Layout::RowMajor => Layout::ColMajor,
            Layout::ColMajor => Layout::RowMajor,
            blocked => blocked,
        }
    }

    /// Parses the CLI spelling of a layout: `row`, `col`, `block`, or
    /// `blockz` (aliases: full display names).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "row" | "row-major" => Some(Layout::RowMajor),
            "col" | "col-major" | "column" => Some(Layout::ColMajor),
            "block" | "block-major" => Some(Layout::BlockMajor),
            "blockz" | "block-major-z" | "morton" => Some(Layout::BlockMajorZ),
            _ => None,
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layout::RowMajor => write!(f, "row-major"),
            Layout::ColMajor => write!(f, "col-major"),
            Layout::BlockMajor => write!(f, "block-major"),
            Layout::BlockMajorZ => write!(f, "block-major-z"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Layout; 4] =
        [Layout::RowMajor, Layout::ColMajor, Layout::BlockMajor, Layout::BlockMajorZ];

    #[test]
    fn row_major_indexing() {
        // 2x3 matrix: offsets 0..6 in reading order.
        let l = Layout::RowMajor;
        assert_eq!(l.index(0, 0, 2, 3), 0);
        assert_eq!(l.index(0, 2, 2, 3), 2);
        assert_eq!(l.index(1, 0, 2, 3), 3);
        assert_eq!(l.index(1, 2, 2, 3), 5);
    }

    #[test]
    fn col_major_indexing() {
        let l = Layout::ColMajor;
        assert_eq!(l.index(0, 0, 2, 3), 0);
        assert_eq!(l.index(1, 0, 2, 3), 1);
        assert_eq!(l.index(0, 1, 2, 3), 2);
        assert_eq!(l.index(1, 2, 2, 3), 5);
    }

    #[test]
    fn block_major_panel_is_packed_a_format() {
        // Within row panel p, element (r, c) must sit at the BLIS
        // packed-A position c·FRAG + r%FRAG relative to the panel base,
        // with panels strided by storage_len of one panel.
        let l = Layout::BlockMajor;
        let (rows, cols) = (24usize, 19usize);
        let k_pad = cols.div_ceil(FRAG) * FRAG;
        for r in 0..rows {
            for c in 0..cols {
                let p = r / FRAG;
                let expect = p * k_pad * FRAG + c * FRAG + r % FRAG;
                assert_eq!(l.index(r, c, rows, cols), expect, "({r},{c})");
            }
        }
    }

    #[test]
    fn layouts_cover_all_offsets_bijectively() {
        // Strided layouts are dense over rows*cols; block-major layouts
        // are injective into the padded storage.
        for layout in ALL {
            for (rows, cols) in [(4, 7), (8, 8), (16, 32), (5, 1), (1, 9), (17, 23)] {
                let len = layout.storage_len(rows, cols);
                let mut seen = vec![false; len];
                for r in 0..rows {
                    for c in 0..cols {
                        let i = layout.index(r, c, rows, cols);
                        assert!(i < len, "{layout} offset {i} out of {len}");
                        assert!(!seen[i], "{layout} duplicates offset {i}");
                        seen[i] = true;
                    }
                }
                if !layout.is_blocked() {
                    assert!(seen.iter().all(|&s| s));
                }
            }
        }
    }

    #[test]
    fn blocked_storage_is_dense_on_aligned_shapes() {
        // With both extents multiples of FRAG there is no padding and
        // the blocked layouts are full bijections.
        for layout in [Layout::BlockMajor, Layout::BlockMajorZ] {
            for (rows, cols) in [(8, 8), (16, 40), (24, 8), (32, 32)] {
                let len = layout.storage_len(rows, cols);
                assert_eq!(len, rows * cols);
                let mut seen = vec![false; len];
                for r in 0..rows {
                    for c in 0..cols {
                        seen[layout.index(r, c, rows, cols)] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "{layout} {rows}x{cols} not dense");
            }
        }
    }

    #[test]
    fn zorder_rank_roundtrips_on_pow2_grids() {
        for (h, w) in [(1, 1), (2, 2), (4, 4), (2, 8), (8, 2), (1, 16), (16, 1), (4, 32)] {
            let mut seen = vec![false; h * w];
            for r in 0..h {
                for c in 0..w {
                    let rank = zorder_rank(r, c, h, w);
                    assert!(rank < h * w, "rank {rank} out of range for {h}x{w}");
                    assert!(!seen[rank], "duplicate rank {rank} in {h}x{w}");
                    seen[rank] = true;
                    assert_eq!(zorder_unrank(rank, h, w), (r, c));
                }
            }
        }
    }

    #[test]
    fn zorder_square_matches_z_curve() {
        // 2x2 Z, row in the even bits (tile_permutation convention):
        // (0,0) (1,0) (0,1) (1,1).
        assert_eq!(zorder_rank(0, 0, 2, 2), 0);
        assert_eq!(zorder_rank(1, 0, 2, 2), 1);
        assert_eq!(zorder_rank(0, 1, 2, 2), 2);
        assert_eq!(zorder_rank(1, 1, 2, 2), 3);
    }

    #[test]
    fn blockz_falls_back_to_linear_on_ragged_grids() {
        // 17x23 → 3x3 fragment grid (non-pow2): BlockMajorZ must agree
        // with BlockMajor everywhere.
        let (rows, cols) = (17, 23);
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(
                    Layout::BlockMajorZ.index(r, c, rows, cols),
                    Layout::BlockMajor.index(r, c, rows, cols)
                );
            }
        }
    }

    #[test]
    fn storage_lens() {
        assert_eq!(Layout::RowMajor.storage_len(5, 7), 35);
        assert_eq!(Layout::BlockMajor.storage_len(5, 7), 64);
        assert_eq!(Layout::BlockMajor.storage_len(16, 16), 256);
        assert_eq!(Layout::BlockMajorZ.storage_len(9, 17), 2 * 3 * 64);
    }

    #[test]
    fn flip_is_involution() {
        assert_eq!(Layout::RowMajor.flipped().flipped(), Layout::RowMajor);
        assert_eq!(Layout::RowMajor.flipped(), Layout::ColMajor);
        assert_eq!(Layout::BlockMajor.flipped(), Layout::BlockMajor);
    }

    #[test]
    fn leading_dims() {
        assert_eq!(Layout::RowMajor.leading_dim(2, 3), 3);
        assert_eq!(Layout::ColMajor.leading_dim(2, 3), 2);
        assert_eq!(Layout::BlockMajor.leading_dim(16, 19), 24);
    }

    #[test]
    fn parse_round_trips_display() {
        for l in ALL {
            assert_eq!(Layout::parse(&l.to_string()), Some(l));
        }
        assert_eq!(Layout::parse("block"), Some(Layout::BlockMajor));
        assert_eq!(Layout::parse("blockz"), Some(Layout::BlockMajorZ));
        assert_eq!(Layout::parse("diag"), None);
    }
}
