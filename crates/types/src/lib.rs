//! Foundational types for the Stream-K reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: GEMM problem shapes ([`GemmShape`]), CTA blocking factors
//! ([`TileShape`]), floating-point precisions ([`Precision`]), matrix
//! memory layouts ([`Layout`]), and the grid/wave arithmetic
//! ([`grid`]) that underlies quantization-efficiency reasoning in the
//! paper (§1, Figure 1).
//!
//! Everything here is plain data with pure functions — no allocation
//! beyond what the caller asks for, no I/O, no concurrency — so that the
//! decomposition logic in `streamk-core`, the simulator in `streamk-sim`,
//! and the CPU executor in `streamk-cpu` all agree on the same numbers.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod grid;
pub mod layout;
pub mod precision;
pub mod shape;
pub mod tile;

pub use grid::{ceil_div, quantization_efficiency, waves};
pub use layout::{zorder_rank, zorder_unrank, Layout, FRAG};
pub use precision::Precision;
pub use shape::GemmShape;
pub use tile::TileShape;
