//! Floating-point precisions evaluated by the paper.

use std::fmt;

/// The two GEMM precisions the paper evaluates (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Double-precision GEMM: f64 inputs, f64 accumulation and output.
    Fp64,
    /// Mixed-precision GEMM: f16 inputs, f32 accumulation and output
    /// (written "FP16→32" in the paper).
    Fp16To32,
}

impl Precision {
    /// Both precisions, in the order the paper presents them.
    pub const ALL: [Precision; 2] = [Precision::Fp64, Precision::Fp16To32];

    /// Bytes per element of the input matrices **A** and **B**.
    #[must_use]
    pub fn input_bytes(self) -> usize {
        match self {
            Precision::Fp64 => 8,
            Precision::Fp16To32 => 2,
        }
    }

    /// Bytes per element of the output matrix **C** (and of temporary
    /// partial-sum tiles, which are stored at accumulator width).
    #[must_use]
    pub fn output_bytes(self) -> usize {
        match self {
            Precision::Fp64 => 8,
            Precision::Fp16To32 => 4,
        }
    }

    /// Tensor-core peak throughput of the paper's locked-clock A100,
    /// in TFLOP/s (§6 "Hardware environment": 13.9 FP64, 222.3
    /// FP16→32).
    #[must_use]
    pub fn a100_peak_tflops(self) -> f64 {
        match self {
            Precision::Fp64 => 13.9,
            Precision::Fp16To32 => 222.3,
        }
    }

    /// The arithmetic-intensity threshold (FLOP/byte) above which the
    /// paper considers a problem compute-bound for this precision
    /// (§6: 150 ops/B for FP64, 400 ops/B for FP16→32).
    #[must_use]
    pub fn compute_bound_threshold(self) -> f64 {
        match self {
            Precision::Fp64 => 150.0,
            Precision::Fp16To32 => 400.0,
        }
    }

    /// Short lowercase label used in experiment output ("fp64",
    /// "fp16t32").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Precision::Fp64 => "fp64",
            Precision::Fp16To32 => "fp16t32",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Fp64 => write!(f, "FP64"),
            Precision::Fp16To32 => write!(f, "FP16->32"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_widths() {
        assert_eq!(Precision::Fp64.input_bytes(), 8);
        assert_eq!(Precision::Fp64.output_bytes(), 8);
        assert_eq!(Precision::Fp16To32.input_bytes(), 2);
        assert_eq!(Precision::Fp16To32.output_bytes(), 4);
    }

    #[test]
    fn a100_peaks_match_paper() {
        assert_eq!(Precision::Fp64.a100_peak_tflops(), 13.9);
        assert_eq!(Precision::Fp16To32.a100_peak_tflops(), 222.3);
    }

    #[test]
    fn thresholds_match_paper() {
        assert_eq!(Precision::Fp64.compute_bound_threshold(), 150.0);
        assert_eq!(Precision::Fp16To32.compute_bound_threshold(), 400.0);
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(Precision::Fp64.label(), Precision::Fp16To32.label());
    }
}
