//! Criterion benches of the CPU executor (ablation A4): wall-clock
//! comparison of the decomposition strategies on real threads.
//!
//! Three regimes mirror the paper's narrative:
//! - `balanced`: tiles ≫ workers — everyone should be close;
//! - `quantization_hostile`: tiles = workers + 1 — data-parallel eats
//!   a nearly empty second wave, Stream-K doesn't;
//! - `strong_scaling`: one tile, deep k — data-parallel serializes,
//!   Stream-K splits.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use streamk_core::Decomposition;
use streamk_cpu::CpuExecutor;
use streamk_matrix::Matrix;
use streamk_types::{GemmShape, Layout, TileShape};

const THREADS: usize = 4;

type Cases<'a> = [(&'a str, Decomposition)];

fn bench_case(c: &mut Criterion, group_name: &str, shape: GemmShape, _tile: TileShape, cases: &Cases<'_>) {
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 1);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 2);
    let exec = CpuExecutor::with_threads(THREADS);

    let mut group = c.benchmark_group(group_name);
    group.sample_size(20);
    for (name, decomp) in cases {
        group.bench_function(name, |bencher| {
            bencher.iter(|| black_box(exec.gemm::<f64, f64>(black_box(&a), black_box(&b), decomp)));
        });
    }
    group.finish();
}

fn balanced(c: &mut Criterion) {
    // 8x8 = 64 tiles on 4 workers: 16 full waves.
    let shape = GemmShape::new(256, 256, 128);
    let tile = TileShape::new(32, 32, 16);
    bench_case(
        c,
        "balanced_64tiles_4workers",
        shape,
        tile,
        &[
            ("data_parallel", Decomposition::data_parallel(shape, tile)),
            ("stream_k_g4", Decomposition::stream_k(shape, tile, THREADS)),
            ("two_tile_hybrid", Decomposition::two_tile_stream_k_dp(shape, tile, THREADS)),
        ],
    );
}

fn quantization_hostile(c: &mut Criterion) {
    // 5 tiles on 4 workers: data-parallel's second wave is 1/4 full.
    let shape = GemmShape::new(320, 64, 512);
    let tile = TileShape::new(64, 64, 16);
    bench_case(
        c,
        "hostile_5tiles_4workers",
        shape,
        tile,
        &[
            ("data_parallel", Decomposition::data_parallel(shape, tile)),
            ("fixed_split_s2", Decomposition::fixed_split(shape, tile, 2)),
            ("stream_k_g4", Decomposition::stream_k(shape, tile, THREADS)),
            ("two_tile_hybrid", Decomposition::two_tile_stream_k_dp(shape, tile, THREADS)),
        ],
    );
}

fn strong_scaling(c: &mut Criterion) {
    // One 64x64 tile, deep k: data-parallel uses a single worker.
    let shape = GemmShape::new(64, 64, 4096);
    let tile = TileShape::new(64, 64, 16);
    bench_case(
        c,
        "strong_scaling_1tile",
        shape,
        tile,
        &[
            ("data_parallel", Decomposition::data_parallel(shape, tile)),
            ("fixed_split_s4", Decomposition::fixed_split(shape, tile, 4)),
            ("stream_k_g4", Decomposition::stream_k(shape, tile, THREADS)),
        ],
    );
}

fn launch_overhead(c: &mut Criterion) {
    // Small problem where per-launch cost matters: a persistent
    // executor amortizes pool spawn + arena warm-up across launches,
    // a throwaway executor pays both every time.
    let shape = GemmShape::new(64, 64, 64);
    let tile = TileShape::new(32, 32, 16);
    let decomp = Decomposition::stream_k(shape, tile, THREADS);
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 1);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 2);

    let mut group = c.benchmark_group("launch_overhead_64cubed");
    group.sample_size(20);
    let warm = CpuExecutor::with_threads(THREADS);
    let _ = warm.gemm::<f64, f64>(&a, &b, &decomp); // spawn the pool outside the timing loop
    group.bench_function("persistent_executor", |bencher| {
        bencher.iter(|| black_box(warm.gemm::<f64, f64>(black_box(&a), black_box(&b), &decomp)));
    });
    group.bench_function("executor_per_launch", |bencher| {
        bencher.iter(|| {
            let exec = CpuExecutor::with_threads(THREADS);
            black_box(exec.gemm::<f64, f64>(black_box(&a), black_box(&b), &decomp))
        });
    });
    group.finish();
}

criterion_group!(benches, balanced, quantization_hostile, strong_scaling, launch_overhead);
criterion_main!(benches);
