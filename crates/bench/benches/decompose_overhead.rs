//! Criterion benches of decomposition construction and simulation
//! cost — the "launch-time" overhead a library pays per GEMM call.
//!
//! The paper's §5.1 argument is that Stream-K's dynamic configuration
//! (grid-size model + decomposition) is trivial next to
//! ensemble-style kernel selection; these benches quantify both sides
//! of this reproduction's stand-ins.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use streamk_core::{CostModel, Decomposition, GridSizeModel};
use streamk_ensemble::{HeuristicSelector, Oracle, TileEnsemble};
use streamk_sim::{simulate, GpuSpec};
use streamk_types::{GemmShape, Precision, TileShape};

fn decomposition_construction(c: &mut Criterion) {
    let shape = GemmShape::new(4096, 4096, 4096);
    let tile = TileShape::FP16_STREAMK;
    let mut group = c.benchmark_group("decomposition_construction");
    group.bench_function("data_parallel_1024tiles", |b| {
        b.iter(|| black_box(Decomposition::data_parallel(black_box(shape), tile)));
    });
    group.bench_function("two_tile_hybrid_1024tiles", |b| {
        b.iter(|| black_box(Decomposition::two_tile_stream_k_dp(black_box(shape), tile, 108)));
    });
    group.bench_function("grid_model_selection", |b| {
        let model = GridSizeModel::new(CostModel::a100_fp16(), 108);
        b.iter(|| black_box(model.best_grid(black_box(GemmShape::new(128, 128, 16384)), tile)));
    });
    group.finish();
}

fn selection_and_simulation(c: &mut Criterion) {
    let gpu = GpuSpec::a100();
    let shape = GemmShape::new(2048, 2048, 2048);
    let mut group = c.benchmark_group("selection_and_simulation");
    group.bench_function("heuristic_select", |b| {
        let selector = HeuristicSelector::new(TileEnsemble::fp16t32(), gpu.sms);
        b.iter(|| black_box(selector.select(black_box(shape))));
    });
    group.bench_function("oracle_full_sweep", |b| {
        let oracle = Oracle::new(TileEnsemble::fp16t32());
        b.iter(|| black_box(oracle.select(black_box(shape), &gpu)));
    });
    group.bench_function("simulate_two_tile_hybrid", |b| {
        let d = Decomposition::two_tile_stream_k_dp(shape, TileShape::FP16_STREAMK, gpu.sms);
        b.iter(|| black_box(simulate(&d, &gpu, Precision::Fp16To32)));
    });
    group.finish();
}

criterion_group!(benches, decomposition_construction, selection_and_simulation);
criterion_main!(benches);
