//! Criterion benches of the inner kernels: scalar `MacLoop` vs the
//! 4×4 register-blocked microkernel, and the strided (generic) path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use streamk_core::IterSpace;
use streamk_cpu::{mac_loop_blocked, macloop::mac_loop_view};
use streamk_matrix::Matrix;
use streamk_types::{GemmShape, Layout, TileShape};

fn inner_kernels(c: &mut Criterion) {
    let shape = GemmShape::new(64, 64, 512);
    let tile = TileShape::new(64, 64, 16); // 1 tile x 32 iterations
    let space = IterSpace::new(shape, tile);
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 1);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 2);
    let a_t = a.to_layout(Layout::ColMajor);
    let b_t = b.to_layout(Layout::ColMajor);
    let iters = space.iters_per_tile();

    let mut group = c.benchmark_group("inner_kernels_64x64x512_f64");
    group.sample_size(30);
    group.bench_function("scalar_contiguous", |bencher| {
        let mut accum = vec![0.0f64; tile.blk_m * tile.blk_n];
        bencher.iter(|| {
            accum.fill(0.0);
            mac_loop_view(&a.view(), &b.view(), &space, 0, 0, iters, black_box(&mut accum));
        });
    });
    group.bench_function("register_blocked_4x4", |bencher| {
        let mut accum = vec![0.0f64; tile.blk_m * tile.blk_n];
        bencher.iter(|| {
            accum.fill(0.0);
            mac_loop_blocked(&a.view(), &b.view(), &space, 0, 0, iters, black_box(&mut accum));
        });
    });
    group.bench_function("scalar_strided", |bencher| {
        let mut accum = vec![0.0f64; tile.blk_m * tile.blk_n];
        bencher.iter(|| {
            accum.fill(0.0);
            mac_loop_view(&a_t.view(), &b_t.view(), &space, 0, 0, iters, black_box(&mut accum));
        });
    });
    group.finish();
}

criterion_group!(benches, inner_kernels);
criterion_main!(benches);
