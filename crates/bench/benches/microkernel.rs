//! Criterion benches of the inner kernels: scalar `MacLoop` vs the
//! 4×4 register-blocked microkernel vs the packed-panel pipeline, and
//! the strided (generic) path.
//!
//! `packed_vs_blocked_512_f32` is the acceptance bench for the packed
//! pipeline: a 512×512×512 f32→f32 single-thread sweep where the best
//! packed variant must beat `mac_loop_blocked` (the `streamk bench`
//! CLI records the ratio in `BENCH_cpu.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use streamk_core::IterSpace;
use streamk_cpu::{mac_loop_blocked, mac_loop_kernel, macloop::mac_loop_view, KernelKind, PackBuffers};
use streamk_matrix::Matrix;
use streamk_types::{GemmShape, Layout, TileShape};

fn inner_kernels(c: &mut Criterion) {
    let shape = GemmShape::new(64, 64, 512);
    let tile = TileShape::new(64, 64, 16); // 1 tile x 32 iterations
    let space = IterSpace::new(shape, tile);
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 1);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 2);
    let a_t = a.to_layout(Layout::ColMajor);
    let b_t = b.to_layout(Layout::ColMajor);
    let iters = space.iters_per_tile();

    let mut group = c.benchmark_group("inner_kernels_64x64x512_f64");
    group.sample_size(30);
    group.bench_function("scalar_contiguous", |bencher| {
        let mut accum = vec![0.0f64; tile.blk_m * tile.blk_n];
        bencher.iter(|| {
            accum.fill(0.0);
            mac_loop_view(&a.view(), &b.view(), &space, 0, 0, iters, black_box(&mut accum));
        });
    });
    group.bench_function("register_blocked_4x4", |bencher| {
        let mut accum = vec![0.0f64; tile.blk_m * tile.blk_n];
        bencher.iter(|| {
            accum.fill(0.0);
            mac_loop_blocked(&a.view(), &b.view(), &space, 0, 0, iters, black_box(&mut accum));
        });
    });
    for kind in KernelKind::PACKED {
        group.bench_function(kind.name(), |bencher| {
            let mut accum = vec![0.0f64; tile.blk_m * tile.blk_n];
            let mut bufs = PackBuffers::new();
            bencher.iter(|| {
                accum.fill(0.0);
                mac_loop_kernel(kind, &a.view(), &b.view(), &space, 0, 0, iters, black_box(&mut accum), &mut bufs);
            });
        });
    }
    group.bench_function("scalar_strided", |bencher| {
        let mut accum = vec![0.0f64; tile.blk_m * tile.blk_n];
        bencher.iter(|| {
            accum.fill(0.0);
            mac_loop_view(&a_t.view(), &b_t.view(), &space, 0, 0, iters, black_box(&mut accum));
        });
    });
    group.bench_function("packed_strided_8x4", |bencher| {
        // Packing normalizes layout: the strided penalty is paid once
        // per operand element, not once per MAC.
        let mut accum = vec![0.0f64; tile.blk_m * tile.blk_n];
        let mut bufs = PackBuffers::new();
        bencher.iter(|| {
            accum.fill(0.0);
            mac_loop_kernel(
                KernelKind::Packed8x4,
                &a_t.view(),
                &b_t.view(),
                &space,
                0,
                0,
                iters,
                black_box(&mut accum),
                &mut bufs,
            );
        });
    });
    group.finish();
}

/// The acceptance bench: full 512³ f32 GEMM, one thread, every tile
/// through the kernel under test.
fn packed_vs_blocked_512_f32(c: &mut Criterion) {
    let shape = GemmShape::new(512, 512, 512);
    let tile = TileShape::new(64, 64, 16);
    let space = IterSpace::new(shape, tile);
    let a = Matrix::<f32>::random::<f32>(shape.m, shape.k, Layout::RowMajor, 3);
    let b = Matrix::<f32>::random::<f32>(shape.k, shape.n, Layout::RowMajor, 4);
    let iters = space.iters_per_tile();

    let mut group = c.benchmark_group("gemm_512x512x512_f32_1thread");
    group.sample_size(10);
    for kind in [KernelKind::Blocked, KernelKind::Packed8x4, KernelKind::Packed4x8, KernelKind::Packed8x8] {
        group.bench_function(kind.name(), |bencher| {
            let mut accum = vec![0.0f32; tile.blk_m * tile.blk_n];
            let mut bufs = PackBuffers::new();
            bencher.iter(|| {
                for t in 0..space.tiles() {
                    accum.fill(0.0);
                    mac_loop_kernel(kind, &a.view(), &b.view(), &space, t, 0, iters, black_box(&mut accum), &mut bufs);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, inner_kernels, packed_vs_blocked_512_f32);
criterion_main!(benches);
