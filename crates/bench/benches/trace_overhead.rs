//! Criterion bench of the tracing layer's overhead: the same 256³
//! Stream-K launch with span recording off and on.
//!
//! The observability contract is that tracing costs ≤5% wall time —
//! recording is a thread-local ring write plus two `Instant::now`
//! calls per span, no locks, no allocation. `streamk bench` measures
//! and gates the same ratio into `BENCH_cpu.json`; this bench is the
//! statistically careful version of that number.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use streamk_core::Decomposition;
use streamk_cpu::CpuExecutor;
use streamk_matrix::Matrix;
use streamk_types::{GemmShape, Layout, TileShape};

const THREADS: usize = 4;

fn trace_overhead(c: &mut Criterion) {
    let shape = GemmShape::new(256, 256, 256);
    let tile = TileShape::new(32, 32, 16);
    let decomp = Decomposition::stream_k(shape, tile, THREADS);
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 1);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 2);

    let mut group = c.benchmark_group("trace_overhead_256");
    group.sample_size(20);
    for (name, tracing) in [("trace_off", false), ("trace_on", true)] {
        let exec = CpuExecutor::with_threads(THREADS).with_trace(tracing);
        group.bench_function(name, |bencher| {
            bencher.iter(|| black_box(exec.gemm::<f64, f64>(black_box(&a), black_box(&b), &decomp)));
        });
    }
    group.finish();
}

criterion_group!(benches, trace_overhead);
criterion_main!(benches);
