//! Experiment harness for the Stream-K reproduction.
//!
//! One binary per paper table/figure lives in `src/bin/`; this
//! library holds the shared machinery: evaluating the four contenders
//! over a corpus, intensity binning for roofline output, and small
//! CLI/CSV helpers.
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `fig1_fig2` | Figures 1-2: schedules on the hypothetical 4-SM GPU |
//! | `fig3` | Figure 3: basic vs hybrid Stream-K schedules |
//! | `fig4` | Figure 4: the corpus domain |
//! | `fig5_fig6` | Figures 5-6: roofline landscapes, both precisions |
//! | `fig7` | Figure 7: Stream-K speedup vs the cuBLAS stand-in |
//! | `fig8` | Figure 8: grid-size model curves |
//! | `fig9` | Figure 9: strong-scaling schedules |
//! | `table1`, `table2` | Tables 1-2: relative performance summaries |
//! | `ablate_hybrid`, `ablate_gridsize`, `ablate_fixup` | design-choice ablations |

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod plot;

use streamk_corpus::{Corpus, CorpusConfig, RatioStats};
use streamk_ensemble::runners;
use streamk_sim::GpuSpec;
use streamk_types::{GemmShape, Precision};

/// The four contenders' results on one problem shape.
#[derive(Debug, Clone, Copy)]
pub struct ShapeResult {
    /// The problem.
    pub shape: GemmShape,
    /// Arithmetic intensity at the evaluated precision, FLOP/byte.
    pub intensity: f64,
    /// Stream-K makespan, seconds.
    pub sk: f64,
    /// Single-blocking data-parallel makespan, seconds.
    pub dp: f64,
    /// cuBLAS-like heuristic ensemble makespan, seconds.
    pub heuristic: f64,
    /// Oracle ensemble makespan, seconds.
    pub oracle: f64,
    /// Stream-K fraction-of-peak utilization.
    pub sk_util: f64,
    /// Data-parallel utilization.
    pub dp_util: f64,
    /// Heuristic utilization.
    pub heuristic_util: f64,
    /// Oracle utilization.
    pub oracle_util: f64,
}

impl ShapeResult {
    /// Evaluates all four contenders on `shape`.
    #[must_use]
    pub fn evaluate(shape: GemmShape, precision: Precision, gpu: &GpuSpec) -> Self {
        let sk = runners::run_stream_k(shape, precision, gpu);
        let dp = runners::run_dp_single(shape, precision, gpu);
        let heuristic = runners::run_heuristic(shape, precision, gpu);
        let oracle = runners::run_oracle(shape, precision, gpu);
        Self {
            shape,
            intensity: shape.arithmetic_intensity(precision),
            sk: sk.makespan,
            dp: dp.makespan,
            heuristic: heuristic.makespan,
            oracle: oracle.makespan,
            sk_util: sk.utilization(),
            dp_util: dp.utilization(),
            heuristic_util: heuristic.utilization(),
            oracle_util: oracle.utilization(),
        }
    }

    /// Stream-K speedup over the single-blocking data-parallel kernel.
    #[must_use]
    pub fn speedup_vs_dp(&self) -> f64 {
        self.dp / self.sk
    }

    /// Stream-K speedup over the heuristic ensemble.
    #[must_use]
    pub fn speedup_vs_heuristic(&self) -> f64 {
        self.heuristic / self.sk
    }

    /// Stream-K speedup over the oracle.
    #[must_use]
    pub fn speedup_vs_oracle(&self) -> f64 {
        self.oracle / self.sk
    }
}

/// Evaluates the four contenders over every shape in `corpus`.
#[must_use]
pub fn evaluate_corpus(corpus: &Corpus, precision: Precision, gpu: &GpuSpec) -> Vec<ShapeResult> {
    corpus.shapes().iter().map(|&s| ShapeResult::evaluate(s, precision, gpu)).collect()
}

/// The paper's Table 1/Table 2 row set for one precision: Stream-K
/// relative performance vs the three baselines plus the compute-bound
/// heuristic subset.
#[derive(Debug, Clone)]
pub struct RelativePerformanceTable {
    /// Precision evaluated.
    pub precision: Precision,
    /// vs the same-blocking data-parallel kernel.
    pub vs_dp: RatioStats,
    /// vs the cuBLAS-like heuristic ensemble.
    pub vs_heuristic: RatioStats,
    /// vs the heuristic, restricted to compute-bound problems.
    pub vs_heuristic_compute_bound: RatioStats,
    /// vs the idealized oracle.
    pub vs_oracle: RatioStats,
}

impl RelativePerformanceTable {
    /// Builds the table from per-shape results.
    ///
    /// # Panics
    ///
    /// Panics if `results` is empty or contains no compute-bound
    /// problems.
    #[must_use]
    pub fn build(results: &[ShapeResult], precision: Precision) -> Self {
        let vs_dp: Vec<f64> = results.iter().map(ShapeResult::speedup_vs_dp).collect();
        let vs_heuristic: Vec<f64> = results.iter().map(ShapeResult::speedup_vs_heuristic).collect();
        let threshold = precision.compute_bound_threshold();
        let vs_heuristic_cb: Vec<f64> = results
            .iter()
            .filter(|r| r.intensity > threshold)
            .map(ShapeResult::speedup_vs_heuristic)
            .collect();
        let vs_oracle: Vec<f64> = results.iter().map(ShapeResult::speedup_vs_oracle).collect();
        Self {
            precision,
            vs_dp: RatioStats::of(&vs_dp),
            vs_heuristic: RatioStats::of(&vs_heuristic),
            vs_heuristic_compute_bound: RatioStats::of(&vs_heuristic_cb),
            vs_oracle: RatioStats::of(&vs_oracle),
        }
    }

    /// Renders the table in the paper's layout.
    #[must_use]
    pub fn render(&self) -> String {
        let header = match self.precision {
            Precision::Fp64 => "Table 1. Stream-K FP64 Relative Performance",
            Precision::Fp16To32 => "Table 2. Stream-K FP16->32 Relative Performance",
        };
        let cols = [
            ("vs data-parallel (same blocking)", &self.vs_dp),
            ("vs cuBLAS-like heuristic", &self.vs_heuristic),
            ("vs heuristic, compute-bound only", &self.vs_heuristic_compute_bound),
            ("vs oracle ensemble", &self.vs_oracle),
        ];
        let mut out = format!("{header}\n");
        out.push_str(&format!("{:<36} {:>8} {:>8} {:>8} {:>8}\n", "", "Average", "StdDev", "Min", "Max"));
        for (label, s) in cols {
            out.push_str(&format!(
                "{:<36} {:>7.2}x {:>8.2} {:>7.2}x {:>7.2}x\n",
                label, s.avg, s.stddev, s.min, s.max
            ));
        }
        out
    }
}

/// Mean utilization per logarithmic intensity bin — the data series
/// behind a roofline landscape plot (Figures 5-6).
#[must_use]
pub fn roofline_series(points: &[(f64, f64)], bins: usize) -> Vec<(f64, f64, f64, f64)> {
    assert!(bins > 0, "need at least one bin");
    if points.is_empty() {
        return Vec::new();
    }
    let lo = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min).ln();
    let hi = points.iter().map(|p| p.0).fold(0.0f64, f64::max).ln();
    let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
    let mut acc: Vec<Vec<f64>> = vec![Vec::new(); bins];
    for &(x, y) in points {
        let b = (((x.ln() - lo) / width) as usize).min(bins - 1);
        acc[b].push(y);
    }
    acc.into_iter()
        .enumerate()
        .filter(|(_, ys)| !ys.is_empty())
        .map(|(i, ys)| {
            let center = (lo + (i as f64 + 0.5) * width).exp();
            let mean = ys.iter().sum::<f64>() / ys.len() as f64;
            let min = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let max = ys.iter().copied().fold(0.0f64, f64::max);
            (center, mean, min, max)
        })
        .collect()
}

/// Shared CLI convention for the corpus binaries: the first positional
/// argument (if any) overrides the corpus size; `--full` forces the
/// paper's 32,824. The default keeps interactive runs snappy.
#[must_use]
pub fn corpus_from_args(default_count: usize) -> Corpus {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = if args.iter().any(|a| a == "--full") {
        CorpusConfig::paper()
    } else if let Some(n) = args.iter().find_map(|a| a.parse::<usize>().ok()) {
        CorpusConfig::smoke(n)
    } else {
        CorpusConfig::smoke(default_count)
    };
    eprintln!("# corpus: {} shapes (use --full for the paper's 32,824)", config.count);
    Corpus::generate(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_result_sane() {
        let gpu = GpuSpec::a100();
        let r = ShapeResult::evaluate(GemmShape::new(512, 512, 512), Precision::Fp64, &gpu);
        assert!(r.sk > 0.0 && r.dp > 0.0 && r.heuristic > 0.0 && r.oracle > 0.0);
        assert!(r.sk_util > 0.0 && r.sk_util <= 1.0);
        // The oracle never loses to the plain DP kernel.
        assert!(r.oracle <= r.dp * 1.0001);
    }

    #[test]
    fn table_builds_from_small_corpus() {
        let gpu = GpuSpec::a100();
        let corpus = Corpus::generate(CorpusConfig::smoke(40));
        let results = evaluate_corpus(&corpus, Precision::Fp16To32, &gpu);
        let table = RelativePerformanceTable::build(&results, Precision::Fp16To32);
        // Headline property: Stream-K at least matches data-parallel
        // on average (it generalizes it).
        assert!(table.vs_dp.avg >= 1.0, "{}", table.render());
        let text = table.render();
        assert!(text.contains("Table 2"));
        assert!(text.contains("vs oracle"));
    }

    #[test]
    fn roofline_bins_cover_all_points() {
        let points: Vec<(f64, f64)> = (1..=1000).map(|i| (f64::from(i), 0.5)).collect();
        let series = roofline_series(&points, 16);
        assert!(!series.is_empty());
        for (center, mean, min, max) in series {
            assert!(center > 0.0);
            assert!((mean - 0.5).abs() < 1e-12);
            assert_eq!((min, max), (0.5, 0.5));
        }
    }
}
