//! Figures 5 and 6: "roofline" performance-utilization landscapes on
//! the simulated A100 across the evaluation corpus.
//!
//! For each precision (Figure 6 = FP64, Figure 5 = FP16→32) and each
//! of the four contenders, emits the per-shape (arithmetic intensity,
//! % of peak) cloud as CSV, then a binned summary series with the
//! mean/min/max utilization per intensity decade — the paper's
//! headline observation being that Stream-K's band is the tightest
//! and highest.

use streamk_bench::plot::{render_roofline_svg, PlotOptions, Series};
use streamk_bench::{corpus_from_args, evaluate_corpus, roofline_series};
use streamk_sim::GpuSpec;
use streamk_types::Precision;

type UtilFn = Box<dyn Fn(&streamk_bench::ShapeResult) -> f64>;

fn main() {
    let corpus = corpus_from_args(4000);
    let gpu = GpuSpec::a100();
    let want_svg = std::env::args().any(|a| a == "--svg");

    for (figure, precision) in [("fig6", Precision::Fp64), ("fig5", Precision::Fp16To32)] {
        eprintln!("# evaluating {} on {} shapes...", precision, corpus.len());
        let results = evaluate_corpus(&corpus, precision, &gpu);

        println!("figure,impl,intensity_flops_per_byte,utilization");
        let series: [(&str, UtilFn); 4] = [
            ("data-parallel", Box::new(|r| r.dp_util)),
            ("cublas-like", Box::new(|r| r.heuristic_util)),
            ("oracle", Box::new(|r| r.oracle_util)),
            ("stream-k", Box::new(|r| r.sk_util)),
        ];
        for (name, util) in &series {
            for r in &results {
                println!("{figure},{name},{:.3},{:.4}", r.intensity, util(r));
            }
        }

        if want_svg {
            let svg_series: Vec<Series> = series
                .iter()
                .zip(["#d62728", "#ff9900", "#2ca02c", "#1f77b4"])
                .map(|((name, util), color)| Series {
                    name: (*name).to_string(),
                    color: color.to_string(),
                    points: results.iter().map(|r| (r.intensity, util(r))).collect(),
                })
                .collect();
            let svg = render_roofline_svg(&svg_series, &gpu, precision, &PlotOptions::default());
            let path = format!("target/figures/{figure}_roofline.svg");
            let _ = std::fs::create_dir_all("target/figures");
            match std::fs::write(&path, svg) {
                Ok(()) => eprintln!("# wrote {path}"),
                Err(e) => eprintln!("# failed to write {path}: {e}"),
            }
        }

        // Binned band summary (the visual "spread" of each panel).
        for (name, util) in &series {
            let points: Vec<(f64, f64)> = results.iter().map(|r| (r.intensity, util(r))).collect();
            eprintln!("# {figure} {name}: intensity-binned utilization (center, mean, min, max)");
            for (center, mean, min, max) in roofline_series(&points, 12) {
                eprintln!("#   {center:>10.1}  mean {mean:.3}  min {min:.3}  max {max:.3}  spread {:.3}", max - min);
            }
            let mean_all = points.iter().map(|p| p.1).sum::<f64>() / points.len() as f64;
            eprintln!("#   overall mean utilization: {mean_all:.3}");
        }
    }
}
