//! Ablation A1: how much do the §5.2 hybrid schedules buy over basic
//! Stream-K?
//!
//! Sweeps quantization-hostile shapes (tile counts straddling
//! multiples of the SM count) and compares basic Stream-K (g = p),
//! the "DP + one-tile SK" hybrid, and the production "two-tile SK +
//! DP" hybrid on makespan, fixup-wait stalls, and tile-processing
//! skew.

use streamk_core::{skew::skew_report, Decomposition};
use streamk_corpus::stats::geometric_mean;
use streamk_sim::{simulate, GpuSpec};
use streamk_types::{GemmShape, Precision, TileShape};

fn main() {
    let gpu = GpuSpec::a100();
    let tile = TileShape::FP16_STREAMK;
    let p = gpu.sms;

    println!("tiles,waves_remainder,basic_s,one_tile_s,two_tile_s,two_vs_basic,basic_wait_s,two_tile_wait_s,basic_skewed_ctas,two_tile_skewed_ctas");
    let mut two_vs_basic = Vec::new();
    let mut two_vs_one = Vec::new();

    // Tile counts from just above one wave to several waves, hitting
    // every remainder class r ∈ {1, p/4, p/2, 3p/4, p-1}.
    for waves in 1..=4usize {
        for r in [1, p / 4, p / 2, 3 * p / 4, p - 1] {
            let tiles = waves * p + r;
            // Factor `tiles` into a plausible (tiles_m, tiles_n).
            let tiles_m = (1..=tiles).filter(|d| tiles.is_multiple_of(*d)).min_by_key(|&d| (d as i64 - (tiles as f64).sqrt() as i64).abs()).unwrap();
            let tiles_n = tiles / tiles_m;
            let shape = GemmShape::new(tiles_m * tile.blk_m, tiles_n * tile.blk_n, 4096);

            let basic = simulate(&Decomposition::stream_k(shape, tile, p), &gpu, Precision::Fp16To32);
            let one = simulate(&Decomposition::dp_one_tile_stream_k(shape, tile, p), &gpu, Precision::Fp16To32);
            let two = simulate(&Decomposition::two_tile_stream_k_dp(shape, tile, p), &gpu, Precision::Fp16To32);

            let basic_skew = skew_report(&Decomposition::stream_k(shape, tile, p));
            let two_skew = skew_report(&Decomposition::two_tile_stream_k_dp(shape, tile, p));
            let skewed = |s: &streamk_core::skew::SkewReport| {
                s.start_k_offsets.iter().filter(|&&o| o != 0).count()
            };

            println!(
                "{tiles},{r},{:.4e},{:.4e},{:.4e},{:.3},{:.3e},{:.3e},{},{}",
                basic.makespan,
                one.makespan,
                two.makespan,
                basic.makespan / two.makespan,
                basic.total_wait,
                two.total_wait,
                skewed(&basic_skew),
                skewed(&two_skew)
            );
            two_vs_basic.push(basic.makespan / two.makespan);
            two_vs_one.push(one.makespan / two.makespan);
        }
    }

    eprintln!("# two-tile hybrid vs basic Stream-K: geomean speedup {:.3}x", geometric_mean(&two_vs_basic));
    eprintln!("# two-tile hybrid vs one-tile hybrid: geomean speedup {:.3}x", geometric_mean(&two_vs_one));
}
