//! Figure 9: strong-scaling comparison of data-parallel and Stream-K
//! schedules for a 128×128×384 GEMM (a single output tile with a deep
//! accumulation axis) on the hypothetical four-SM GPU.
//!
//! Data-parallel serializes the whole k-extent in one CTA; Stream-K
//! spreads it across all four SMs.

use streamk_core::Decomposition;
use streamk_sim::{render_gantt, simulate, GpuSpec};
use streamk_types::{GemmShape, Precision, TileShape};

fn main() {
    let shape = GemmShape::new(128, 128, 384);
    let tile = TileShape::new(128, 128, 4); // 1 tile, 96 MAC iterations
    let gpu = GpuSpec::hypothetical_4sm();

    let dp = Decomposition::data_parallel(shape, tile);
    let sk = Decomposition::stream_k(shape, tile, 4);

    println!("128x128x384 GEMM (one output tile, 96 MAC iterations) on a hypothetical four-SM GPU\n");

    let dp_report = simulate(&dp, &gpu, Precision::Fp64);
    println!("Figure 9 (top): data-parallel — the k-dimension is sequentially processed by one CTA");
    print!("{}", render_gantt(&dp_report, 72));
    println!();

    let sk_report = simulate(&sk, &gpu, Precision::Fp64);
    println!("Figure 9 (bottom): Stream-K g=4 — parallelism across the k-dimension");
    print!("{}", render_gantt(&sk_report, 72));
    println!();

    println!(
        "strong-scaling speedup: {:.2}x (makespan {:.3e}s -> {:.3e}s)",
        sk_report.speedup_over(&dp_report),
        dp_report.makespan,
        sk_report.makespan
    );
}
