//! Ablation A8 (§2's world, quantified): Stream-K's single kernel vs
//! per-shape exhaustive auto-tuning and a MAGMA-style distilled
//! ensemble.
//!
//! The tuner evaluates >100 (tile, split) specializations per shape —
//! an upper bound on any selection heuristic. The distilled ensemble
//! reproduces MAGMA's three-to-five-kernel distillation. Stream-K
//! ships ONE kernel per precision and no selection machinery.

use streamk_corpus::stats::geometric_mean;
use streamk_corpus::{Corpus, CorpusConfig};
use streamk_ensemble::{runners, Oracle};
use streamk_sim::GpuSpec;
use streamk_tune::{distill_ensemble, AutoTuner};
use streamk_types::Precision;

fn main() {
    let gpu = GpuSpec::a100();
    let precision = Precision::Fp16To32;
    // Tuning simulates the full candidate space per shape: keep the
    // corpus modest.
    let train = Corpus::generate(CorpusConfig::smoke(60));
    let test = Corpus::generate(CorpusConfig { seed: 0xBEEF, ..CorpusConfig::smoke(120) });

    let tuner = AutoTuner::new(precision, gpu.clone());
    eprintln!("# tuner sweeps {} specializations per shape", tuner.candidates());

    eprintln!("# distilling a 4-kernel MAGMA-style ensemble from {} training shapes...", train.len());
    let distilled = distill_ensemble(train.shapes(), precision, &gpu, 4);
    for c in &distilled.configs {
        eprintln!("#   member: {} at {:.2} efficiency", c.tile, c.mac_efficiency);
    }
    let distilled_oracle = Oracle::new(distilled);

    println!("m,n,k,stream_k_s,tuned_s,distilled_oracle_s,sk_vs_tuned,sk_vs_distilled");
    let mut vs_tuned = Vec::new();
    let mut vs_distilled = Vec::new();
    for &shape in test.shapes() {
        let sk = runners::run_stream_k(shape, precision, &gpu);
        let tuned = tuner.tune(shape);
        let (_, dist) = distilled_oracle.select(shape, &gpu);
        println!(
            "{},{},{},{:.4e},{:.4e},{:.4e},{:.3},{:.3}",
            shape.m,
            shape.n,
            shape.k,
            sk.makespan,
            tuned.report.makespan,
            dist.makespan,
            tuned.report.makespan / sk.makespan,
            dist.makespan / sk.makespan
        );
        vs_tuned.push(tuned.report.makespan / sk.makespan);
        vs_distilled.push(dist.makespan / sk.makespan);
    }
    eprintln!("# stream-k vs exhaustive per-shape tuner: geomean {:.3}x (1 kernel vs {} specializations/shape)", geometric_mean(&vs_tuned), tuner.candidates());
    eprintln!("# stream-k vs distilled 4-kernel oracle : geomean {:.3}x", geometric_mean(&vs_distilled));
}
