//! Figures 1 and 2: execution schedules of a 384×384×128 GEMM on the
//! paper's hypothetical four-SM GPU.
//!
//! - Fig 1a: data-parallel, 128×128 tiles → 9 CTAs, 75% ceiling.
//! - Fig 1b: data-parallel, 128×64 tiles → 18 CTAs, 90% ceiling.
//! - Fig 2a: fixed-split s=2 → 18 CTAs, 90% quantization efficiency.
//! - Fig 2b: basic Stream-K g=4 → 4 CTAs, ~100% quantization
//!   efficiency.

use streamk_core::Decomposition;
use streamk_sim::{render_gantt, simulate, GpuSpec};
use streamk_types::{GemmShape, Precision, TileShape};

fn main() {
    let shape = GemmShape::new(384, 384, 128);
    let gpu = GpuSpec::hypothetical_4sm();

    let cases = [
        (
            "Figure 1a: data-parallel, 128x128x128 CTA work volumes (g=9)",
            Decomposition::data_parallel(shape, TileShape::new(128, 128, 128)),
        ),
        (
            "Figure 1b: data-parallel, 128x64x128 CTA work volumes (g=18)",
            Decomposition::data_parallel(shape, TileShape::new(128, 64, 128)),
        ),
        (
            "Figure 2a: fixed-split s=2, 128x128x64 CTA work volumes (g=18)",
            Decomposition::fixed_split(shape, TileShape::new(128, 128, 64), 2),
        ),
        (
            "Figure 2b: basic Stream-K, 128x128x288 CTA work volumes (g=4)",
            Decomposition::stream_k(shape, TileShape::new(128, 128, 4), 4),
        ),
    ];

    println!("384x384x128 GEMM on a hypothetical four-SM GPU\n");
    for (title, decomp) in cases {
        let report = simulate(&decomp, &gpu, Precision::Fp64);
        println!("{title}");
        println!(
            "  grid {} CTAs, {} output tiles, {} split seams",
            decomp.grid_size(),
            decomp.space().tiles(),
            decomp.split_tiles()
        );
        print!("{}", render_gantt(&report, 72));
        println!();
    }
}
