//! Ablation A6 (§1's motivation): quantization inefficiency grows
//! with processor width.
//!
//! "Such oversubscription has shrunk considerably as processors have
//! grown in size" — sweeping the SM count from 16 to 256 over a fixed
//! corpus, the data-parallel kernel's mean utilization decays (the
//! final partial wave is an ever larger fraction of the schedule)
//! while Stream-K's stays flat.

use streamk_bench::corpus_from_args;
use streamk_corpus::stats::geometric_mean;
use streamk_ensemble::runners;
use streamk_sim::GpuSpec;
use streamk_types::Precision;

fn main() {
    let corpus = corpus_from_args(600);
    let precision = Precision::Fp16To32;

    println!("sms,dp_mean_util,sk_mean_util,sk_vs_dp_geomean");
    for sms in [16usize, 32, 64, 108, 160, 256] {
        let mut gpu = GpuSpec::a100();
        // Scale peak with width so per-SM throughput is constant —
        // this isolates the quantization effect from raw speed.
        let scale = sms as f64 / 108.0;
        gpu.sms = sms;
        gpu.fp16t32_tflops *= scale;
        gpu.fp64_tflops *= scale;
        gpu.mem_bw *= scale;
        gpu.l2_bw *= scale;

        let mut dp_utils = Vec::new();
        let mut sk_utils = Vec::new();
        let mut ratios = Vec::new();
        for &shape in corpus.shapes() {
            let dp = runners::run_dp_single(shape, precision, &gpu);
            let sk = runners::run_stream_k(shape, precision, &gpu);
            dp_utils.push(dp.utilization());
            sk_utils.push(sk.utilization());
            ratios.push(sk.speedup_over(&dp));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{sms},{:.4},{:.4},{:.3}",
            mean(&dp_utils),
            mean(&sk_utils),
            geometric_mean(&ratios)
        );
    }
    eprintln!("# expectation: both decay as the fixed corpus shrinks relative to the machine,");
    eprintln!("# but dp decays faster, so Stream-K's geomean advantage widens with width.");
}
