//! Ablation A5 (§7 future work): cache-aware tile-access patterns.
//!
//! For grids of output tiles from a few waves to many, computes the
//! *wave footprint* — distinct A row-panels + B column-panels one
//! 108-CTA wave touches — under row-major, CUTLASS-style
//! column-grouped, and Morton traversal. Smaller footprints mean the
//! wave's working set fits deeper in the L2.
//!
//! Also verifies (via the CPU executor) that re-ordered schedules
//! remain numerically correct.

use streamk_core::order::{tile_permutation, wave_footprint, TileOrder};
use streamk_core::Decomposition;
use streamk_cpu::CpuExecutor;
use streamk_matrix::reference::gemm_naive;
use streamk_matrix::Matrix;
use streamk_types::{GemmShape, Layout, TileShape};

fn main() {
    let wave = 108;

    println!("tiles_m,tiles_n,row_major_footprint,column_grouped8_footprint,morton_footprint,morton_vs_row_major");
    for (tm, tn) in [(12, 12), (16, 16), (32, 32), (64, 64), (16, 64), (64, 16), (11, 37)] {
        let rm = wave_footprint(&tile_permutation(TileOrder::RowMajor, tm, tn), wave);
        let cg = wave_footprint(&tile_permutation(TileOrder::ColumnGrouped(8), tm, tn), wave);
        let mo = wave_footprint(&tile_permutation(TileOrder::Morton, tm, tn), wave);
        println!("{tm},{tn},{rm:.2},{cg:.2},{mo:.2},{:.3}", rm / mo);
    }

    // Correctness of a Morton-ordered Stream-K schedule on real
    // threads.
    let shape = GemmShape::new(96, 96, 64);
    let tile = TileShape::new(16, 16, 8);
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 1);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 2);
    let reference = gemm_naive::<f64, f64>(&a, &b);
    let exec = CpuExecutor::with_threads(4);
    for order in [TileOrder::RowMajor, TileOrder::ColumnGrouped(2), TileOrder::Morton] {
        let d = Decomposition::stream_k(shape, tile, 4).with_tile_order(order);
        let c = exec.gemm::<f64, f64>(&a, &b, &d);
        c.assert_close(&reference, 1e-12);
    }
    eprintln!("# all tile orders verified numerically on the CPU executor");
    eprintln!("# expectation: Morton footprints approach 2·sqrt(wave) ≈ 21 per wave on");
    eprintln!("# large square grids, vs 1 + wave for row-major rows.");
}
