//! Figure 3: basic Stream-K vs the two §5.2 hybrid schedules for an
//! 896×384×128 GEMM (21 output tiles, 128×128×32 blocking) on the
//! hypothetical four-SM GPU — plus the tile-processing skew each
//! schedule exhibits.

use streamk_core::{skew::skew_report, Decomposition};
use streamk_sim::{render_gantt, simulate, GpuSpec};
use streamk_types::{GemmShape, Precision, TileShape};

fn main() {
    let shape = GemmShape::new(896, 384, 128);
    let tile = TileShape::new(128, 128, 32);
    let gpu = GpuSpec::hypothetical_4sm();

    let cases = [
        ("Figure 3a: basic Stream-K (g=4)", Decomposition::stream_k(shape, tile, 4)),
        (
            "Figure 3b: data-parallel + one-tile Stream-K",
            Decomposition::dp_one_tile_stream_k(shape, tile, 4),
        ),
        (
            "Figure 3c: two-tile Stream-K + data-parallel",
            Decomposition::two_tile_stream_k_dp(shape, tile, 4),
        ),
    ];

    println!("896x384x128 GEMM (21 tiles, 4 iters/tile) on a hypothetical four-SM GPU\n");
    for (title, decomp) in cases {
        let report = simulate(&decomp, &gpu, Precision::Fp16To32);
        let skew = skew_report(&decomp);
        println!("{title}");
        println!(
            "  grid {} CTAs, {} split seams, max fixup peers/tile {}",
            decomp.grid_size(),
            decomp.split_tiles(),
            decomp.fixups().iter().map(|f| f.covering_ctas()).max().unwrap_or(1)
        );
        println!(
            "  skew: {} distinct start offsets, max {} k-elements, {:.0}% of CTAs tile-aligned",
            skew.distinct_offsets,
            skew.max_skew_elements,
            skew.aligned_fraction * 100.0
        );
        print!("{}", render_gantt(&report, 72));
        println!();
    }
}
