//! Ablation A7 (§7 future work, batched form): one Stream-K grid over
//! a batch of small GEMMs vs per-instance data-parallel dispatch.
//!
//! Sweeps batch size for an attention-sized instance and reports the
//! simulated A100 makespans (per-instance dispatch pays one launch
//! per GEMM and quantizes each small grid independently; batched
//! Stream-K pays one launch and balances globally).

use streamk_core::{BatchedDecomposition, BatchedSpace, Decomposition};
use streamk_sim::{simulate, simulate_batched, GpuSpec};
use streamk_types::{GemmShape, Precision, TileShape};

fn main() {
    let gpu = GpuSpec::a100();
    let precision = Precision::Fp16To32;
    // One attention-head-sized instance: 3x3 tiles at the default
    // blocking, deep enough k to be compute-bound.
    let shape = GemmShape::new(384, 384, 4096);
    let tile = TileShape::FP16_STREAMK;

    println!("batch,global_tiles,per_instance_s,batched_dp_s,batched_sk_s,sk_vs_per_instance,sk_vs_batched_dp,sk_util");
    for batch in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let per_instance: f64 = (0..batch)
            .map(|_| simulate(&Decomposition::data_parallel(shape, tile), &gpu, precision).makespan)
            .sum();

        let space = BatchedSpace::new(batch, shape, tile);
        let global_tiles = space.tiles();
        let bdp = simulate_batched(&BatchedDecomposition::data_parallel(space.clone()), &gpu, precision);
        let bsk = simulate_batched(&BatchedDecomposition::stream_k(space, gpu.sms), &gpu, precision);

        println!(
            "{batch},{global_tiles},{per_instance:.4e},{:.4e},{:.4e},{:.2},{:.2},{:.3}",
            bdp.makespan,
            bsk.makespan,
            per_instance / bsk.makespan,
            bdp.makespan / bsk.makespan,
            bsk.utilization()
        );
    }
    eprintln!("# expectation: per-instance dispatch wastes ~(1 - 9/108) of the machine per");
    eprintln!("# launch; batched Stream-K approaches full utilization once the batch");
    eprintln!("# supplies more than one wave of work.");
}
