//! Figure 7: Stream-K speedup vs the cuBLAS-like ensemble as a
//! function of arithmetic intensity, for both precisions.
//!
//! The paper's claim: above the compute-bound threshold (150 ops/B
//! FP64, 400 ops/B FP16→32) Stream-K is unilaterally at least as fast;
//! below it the relative performance is noisy ("Stream-K is attempting
//! to make memory-bound computations run faster by adding more memory
//! workload").

use streamk_bench::{corpus_from_args, evaluate_corpus};
use streamk_corpus::RatioStats;
use streamk_sim::GpuSpec;
use streamk_types::Precision;

fn main() {
    let corpus = corpus_from_args(4000);
    let gpu = GpuSpec::a100();

    for (figure, precision) in [("fig7a", Precision::Fp64), ("fig7b", Precision::Fp16To32)] {
        eprintln!("# evaluating {precision} on {} shapes...", corpus.len());
        let results = evaluate_corpus(&corpus, precision, &gpu);
        let threshold = precision.compute_bound_threshold();

        println!("figure,intensity_flops_per_byte,speedup_vs_cublas_like,compute_bound");
        for r in &results {
            println!(
                "{figure},{:.3},{:.4},{}",
                r.intensity,
                r.speedup_vs_heuristic(),
                u8::from(r.intensity > threshold)
            );
        }

        let above: Vec<f64> = results.iter().filter(|r| r.intensity > threshold).map(|r| r.speedup_vs_heuristic()).collect();
        let below: Vec<f64> = results.iter().filter(|r| r.intensity <= threshold).map(|r| r.speedup_vs_heuristic()).collect();
        eprintln!("# {figure} ({precision}) vs cuBLAS-like, threshold {threshold} ops/B");
        if !above.is_empty() {
            let s = RatioStats::of(&above);
            eprintln!("#   compute-bound  : {}", s.table_row());
            eprintln!("#   compute-bound win fraction (>= 1.0x): {:.3}", RatioStats::win_fraction(&above));
        }
        if !below.is_empty() {
            let s = RatioStats::of(&below);
            eprintln!("#   memory-bound   : {}", s.table_row());
            eprintln!("#   memory-bound win fraction (>= 1.0x): {:.3}", RatioStats::win_fraction(&below));
        }
    }
}
