//! Ablation A3: sensitivity of the data-parallel / Stream-K crossover
//! to the fixup cost `d`.
//!
//! Stream-K's proposition is strong scaling: splitting pays until the
//! per-peer reduction cost outweighs the saved iterations. This sweep
//! scales `d` (and the partial-store cost `b` with it) from free to
//! 8× the calibrated value and reports, for a single-tile deep-k
//! problem, the model-selected grid and the simulated speedup over
//! data-parallel — showing the crossover migrate toward g = t as
//! fixup gets expensive.

use streamk_core::{CostModel, Decomposition, GridSizeModel};
use streamk_sim::{simulate, GpuSpec};
use streamk_types::{GemmShape, Precision, TileShape};

fn main() {
    let tile = TileShape::FP16_STREAMK;
    let shape = GemmShape::new(128, 128, 16384); // 1 tile, 512 iterations
    let base = CostModel::a100_fp16();

    println!("d_scale,d_units,g_star,sk_s,dp_s,speedup_vs_dp");
    for scale in [0.0, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let cost = CostModel { b: base.b * scale, d: base.d * scale, ..base };
        let mut gpu = GpuSpec::a100();
        gpu.fp16t32_units = cost;
        let model = GridSizeModel::new(cost, gpu.sms);

        let g_star = model.best_grid(shape, tile);
        let sk = simulate(&Decomposition::stream_k(shape, tile, g_star), &gpu, Precision::Fp16To32);
        let dp = simulate(&Decomposition::data_parallel(shape, tile), &gpu, Precision::Fp16To32);

        println!(
            "{scale},{:.1},{g_star},{:.4e},{:.4e},{:.3}",
            cost.d,
            sk.makespan,
            dp.makespan,
            sk.speedup_over(&dp)
        );
    }
    eprintln!("# expectation: g* falls and the speedup shrinks toward 1x as d grows;");
    eprintln!("# with free fixup (scale 0) the model fills the processor (g* = min(p, iters)).");
}
