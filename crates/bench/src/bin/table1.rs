//! Table 1: Stream-K FP64 relative performance over the evaluation
//! corpus — average / stddev / min / max speedup vs the
//! same-blocking data-parallel kernel, the cuBLAS-like ensemble
//! (all problems and compute-bound only), and the oracle ensemble.

use streamk_bench::{corpus_from_args, evaluate_corpus, RelativePerformanceTable};
use streamk_sim::GpuSpec;
use streamk_types::Precision;

fn main() {
    let corpus = corpus_from_args(4000);
    let gpu = GpuSpec::a100();
    eprintln!("# evaluating FP64 on {} shapes...", corpus.len());
    let results = evaluate_corpus(&corpus, Precision::Fp64, &gpu);
    let table = RelativePerformanceTable::build(&results, Precision::Fp64);
    print!("{}", table.render());
}
