//! Table 2: Stream-K FP16→32 relative performance over the evaluation
//! corpus — the mixed-precision counterpart of Table 1.

use streamk_bench::{corpus_from_args, evaluate_corpus, RelativePerformanceTable};
use streamk_sim::GpuSpec;
use streamk_types::Precision;

fn main() {
    let corpus = corpus_from_args(4000);
    let gpu = GpuSpec::a100();
    eprintln!("# evaluating FP16->32 on {} shapes...", corpus.len());
    let results = evaluate_corpus(&corpus, Precision::Fp16To32, &gpu);
    let table = RelativePerformanceTable::build(&results, Precision::Fp16To32);
    print!("{}", table.render());
}
