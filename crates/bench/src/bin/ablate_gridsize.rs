//! Ablation A2: what does the Appendix A.1 grid-size model buy over
//! fixed policies?
//!
//! In the strong-scaling regime (fewer tiles than SMs) compares
//! Stream-K launched at the model-selected grid against the two fixed
//! extremes the appendix discusses: `g = p` (fill the processor) and
//! `g = t` (no splitting, i.e. data-parallel).

use streamk_core::{CostModel, Decomposition, GridSizeModel};
use streamk_corpus::stats::geometric_mean;
use streamk_sim::{simulate, GpuSpec};
use streamk_types::{GemmShape, Precision, TileShape};

fn main() {
    let gpu = GpuSpec::a100();
    let tile = TileShape::FP16_STREAMK;
    let model = GridSizeModel::new(CostModel::a100_fp16(), gpu.sms);

    // Strong-scaling shapes: 1..64 tiles with k-extents from shallow
    // to deep (the Figure 8 regime).
    let mut vs_full = Vec::new();
    let mut vs_none = Vec::new();
    println!("m,n,k,tiles,iters_per_tile,g_star,model_s,g_eq_p_s,g_eq_t_s,model_vs_p,model_vs_t");
    for (tm, tn) in [(1, 1), (1, 4), (2, 4), (4, 4), (7, 8), (8, 8)] {
        for k in [1024usize, 4096, 8192, 16384] {
            let shape = GemmShape::new(tm * tile.blk_m, tn * tile.blk_n, k);
            let tiles = tile.output_tiles(shape);
            let g_star = model.best_grid(shape, tile);

            let run = |g: usize| simulate(&Decomposition::stream_k(shape, tile, g), &gpu, Precision::Fp16To32);
            let modeled = run(g_star);
            let full = run(gpu.sms.min(tile.total_iters(shape)));
            let none = run(tiles);

            println!(
                "{},{},{},{tiles},{},{g_star},{:.4e},{:.4e},{:.4e},{:.3},{:.3}",
                shape.m,
                shape.n,
                shape.k,
                tile.iters_per_tile(shape),
                modeled.makespan,
                full.makespan,
                none.makespan,
                full.makespan / modeled.makespan,
                none.makespan / modeled.makespan
            );
            vs_full.push(full.makespan / modeled.makespan);
            vs_none.push(none.makespan / modeled.makespan);
        }
    }

    eprintln!("# model-selected grid vs always-fill (g=p): geomean {:.3}x", geometric_mean(&vs_full));
    eprintln!("# model-selected grid vs never-split (g=t): geomean {:.3}x", geometric_mean(&vs_none));
}
