//! Renders the schedule figures (1, 2, 3, 9) as SVG files under
//! `target/figures/`.

use std::fs;
use std::path::Path;
use streamk_core::Decomposition;
use streamk_sim::{render_svg, simulate, GpuSpec, SvgOptions};
use streamk_types::{GemmShape, Precision, TileShape};

fn main() -> std::io::Result<()> {
    let out_dir = Path::new("target/figures");
    fs::create_dir_all(out_dir)?;
    let gpu = GpuSpec::hypothetical_4sm();
    let options = SvgOptions::default();

    let fig12_shape = GemmShape::new(384, 384, 128);
    let fig3_shape = GemmShape::new(896, 384, 128);
    let fig3_tile = TileShape::new(128, 128, 32);
    let fig9_shape = GemmShape::new(128, 128, 384);

    let figures: Vec<(&str, Decomposition)> = vec![
        ("fig1a_data_parallel", Decomposition::data_parallel(fig12_shape, TileShape::new(128, 128, 128))),
        ("fig1b_data_parallel_small", Decomposition::data_parallel(fig12_shape, TileShape::new(128, 64, 128))),
        ("fig2a_fixed_split", Decomposition::fixed_split(fig12_shape, TileShape::new(128, 128, 64), 2)),
        ("fig2b_stream_k", Decomposition::stream_k(fig12_shape, TileShape::new(128, 128, 4), 4)),
        ("fig3a_basic_stream_k", Decomposition::stream_k(fig3_shape, fig3_tile, 4)),
        ("fig3b_dp_one_tile", Decomposition::dp_one_tile_stream_k(fig3_shape, fig3_tile, 4)),
        ("fig3c_two_tile_dp", Decomposition::two_tile_stream_k_dp(fig3_shape, fig3_tile, 4)),
        ("fig9_dp_strong_scaling", Decomposition::data_parallel(fig9_shape, TileShape::new(128, 128, 4))),
        ("fig9_sk_strong_scaling", Decomposition::stream_k(fig9_shape, TileShape::new(128, 128, 4), 4)),
    ];

    for (name, decomp) in figures {
        let report = simulate(&decomp, &gpu, Precision::Fp64);
        let path = out_dir.join(format!("{name}.svg"));
        fs::write(&path, render_svg(&report, &options))?;
        println!("wrote {} ({:.0}% quantization)", path.display(), report.quantization_efficiency() * 100.0);
    }
    Ok(())
}
