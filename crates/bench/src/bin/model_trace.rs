//! End-to-end model trace: a GPT-style forward pass as a sequence of
//! GEMMs, replayed through each scheduling regime on the simulated
//! A100.
//!
//! Four regimes, in increasing sophistication:
//! 1. per-GEMM data-parallel launches at the default blocking;
//! 2. per-GEMM cuBLAS-like heuristic selection;
//! 3. per-GEMM Stream-K (the paper's deployment);
//! 4. per-*layer* grouped Stream-K (one launch for the four layer
//!    GEMMs — §7's GEMM-like generalization).

use streamk_core::{GroupedDecomposition, GroupedSpace};
use streamk_corpus::suites::transformer_suite;
use streamk_ensemble::runners;
use streamk_sim::{simulate_grouped, GpuSpec};
use streamk_types::{GemmShape, Precision, TileShape};

fn main() {
    let gpu = GpuSpec::a100();
    let precision = Precision::Fp16To32;
    let tile = TileShape::streamk_default(precision);
    let hidden = 4096;
    let layers = 32;

    println!("tokens,dp_launches_s,cublas_like_s,stream_k_s,grouped_per_layer_s,sk_vs_dp,grouped_vs_dp");
    for tokens in [16usize, 64, 256, 1024, 4096] {
        // One layer's four GEMMs (same set the suites module uses).
        let layer: Vec<GemmShape> = transformer_suite(hidden)
            .shapes
            .into_iter()
            .filter(|s| s.m == tokens)
            .collect();
        assert_eq!(layer.len(), 4);

        let dp: f64 = layer.iter().map(|&s| runners::run_dp_single(s, precision, &gpu).makespan).sum();
        let heur: f64 = layer.iter().map(|&s| runners::run_heuristic(s, precision, &gpu).makespan).sum();
        let sk: f64 = layer.iter().map(|&s| runners::run_stream_k(s, precision, &gpu).makespan).sum();
        let grouped = simulate_grouped(
            &GroupedDecomposition::stream_k(GroupedSpace::new(&layer, tile), gpu.sms),
            &gpu,
            precision,
        )
        .makespan;

        println!(
            "{tokens},{:.4e},{:.4e},{:.4e},{:.4e},{:.2},{:.2}",
            dp * layers as f64,
            heur * layers as f64,
            sk * layers as f64,
            grouped * layers as f64,
            dp / sk,
            dp / grouped
        );
    }
    eprintln!("# {layers}-layer GPT-style model, hidden {hidden}, FP16->32, simulated A100");
    eprintln!("# expectation: Stream-K wins most at small token counts (strong scaling);");
    eprintln!("# per-layer grouped launches add a further win by merging the four GEMMs.");
}
