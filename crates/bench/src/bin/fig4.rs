//! Figure 4: the evaluation corpus — 32,824 problem shapes log-sampled
//! over m, n, k ∈ [128, 8192].
//!
//! Emits the sampled (m, n, k) triples as CSV plus a distribution
//! summary showing the six-orders-of-magnitude volume span.

use streamk_bench::corpus_from_args;
use streamk_types::Precision;

fn main() {
    let corpus = corpus_from_args(32_824);

    println!("m,n,k,flops,intensity_fp64,intensity_fp16t32");
    for s in corpus.shapes() {
        println!(
            "{},{},{},{},{:.2},{:.2}",
            s.m,
            s.n,
            s.k,
            s.flops(),
            s.arithmetic_intensity(Precision::Fp64),
            s.arithmetic_intensity(Precision::Fp16To32)
        );
    }

    let mut flops: Vec<u64> = corpus.shapes().iter().map(|s| s.flops()).collect();
    flops.sort_unstable();
    let pct = |p: f64| flops[((flops.len() - 1) as f64 * p) as usize];
    eprintln!("# shapes: {}", corpus.len());
    eprintln!("# flops   min {:.2e}  p25 {:.2e}  median {:.2e}  p75 {:.2e}  max {:.2e}", flops[0] as f64, pct(0.25) as f64, pct(0.5) as f64, pct(0.75) as f64, flops[flops.len() - 1] as f64);
    eprintln!("# volume span: {:.1} orders of magnitude", ((flops[flops.len() - 1] as f64) / (flops[0] as f64)).log10());
    for p in Precision::ALL {
        let cb = corpus.compute_bound(p);
        eprintln!(
            "# {} compute-bound (> {} ops/B): {} of {} ({:.1}%)",
            p,
            p.compute_bound_threshold(),
            cb.len(),
            corpus.len(),
            cb.len() as f64 / corpus.len() as f64 * 100.0
        );
    }
}
