//! Figure 8: the Appendix A.1 grid-size model's predicted CTA runtime
//! as a function of grid size, for the paper's three strong-scaling
//! FP16→32 shapes on a 108-SM A100 at 128×128×32 blocking.
//!
//! Expected selections: g* = 108 (a), g* = 64 (b), g* = 8 (c).

use streamk_core::{CostModel, GridSizeModel};
use streamk_types::{GemmShape, TileShape};

fn main() {
    let tile = TileShape::new(128, 128, 32);
    let model = GridSizeModel::new(CostModel::a100_fp16(), 108);

    let cases = [
        ("fig8a", GemmShape::new(256, 3584, 8192)),
        ("fig8b", GemmShape::new(1024, 1024, 1024)),
        ("fig8c", GemmShape::new(128, 128, 16384)),
    ];

    println!("figure,grid_size,modeled_time_units,iters_per_cta,fixup_peers");
    for (figure, shape) in cases {
        for (g, t) in model.curve(shape, tile) {
            println!(
                "{figure},{g},{t:.1},{},{}",
                model.iters_per_cta(shape, tile, g),
                model.fixup_peers(shape, tile, g)
            );
        }
        let best = model.best_grid(shape, tile);
        eprintln!(
            "# {figure}: {shape} -> {} output tiles, {} iters/tile; g* = {best} ({} iters/CTA)",
            tile.output_tiles(shape),
            tile.iters_per_tile(shape),
            model.iters_per_cta(shape, tile, best)
        );
    }
}
