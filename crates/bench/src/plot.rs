//! SVG scatter plots for roofline landscapes.
//!
//! Renders the (arithmetic intensity, fraction-of-peak) clouds of
//! Figures 5-6 as a log-x scatter with the machine's bandwidth and
//! compute ceilings drawn in — self-contained SVG, no plotting
//! dependencies.

use std::fmt::Write as _;
use streamk_sim::GpuSpec;
use streamk_types::Precision;

/// One named point cloud.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// CSS color.
    pub color: String,
    /// `(intensity flops/B, utilization 0..1)` points.
    pub points: Vec<(f64, f64)>,
}

/// Plot geometry.
#[derive(Debug, Clone, Copy)]
pub struct PlotOptions {
    /// Canvas width, px.
    pub width: f64,
    /// Canvas height, px.
    pub height: f64,
    /// Dot radius, px.
    pub radius: f64,
}

impl Default for PlotOptions {
    fn default() -> Self {
        Self { width: 760.0, height: 420.0, radius: 1.4 }
    }
}

/// Renders a roofline scatter: log-10 intensity on x, utilization on
/// y, with the `peak / bandwidth` roofline of `gpu` at `precision`
/// drawn as the theoretical ceiling.
///
/// # Panics
///
/// Panics if every series is empty.
#[must_use]
pub fn render_roofline_svg(series: &[Series], gpu: &GpuSpec, precision: Precision, options: &PlotOptions) -> String {
    let (ml, mr, mt, mb) = (56.0, 16.0, 28.0, 44.0); // margins
    let (w, h) = (options.width, options.height);
    let (cw, ch) = (w - ml - mr, h - mt - mb);

    let xs: Vec<f64> = series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
    assert!(!xs.is_empty(), "no points to plot");
    let x_lo = xs.iter().copied().fold(f64::INFINITY, f64::min).max(1e-3).log10().floor();
    let x_hi = xs.iter().copied().fold(0.0f64, f64::max).log10().ceil();
    let x_of = |v: f64| ml + (v.max(1e-3).log10() - x_lo) / (x_hi - x_lo).max(1e-9) * cw;
    let y_of = |u: f64| mt + (1.0 - u.clamp(0.0, 1.05) / 1.05) * ch;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" font-family="monospace" font-size="11">"#
    );
    let _ = writeln!(svg, r##"<rect width="100%" height="100%" fill="#ffffff"/>"##);

    // Gridlines + axis labels: one per decade on x, 0.25 steps on y.
    let mut d = x_lo;
    while d <= x_hi + 1e-9 {
        let x = x_of(10f64.powf(d));
        let _ = writeln!(svg, r##"<line x1="{x:.1}" y1="{mt}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>"##, mt + ch);
        let _ = writeln!(svg, r##"<text x="{:.1}" y="{:.1}" fill="#333">1e{d:.0}</text>"##, x - 12.0, mt + ch + 16.0);
        d += 1.0;
    }
    for i in 0..=4 {
        let u = i as f64 * 0.25;
        let y = y_of(u);
        let _ = writeln!(svg, r##"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##, ml + cw);
        let _ = writeln!(svg, r##"<text x="{:.1}" y="{:.1}" fill="#333">{u:.2}</text>"##, ml - 40.0, y + 4.0);
    }
    let _ = writeln!(
        svg,
        r##"<text x="{:.1}" y="{:.1}" fill="#111">arithmetic intensity (flops/byte, log) — fraction of {:.1} TFLOP/s peak</text>"##,
        ml,
        mt - 10.0,
        gpu.peak_flops(precision) / 1e12
    );

    // Roofline ceilings: bandwidth slope (util = I·BW/peak) up to the
    // balance point, then the flat compute ceiling at 1.0.
    let balance = gpu.balance_flops_per_byte(precision);
    if balance.is_finite() && balance > 0.0 {
        let mut path = String::new();
        let mut started = false;
        let steps = 64;
        for i in 0..=steps {
            let lx = x_lo + (x_hi - x_lo) * i as f64 / steps as f64;
            let intensity = 10f64.powf(lx);
            let u = (intensity / balance).min(1.0);
            let cmd = if started { 'L' } else { 'M' };
            let _ = write!(path, "{cmd}{:.1} {:.1} ", x_of(intensity), y_of(u));
            started = true;
        }
        let _ = writeln!(svg, r##"<path d="{path}" fill="none" stroke="#888" stroke-width="1.5" stroke-dasharray="6,3"/>"##);
    }

    // Point clouds.
    for s in series {
        for &(x, y) in &s.points {
            let _ = writeln!(
                svg,
                r##"<circle cx="{:.1}" cy="{:.1}" r="{}" fill="{}" fill-opacity="0.45"/>"##,
                x_of(x),
                y_of(y),
                options.radius,
                s.color
            );
        }
    }

    // Legend.
    for (i, s) in series.iter().enumerate() {
        let y = mt + 14.0 + i as f64 * 14.0;
        let _ = writeln!(svg, r##"<circle cx="{:.1}" cy="{:.1}" r="4" fill="{}"/>"##, ml + 10.0, y - 4.0, s.color);
        let _ = writeln!(svg, r##"<text x="{:.1}" y="{y:.1}" fill="#111">{}</text>"##, ml + 20.0, s.name);
    }

    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<Series> {
        vec![
            Series {
                name: "stream-k".into(),
                color: "#1f77b4".into(),
                points: (1..200).map(|i| (f64::from(i) * 5.0, 0.9)).collect(),
            },
            Series { name: "data-parallel".into(), color: "#d62728".into(), points: vec![(10.0, 0.4), (500.0, 0.8)] },
        ]
    }

    #[test]
    fn renders_points_ceiling_and_legend() {
        let svg = render_roofline_svg(&series(), &GpuSpec::a100(), Precision::Fp16To32, &PlotOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 199 + 2 + 2); // points + legend dots
        assert!(svg.contains("stroke-dasharray")); // the roofline
        assert!(svg.contains("stream-k"));
        assert!(svg.contains("222.3 TFLOP/s"));
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn empty_series_panics() {
        let _ = render_roofline_svg(&[], &GpuSpec::a100(), Precision::Fp64, &PlotOptions::default());
    }
}
