//! Hand-rolled argument parsing (no external dependencies).

use std::fmt;
use streamk_types::{GemmShape, Layout, Precision, TileShape};

/// A parse/usage failure, displayed to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// The strategy selector accepted on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyArg {
    /// `dp`
    DataParallel,
    /// `splitk:S`
    FixedSplit(usize),
    /// `streamk:G`
    StreamK(usize),
    /// `hybrid` (two-tile Stream-K + data-parallel)
    Hybrid,
    /// `auto` (grid-size model decides)
    Auto,
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
}

/// Subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage.
    Help,
    /// ASCII schedule of one decomposition on an overhead-free GPU.
    Schedule {
        /// Problem shape.
        shape: GemmShape,
        /// Blocking factor.
        tile: TileShape,
        /// Cores of the hypothetical GPU.
        sms: usize,
        /// Which decomposition.
        strategy: StrategyArg,
    },
    /// The Appendix A.1 model curve and selection.
    BestGrid {
        /// Problem shape.
        shape: GemmShape,
        /// Blocking factor (defaults to the precision's Stream-K
        /// blocking).
        tile: TileShape,
        /// Precision (sets the calibrated constants).
        precision: Precision,
        /// Processor cores.
        sms: usize,
    },
    /// Four-contender comparison on the simulated A100.
    Compare {
        /// Problem shape.
        shape: GemmShape,
        /// Precision.
        precision: Precision,
    },
    /// Corpus statistics.
    Corpus {
        /// Sample size.
        count: usize,
    },
    /// Seeded fault-injection campaign across every strategy.
    Chaos {
        /// Problem shape.
        shape: GemmShape,
        /// Blocking factor.
        tile: TileShape,
        /// Deterministic seeds per strategy × fault kind cell.
        seeds: u64,
        /// Executor worker threads.
        threads: usize,
        /// Owner-side watchdog deadline, milliseconds.
        watchdog_ms: u64,
        /// Also run the service-level campaign: seeded request faults
        /// through `GemmService`.
        serve: bool,
    },
    /// CPU kernel benchmark sweep, emitting `BENCH_cpu.json`.
    Bench {
        /// Side of the headline `size³` f32 problem.
        size: usize,
        /// Blocking factor.
        tile: TileShape,
        /// Corpus shapes to sweep in addition to the headline.
        corpus: usize,
        /// Timing repetitions per cell; medians are reported.
        reps: usize,
        /// Cut the sweep down for CI smoke runs.
        smoke: bool,
        /// Operand storage layout for the headline runs (the layout
        /// comparison always sweeps every layout).
        layout: Layout,
        /// Output path for the JSON report.
        out: String,
    },
    /// Concurrent-launch service benchmark, emitting `BENCH_serve.json`.
    ServeBench {
        /// Service worker threads.
        threads: usize,
        /// Requests per mix.
        requests: usize,
        /// Active-window size (concurrently running requests).
        window: usize,
        /// Pending-queue capacity before admission rejects.
        capacity: usize,
        /// Owner-side watchdog deadline, milliseconds.
        watchdog_ms: u64,
        /// Cut the campaign down for CI smoke runs.
        smoke: bool,
        /// Output path for the JSON report.
        out: String,
        /// Optional output path for a Prometheus text snapshot of the
        /// service's telemetry registry, taken at shutdown.
        metrics_out: Option<String>,
    },
    /// Strassen–Winograd hybrid crossover benchmark, splicing a
    /// `strassen_hybrid` section into `BENCH_cpu.json`.
    StrassenBench {
        /// Crossover cutoff of the hybrid under test.
        cutoff: usize,
        /// Blocking factor of the leaf sub-products.
        tile: TileShape,
        /// Timing repetitions per cell; medians are reported.
        reps: usize,
        /// Executor worker threads.
        threads: usize,
        /// Cut the sweep down for CI smoke runs.
        smoke: bool,
        /// Report path; an existing `BENCH_cpu.json` gains the
        /// section, anything else is created.
        out: String,
    },
    /// Adaptive-selector replay benchmark: cold / warm / distilled
    /// regret vs a measured oracle, spliced into `BENCH_cpu.json`.
    SelectBench {
        /// Corpus shapes replayed (in addition to the fixed anchors).
        shapes: usize,
        /// Adaptation rounds between the cold and warm passes.
        rounds: usize,
        /// Timing repetitions per oracle cell; medians are reported.
        reps: usize,
        /// Executor worker threads.
        threads: usize,
        /// Cut the replay down for CI smoke runs.
        smoke: bool,
        /// Selector cache file (persisted across invocations).
        cache: String,
        /// Report path; an existing `BENCH_cpu.json` gains a
        /// `selection_adaptive` section, anything else is created.
        out: String,
    },
    /// Traced executor run + matching simulation: merged Chrome
    /// trace, phase breakdown, and model-vs-measured residuals.
    Profile {
        /// Problem shape.
        shape: GemmShape,
        /// Blocking factor.
        tile: TileShape,
        /// Executor worker threads (and simulated SM count).
        threads: usize,
        /// Which decomposition.
        strategy: StrategyArg,
        /// Operand storage layout for the traced run.
        layout: Layout,
        /// Output path for the merged Chrome trace JSON.
        out: String,
        /// Optional output path for the measured-timeline SVG.
        svg: Option<String>,
        /// Also run a traced `GemmService` campaign over the same
        /// shape and merge per-request tracks (queue-wait included)
        /// into the Chrome trace.
        serve: bool,
    },
    /// SVG schedule to a file.
    Svg {
        /// Problem shape.
        shape: GemmShape,
        /// Blocking factor.
        tile: TileShape,
        /// Cores.
        sms: usize,
        /// Which decomposition.
        strategy: StrategyArg,
        /// Output path.
        out: String,
    },
}

/// Usage text.
pub const USAGE: &str = "\
streamk — explore Stream-K work decompositions (PPoPP 2023 reproduction)

USAGE:
  streamk schedule <m> <n> <k> [--tile MxNxK] [--sms P] [--strategy S]
  streamk bestgrid <m> <n> <k> [--tile MxNxK] [--sms P] [--precision fp64|fp16]
  streamk compare  <m> <n> <k> [--precision fp64|fp16]
  streamk corpus   [count]
  streamk chaos    <m> <n> <k> [--tile MxNxK] [--seeds N] [--threads T] [--watchdog-ms MS] [--serve]
  streamk bench    [--size N] [--tile MxNxK] [--corpus C] [--reps R] [--layout L] [--out FILE] [--smoke]
  streamk serve-bench [--threads T] [--requests N] [--window W] [--capacity C] [--watchdog-ms MS] [--out FILE] [--metrics-out FILE] [--smoke]
  streamk select-bench [--shapes N] [--rounds R] [--reps P] [--threads T] [--select-cache FILE] [--out FILE] [--smoke]
  streamk strassen-bench [--cutoff N] [--tile MxNxK] [--reps R] [--threads T] [--out FILE] [--smoke]
  streamk profile  <m> <n> <k> [--tile MxNxK] [--threads T] [--strategy S] [--layout L] [--out FILE] [--svg FILE] [--serve]
  streamk svg      <m> <n> <k> --out FILE [--tile MxNxK] [--sms P] [--strategy S]
  streamk help

STRATEGIES (for --strategy):
  dp          one CTA per output tile (Algorithm 2)
  splitk:S    fixed-split with factor S (Algorithm 4)
  streamk:G   basic Stream-K with grid G (Algorithm 5)
  hybrid      two-tile Stream-K + data-parallel (§5.2)   [default]
  auto        Appendix A.1 model picks the launch

LAYOUTS (for --layout):
  row         row-major storage (default)
  col         column-major storage
  block       native block-major fragments (zero-pack fast path)
  blockz      block-major with Morton (Z-order) fragment order
";

fn parse_tile(s: &str) -> Result<TileShape, ParseError> {
    s.parse::<TileShape>().map_err(|e| ParseError(format!("--tile: {e} (expected MxNxK)")))
}

fn parse_layout(s: &str) -> Result<Layout, ParseError> {
    Layout::parse(s).ok_or_else(|| {
        ParseError(format!("--layout expects row, col, block, or blockz, got '{s}'"))
    })
}

fn parse_precision(s: &str) -> Result<Precision, ParseError> {
    match s {
        "fp64" => Ok(Precision::Fp64),
        "fp16" | "fp16t32" => Ok(Precision::Fp16To32),
        other => Err(ParseError(format!("--precision expects fp64 or fp16, got '{other}'"))),
    }
}

fn parse_strategy(s: &str) -> Result<StrategyArg, ParseError> {
    if s == "dp" {
        return Ok(StrategyArg::DataParallel);
    }
    if s == "hybrid" {
        return Ok(StrategyArg::Hybrid);
    }
    if s == "auto" {
        return Ok(StrategyArg::Auto);
    }
    if let Some(v) = s.strip_prefix("splitk:") {
        return v
            .parse::<usize>()
            .ok()
            .filter(|&x| x > 0)
            .map(StrategyArg::FixedSplit)
            .ok_or_else(|| ParseError(format!("splitk: expects a positive integer, got '{v}'")));
    }
    if let Some(v) = s.strip_prefix("streamk:") {
        return v
            .parse::<usize>()
            .ok()
            .filter(|&x| x > 0)
            .map(StrategyArg::StreamK)
            .ok_or_else(|| ParseError(format!("streamk: expects a positive integer, got '{v}'")));
    }
    Err(ParseError(format!("unknown strategy '{s}' (see `streamk help`)")))
}

/// Collects `<m> <n> <k>` from the front of `rest` and named flags
/// from the remainder.
struct Flags<'a> {
    positional: Vec<&'a str>,
    named: Vec<(&'a str, &'a str)>,
}

/// Flags that take no value; their presence means "true".
const BOOL_FLAGS: &[&str] = &["smoke", "serve"];

fn split_flags(rest: &[String]) -> Result<Flags<'_>, ParseError> {
    let mut positional = Vec::new();
    let mut named = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let a = rest[i].as_str();
        if let Some(name) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&name) {
                named.push((name, "true"));
                i += 1;
                continue;
            }
            let value = rest
                .get(i + 1)
                .ok_or_else(|| ParseError(format!("flag --{name} expects a value")))?;
            named.push((name, value.as_str()));
            i += 2;
        } else {
            positional.push(a);
            i += 1;
        }
    }
    Ok(Flags { positional, named })
}

fn get_flag<'a>(flags: &Flags<'a>, name: &str) -> Option<&'a str> {
    flags.named.iter().rev().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

fn parse_shape(flags: &Flags<'_>) -> Result<GemmShape, ParseError> {
    if flags.positional.len() < 3 {
        return Err(ParseError("expected <m> <n> <k>".into()));
    }
    let dims: Result<Vec<usize>, _> = flags.positional[..3].iter().map(|p| p.parse::<usize>()).collect();
    match dims {
        Ok(d) if d.iter().all(|&x| x > 0) => Ok(GemmShape::new(d[0], d[1], d[2])),
        _ => Err(ParseError(format!("<m> <n> <k> must be positive integers, got {:?}", &flags.positional[..3]))),
    }
}

impl Cli {
    /// Parses `argv` (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with a user-facing message.
    pub fn parse(argv: &[String]) -> Result<Self, ParseError> {
        let Some(cmd) = argv.first() else {
            return Ok(Cli { command: Command::Help });
        };
        let rest = &argv[1..];
        let command = match cmd.as_str() {
            "help" | "--help" | "-h" => Command::Help,
            "schedule" => {
                let flags = split_flags(rest)?;
                Command::Schedule {
                    shape: parse_shape(&flags)?,
                    tile: get_flag(&flags, "tile").map_or(Ok(TileShape::new(128, 128, 32)), parse_tile)?,
                    sms: get_flag(&flags, "sms").map_or(Ok(4), |v| {
                        v.parse().map_err(|_| ParseError(format!("--sms expects an integer, got '{v}'")))
                    })?,
                    strategy: get_flag(&flags, "strategy").map_or(Ok(StrategyArg::Hybrid), parse_strategy)?,
                }
            }
            "bestgrid" => {
                let flags = split_flags(rest)?;
                let precision = get_flag(&flags, "precision").map_or(Ok(Precision::Fp16To32), parse_precision)?;
                Command::BestGrid {
                    shape: parse_shape(&flags)?,
                    tile: get_flag(&flags, "tile")
                        .map_or_else(|| Ok(TileShape::streamk_default(precision)), parse_tile)?,
                    precision,
                    sms: get_flag(&flags, "sms").map_or(Ok(108), |v| {
                        v.parse().map_err(|_| ParseError(format!("--sms expects an integer, got '{v}'")))
                    })?,
                }
            }
            "compare" => {
                let flags = split_flags(rest)?;
                Command::Compare {
                    shape: parse_shape(&flags)?,
                    precision: get_flag(&flags, "precision").map_or(Ok(Precision::Fp16To32), parse_precision)?,
                }
            }
            "corpus" => {
                let flags = split_flags(rest)?;
                let count = flags
                    .positional
                    .first()
                    .map_or(Ok(1000), |v| {
                        v.parse().map_err(|_| ParseError(format!("corpus expects a count, got '{v}'")))
                    })?;
                Command::Corpus { count }
            }
            "chaos" => {
                let flags = split_flags(rest)?;
                let parse_u64 = |name: &str, default: u64, flags: &Flags<'_>| {
                    get_flag(flags, name).map_or(Ok(default), |v| {
                        v.parse::<u64>()
                            .map_err(|_| ParseError(format!("--{name} expects an integer, got '{v}'")))
                    })
                };
                Command::Chaos {
                    shape: parse_shape(&flags)?,
                    tile: get_flag(&flags, "tile").map_or(Ok(TileShape::new(32, 32, 16)), parse_tile)?,
                    seeds: parse_u64("seeds", 3, &flags)?,
                    threads: get_flag(&flags, "threads").map_or(Ok(8), |v| {
                        v.parse::<usize>()
                            .ok()
                            .filter(|&t| t > 0)
                            .ok_or_else(|| ParseError(format!("--threads expects a positive integer, got '{v}'")))
                    })?,
                    watchdog_ms: parse_u64("watchdog-ms", 200, &flags)?,
                    serve: get_flag(&flags, "serve") == Some("true"),
                }
            }
            "serve-bench" => {
                let flags = split_flags(rest)?;
                let parse_usize = |name: &str, default: usize, flags: &Flags<'_>| {
                    get_flag(flags, name).map_or(Ok(default), |v| {
                        v.parse::<usize>()
                            .ok()
                            .filter(|&x| x > 0)
                            .ok_or_else(|| ParseError(format!("--{name} expects a positive integer, got '{v}'")))
                    })
                };
                let smoke = get_flag(&flags, "smoke") == Some("true");
                Command::ServeBench {
                    threads: parse_usize("threads", 8, &flags)?,
                    requests: parse_usize("requests", if smoke { 16 } else { 64 }, &flags)?,
                    window: parse_usize("window", 4, &flags)?,
                    capacity: parse_usize("capacity", 64, &flags)?,
                    watchdog_ms: get_flag(&flags, "watchdog-ms").map_or(Ok(200), |v| {
                        v.parse::<u64>()
                            .map_err(|_| ParseError(format!("--watchdog-ms expects an integer, got '{v}'")))
                    })?,
                    smoke,
                    out: get_flag(&flags, "out").unwrap_or("BENCH_serve.json").to_string(),
                    metrics_out: get_flag(&flags, "metrics-out").map(String::from),
                }
            }
            "strassen-bench" => {
                let flags = split_flags(rest)?;
                let parse_usize = |name: &str, default: usize, flags: &Flags<'_>| {
                    get_flag(flags, name).map_or(Ok(default), |v| {
                        v.parse::<usize>()
                            .ok()
                            .filter(|&x| x > 0)
                            .ok_or_else(|| ParseError(format!("--{name} expects a positive integer, got '{v}'")))
                    })
                };
                let smoke = get_flag(&flags, "smoke") == Some("true");
                Command::StrassenBench {
                    cutoff: parse_usize("cutoff", if smoke { 64 } else { 512 }, &flags)?,
                    tile: get_flag(&flags, "tile").map_or(Ok(TileShape::new(64, 64, 16)), parse_tile)?,
                    reps: parse_usize("reps", if smoke { 1 } else { 3 }, &flags)?,
                    threads: parse_usize("threads", 1, &flags)?,
                    smoke,
                    out: get_flag(&flags, "out").unwrap_or("BENCH_cpu.json").to_string(),
                }
            }
            "select-bench" => {
                let flags = split_flags(rest)?;
                let parse_usize = |name: &str, default: usize, flags: &Flags<'_>| {
                    get_flag(flags, name).map_or(Ok(default), |v| {
                        v.parse::<usize>()
                            .ok()
                            .filter(|&x| x > 0)
                            .ok_or_else(|| ParseError(format!("--{name} expects a positive integer, got '{v}'")))
                    })
                };
                let smoke = get_flag(&flags, "smoke") == Some("true");
                Command::SelectBench {
                    shapes: parse_usize("shapes", if smoke { 2 } else { 8 }, &flags)?,
                    rounds: parse_usize("rounds", if smoke { 2 } else { 4 }, &flags)?,
                    reps: parse_usize("reps", if smoke { 2 } else { 3 }, &flags)?,
                    threads: parse_usize("threads", 4, &flags)?,
                    smoke,
                    // --select-cache is the documented spelling;
                    // --cache stays accepted for compatibility. The
                    // default lives under target/ so scratch state
                    // never lands in the working tree.
                    cache: get_flag(&flags, "select-cache")
                        .or_else(|| get_flag(&flags, "cache"))
                        .unwrap_or("target/SELECT_cache")
                        .to_string(),
                    out: get_flag(&flags, "out").unwrap_or("BENCH_cpu.json").to_string(),
                }
            }
            "bench" => {
                let flags = split_flags(rest)?;
                let parse_usize = |name: &str, default: usize, flags: &Flags<'_>| {
                    get_flag(flags, name).map_or(Ok(default), |v| {
                        v.parse::<usize>()
                            .ok()
                            .filter(|&x| x > 0)
                            .ok_or_else(|| ParseError(format!("--{name} expects a positive integer, got '{v}'")))
                    })
                };
                let smoke = get_flag(&flags, "smoke") == Some("true");
                Command::Bench {
                    size: parse_usize("size", if smoke { 128 } else { 512 }, &flags)?,
                    tile: get_flag(&flags, "tile").map_or(Ok(TileShape::new(64, 64, 16)), parse_tile)?,
                    corpus: parse_usize("corpus", if smoke { 2 } else { 6 }, &flags)?,
                    reps: parse_usize("reps", if smoke { 2 } else { 5 }, &flags)?,
                    smoke,
                    layout: get_flag(&flags, "layout").map_or(Ok(Layout::RowMajor), parse_layout)?,
                    out: get_flag(&flags, "out").unwrap_or("BENCH_cpu.json").to_string(),
                }
            }
            "profile" => {
                let flags = split_flags(rest)?;
                Command::Profile {
                    shape: parse_shape(&flags)?,
                    tile: get_flag(&flags, "tile").map_or(Ok(TileShape::new(32, 32, 16)), parse_tile)?,
                    threads: get_flag(&flags, "threads").map_or(Ok(4), |v| {
                        v.parse::<usize>()
                            .ok()
                            .filter(|&t| t > 0)
                            .ok_or_else(|| ParseError(format!("--threads expects a positive integer, got '{v}'")))
                    })?,
                    strategy: get_flag(&flags, "strategy").map_or(Ok(StrategyArg::Hybrid), parse_strategy)?,
                    layout: get_flag(&flags, "layout").map_or(Ok(Layout::RowMajor), parse_layout)?,
                    out: get_flag(&flags, "out").unwrap_or("TRACE_profile.json").to_string(),
                    svg: get_flag(&flags, "svg").map(String::from),
                    serve: get_flag(&flags, "serve") == Some("true"),
                }
            }
            "svg" => {
                let flags = split_flags(rest)?;
                Command::Svg {
                    shape: parse_shape(&flags)?,
                    tile: get_flag(&flags, "tile").map_or(Ok(TileShape::new(128, 128, 32)), parse_tile)?,
                    sms: get_flag(&flags, "sms").map_or(Ok(4), |v| {
                        v.parse().map_err(|_| ParseError(format!("--sms expects an integer, got '{v}'")))
                    })?,
                    strategy: get_flag(&flags, "strategy").map_or(Ok(StrategyArg::Hybrid), parse_strategy)?,
                    out: get_flag(&flags, "out")
                        .map(String::from)
                        .ok_or_else(|| ParseError("svg requires --out FILE".into()))?,
                }
            }
            other => return Err(ParseError(format!("unknown command '{other}' (see `streamk help`)"))),
        };
        Ok(Cli { command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(Cli::parse(&[]).unwrap().command, Command::Help);
        assert_eq!(Cli::parse(&argv("help")).unwrap().command, Command::Help);
    }

    #[test]
    fn schedule_defaults() {
        let cli = Cli::parse(&argv("schedule 384 384 128")).unwrap();
        match cli.command {
            Command::Schedule { shape, tile, sms, strategy } => {
                assert_eq!(shape, GemmShape::new(384, 384, 128));
                assert_eq!(tile, TileShape::new(128, 128, 32));
                assert_eq!(sms, 4);
                assert_eq!(strategy, StrategyArg::Hybrid);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn schedule_with_flags() {
        let cli = Cli::parse(&argv("schedule 100 200 300 --tile 64x64x16 --sms 8 --strategy streamk:6")).unwrap();
        match cli.command {
            Command::Schedule { tile, sms, strategy, .. } => {
                assert_eq!(tile, TileShape::new(64, 64, 16));
                assert_eq!(sms, 8);
                assert_eq!(strategy, StrategyArg::StreamK(6));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strategy_variants() {
        assert_eq!(parse_strategy("dp").unwrap(), StrategyArg::DataParallel);
        assert_eq!(parse_strategy("splitk:4").unwrap(), StrategyArg::FixedSplit(4));
        assert_eq!(parse_strategy("streamk:9").unwrap(), StrategyArg::StreamK(9));
        assert_eq!(parse_strategy("hybrid").unwrap(), StrategyArg::Hybrid);
        assert_eq!(parse_strategy("auto").unwrap(), StrategyArg::Auto);
        assert!(parse_strategy("bogus").is_err());
        assert!(parse_strategy("splitk:0").is_err());
    }

    #[test]
    fn bestgrid_precision_sets_default_tile() {
        let cli = Cli::parse(&argv("bestgrid 128 128 16384 --precision fp64")).unwrap();
        match cli.command {
            Command::BestGrid { tile, precision, sms, .. } => {
                assert_eq!(precision, Precision::Fp64);
                assert_eq!(tile, TileShape::FP64_STREAMK);
                assert_eq!(sms, 108);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn svg_requires_out() {
        assert!(Cli::parse(&argv("svg 10 10 10")).is_err());
        let cli = Cli::parse(&argv("svg 10 10 10 --out /tmp/x.svg")).unwrap();
        assert!(matches!(cli.command, Command::Svg { .. }));
    }

    #[test]
    fn error_messages_are_actionable() {
        let e = Cli::parse(&argv("schedule 10 10")).unwrap_err();
        assert!(e.0.contains("<m> <n> <k>"));
        let e = Cli::parse(&argv("frobnicate")).unwrap_err();
        assert!(e.0.contains("unknown command"));
        let e = Cli::parse(&argv("schedule 10 10 10 --tile 4x4")).unwrap_err();
        assert!(e.0.contains("MxNxK"));
    }

    #[test]
    fn chaos_defaults_and_flags() {
        let cli = Cli::parse(&argv("chaos 96 80 64")).unwrap();
        assert_eq!(
            cli.command,
            Command::Chaos {
                shape: GemmShape::new(96, 80, 64),
                tile: TileShape::new(32, 32, 16),
                seeds: 3,
                threads: 8,
                watchdog_ms: 200,
                serve: false,
            }
        );
        let cli = Cli::parse(&argv("chaos 64 64 64 --tile 16x16x8 --seeds 5 --threads 4 --watchdog-ms 50 --serve")).unwrap();
        match cli.command {
            Command::Chaos { tile, seeds, threads, watchdog_ms, serve, .. } => {
                assert_eq!(tile, TileShape::new(16, 16, 8));
                assert_eq!(seeds, 5);
                assert_eq!(threads, 4);
                assert_eq!(watchdog_ms, 50);
                assert!(serve);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Cli::parse(&argv("chaos 64 64 64 --threads 0")).is_err());
        assert!(Cli::parse(&argv("chaos 64 64 64 --seeds x")).is_err());
    }

    #[test]
    fn bench_defaults_and_smoke() {
        let cli = Cli::parse(&argv("bench")).unwrap();
        assert_eq!(
            cli.command,
            Command::Bench {
                size: 512,
                tile: TileShape::new(64, 64, 16),
                corpus: 6,
                reps: 5,
                smoke: false,
                layout: Layout::RowMajor,
                out: "BENCH_cpu.json".into(),
            }
        );
        let cli = Cli::parse(&argv("bench --layout block")).unwrap();
        match cli.command {
            Command::Bench { layout, .. } => assert_eq!(layout, Layout::BlockMajor),
            other => panic!("unexpected {other:?}"),
        }
        assert!(Cli::parse(&argv("bench --layout diagonal")).is_err());
        // --smoke is a boolean flag: it consumes no value and shrinks
        // the default sweep.
        let cli = Cli::parse(&argv("bench --smoke --out /tmp/b.json")).unwrap();
        match cli.command {
            Command::Bench { size, corpus, reps, smoke, out, .. } => {
                assert!(smoke);
                assert_eq!(size, 128);
                assert_eq!(corpus, 2);
                assert_eq!(reps, 2);
                assert_eq!(out, "/tmp/b.json");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Explicit values override the smoke defaults regardless of
        // flag order.
        let cli = Cli::parse(&argv("bench --size 256 --smoke --reps 3")).unwrap();
        match cli.command {
            Command::Bench { size, reps, smoke, .. } => {
                assert!(smoke);
                assert_eq!(size, 256);
                assert_eq!(reps, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Cli::parse(&argv("bench --size 0")).is_err());
        assert!(Cli::parse(&argv("bench --reps x")).is_err());
    }

    #[test]
    fn serve_bench_defaults_and_smoke() {
        let cli = Cli::parse(&argv("serve-bench")).unwrap();
        assert_eq!(
            cli.command,
            Command::ServeBench {
                threads: 8,
                requests: 64,
                window: 4,
                capacity: 64,
                watchdog_ms: 200,
                smoke: false,
                out: "BENCH_serve.json".into(),
                metrics_out: None,
            }
        );
        let cli = Cli::parse(&argv(
            "serve-bench --smoke --threads 4 --out /tmp/s.json --metrics-out /tmp/m.prom",
        ))
        .unwrap();
        match cli.command {
            Command::ServeBench { threads, requests, smoke, out, metrics_out, .. } => {
                assert!(smoke);
                assert_eq!(threads, 4);
                assert_eq!(requests, 16);
                assert_eq!(out, "/tmp/s.json");
                assert_eq!(metrics_out.as_deref(), Some("/tmp/m.prom"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Cli::parse(&argv("serve-bench --requests 0")).is_err());
        assert!(Cli::parse(&argv("serve-bench --window x")).is_err());
    }

    #[test]
    fn select_bench_defaults_and_smoke() {
        let cli = Cli::parse(&argv("select-bench")).unwrap();
        assert_eq!(
            cli.command,
            Command::SelectBench {
                shapes: 8,
                rounds: 4,
                reps: 3,
                threads: 4,
                smoke: false,
                cache: "target/SELECT_cache".into(),
                out: "BENCH_cpu.json".into(),
            }
        );
        let cli = Cli::parse(&argv("select-bench --select-cache /tmp/sc")).unwrap();
        match cli.command {
            Command::SelectBench { cache, .. } => assert_eq!(cache, "/tmp/sc"),
            other => panic!("unexpected {other:?}"),
        }
        let cli = Cli::parse(&argv("select-bench --smoke --cache /tmp/c --out /tmp/b.json")).unwrap();
        match cli.command {
            Command::SelectBench { shapes, rounds, reps, smoke, cache, out, .. } => {
                assert!(smoke);
                assert_eq!(shapes, 2);
                assert_eq!(rounds, 2);
                assert_eq!(reps, 2);
                assert_eq!(cache, "/tmp/c");
                assert_eq!(out, "/tmp/b.json");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Cli::parse(&argv("select-bench --shapes 0")).is_err());
        assert!(Cli::parse(&argv("select-bench --rounds x")).is_err());
    }

    #[test]
    fn strassen_bench_defaults_and_smoke() {
        let cli = Cli::parse(&argv("strassen-bench")).unwrap();
        assert_eq!(
            cli.command,
            Command::StrassenBench {
                cutoff: 512,
                tile: TileShape::new(64, 64, 16),
                reps: 3,
                threads: 1,
                smoke: false,
                out: "BENCH_cpu.json".into(),
            }
        );
        let cli = Cli::parse(&argv("strassen-bench --smoke --cutoff 32 --out /tmp/b.json")).unwrap();
        match cli.command {
            Command::StrassenBench { cutoff, reps, smoke, out, .. } => {
                assert!(smoke);
                assert_eq!(cutoff, 32);
                assert_eq!(reps, 1);
                assert_eq!(out, "/tmp/b.json");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Cli::parse(&argv("strassen-bench --cutoff 0")).is_err());
        assert!(Cli::parse(&argv("strassen-bench --reps x")).is_err());
    }

    #[test]
    fn profile_defaults_and_flags() {
        let cli = Cli::parse(&argv("profile 96 96 128")).unwrap();
        assert_eq!(
            cli.command,
            Command::Profile {
                shape: GemmShape::new(96, 96, 128),
                tile: TileShape::new(32, 32, 16),
                threads: 4,
                strategy: StrategyArg::Hybrid,
                layout: Layout::RowMajor,
                out: "TRACE_profile.json".into(),
                svg: None,
                serve: false,
            }
        );
        let cli = Cli::parse(&argv("profile 64 64 64 --serve")).unwrap();
        match cli.command {
            Command::Profile { serve, .. } => assert!(serve),
            other => panic!("unexpected {other:?}"),
        }
        let cli = Cli::parse(&argv("profile 64 64 64 --layout morton")).unwrap();
        match cli.command {
            Command::Profile { layout, .. } => assert_eq!(layout, Layout::BlockMajorZ),
            other => panic!("unexpected {other:?}"),
        }
        let cli = Cli::parse(&argv(
            "profile 64 64 64 --tile 16x16x8 --threads 2 --strategy streamk:6 --out /tmp/t.json --svg /tmp/t.svg",
        ))
        .unwrap();
        match cli.command {
            Command::Profile { tile, threads, strategy, out, svg, .. } => {
                assert_eq!(tile, TileShape::new(16, 16, 8));
                assert_eq!(threads, 2);
                assert_eq!(strategy, StrategyArg::StreamK(6));
                assert_eq!(out, "/tmp/t.json");
                assert_eq!(svg.as_deref(), Some("/tmp/t.svg"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Cli::parse(&argv("profile 64 64 64 --threads 0")).is_err());
    }

    #[test]
    fn corpus_count() {
        let cli = Cli::parse(&argv("corpus 250")).unwrap();
        assert_eq!(cli.command, Command::Corpus { count: 250 });
        let cli = Cli::parse(&argv("corpus")).unwrap();
        assert_eq!(cli.command, Command::Corpus { count: 1000 });
    }
}
