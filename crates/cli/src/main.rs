//! The `streamk` binary.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match streamk_cli::run(&argv) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}\n\nrun `streamk help` for usage");
            std::process::exit(2);
        }
    }
}
