//! The `streamk` command-line explorer.
//!
//! A thin, dependency-free front-end over the workspace: inspect how
//! a GEMM decomposes, what the Appendix A.1 model would launch, how
//! the four contenders compare on the simulated A100, and what the
//! evaluation corpus looks like.
//!
//! ```text
//! streamk schedule 384 384 128 --tile 128x128x4 --sms 4 --strategy streamk:4
//! streamk bestgrid 128 128 16384 --precision fp16
//! streamk compare 256 3584 8192 --precision fp16
//! streamk corpus 1000
//! streamk svg 896 384 128 --strategy hybrid --out fig.svg
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{Cli, Command, ParseError};

/// Parses `argv` (without the program name) and runs the command,
/// returning the text to print.
///
/// # Errors
///
/// Returns a usage/parse error message for invalid invocations.
pub fn run(argv: &[String]) -> Result<String, ParseError> {
    let cli = Cli::parse(argv)?;
    Ok(commands::execute(&cli))
}
