//! Command implementations.

use crate::args::{Cli, Command, StrategyArg, USAGE};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use streamk_core::{
    CostModel, Decomposition, GridSizeModel, IterSpace, Phase, SpanKind, TraceWriter,
};
use streamk_corpus::{Corpus, CorpusConfig};
use streamk_cpu::trace::ring_allocations;
use streamk_cpu::{
    leaf_decomposition, mac_loop_kernel, mac_loop_kernel_cached, machine_epsilon, max_abs,
    select_kernel_on, strassen_error_bound, CpuExecutor, FaultKind, FaultPlan, GemmService,
    KernelKind, LaunchRequest, PackBuffers, PackCache, Priority, ServeConfig, ServeError,
    ServeFaultKind, ServeFaultPlan, ServiceCounter, SimdLevel, StrassenArena, StrassenConfig,
    TelemetryRegistry, WaitPolicy,
};
use streamk_cpu::macloop::mac_loop_view;
use streamk_ensemble::runners;
use streamk_matrix::Matrix;
use streamk_sim::{
    render_gantt, render_svg, simulate, simulate_with_faults, write_chrome_trace, CtaSpan, GpuSpec,
    SimFaultPlan, SimReport, SvgOptions,
};
use streamk_types::{GemmShape, Layout, Precision, TileShape};

/// Provenance stamp for bench reports: tool name, short git commit,
/// and rustc version, so trajectory entries stay attributable across
/// PRs. Both probes degrade to `"unknown"` outside a git checkout or
/// without a toolchain on PATH.
fn provenance(tool: &str) -> String {
    let probe = |cmd: &str, args: &[&str]| -> Option<String> {
        let out = std::process::Command::new(cmd).args(args).output().ok()?;
        if !out.status.success() {
            return None;
        }
        let text = String::from_utf8(out.stdout).ok()?;
        let text = text.trim();
        (!text.is_empty()).then(|| text.to_string())
    };
    let commit =
        probe("git", &["rev-parse", "--short", "HEAD"]).unwrap_or_else(|| "unknown".into());
    let rustc = probe("rustc", &["--version"]).unwrap_or_else(|| "rustc unknown".into());
    format!("streamk {tool} @ {commit} ({rustc})")
}

/// Builds the decomposition a [`StrategyArg`] describes.
fn build(strategy: StrategyArg, shape: GemmShape, tile: TileShape, sms: usize, precision: Precision) -> Decomposition {
    match strategy {
        StrategyArg::DataParallel => Decomposition::data_parallel(shape, tile),
        StrategyArg::FixedSplit(s) => Decomposition::fixed_split(shape, tile, s),
        StrategyArg::StreamK(g) => Decomposition::stream_k(shape, tile, g),
        StrategyArg::Hybrid => Decomposition::two_tile_stream_k_dp(shape, tile, sms),
        StrategyArg::Auto => GridSizeModel::new(CostModel::for_precision(precision), sms).decompose(shape, tile),
    }
}

/// Executes a parsed invocation, returning the output text.
#[must_use]
pub fn execute(cli: &Cli) -> String {
    match &cli.command {
        Command::Help => USAGE.to_string(),
        Command::Schedule { shape, tile, sms, strategy } => {
            let decomp = build(*strategy, *shape, *tile, *sms, Precision::Fp64);
            let mut gpu = GpuSpec::hypothetical_4sm();
            gpu.sms = *sms;
            let report = simulate(&decomp, &gpu, Precision::Fp64);
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{shape} GEMM, blocking {tile}, {} on a {sms}-SM overhead-free GPU",
                decomp.strategy()
            );
            let _ = writeln!(
                out,
                "{} output tiles x {} iterations; grid {} CTAs; {} split seams\n",
                decomp.space().tiles(),
                decomp.space().iters_per_tile(),
                decomp.grid_size(),
                decomp.split_tiles()
            );
            out.push_str(&render_gantt(&report, 72));
            out
        }
        Command::BestGrid { shape, tile, precision, sms } => {
            let model = GridSizeModel::new(CostModel::for_precision(*precision), *sms);
            let best = model.best_grid(*shape, *tile);
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{shape} at {tile} ({precision}): {} tiles x {} iters; modeled best grid g* = {best}",
                tile.output_tiles(*shape),
                tile.iters_per_tile(*shape)
            );
            let _ = writeln!(out, "\n  g   iters/CTA  peers  time(units)");
            let curve = model.curve(*shape, *tile);
            // Print a readable subsample: every point for small curves,
            // powers + neighbourhood of the minimum for large ones.
            let show: Vec<usize> = if curve.len() <= 24 {
                (1..=curve.len()).collect()
            } else {
                let mut v: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, curve.len()];
                for g in best.saturating_sub(2)..=(best + 2).min(curve.len()) {
                    if g >= 1 {
                        v.push(g);
                    }
                }
                v.sort_unstable();
                v.dedup();
                v
            };
            for g in show {
                let (_, t) = curve[g - 1];
                let marker = if g == best { "  <-- g*" } else { "" };
                let _ = writeln!(
                    out,
                    "{g:>4} {:>10} {:>6} {:>12.1}{marker}",
                    model.iters_per_cta(*shape, *tile, g),
                    model.fixup_peers(*shape, *tile, g),
                    t
                );
            }
            out
        }
        Command::Compare { shape, precision } => {
            let gpu = GpuSpec::a100();
            let sk = runners::run_stream_k(*shape, *precision, &gpu);
            let dp = runners::run_dp_single(*shape, *precision, &gpu);
            let heur = runners::run_heuristic(*shape, *precision, &gpu);
            let oracle = runners::run_oracle(*shape, *precision, &gpu);
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{shape} ({precision}) on the simulated A100 — intensity {:.1} flops/B ({})",
                shape.arithmetic_intensity(*precision),
                if shape.is_compute_bound(*precision) { "compute-bound" } else { "memory-bound" }
            );
            let _ = writeln!(out, "\n{:<22} {:>12} {:>9} {:>10}", "implementation", "makespan", "util", "vs stream-k");
            for (name, r) in [("stream-k", &sk), ("data-parallel", &dp), ("cublas-like", &heur), ("oracle", &oracle)] {
                let _ = writeln!(
                    out,
                    "{name:<22} {:>11.3e}s {:>8.1}% {:>9.2}x",
                    r.makespan,
                    r.utilization() * 100.0,
                    r.makespan / sk.makespan
                );
            }
            out
        }
        Command::Corpus { count } => {
            let corpus = Corpus::generate(CorpusConfig::smoke(*count));
            let mut flops: Vec<u64> = corpus.shapes().iter().map(GemmShape::flops).collect();
            flops.sort_unstable();
            let mut out = String::new();
            let _ = writeln!(out, "corpus: {} shapes, m/n/k log-uniform in [128, 8192]", corpus.len());
            let _ = writeln!(
                out,
                "flops: min {:.2e}  median {:.2e}  max {:.2e}",
                flops[0] as f64,
                flops[flops.len() / 2] as f64,
                flops[flops.len() - 1] as f64
            );
            for p in Precision::ALL {
                let cb = corpus.compute_bound(p);
                let _ = writeln!(
                    out,
                    "{p}: {} of {} compute-bound (> {} flops/B)",
                    cb.len(),
                    corpus.len(),
                    p.compute_bound_threshold()
                );
            }
            out
        }
        Command::Chaos { shape, tile, seeds, threads, watchdog_ms, serve } => {
            run_chaos(*shape, *tile, *seeds, *threads, *watchdog_ms, *serve)
        }
        Command::Bench { size, tile, corpus, reps, smoke, layout, out } => {
            run_bench(*size, *tile, *corpus, *reps, *smoke, *layout, out)
        }
        Command::ServeBench {
            threads,
            requests,
            window,
            capacity,
            watchdog_ms,
            smoke,
            out,
            metrics_out,
        } => run_serve_bench(
            *threads,
            *requests,
            *window,
            *capacity,
            *watchdog_ms,
            *smoke,
            out,
            metrics_out.as_deref(),
        ),
        Command::SelectBench { shapes, rounds, reps, threads, smoke, cache, out } => {
            run_select_bench(*shapes, *rounds, *reps, *threads, *smoke, cache, out)
        }
        Command::StrassenBench { cutoff, tile, reps, threads, smoke, out } => {
            run_strassen_bench(*cutoff, *tile, *reps, *threads, *smoke, out)
        }
        Command::Profile { shape, tile, threads, strategy, layout, out, svg, serve } => {
            run_profile(*shape, *tile, *threads, *strategy, *layout, out, svg.as_deref(), *serve)
        }
        Command::Svg { shape, tile, sms, strategy, out } => {
            let decomp = build(*strategy, *shape, *tile, *sms, Precision::Fp64);
            let mut gpu = GpuSpec::hypothetical_4sm();
            gpu.sms = *sms;
            let report = simulate(&decomp, &gpu, Precision::Fp64);
            let svg = render_svg(&report, &SvgOptions::default());
            match std::fs::write(out, svg) {
                Ok(()) => format!(
                    "wrote {out} ({} CTAs, {:.1}% quantization)\n",
                    decomp.grid_size(),
                    report.quantization_efficiency() * 100.0
                ),
                Err(e) => format!("failed to write {out}: {e}\n"),
            }
        }
    }
}

/// Times one kernel over every tile of `space` (full local range,
/// single thread) and returns the median of `reps` wall times.
///
/// With `cached`, each run builds a fresh [`PackCache`] and drives the
/// tiles through the cached dispatcher — panels are packed once per
/// run instead of once per tile, which is exactly what the executor's
/// grid does. Kernels without a register block ignore the flag.
#[allow(clippy::too_many_arguments)]
fn time_kernel_f32(
    kind: KernelKind,
    cached: bool,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    space: &IterSpace,
    reps: usize,
    accum: &mut Vec<f32>,
    bufs: &mut PackBuffers<f32>,
) -> f64 {
    let tile = space.tile();
    accum.clear();
    accum.resize(tile.blk_m * tile.blk_n, 0.0);
    let (av, bv) = (a.view(), b.view());
    let total = space.iters_per_tile();
    let run = |acc: &mut [f32], bufs: &mut PackBuffers<f32>| {
        let cache = if cached { PackCache::for_kernel(space, kind, WaitPolicy::default()) } else { None };
        for t in 0..space.tiles() {
            acc.fill(0.0);
            mac_loop_kernel_cached(kind, cache.as_ref(), 0, &av, &bv, space, t, 0, total, acc, bufs);
        }
    };
    run(accum, bufs); // warm-up: grows pack buffers, faults pages in
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            run(accum, bufs);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// The bit-exactness gate, layer 1: every kernel's f64 output —
/// privately packed *and* through a shared [`PackCache`] — must be
/// *identical* to the scalar `mac_loop_view` on a ragged problem.
/// Returns an error description on the first mismatch.
fn bit_exact_gate(tile: TileShape) -> Result<(), String> {
    let shape = GemmShape::new(tile.blk_m * 2 + 5, tile.blk_n * 2 + 3, tile.blk_k * 4 + 7);
    let space = IterSpace::new(shape, tile);
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 0xACC);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 0xB17);
    let mut bufs = PackBuffers::new();
    let len = tile.blk_m * tile.blk_n;
    for kind in KernelKind::ALL {
        let cache = PackCache::for_kernel(&space, kind, WaitPolicy::default());
        for t in 0..space.tiles() {
            let mut reference = vec![0.0f64; len];
            mac_loop_view(&a.view(), &b.view(), &space, t, 0, space.iters_per_tile(), &mut reference);
            let mut got = vec![0.0f64; len];
            mac_loop_kernel(kind, &a.view(), &b.view(), &space, t, 0, space.iters_per_tile(), &mut got, &mut bufs);
            if got != reference {
                return Err(format!("kernel {kind} diverged from mac_loop_view on tile {t} of {shape}"));
            }
            let mut cached = vec![0.0f64; len];
            mac_loop_kernel_cached(kind, cache.as_ref(), 0, &a.view(), &b.view(), &space, t, 0, space.iters_per_tile(), &mut cached, &mut bufs);
            if cached != reference {
                return Err(format!("kernel {kind} through the pack cache diverged on tile {t} of {shape}"));
            }
        }
    }
    Ok(())
}

/// The bit-exactness gate, layer 2: the *executor* must produce
/// byte-identical f64 output with the pack cache on and off, across
/// thread counts, and through a fault-recovery run. Returns an error
/// description on the first divergence.
fn executor_exact_gate(tile: TileShape) -> Result<(), String> {
    let shape = GemmShape::new(tile.blk_m * 2 + 5, tile.blk_n * 2 + 3, tile.blk_k * 4 + 7);
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 0xE8A);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 0xE8B);
    let decomp = Decomposition::stream_k(shape, tile, 6);
    let baseline = CpuExecutor::with_threads(6)
        .with_pack_cache(false)
        .gemm::<f64, f64>(&a, &b, &decomp);
    // The grid's split seams need two co-resident CTAs, so two
    // workers is the floor.
    for threads in [2usize, 6] {
        for cache in [false, true] {
            let c = CpuExecutor::with_threads(threads)
                .with_pack_cache(cache)
                .gemm::<f64, f64>(&a, &b, &decomp);
            if c.max_abs_diff(&baseline) != 0.0 {
                return Err(format!("executor diverged at {threads} threads, pack_cache={cache}"));
            }
        }
    }
    // Fault recovery with the cache active: a lost contributor must
    // still recover to the identical answer.
    let contributors = FaultPlan::contributors(&decomp);
    if let Some(&victim) = contributors.first() {
        let plan = FaultPlan::single(victim, FaultKind::Lose);
        let exec = CpuExecutor::with_threads(6).with_watchdog(Duration::from_millis(100));
        match exec.gemm_with_faults::<f64, f64>(&a, &b, &decomp, &plan) {
            Ok((c, report)) => {
                if c.max_abs_diff(&baseline) != 0.0 {
                    return Err("fault recovery with pack cache diverged".into());
                }
                if report.recoveries() == 0 {
                    return Err("fault plan injected but no recovery happened".into());
                }
            }
            Err(e) => return Err(format!("fault recovery failed under pack cache: {e}")),
        }
    }
    Ok(())
}

/// JSON object fragment mapping kernel names to timings.
fn json_timings(timings: &[(KernelKind, f64)]) -> String {
    let fields: Vec<String> =
        timings.iter().map(|(k, t)| format!("\"{}\": {t:.6e}", k.name())).collect();
    format!("{{{}}}", fields.join(", "))
}

/// The kernel sweep behind `streamk bench`: times every kernel
/// generation (scalar, blocked, packed, SIMD) on the headline `size³`
/// f32 problem — privately packed and through the shared
/// [`PackCache`] — plus a corpus slice and a thread-scaling sweep,
/// runs the two-layer f64 bit-exactness gate, reports
/// `select_kernel_on`'s pick and the shape it was calibrated on, and
/// writes the whole record to `out` as JSON.
///
/// # Panics
///
/// Panics if any kernel or executor configuration fails the
/// bit-exactness gates — CI treats that as a hard failure.
fn run_bench(
    size: usize,
    tile: TileShape,
    corpus: usize,
    reps: usize,
    smoke: bool,
    layout: Layout,
    out_path: &str,
) -> String {
    let mut out = String::new();
    let mut accum = Vec::new();
    let mut bufs = PackBuffers::new();
    let simd_level = SimdLevel::detect();

    // Gates first: timings of wrong kernels are worthless.
    if let Err(e) = bit_exact_gate(tile) {
        panic!("bit-exactness gate failed: {e}");
    }
    if let Err(e) = executor_exact_gate(tile) {
        panic!("executor bit-exactness gate failed: {e}");
    }
    let _ = writeln!(out, "bit-exactness gate: every kernel (packed + cached) identical to mac_loop_view (f64)");
    let _ = writeln!(out, "executor gate: pack cache on/off, 2..6 threads, and fault recovery all bit-identical (f64)");
    let _ = writeln!(out, "simd level: {simd_level}");

    // Headline: size³ f32 -> f32, single thread, full kernel sweep,
    // private per-tile packing vs one shared pack per GEMM.
    let shape = GemmShape::new(size, size, size);
    let space = IterSpace::new(shape, tile);
    let a = Matrix::<f32>::random::<f32>(shape.m, shape.k, layout, 1);
    let b = Matrix::<f32>::random::<f32>(shape.k, shape.n, layout, 2);
    let flops = shape.flops() as f64;
    let _ = writeln!(out, "\nheadline {shape} f32 ({layout} operands), blocking {tile}, single thread, {reps} reps:");
    let mut headline: Vec<(KernelKind, f64)> = Vec::new();
    let mut headline_cached: Vec<(KernelKind, f64)> = Vec::new();
    for kind in KernelKind::ALL {
        let t = time_kernel_f32(kind, false, &a, &b, &space, reps, &mut accum, &mut bufs);
        // Kernels without panels take the identical path either way —
        // don't time them twice.
        let tc = if kind.uses_panels() {
            time_kernel_f32(kind, true, &a, &b, &space, reps, &mut accum, &mut bufs)
        } else {
            t
        };
        let _ = writeln!(
            out,
            "  {:<10} private {t:>10.3e} s ({:>6.2} GF/s)   cached {tc:>10.3e} s ({:>6.2} GF/s)",
            kind.name(),
            flops / t / 1e9,
            flops / tc / 1e9
        );
        headline.push((kind, t));
        headline_cached.push((kind, tc));
    }
    let scalar = headline.iter().find(|(k, _)| *k == KernelKind::Scalar).map_or(0.0, |&(_, t)| t);
    let blocked = headline.iter().find(|(k, _)| *k == KernelKind::Blocked).map_or(0.0, |&(_, t)| t);
    let best_packed = headline
        .iter()
        .filter(|(k, _)| k.is_packed())
        .min_by(|x, y| x.1.total_cmp(&y.1))
        .copied()
        .unwrap_or((KernelKind::default(), f64::INFINITY));
    let best_simd = headline_cached
        .iter()
        .filter(|(k, _)| k.is_simd())
        .min_by(|x, y| x.1.total_cmp(&y.1))
        .copied()
        .unwrap_or((KernelKind::default(), f64::INFINITY));
    let speedup = blocked / best_packed.1;
    let simd_speedup = scalar / best_simd.1;
    let _ = writeln!(
        out,
        "  packed vs blocked: {} is {speedup:.2}x the blocked4x4 kernel",
        best_packed.0.name()
    );
    let _ = writeln!(
        out,
        "  simd vs scalar: {} (cached) is {simd_speedup:.2}x the scalar kernel",
        best_simd.0.name()
    );

    // Corpus slice: clamp the log-uniform shapes so the sweep stays
    // tractable, then time the kernel generations on each.
    let cap = if smoke { 128 } else { 320 };
    let shapes: Vec<GemmShape> = Corpus::generate(CorpusConfig::smoke(corpus.max(1) * 3))
        .shapes()
        .iter()
        .map(|s| GemmShape::new(s.m.min(cap), s.n.min(cap), s.k.min(cap)))
        .take(corpus)
        .collect();
    let corpus_kinds = [KernelKind::Scalar, KernelKind::Blocked, KernelKind::Packed8x8, KernelKind::default()];
    let mut corpus_rows: Vec<(GemmShape, Vec<(KernelKind, f64)>)> = Vec::new();
    let _ = writeln!(out, "\ncorpus slice ({} shapes, dims clamped to {cap}):", shapes.len());
    for s in &shapes {
        let sp = IterSpace::new(*s, tile);
        let ca = Matrix::<f32>::random::<f32>(s.m, s.k, Layout::RowMajor, 3);
        let cb = Matrix::<f32>::random::<f32>(s.k, s.n, Layout::RowMajor, 4);
        let row: Vec<(KernelKind, f64)> = corpus_kinds
            .iter()
            .map(|&k| (k, time_kernel_f32(k, k.uses_panels(), &ca, &cb, &sp, reps, &mut accum, &mut bufs)))
            .collect();
        let _ = writeln!(
            out,
            "  {s}: scalar {:.3e}s  blocked {:.3e}s  packed8x8 {:.3e}s  {} {:.3e}s",
            row[0].1,
            row[1].1,
            row[2].1,
            corpus_kinds[3].name(),
            row[3].1
        );
        corpus_rows.push((*s, row));
    }

    // Calibrated selection on the *headline* shape — the selection is
    // only meaningful for the blocking it will actually run with, so
    // the recorded calibration shape matches the configured tile.
    let sel = select_kernel_on::<f32, f32>(tile, shape, reps);
    let _ = writeln!(
        out,
        "\nselect_kernel_on {}: best = {} ({:.2} GFLOP/s)",
        sel.shape,
        sel.best.name(),
        sel.gflops_of(sel.best).unwrap_or(0.0)
    );

    // Thread-scaling sweep: the executor's grid at 1/2/4/N workers,
    // best SIMD kernel, pack cache on vs off. Grid = worker count
    // (one CTA per worker, the Stream-K ideal).
    let nproc = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut thread_counts = vec![1usize, 2, 4, nproc];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let _ = writeln!(out, "\nthread scaling ({shape} f32, kernel {}, grid = workers):", best_simd.0.name());
    let _ = writeln!(out, "  threads   private(s)    cached(s)   cache speedup");
    let mut sweep_rows: Vec<(usize, f64, f64)> = Vec::new();
    let mut sweep_stats: Vec<(usize, usize)> = Vec::new();
    for &threads in &thread_counts {
        let decomp = Decomposition::stream_k(shape, tile, threads);
        // Each timing reuses one executor across the warm-up and all
        // reps, so the persistent pool and warm per-worker arenas are
        // what is measured; returns (median, steals, deferrals of the
        // last rep).
        let time_exec = |cache: bool| -> (f64, usize, usize) {
            let exec = CpuExecutor::with_threads(threads).with_kernel(best_simd.0).with_pack_cache(cache);
            let _ = exec.gemm::<f32, f32>(&a, &b, &decomp); // warm-up
            let mut times: Vec<f64> = (0..reps.max(1))
                .map(|_| {
                    let t0 = Instant::now();
                    let _ = exec.gemm::<f32, f32>(&a, &b, &decomp);
                    t0.elapsed().as_secs_f64()
                })
                .collect();
            times.sort_by(f64::total_cmp);
            let stats = exec.last_stats();
            (times[times.len() / 2], stats.steals, stats.deferrals)
        };
        let (private, _, _) = time_exec(false);
        let (cached, steals, deferrals) = time_exec(true);
        let _ = writeln!(
            out,
            "  {threads:>7} {private:>12.3e} {cached:>12.3e} {:>14.2}x{}",
            private / cached,
            if threads > nproc { "  (oversubscribed)" } else { "" }
        );
        sweep_rows.push((threads, private, cached));
        sweep_stats.push((steals, deferrals));
    }

    // Parallel efficiency: measured scaling of the cached executor
    // against the simulator's prediction for the same decomposition on
    // an overhead-free p-SM processor. The simulated speedup is the
    // quantization-limited ideal, so the measured curve should sit at
    // or below it; on machines with fewer cores than the sweep point
    // the measured curve flattens and only the upper bound applies.
    let sim_makespan = |p: usize| -> f64 {
        let decomp = Decomposition::stream_k(shape, tile, p);
        let base = GpuSpec::hypothetical_4sm();
        // The simulator's per-SM rate is total peak / sms, so a width
        // sweep must scale the total peak with p to hold each SM's
        // throughput constant.
        let gpu = GpuSpec {
            sms: p,
            fp64_tflops: base.fp64_tflops * p as f64 / base.sms as f64,
            name: "scaling-sim",
            ..base
        };
        simulate(&decomp, &gpu, Precision::Fp64).makespan
    };
    let base_cached = sweep_rows[0].2;
    let sim_base = sim_makespan(thread_counts[0]);
    let _ = writeln!(out, "\nparallel efficiency (cached, vs {} thread(s); sim = overhead-free p-SM prediction):", thread_counts[0]);
    let _ = writeln!(out, "  threads   GFLOP/s  speedup    eff%  sim speedup  bracket  steals  deferrals");
    let mut eff_json: Vec<String> = Vec::new();
    for (i, &(threads, _, cached)) in sweep_rows.iter().enumerate() {
        let (steals, deferrals) = sweep_stats[i];
        let gflops = flops / cached / 1e9;
        let speedup = base_cached / cached;
        let efficiency_pct = speedup / threads as f64 * 100.0;
        let sim_speedup = sim_base / sim_makespan(threads);
        // Upper bound always holds (the sim is an ideal); the lower
        // bound only binds when the host actually has `threads` cores.
        let within_bracket =
            speedup <= sim_speedup * 1.15 && (threads > nproc || speedup >= sim_speedup * 0.5);
        let _ = writeln!(
            out,
            "  {threads:>7} {gflops:>9.2} {speedup:>7.2}x {efficiency_pct:>6.1} {sim_speedup:>11.2}x {:>8} {steals:>7} {deferrals:>10}",
            if within_bracket { "ok" } else { "MISS" }
        );
        eff_json.push(format!(
            "    {{\"threads\": {threads}, \"oversubscribed\": {}, \"gflops\": {gflops:.3}, \"speedup\": {speedup:.3}, \"efficiency_pct\": {efficiency_pct:.1}, \"sim_speedup\": {sim_speedup:.3}, \"within_bracket\": {within_bracket}, \"steals\": {steals}, \"deferrals\": {deferrals}}}",
            threads > nproc
        ));
    }

    // Tracing overhead: the identical Stream-K launch with span
    // recording off and on (same shape family as the criterion
    // `trace_overhead` group). The observability contract is ≤5%.
    // Workers are capped at the core count — oversubscribed threads
    // turn the measurement into scheduler noise, not tracing cost —
    // so on a single-core machine the grid degenerates to one CTA
    // (split seams need two co-resident CTAs, which one worker
    // cannot host).
    let side = if smoke { size.min(128) } else { 256 };
    let t_threads = 4.min(nproc).max(1);
    let t_shape = GemmShape::new(side, side, side);
    let t_decomp = Decomposition::stream_k(t_shape, tile, t_threads);
    let ta = Matrix::<f64>::random::<f64>(t_shape.m, t_shape.k, Layout::RowMajor, 5);
    let tb = Matrix::<f64>::random::<f64>(t_shape.k, t_shape.n, Layout::RowMajor, 6);
    // Interleave the off/on reps and compare minima: on a shared or
    // thermally-throttled machine, slow windows hit both arms equally
    // and the fastest rep is the least-perturbed observation of the
    // (deterministic) tracing cost. Back-to-back medians measured the
    // throttle schedule, not the tracer.
    let exec_off = CpuExecutor::with_threads(t_threads);
    let exec_on = CpuExecutor::with_threads(t_threads).with_trace(true);
    let _ = exec_off.gemm::<f64, f64>(&ta, &tb, &t_decomp); // warm-up
    let _ = exec_on.gemm::<f64, f64>(&ta, &tb, &t_decomp);
    let (mut trace_off, mut trace_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(15) {
        let t0 = Instant::now();
        let _ = exec_off.gemm::<f64, f64>(&ta, &tb, &t_decomp);
        trace_off = trace_off.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let _ = exec_on.gemm::<f64, f64>(&ta, &tb, &t_decomp);
        trace_on = trace_on.min(t0.elapsed().as_secs_f64());
    }
    // The raw delta can be negative when scheduler noise makes the
    // traced arm win a rep; a negative "overhead" is a measurement
    // artifact, not a tracing speedup, so the gated figure clamps at
    // zero and the signed delta is recorded separately for honesty.
    let overhead_raw_pct = (trace_on - trace_off) / trace_off * 100.0;
    let overhead_pct = overhead_raw_pct.max(0.0);
    let trace_within_gate = overhead_pct <= 5.0;
    let _ = writeln!(
        out,
        "\ntracing overhead ({t_shape} f64, {t_threads} threads): off {trace_off:.3e}s  on {trace_on:.3e}s  -> {overhead_pct:.1}% (raw {overhead_raw_pct:+.1}%, gate 5%: {})",
        if trace_within_gate { "ok" } else { "MISS" }
    );

    // Layout comparison: the same headline GEMM with row-major
    // operands through the pack cache (one grid-shared table vs
    // per-worker sharded tables) against native block-major operands
    // (zero-pack bypass, cache on and off), at every sweep width.
    // Every cell is asserted bit-identical to the row-major
    // shared-cache run — same kernel, same ascending-k order, so the
    // storage layout must not change a single bit.
    let a_row = a.to_layout(Layout::RowMajor);
    let b_row = b.to_layout(Layout::RowMajor);
    let a_blk = a.to_layout(Layout::BlockMajor);
    let b_blk = b.to_layout(Layout::BlockMajor);
    let _ = writeln!(out, "\nlayout comparison ({shape} f32, kernel {}, grid = workers):", best_simd.0.name());
    let _ = writeln!(out, "  threads  row+shared(s)  row+sharded(s)  block+cache(s)  block+bypass(s)  best");
    let mut layout_json: Vec<String> = Vec::new();
    for &threads in &thread_counts {
        let decomp = Decomposition::stream_k(shape, tile, threads);
        let time_cfg = |am: &Matrix<f32>, bm: &Matrix<f32>, cache: bool, shards: usize| -> (f64, Matrix<f32>) {
            let exec = CpuExecutor::with_threads(threads)
                .with_kernel(best_simd.0)
                .with_pack_cache(cache)
                .with_pack_shards(shards);
            let c = exec.gemm::<f32, f32>(am, bm, &decomp); // warm-up, kept for the exactness gate
            let mut times: Vec<f64> = (0..reps.max(1))
                .map(|_| {
                    let t0 = Instant::now();
                    let _ = exec.gemm::<f32, f32>(am, bm, &decomp);
                    t0.elapsed().as_secs_f64()
                })
                .collect();
            times.sort_by(f64::total_cmp);
            (times[times.len() / 2], c)
        };
        let (row_shared, c_ref) = time_cfg(&a_row, &b_row, true, 1);
        let (row_sharded, c_sharded) = time_cfg(&a_row, &b_row, true, 0);
        let (blk_cached, c_blk_cached) = time_cfg(&a_blk, &b_blk, true, 0);
        let (blk_bypass, c_blk_bypass) = time_cfg(&a_blk, &b_blk, false, 0);
        for (name, c) in [
            ("row-major sharded cache", &c_sharded),
            ("block-major cached", &c_blk_cached),
            ("block-major bypass", &c_blk_bypass),
        ] {
            assert!(
                c.max_abs_diff(&c_ref) == 0.0,
                "layout comparison: {name} diverged from the row-major shared-cache baseline at {threads} threads"
            );
        }
        let cells =
            [("row-shared", row_shared), ("row-sharded", row_sharded), ("block-cached", blk_cached), ("block-bypass", blk_bypass)];
        let best = cells.iter().min_by(|x, y| x.1.total_cmp(&y.1)).expect("four cells");
        let _ = writeln!(
            out,
            "  {threads:>7} {row_shared:>14.3e} {row_sharded:>15.3e} {blk_cached:>15.3e} {blk_bypass:>16.3e}  {}",
            best.0
        );
        layout_json.push(format!(
            "      {{\"threads\": {threads}, \"oversubscribed\": {}, \"row_shared_s\": {row_shared:.6e}, \"row_sharded_s\": {row_sharded:.6e}, \"block_cached_s\": {blk_cached:.6e}, \"block_bypass_s\": {blk_bypass:.6e}, \"best\": \"{}\", \"block_vs_row_speedup\": {:.3}}}",
            threads > nproc,
            best.0,
            row_shared / blk_cached.min(blk_bypass)
        ));
    }

    let corpus_json: Vec<String> = corpus_rows
        .iter()
        .map(|(s, row)| format!("    {{\"shape\": \"{s}\", \"timings_s\": {}}}", json_timings(row)))
        .collect();
    let sweep_json: Vec<String> = sweep_rows
        .iter()
        .map(|(t, p, c)| {
            format!(
                "    {{\"threads\": {t}, \"oversubscribed\": {}, \"private_s\": {p:.6e}, \"cached_s\": {c:.6e}, \"cache_speedup\": {:.3}}}",
                *t > nproc,
                p / c
            )
        })
        .collect();
    let generated_by = provenance("bench");
    let json = format!(
        "{{\n  \"generated_by\": \"{generated_by}\",\n  \"smoke\": {smoke},\n  \"tile\": \"{tile}\",\n  \"simd_level\": \"{simd_level}\",\n  \"nproc\": {nproc},\n  \"bit_exact_f64\": true,\n  \"headline\": {{\n    \"shape\": \"{shape}\",\n    \"dtype\": \"f32\",\n    \"reps\": {reps},\n    \"timings_s\": {},\n    \"cached_timings_s\": {},\n    \"best_packed\": \"{}\",\n    \"speedup_packed_vs_blocked\": {speedup:.3},\n    \"best_simd\": \"{}\",\n    \"best_simd_gflops\": {:.2},\n    \"speedup_simd_vs_scalar\": {simd_speedup:.3}\n  }},\n  \"thread_scaling\": [\n{}\n  ],\n  \"parallel_efficiency\": [\n{}\n  ],\n  \"tracing_overhead\": {{\"shape\": \"{t_shape}\", \"threads\": {t_threads}, \"trace_off_s\": {trace_off:.6e}, \"trace_on_s\": {trace_on:.6e}, \"overhead_pct\": {overhead_pct:.2}, \"overhead_raw_pct\": {overhead_raw_pct:.2}, \"gate_pct\": 5.0, \"within_gate\": {trace_within_gate}}},\n  \"layout_comparison\": {{\n    \"shape\": \"{shape}\",\n    \"dtype\": \"f32\",\n    \"kernel\": \"{}\",\n    \"headline_layout\": \"{layout}\",\n    \"bit_exact\": true,\n    \"rows\": [\n{}\n    ]\n  }},\n  \"corpus\": [\n{}\n  ],\n  \"selection\": {{\"best\": \"{}\", \"shape\": \"{}\", \"timings_s\": {}}}\n}}\n",
        json_timings(&headline),
        json_timings(&headline_cached),
        best_packed.0.name(),
        best_simd.0.name(),
        flops / best_simd.1 / 1e9,
        sweep_json.join(",\n"),
        eff_json.join(",\n"),
        best_simd.0.name(),
        layout_json.join(",\n"),
        corpus_json.join(",\n"),
        sel.best.name(),
        sel.shape,
        json_timings(&sel.timings),
    );
    match std::fs::write(out_path, &json) {
        Ok(()) => {
            let _ = writeln!(out, "wrote {out_path}");
        }
        Err(e) => {
            let _ = writeln!(out, "failed to write {out_path}: {e}");
        }
    }
    out
}

/// Splices `"key": section` as the last member of the JSON object at
/// `out_path`, replacing any previous splice of the same key. A
/// missing or non-object file is replaced by a fresh object holding
/// only the section — `select-bench` must work standalone and as an
/// addendum to an existing `BENCH_cpu.json`.
fn splice_json_section(out_path: &str, key: &str, section: &str) -> std::io::Result<()> {
    let marker = format!(",\n  \"{key}\":");
    let body = match std::fs::read_to_string(out_path) {
        Ok(t) if t.trim_start().starts_with('{') => {
            if let Some(idx) = t.find(&marker) {
                t[..idx].to_string()
            } else {
                let trimmed = t.trim_end();
                trimmed.strip_suffix('}').unwrap_or(trimmed).trim_end().to_string()
            }
        }
        _ => format!("{{\n  \"generated_by\": \"{}\"", provenance("bench-splice")),
    };
    let sep = if body.trim_end().ends_with('{') { "" } else { "," };
    std::fs::write(out_path, format!("{body}{sep}\n  \"{key}\": {section}\n}}\n"))
}

/// One measured cell of the select-bench oracle table: a candidate's
/// median wall time and mean fixup wait stall on one corpus shape.
struct MeasuredCell {
    candidate: streamk_select::Candidate,
    median_s: f64,
    wait_s: f64,
}

/// Measures `candidate` on `shape`: runs a scalar-kernel execution of
/// the *same* decomposition first (every kernel accumulates in the
/// identical ascending-k order, so the outputs must be bit-identical)
/// and panics on divergence, then returns the median of `reps` timed
/// runs plus the last run's wait stall.
fn measure_candidate(
    base: &CpuExecutor,
    candidate: &streamk_select::Candidate,
    shape: GemmShape,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    reps: usize,
) -> MeasuredCell {
    let decomp = candidate.decompose(shape);
    let reference = base.clone().with_kernel(KernelKind::Scalar).gemm::<f64, f64>(a, b, &decomp);
    let exec = base.clone().with_kernel(candidate.kernel);
    let c = exec.gemm::<f64, f64>(a, b, &decomp); // warm-up + exactness probe
    assert!(
        c.max_abs_diff(&reference) == 0.0,
        "select-bench: candidate {candidate} on {shape} diverged from the scalar run of its own decomposition"
    );
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            let _ = exec.gemm::<f64, f64>(a, b, &decomp);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    MeasuredCell {
        candidate: *candidate,
        median_s: times[times.len() / 2],
        wait_s: exec.last_stats().wait_stall.as_secs_f64(),
    }
}

/// The adaptive-selection regret study behind `streamk select-bench`.
///
/// Measures every slate candidate on a Fig-4-style corpus (anchors
/// spanning the square / strong-scaling / wide-tile regimes plus
/// log-uniform corpus shapes, dims clamped for tractability), each
/// candidate verified bit-exact against a scalar-kernel run of its own
/// decomposition before timing. The per-shape minimum is the measured
/// oracle. Three selector passes replay the corpus against that table:
///
/// - **cold**: a fresh selector's frozen picks — the App. A.1 static
///   heuristic floor;
/// - **warm**: after `rounds` epsilon-greedy adaptation rounds fed the
///   measured times, the converged frozen picks;
/// - **distilled**: the decision tree distilled from the converged
///   table, predicting with zero table lookups.
///
/// Regret = selected-total / oracle-total − 1 per pass. The warm table
/// persists to `cache` (temp-file + atomic rename) and is reloaded by
/// a fresh selector to prove round-trip consistency; a second
/// invocation starts from the persisted table (`cache_loaded` in the
/// report). Results splice into `out` as a `selection_adaptive`
/// section.
///
/// # Panics
///
/// Panics if any candidate fails the bit-exactness probe — CI treats
/// that as a hard failure.
#[allow(clippy::too_many_lines)]
fn run_select_bench(
    corpus_n: usize,
    rounds: usize,
    reps: usize,
    threads: usize,
    smoke: bool,
    cache_path: &str,
    out_path: &str,
) -> String {
    use streamk_select::{AdaptiveSelector, SelectorConfig};

    let mut out = String::new();
    let nproc = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // Oversubscribed workers would measure scheduler noise, not
    // schedules; the sweep stays within the machine.
    let workers = threads.min(nproc).max(1);
    let top_k = if smoke { 5 } else { 8 };
    let layout = Layout::RowMajor;
    let precision = Precision::Fp64;
    let _ = writeln!(
        out,
        "select-bench: {workers} workers (requested {threads}, nproc {nproc}), top-{top_k} slates, {rounds} adaptation rounds, {reps} reps{}",
        if smoke { " (smoke)" } else { "" }
    );

    // Corpus: regime anchors plus clamped log-uniform shapes.
    let cap = if smoke { 96 } else { 256 };
    let kcap = if smoke { 256 } else { 1024 };
    let mut shapes = vec![
        GemmShape::new(cap, cap, cap),
        GemmShape::new(cap / 4, cap / 4, kcap),
        GemmShape::new(cap, cap / 2, cap / 4),
    ];
    for s in Corpus::generate(CorpusConfig::smoke(corpus_n * 3)).shapes().iter().take(corpus_n) {
        let clamped = GemmShape::new(s.m.min(cap), s.n.min(cap), s.k.min(kcap));
        if !shapes.contains(&clamped) {
            shapes.push(clamped);
        }
    }

    // The slate authority: one selector queried in corpus order, so
    // same-class shapes share one slate exactly as the live selector
    // would key them.
    let config = || SelectorConfig::new(precision, workers).with_top_k(top_k);
    let mut slates = AdaptiveSelector::new(config());

    // Oracle table: measure every slate candidate on every shape.
    let base = CpuExecutor::with_threads(workers);
    let mut table: Vec<(GemmShape, Vec<MeasuredCell>)> = Vec::new();
    let _ = writeln!(out, "\nmeasured oracle ({} shapes, every cell bit-exact vs scalar):", shapes.len());
    for &shape in &shapes {
        let (_, slate) = slates.slate(shape, layout);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, layout, 0x5E1E);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, layout, 0x5E1F);
        let cells: Vec<MeasuredCell> =
            slate.iter().map(|c| measure_candidate(&base, c, shape, &a, &b, reps)).collect();
        let best = cells.iter().min_by(|x, y| x.median_s.total_cmp(&y.median_s)).expect("slate non-empty");
        let _ = writeln!(
            out,
            "  {shape}: {} candidates, oracle {} at {:.3e}s",
            cells.len(),
            best.candidate,
            best.median_s
        );
        table.push((shape, cells));
    }
    fn lookup(
        table: &[(GemmShape, Vec<MeasuredCell>)],
        shape: GemmShape,
        candidate: &streamk_select::Candidate,
    ) -> Option<(f64, f64)> {
        table
            .iter()
            .find(|(s, _)| *s == shape)
            .and_then(|(_, cells)| cells.iter().find(|c| c.candidate == *candidate))
            .map(|c| (c.median_s, c.wait_s))
    }
    let oracle_total: f64 = table
        .iter()
        .map(|(_, cells)| {
            cells.iter().map(|c| c.median_s).fold(f64::INFINITY, f64::min)
        })
        .sum();

    // Cold pass: a fresh selector, frozen — pure App. A.1 decisions.
    let mut cold = AdaptiveSelector::new(config());
    let cold_picks: Vec<streamk_select::Candidate> =
        shapes.iter().map(|&s| cold.select_frozen(s, layout).candidate).collect();

    // Warm selector: persists to `cache_path`; a prior invocation's
    // table is picked up here (the cross-invocation CI gate).
    let mut warm = AdaptiveSelector::new(config().with_cache_path(cache_path));
    let cache_loaded = warm.loaded_from_disk();
    let _ = writeln!(
        out,
        "\ncache {cache_path}: {}",
        if cache_loaded { "loaded from a previous invocation" } else { "cold start" }
    );

    // Adaptation: replay the corpus, feeding measured times back. The
    // measured table stands in for re-running each launch — the same
    // schedule costs the same, and the replay exercises exactly the
    // explore → converge ladder a live executor would.
    for _ in 0..rounds.max(1) {
        for &shape in &shapes {
            let sel = warm.select(shape, layout);
            if let Some((secs, wait)) = lookup(&table, shape, &sel.candidate) {
                warm.feedback_raw(&sel, secs, wait);
            }
        }
    }
    // Finish coverage so the frozen winner is the true table argmin:
    // replay keeps exploring until no slate entry is untried.
    for &shape in &shapes {
        loop {
            let sel = warm.select(shape, layout);
            let Some((secs, wait)) = lookup(&table, shape, &sel.candidate) else { break };
            warm.feedback_raw(&sel, secs, wait);
            let (class, slate) = warm.slate(shape, layout);
            let entry = &warm.cache().entries[&class];
            if (0..slate.len()).all(|i| entry.stats.get(i).is_none_or(|s| s.trials > 0)) {
                break;
            }
        }
    }
    let warm_picks: Vec<streamk_select::Candidate> =
        shapes.iter().map(|&s| warm.select_frozen(s, layout).candidate).collect();

    // Persist and prove the round trip: a fresh selector over the same
    // file must reproduce every frozen pick.
    let cache_written = warm.persist().unwrap_or(false);
    let mut reloaded = AdaptiveSelector::new(config().with_cache_path(cache_path));
    let cache_reload_consistent = cache_written
        && reloaded.loaded_from_disk()
        && shapes
            .iter()
            .zip(&warm_picks)
            .all(|(&s, pick)| reloaded.select_frozen(s, layout).candidate == *pick);

    // Distilled pass: the decision tree's zero-lookup predictions.
    let distilled_classes = warm.distill().unwrap_or(0);
    let distilled_picks: Vec<streamk_select::Candidate> = shapes
        .iter()
        .zip(&warm_picks)
        .map(|(&s, warm_pick)| warm.predict_distilled(s, layout).unwrap_or(*warm_pick))
        .collect();

    // Score the three passes. A distilled tree may predict a schedule
    // from a sibling class's slate that this shape's table never
    // measured — measure it on demand rather than guessing.
    let mut pass_time = |picks: &[streamk_select::Candidate], out: &mut String, name: &str| -> f64 {
        let mut total = 0.0;
        for (&shape, candidate) in shapes.iter().zip(picks) {
            let secs = match lookup(&table, shape, candidate) {
                Some((secs, _)) => secs,
                None => {
                    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, layout, 0x5E1E);
                    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, layout, 0x5E1F);
                    let cell = measure_candidate(&base, candidate, shape, &a, &b, reps);
                    let secs = cell.median_s;
                    let _ = writeln!(out, "  [{name}] measured off-slate pick {candidate} on {shape}: {secs:.3e}s");
                    table.iter_mut().find(|(s, _)| *s == shape).expect("shape in table").1.push(cell);
                    secs
                }
            };
            total += secs;
        }
        total
    };
    let cold_total = pass_time(&cold_picks, &mut out, "cold");
    let warm_total = pass_time(&warm_picks, &mut out, "warm");
    let distilled_total = pass_time(&distilled_picks, &mut out, "distilled");
    let regret = |total: f64| (total / oracle_total - 1.0) * 100.0;
    let (cold_regret, warm_regret, distilled_regret) =
        (regret(cold_total), regret(warm_total), regret(distilled_total));
    let distilled_vs_warm = (distilled_total / warm_total - 1.0) * 100.0;

    let _ = writeln!(out, "\nregret vs measured oracle (total {oracle_total:.3e}s):");
    let _ = writeln!(out, "  {:<11} {:>12} {:>9}", "pass", "total(s)", "regret");
    for (name, total, r) in [
        ("cold", cold_total, cold_regret),
        ("warm", warm_total, warm_regret),
        ("distilled", distilled_total, distilled_regret),
    ] {
        let _ = writeln!(out, "  {name:<11} {total:>12.3e} {r:>8.2}%");
    }
    let _ = writeln!(
        out,
        "warm ≤ cold: {}; distilled vs warm: {distilled_vs_warm:+.2}%; tree trained on {distilled_classes} classes",
        if warm_regret <= cold_regret + 1e-9 { "yes" } else { "NO" }
    );
    let _ = writeln!(
        out,
        "cache: loaded {cache_loaded}, written {cache_written}, reload-consistent {cache_reload_consistent}"
    );

    let per_shape: Vec<String> = shapes
        .iter()
        .enumerate()
        .map(|(i, &shape)| {
            let cells = &table.iter().find(|(s, _)| *s == shape).expect("shape in table").1;
            let best = cells.iter().min_by(|x, y| x.median_s.total_cmp(&y.median_s)).expect("cells");
            let t = |c: &streamk_select::Candidate| lookup(&table, shape, c).map_or(f64::NAN, |(s, _)| s);
            format!(
                "      {{\"shape\": \"{shape}\", \"slate\": {}, \"oracle_s\": {:.6e}, \"oracle\": \"{}\", \"cold_s\": {:.6e}, \"cold\": \"{}\", \"warm_s\": {:.6e}, \"warm\": \"{}\", \"distilled_s\": {:.6e}}}",
                cells.len(),
                best.median_s,
                best.candidate.encode(),
                t(&cold_picks[i]),
                cold_picks[i].encode(),
                t(&warm_picks[i]),
                warm_picks[i].encode(),
                t(&distilled_picks[i]),
            )
        })
        .collect();
    let generated_by = provenance("select-bench");
    let section = format!(
        "{{\n    \"generated_by\": \"{generated_by}\",\n    \"smoke\": {smoke},\n    \"workers\": {workers},\n    \"requested_threads\": {threads},\n    \"nproc\": {nproc},\n    \"top_k\": {top_k},\n    \"rounds\": {rounds},\n    \"reps\": {reps},\n    \"shapes\": {},\n    \"classes\": {},\n    \"all_bit_exact\": true,\n    \"cache_path\": \"{cache_path}\",\n    \"cache_loaded\": {cache_loaded},\n    \"cache_written\": {cache_written},\n    \"cache_reload_consistent\": {cache_reload_consistent},\n    \"distilled_classes\": {distilled_classes},\n    \"oracle_total_s\": {oracle_total:.6e},\n    \"cold_total_s\": {cold_total:.6e},\n    \"warm_total_s\": {warm_total:.6e},\n    \"distilled_total_s\": {distilled_total:.6e},\n    \"cold_regret_pct\": {cold_regret:.3},\n    \"warm_regret_pct\": {warm_regret:.3},\n    \"distilled_regret_pct\": {distilled_regret:.3},\n    \"distilled_vs_warm_pct\": {distilled_vs_warm:.3},\n    \"per_shape\": [\n{}\n    ]\n  }}",
        shapes.len(),
        warm.class_count(),
        per_shape.join(",\n"),
    );
    match splice_json_section(out_path, "selection_adaptive", &section) {
        Ok(()) => {
            let _ = writeln!(out, "wrote selection_adaptive section into {out_path}");
        }
        Err(e) => {
            let _ = writeln!(out, "failed to write {out_path}: {e}");
        }
    }
    out
}

/// Finish-time skew within each dispatch wave: spans sorted by start,
/// chunked `width` at a time, `max(end) - min(end)` per chunk.
fn wave_skews(mut spans: Vec<(f64, f64)>, width: usize) -> Vec<f64> {
    spans.sort_by(|x, y| x.0.total_cmp(&y.0));
    spans
        .chunks(width.max(1))
        .map(|wave| {
            let hi = wave.iter().map(|s| s.1).fold(f64::MIN, f64::max);
            let lo = wave.iter().map(|s| s.1).fold(f64::MAX, f64::min);
            hi - lo
        })
        .collect()
}

/// The Strassen–Winograd crossover study behind `streamk
/// strassen-bench`: for each cubic size, the classical simd8x32
/// executor races a forced depth-1 hybrid and an adaptive-depth
/// hybrid (recursing under `cutoff`), every hybrid result is gated
/// against the DESIGN.md §15 forward-error bound, and the section
/// records the measured crossover point plus three structural gates
/// (classical f64 bit-exactness through the fallback, fallback below
/// the cutoff, and the service-path request group). Splices a
/// `strassen_hybrid` section into `out_path`.
fn run_strassen_bench(
    cutoff: usize,
    tile: TileShape,
    reps: usize,
    threads: usize,
    smoke: bool,
    out_path: &str,
) -> String {
    let mut out = String::new();
    let exec = CpuExecutor::with_threads(threads).with_kernel(KernelKind::Simd8x32);
    let sizes: &[usize] = if smoke { &[128, 256] } else { &[512, 768, 1024, 1536, 2048] };
    let eps32 = machine_epsilon::<f32>();

    let median = |times: &mut Vec<f64>| -> f64 {
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };

    let _ = writeln!(
        out,
        "strassen hybrid crossover: f32, {threads} thread(s), tile {tile}, cutoff {cutoff}, reps {reps}"
    );
    let _ = writeln!(
        out,
        "\n  {:>6} {:>13} {:>13} {:>13} {:>6} {:>11} {:>11}",
        "size", "classical_s", "hybrid_d1_s", "adaptive_s", "depth", "max_err", "bound"
    );

    let mut rows = Vec::new();
    let mut all_within = true;
    let mut crossover: Option<usize> = None;
    let mut largest: Option<(usize, f64, f64)> = None;
    for &n in sizes {
        let shape = GemmShape::new(n, n, n);
        let a = Matrix::<f32>::random::<f32>(n, n, Layout::RowMajor, 0xA100 + n as u64);
        let b = Matrix::<f32>::random::<f32>(n, n, Layout::RowMajor, 0xB100 + n as u64);
        let decomp = leaf_decomposition(shape, tile, threads);

        let c_classical: Matrix<f32> = exec.gemm(&a, &b, &decomp); // warm-up
        let mut times: Vec<f64> = (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                let _: Matrix<f32> = exec.gemm(&a, &b, &decomp);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        let classical_s = median(&mut times);

        // Forced depth 1 regardless of the global cutoff — the
        // crossover curve needs hybrid timings on both sides of it.
        let d1_cfg =
            StrassenConfig::enabled().with_max_depth(1).with_cutoff((n / 2).max(1));
        let mut arena = StrassenArena::<f32, f32>::new();
        let (c_d1, report_d1) =
            exec.gemm_strassen_with_arena(&a, &b, tile, &d1_cfg, &mut arena);
        let mut times: Vec<f64> = (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                let _ = exec.gemm_strassen_with_arena::<f32, f32>(&a, &b, tile, &d1_cfg, &mut arena);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        let hybrid_d1_s = median(&mut times);

        // Adaptive depth under the configured cutoff (the shipping
        // configuration; below 2·cutoff this is the classical
        // fallback and times the dispatch overhead).
        let ad_cfg = StrassenConfig::enabled().with_max_depth(3).with_cutoff(cutoff);
        let mut ad_arena = StrassenArena::<f32, f32>::new();
        let (c_ad, report_ad) =
            exec.gemm_strassen_with_arena(&a, &b, tile, &ad_cfg, &mut ad_arena);
        let mut times: Vec<f64> = (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                let _ =
                    exec.gemm_strassen_with_arena::<f32, f32>(&a, &b, tile, &ad_cfg, &mut ad_arena);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        let adaptive_s = median(&mut times);

        let (amax, bmax) = (max_abs(&a), max_abs(&b));
        let classical_bound = strassen_error_bound(shape, 0, amax, bmax, eps32);
        let err_d1 = c_d1.max_abs_diff(&c_classical);
        let bound_d1 = strassen_error_bound(shape, 1, amax, bmax, eps32) + classical_bound;
        let err_ad = c_ad.max_abs_diff(&c_classical);
        let bound_ad =
            strassen_error_bound(shape, report_ad.depth, amax, bmax, eps32) + classical_bound;
        let within = err_d1 <= bound_d1 && err_ad <= bound_ad;
        all_within &= within;

        assert!(!report_d1.fell_back, "forced depth-1 must recurse at {n}");
        if crossover.is_none() && hybrid_d1_s < classical_s {
            crossover = Some(n);
        }
        largest = Some((n, classical_s, hybrid_d1_s.min(adaptive_s)));

        let _ = writeln!(
            out,
            "  {n:>6} {classical_s:>13.3e} {hybrid_d1_s:>13.3e} {adaptive_s:>13.3e} {:>6} {err_d1:>11.3e} {bound_d1:>11.3e}{}",
            report_ad.depth,
            if within { "" } else { "  EXCEEDS BOUND" }
        );
        rows.push(format!(
            "      {{\"size\": {n}, \"classical_s\": {classical_s:.6e}, \"hybrid_d1_s\": {hybrid_d1_s:.6e}, \"hybrid_adaptive_s\": {adaptive_s:.6e}, \"adaptive_depth\": {}, \"adaptive_leaves\": {}, \"d1_speedup\": {:.4}, \"max_abs_err_d1\": {err_d1:.6e}, \"err_bound_d1\": {bound_d1:.6e}, \"max_abs_err_adaptive\": {err_ad:.6e}, \"err_bound_adaptive\": {bound_ad:.6e}, \"within_bound\": {within}}}",
            report_ad.depth,
            report_ad.leaf_products,
            classical_s / hybrid_d1_s,
        ));
    }

    // Gate 1: the f64 fallback stays bit-identical to the classical
    // executor (the hybrid never perturbs the disabled path).
    let g = GemmShape::new(192, 160, 176);
    let ga = Matrix::<f64>::random::<f64>(g.m, g.k, Layout::RowMajor, 51);
    let gb = Matrix::<f64>::random::<f64>(g.k, g.n, Layout::RowMajor, 52);
    let (gc, g_report) = exec.gemm_strassen::<f64, f64>(&ga, &gb, tile, &StrassenConfig::default());
    let g_ref: Matrix<f64> = exec.gemm(&ga, &gb, &leaf_decomposition(g, tile, threads));
    let classical_f64_bit_exact = g_report.fell_back && gc.max_abs_diff(&g_ref) == 0.0;

    // Gate 2: an enabled config still falls back (bit-exactly) below
    // its cutoff.
    let fb_n = cutoff.max(32);
    let fb = GemmShape::new(fb_n, fb_n, fb_n);
    let fa = Matrix::<f32>::random::<f32>(fb.m, fb.k, Layout::RowMajor, 61);
    let fbm = Matrix::<f32>::random::<f32>(fb.k, fb.n, Layout::RowMajor, 62);
    let (fc, f_report) = exec.gemm_strassen::<f32, f32>(
        &fa,
        &fbm,
        tile,
        &StrassenConfig::enabled().with_cutoff(cutoff),
    );
    let f_ref: Matrix<f32> = exec.gemm(&fa, &fbm, &leaf_decomposition(fb, tile, threads));
    let fallback_below_cutoff = f_report.fell_back && fc.max_abs_diff(&f_ref) == 0.0;

    // Gate 3: the same recursion through the service's request-group
    // surface completes as a unit and stays within the bound.
    let s_n = if smoke { 128 } else { 512 };
    let s_shape = GemmShape::new(s_n, s_n, s_n);
    let sa = Matrix::<f32>::random::<f32>(s_n, s_n, Layout::RowMajor, 71);
    let sb = Matrix::<f32>::random::<f32>(s_n, s_n, Layout::RowMajor, 72);
    let s_cfg = StrassenConfig::enabled().with_max_depth(1).with_cutoff((s_n / 2).max(1));
    let service = GemmService::<f32, f32>::start(&exec, ServeConfig::default());
    let service_result = service.gemm_strassen(&sa, &sb, tile, &s_cfg);
    service.shutdown();
    let s_ref: Matrix<f32> = exec.gemm(&sa, &sb, &leaf_decomposition(s_shape, tile, threads));
    let s_bound = strassen_error_bound(s_shape, 1, max_abs(&sa), max_abs(&sb), eps32)
        + strassen_error_bound(s_shape, 0, max_abs(&sa), max_abs(&sb), eps32);
    let service_group_ok = match &service_result {
        Ok((c, report)) => !report.fell_back && c.max_abs_diff(&s_ref) <= s_bound,
        Err(_) => false,
    };

    let (largest_size, largest_classical, largest_hybrid) =
        largest.expect("at least one size");
    let speedup_at_largest = largest_classical / largest_hybrid;
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  crossover (hybrid d1 < classical): {}",
        crossover.map_or("not reached".to_string(), |n| format!("{n}³")),
    );
    let _ = writeln!(
        out,
        "  at {largest_size}³: hybrid {:.3e}s vs classical {:.3e}s ({speedup_at_largest:.3}x)",
        largest_hybrid, largest_classical
    );
    let _ = writeln!(out, "  classical f64 bit-exact: {classical_f64_bit_exact}");
    let _ = writeln!(out, "  fallback below cutoff:   {fallback_below_cutoff}");
    let _ = writeln!(out, "  service group path:      {service_group_ok}");
    let _ = writeln!(out, "  all within error bound:  {all_within}");

    let generated_by = provenance("strassen-bench");
    let section = format!(
        "{{\n    \"generated_by\": \"{generated_by}\",\n    \"smoke\": {smoke},\n    \"dtype\": \"f32\",\n    \"kernel\": \"simd8x32\",\n    \"threads\": {threads},\n    \"tile\": \"{tile}\",\n    \"cutoff\": {cutoff},\n    \"reps\": {reps},\n    \"rows\": [\n{}\n    ],\n    \"classical_f64_bit_exact\": {classical_f64_bit_exact},\n    \"fallback_below_cutoff\": {fallback_below_cutoff},\n    \"service_group_ok\": {service_group_ok},\n    \"all_within_bound\": {all_within},\n    \"crossover_size\": {},\n    \"largest_size\": {largest_size},\n    \"classical_s_at_largest\": {largest_classical:.6e},\n    \"hybrid_s_at_largest\": {largest_hybrid:.6e},\n    \"hybrid_speedup_at_largest\": {speedup_at_largest:.4},\n    \"hybrid_beats_classical_at_largest\": {}\n  }}",
        rows.join(",\n"),
        crossover.map_or("null".to_string(), |n| n.to_string()),
        speedup_at_largest >= 1.0,
    );
    match splice_json_section(out_path, "strassen_hybrid", &section) {
        Ok(()) => {
            let _ = writeln!(out, "\nspliced strassen_hybrid into {out_path}");
        }
        Err(e) => {
            let _ = writeln!(out, "\nfailed to write {out_path}: {e}");
        }
    }
    out
}

/// The measured-vs-modeled study behind `streamk profile`: one
/// untraced executor run (the reference result, and proof that
/// tracing-off allocates nothing), one traced run (bit-exactness
/// checked against the reference), then the simulator on a GPU spec
/// *calibrated from the measured MAC rate* — so the residual report
/// compares the Appendix A.1 schedule model against a real machine at
/// matched per-"SM" throughput. Emits a merged Chrome trace (pid 1 =
/// measured workers, pid 2 = predicted SMs) and optionally the
/// measured timeline as SVG.
#[allow(clippy::too_many_arguments)]
fn run_profile(
    shape: GemmShape,
    tile: TileShape,
    threads: usize,
    strategy: StrategyArg,
    layout: Layout,
    out_path: &str,
    svg_path: Option<&str>,
    serve: bool,
) -> String {
    let mut out = String::new();
    let decomp = build(strategy, shape, tile, threads, Precision::Fp64);
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, layout, 0x9A0F);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, layout, 0x9A0E);
    let _ = writeln!(
        out,
        "profile: {shape} GEMM, blocking {tile}, {} on {threads} workers ({} CTAs), {layout} operands",
        decomp.strategy(),
        decomp.grid_size()
    );

    // Untraced reference first: pins the result tracing must not
    // perturb, and the zero-allocation claim (tracing off must never
    // construct a span ring).
    let allocs_before = ring_allocations();
    let baseline = CpuExecutor::with_threads(threads).gemm::<f64, f64>(&a, &b, &decomp);
    let untraced_allocs = ring_allocations() - allocs_before;
    let _ = writeln!(out, "untraced ring allocations: {untraced_allocs} (must be 0)");

    let exec = CpuExecutor::with_threads(threads).with_trace(true);
    let traced = exec.gemm::<f64, f64>(&a, &b, &decomp);
    let bit_exact = traced.max_abs_diff(&baseline) == 0.0;
    let _ = writeln!(out, "traced vs untraced bit-exact: {}", if bit_exact { "yes" } else { "NO" });
    let stats = exec.last_stats();
    let trace = exec.last_trace().expect("traced launch records a timeline");
    let metrics = trace.metrics();
    let wall_s = trace.wall_ns as f64 / 1e9;
    let _ = writeln!(
        out,
        "measured: {wall_s:.3e}s wall, {} spans / {} workers ({} dropped), {} steals, {} deferrals",
        trace.total_spans(),
        trace.workers.len(),
        metrics.dropped_spans,
        stats.steals,
        stats.deferrals
    );

    // Per-phase breakdown over leaf spans (container spans — whole
    // CTAs, deferral resumptions — hold nested leaves and would
    // double-count).
    let leaf_ns = metrics.leaf_total_ns().max(1);
    let _ = writeln!(out, "\nphase breakdown (busy worker-time in leaf spans):");
    for phase in Phase::ALL {
        let ns = metrics.phase_ns(phase);
        let _ = writeln!(
            out,
            "  {:<9} {:>10.3e}s {:>6.1}%",
            phase.name(),
            ns as f64 / 1e9,
            ns as f64 / leaf_ns as f64 * 100.0
        );
    }
    let _ = writeln!(
        out,
        "cta duration: n={} mean {:.3e}s max {:.3e}s; fixup latency: n={} mean {:.3e}s",
        metrics.cta_duration.count(),
        metrics.cta_duration.mean_ns() as f64 / 1e9,
        metrics.cta_duration.max_ns() as f64 / 1e9,
        metrics.fixup_latency.count(),
        metrics.fixup_latency.mean_ns() as f64 / 1e9
    );

    // Calibrate a GPU spec from the measured MAC rate: each worker is
    // one "SM" whose peak is the iteration throughput it actually
    // sustained, so the simulator predicts this machine, not an A100.
    let mac_ns = metrics.total_ns(SpanKind::Mac).max(1);
    let mac_iters: u64 = trace
        .iter()
        .filter(|(_, s)| s.kind == SpanKind::Mac)
        .map(|(_, s)| u64::from(s.arg2))
        .sum();
    let flops_per_iter = 2.0 * (tile.blk_m * tile.blk_n * tile.blk_k) as f64;
    let per_worker_flops = mac_iters as f64 * flops_per_iter / (mac_ns as f64 / 1e9);
    let gpu = GpuSpec {
        name: "cpu-calibrated",
        sms: threads,
        fp64_tflops: per_worker_flops * threads as f64 / 1e12,
        ..GpuSpec::hypothetical_4sm()
    };
    let report = simulate(&decomp, &gpu, Precision::Fp64);

    // Residuals: where the model and the measurement disagree. The
    // model predicts the compute schedule, so the observed makespan is
    // the CTA-span timeline (last CTA end); the wall time additionally
    // carries pool wake-up and teardown and is reported alongside.
    let predicted = report.makespan.max(f64::MIN_POSITIVE);
    let observed = trace
        .iter()
        .filter(|(_, s)| s.kind == SpanKind::Cta)
        .map(|(_, s)| s.end_ns)
        .max()
        .unwrap_or(trace.wall_ns) as f64
        / 1e9;
    let residual_pct = (observed - predicted) / predicted * 100.0;
    let measured_stall = stats.wait_stall.as_secs_f64() / (threads as f64 * wall_s.max(1e-12));
    let predicted_stall = report.total_wait / (report.sms as f64 * predicted);
    let _ = writeln!(
        out,
        "\nmodel-vs-measured residuals (sim: {threads} SMs calibrated at {:.2} GFLOP/s each):",
        per_worker_flops / 1e9
    );
    let _ = writeln!(
        out,
        "  makespan: observed {observed:.3e}s (wall {wall_s:.3e}s)  predicted {predicted:.3e}s  residual {residual_pct:+.1}%"
    );
    let _ = writeln!(
        out,
        "  stall fraction: measured {:.2}%  predicted {:.2}%",
        measured_stall * 100.0,
        predicted_stall * 100.0
    );
    let measured_ctas: Vec<(f64, f64)> = trace
        .iter()
        .filter(|(_, s)| s.kind == SpanKind::Cta)
        .map(|(_, s)| (s.start_ns as f64 / 1e9, s.end_ns as f64 / 1e9))
        .collect();
    let predicted_ctas: Vec<(f64, f64)> = report.spans.iter().map(|s| (s.start, s.end)).collect();
    let measured_skews = wave_skews(measured_ctas, threads);
    let predicted_skews = wave_skews(predicted_ctas, report.sms);
    let _ = writeln!(out, "  per-wave finish skew (measured vs predicted):");
    for (i, skew) in measured_skews.iter().take(8).enumerate() {
        let pred = predicted_skews.get(i).copied().unwrap_or(0.0);
        let _ = writeln!(out, "    wave {i}: {skew:.3e}s vs {pred:.3e}s");
    }
    if measured_skews.len() > 8 {
        let _ = writeln!(out, "    ... {} more waves", measured_skews.len() - 8);
    }

    // The merged Chrome trace: measured workers and predicted SMs as
    // two processes of one timeline (open in Perfetto / about:tracing).
    let mut w = TraceWriter::new();
    trace.write_chrome_trace(&mut w, 1, &format!("streamk-cpu measured ({threads} workers)"));
    write_chrome_trace(&mut w, &report, 2);
    let mut processes = 2;

    // --serve: the same launch as a traced service campaign. Each
    // request renders as its own track, with queue-wait a first-class
    // phase ahead of its CTA/MAC/fixup spans.
    if serve {
        let n_requests = 6.min(threads * 2).max(2);
        let service =
            GemmService::<f64, f64>::start(&exec, ServeConfig::default().with_trace(true));
        let handles: Vec<_> = (0..n_requests)
            .map(|i| {
                let req = LaunchRequest::new(a.clone(), b.clone(), decomp.clone())
                    .with_priority(Priority::ALL[i % Priority::ALL.len()]);
                service.submit(req).expect("profile request admitted")
            })
            .collect();
        let mut serve_exact = true;
        for h in handles {
            match h.wait() {
                Ok((c, _)) => serve_exact &= c.max_abs_diff(&baseline) == 0.0,
                Err(_) => serve_exact = false,
            }
        }
        // Harvest after shutdown: the join guarantees the trailing
        // CTA span of each completing claim has been remnant-merged.
        let registry = service.telemetry();
        service.shutdown();
        let strace = registry.take_trace();
        let queue_waits: usize = strace
            .requests
            .iter()
            .map(|r| r.spans.iter().filter(|s| s.kind == SpanKind::QueueWait).count())
            .sum();
        let _ = writeln!(
            out,
            "\nserve campaign: {} request tracks ({} dropped), {queue_waits} queue-wait spans, bit-exact {}",
            strace.requests.len(),
            strace.dropped_requests,
            if serve_exact { "yes" } else { "NO" }
        );
        strace.write_chrome_trace(&mut w, 3, "streamk-serve requests");
        processes = 3;
    }

    let events = w.events();
    match std::fs::write(out_path, w.finish()) {
        Ok(()) => {
            let _ = writeln!(out, "\nwrote {out_path} ({events} trace events, {processes} processes)");
        }
        Err(e) => {
            let _ = writeln!(out, "\nfailed to write {out_path}: {e}");
        }
    }

    // Optional SVG of the measured timeline: reuse the simulator's
    // renderer by expressing the measured CTA spans as a SimReport.
    if let Some(svg_path) = svg_path {
        let mut spans: Vec<CtaSpan> = Vec::new();
        for (wid, worker) in trace.workers.iter().enumerate() {
            for s in &worker.spans {
                if s.kind != SpanKind::Cta {
                    continue;
                }
                let nested = |kind: SpanKind| {
                    worker
                        .spans
                        .iter()
                        .filter(move |m| {
                            m.kind == kind && m.start_ns >= s.start_ns && m.end_ns <= s.end_ns
                        })
                };
                spans.push(CtaSpan {
                    cta_id: s.arg as usize,
                    sm: wid,
                    start: s.start_ns as f64 / 1e9,
                    end: s.end_ns as f64 / 1e9,
                    iters: nested(SpanKind::Mac).map(|m| m.arg2 as usize).sum(),
                    waited: nested(SpanKind::Wait).map(|m| m.dur_ns() as f64 / 1e9).sum(),
                });
            }
        }
        let measured_report = SimReport {
            precision: Precision::Fp64,
            sms: trace.workers.len(),
            peak_flops: gpu.fp64_tflops * 1e12,
            makespan: wall_s,
            compute_makespan: wall_s,
            memory_time: 0.0,
            useful_flops: shape.flops() as f64,
            traffic_bytes: 0.0,
            mac_busy: mac_ns as f64 / 1e9,
            total_wait: stats.wait_stall.as_secs_f64(),
            spans,
        };
        let svg = render_svg(&measured_report, &SvgOptions::default());
        match std::fs::write(svg_path, svg) {
            Ok(()) => {
                let _ = writeln!(out, "wrote {svg_path} (measured timeline)");
            }
            Err(e) => {
                let _ = writeln!(out, "failed to write {svg_path}: {e}");
            }
        }
    }
    out
}

/// The seeded fault campaign behind `streamk chaos`: every strategy
/// × every fault kind × every seed through the recovering executor,
/// with bit-exactness checked against the fault-free run, followed by
/// the simulator's straggler-SM injection.
/// What a serve-bench request is contracted to do: complete
/// bit-exactly, or fail typed with the matching error.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ServeExpect {
    Exact,
    Cancelled,
    Panicked,
    TimedOut,
}

/// One request spec in a serve-bench mix.
struct ServeReq {
    shape: GemmShape,
    grid: usize,
    prio: Priority,
    fault: Option<ServeFaultKind>,
    deadline: Option<Duration>,
}

impl ServeReq {
    fn expect(&self) -> ServeExpect {
        if self.deadline == Some(Duration::ZERO) {
            return ServeExpect::TimedOut;
        }
        match self.fault {
            Some(ServeFaultKind::Cancel) => ServeExpect::Cancelled,
            Some(ServeFaultKind::PanicCta) => ServeExpect::Panicked,
            _ => ServeExpect::Exact,
        }
    }
}

/// One mix's verdict plus its report fragments.
struct ServeMixOutcome {
    text: String,
    json: String,
    bit_exact: bool,
    contract_ok: bool,
    pool_poisonings: usize,
    incidents: u64,
    /// The mix's telemetry registry, alive past service shutdown —
    /// the `--metrics-out` snapshot and incident dumps come from here.
    registry: Arc<TelemetryRegistry>,
}

/// Runs one mix of requests through a fresh executor + service:
/// sequential baselines first (the service holds the pool's launch
/// slot for its whole lifetime), then the full burst, then per-handle
/// verdicts against each request's contract.
fn run_serve_mix(
    name: &str,
    specs: &[ServeReq],
    threads: usize,
    window: usize,
    capacity: usize,
    watchdog: Duration,
    oversubscribed: bool,
) -> ServeMixOutcome {
    let tile = TileShape::new(16, 16, 8);
    let exec = CpuExecutor::with_threads(threads).with_watchdog(watchdog);
    type Combo = (Matrix<f64>, Matrix<f64>, Decomposition, Matrix<f64>);
    let mut combos: Vec<((usize, usize, usize, usize), Combo)> = Vec::new();
    for s in specs {
        let key = (s.shape.m, s.shape.n, s.shape.k, s.grid);
        if combos.iter().any(|(k, _)| *k == key) {
            continue;
        }
        let decomp = Decomposition::stream_k(s.shape, tile, s.grid);
        let seed = (key.0 * 31 + key.1 * 7 + key.2 * 3 + key.3) as u64;
        let a = Matrix::<f64>::random::<f64>(s.shape.m, s.shape.k, Layout::RowMajor, seed);
        let b = Matrix::<f64>::random::<f64>(s.shape.k, s.shape.n, Layout::RowMajor, seed + 1);
        let baseline = exec.gemm::<f64, f64>(&a, &b, &decomp);
        combos.push((key, (a, b, decomp, baseline)));
    }
    let combo_of = |s: &ServeReq| -> &Combo {
        let key = (s.shape.m, s.shape.n, s.shape.k, s.grid);
        &combos.iter().find(|(k, _)| *k == key).expect("combo precomputed").1
    };

    // Injected CTA panics are expected here; the default hook's
    // backtrace spew is noise, so silence it for the campaign.
    let quiet = specs.iter().any(|s| s.fault == Some(ServeFaultKind::PanicCta));
    let prev_hook = quiet.then(std::panic::take_hook);
    if quiet {
        std::panic::set_hook(Box::new(|_| {}));
    }

    let service = GemmService::<f64, f64>::start(
        &exec,
        ServeConfig::default().with_window(window).with_capacity(capacity),
    );
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for s in specs {
        let (a, b, decomp, _) = combo_of(s);
        let mut req =
            LaunchRequest::new(a.clone(), b.clone(), decomp.clone()).with_priority(s.prio);
        if let Some(kind) = s.fault {
            req = req.with_serve_fault(kind);
        }
        if let Some(d) = s.deadline {
            req = req.with_deadline(d);
        }
        // A full queue rejects; the service counts it and the burst
        // moves on — that lost request is the backpressure story.
        handles.push((s, service.submit(req).ok()));
    }
    let mut latencies: Vec<f64> = Vec::new();
    let (mut bit_exact, mut contract_ok) = (true, true);
    for (s, handle) in handles {
        let Some(handle) = handle else { continue };
        match (s.expect(), handle.wait()) {
            (ServeExpect::Cancelled, Err(ServeError::Cancelled))
            | (ServeExpect::Panicked, Err(ServeError::Panicked { .. }))
            | (ServeExpect::TimedOut, Err(ServeError::Timeout { .. })) => {}
            (ServeExpect::Exact, Ok((c, stats))) => {
                latencies.push(stats.latency.as_secs_f64());
                if c.max_abs_diff(&combo_of(s).3) != 0.0 {
                    bit_exact = false;
                }
            }
            _ => contract_ok = false,
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let registry = service.telemetry();
    let stats = service.shutdown();
    if let Some(prev) = prev_hook {
        std::panic::set_hook(prev);
    }
    let incidents = registry.get(ServiceCounter::Incidents);

    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| {
        let idx = (latencies.len().saturating_sub(1)) as f64 * p;
        latencies.get(idx as usize).copied().unwrap_or(0.0)
    };
    let (p50, p99) = (pct(0.50), pct(0.99));
    let rps = if wall > 0.0 { stats.completed as f64 / wall } else { 0.0 };
    let text = format!(
        "  {name:<22} {:>4} reqs {:>5} ok {:>4} rej {:>4} t/o {:>4} can {:>4} pan {:>9.1} req/s  p50 {p50:.2e}s  p99 {p99:.2e}s  bit-exact {}\n",
        specs.len(),
        stats.completed,
        stats.rejected,
        stats.timed_out,
        stats.cancelled,
        stats.panicked,
        rps,
        if bit_exact && contract_ok { "yes" } else { "NO" }
    );
    let json = format!(
        "    {{\"name\": \"{name}\", \"requests\": {}, \"threads\": {threads}, \"oversubscribed\": {oversubscribed}, \"window\": {window}, \"capacity\": {capacity}, \"submitted\": {}, \"completed\": {}, \"rejected\": {}, \"timed_out\": {}, \"cancelled\": {}, \"panicked\": {}, \"failed\": {}, \"requests_per_s\": {rps:.2}, \"p50_latency_s\": {p50:.6e}, \"p99_latency_s\": {p99:.6e}, \"bit_exact\": {bit_exact}, \"contract_ok\": {contract_ok}, \"pool_poisonings\": {}, \"incidents\": {incidents}}}",
        specs.len(),
        stats.submitted,
        stats.completed,
        stats.rejected,
        stats.timed_out,
        stats.cancelled,
        stats.panicked,
        stats.failed,
        stats.pool_poisonings,
    );
    ServeMixOutcome {
        text,
        json,
        bit_exact,
        contract_ok,
        pool_poisonings: stats.pool_poisonings,
        incidents,
        registry,
    }
}

/// Wall time of one fault-free uniform burst through a fresh service,
/// for the tracing-overhead comparison. `traced` toggles per-request
/// span rings; everything else is identical.
fn time_serve_burst(
    threads: usize,
    window: usize,
    capacity: usize,
    requests: usize,
    traced: bool,
) -> f64 {
    // Heavy enough that each request's MAC work dwarfs per-span
    // bookkeeping — the overhead figure is the tracing tax on real
    // requests, not on ring setup for near-empty ones.
    let shape = GemmShape::new(160, 128, 96);
    let tile = TileShape::new(16, 16, 8);
    let grid = 4usize.min(threads.max(2));
    let decomp = Decomposition::stream_k(shape, tile, grid);
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 0x7E1E);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 0x7E1F);
    let exec = CpuExecutor::with_threads(threads);
    let service = GemmService::<f64, f64>::start(
        &exec,
        ServeConfig::default()
            .with_window(window)
            .with_capacity(capacity)
            .with_trace(traced)
            .with_trace_capacity(512),
    );
    let t0 = Instant::now();
    let handles: Vec<_> = (0..requests)
        .map(|_| {
            service
                .submit(LaunchRequest::new(a.clone(), b.clone(), decomp.clone()))
                .expect("burst fits the queue")
        })
        .collect();
    for h in handles {
        let _ = h.wait();
    }
    let wall = t0.elapsed().as_secs_f64();
    service.shutdown();
    wall
}

/// The concurrent-launch benchmark behind `streamk serve-bench`:
/// three request mixes through [`GemmService`] — a uniform small-GEMM
/// burst, a heterogeneous size/priority burst, and a seeded fault
/// campaign under queue pressure — reporting throughput, p50/p99
/// latency, admission rejections, deadline timeouts, and the
/// bit-exactness verdict per mix to stdout and `out` as JSON.
#[allow(clippy::too_many_arguments)]
fn run_serve_bench(
    threads: usize,
    requests: usize,
    window: usize,
    capacity: usize,
    watchdog_ms: u64,
    smoke: bool,
    out_path: &str,
    metrics_out: Option<&str>,
) -> String {
    let watchdog = Duration::from_millis(watchdog_ms.max(1));
    let shapes =
        [GemmShape::new(48, 40, 32), GemmShape::new(32, 32, 64), GemmShape::new(96, 80, 48)];
    let grids = [4usize, 2, 6];
    // Grids are clamped to the pool so no mix trips the co-residency
    // admission check on small --threads runs.
    let grid_for = |i: usize| grids[i % grids.len()].min(threads.max(2));

    let uniform: Vec<ServeReq> = (0..requests)
        .map(|_| ServeReq {
            shape: shapes[0],
            grid: grid_for(0),
            prio: Priority::Normal,
            fault: None,
            deadline: None,
        })
        .collect();
    let mixed: Vec<ServeReq> = (0..requests)
        .map(|i| ServeReq {
            shape: shapes[i % shapes.len()],
            grid: grid_for(i),
            prio: Priority::ALL[i % Priority::ALL.len()],
            fault: None,
            deadline: None,
        })
        .collect();
    // Faulted burst: seeded request faults (cancellations, injected
    // CTA panics, admission delays, protocol faults) plus two
    // zero-deadline requests — guaranteed typed timeouts. Full
    // capacity, so every fault actually enters the service.
    let plan = ServeFaultPlan::seeded(0xC0FFEE, requests, watchdog);
    let faulted: Vec<ServeReq> = (0..requests)
        .map(|i| {
            let deadline = (i < 2).then_some(Duration::ZERO);
            ServeReq {
                shape: shapes[i % shapes.len()],
                grid: grid_for(i),
                prio: Priority::ALL[i % Priority::ALL.len()],
                fault: if deadline.is_some() { None } else { plan.fault_for(i) },
                deadline,
            }
        })
        .collect();
    // Overflow burst: fault-free requests into a quarter-size queue —
    // the backpressure story, rejections counted not blocked on.
    let tight_capacity = (requests / 4).max(4).min(capacity);
    // Oversubscription probe: the same uniform burst on 2x the
    // requested workers. Rows beyond nproc carry scheduler noise, so
    // they are marked and latency gates skip them.
    let nproc = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let over_threads = (threads * 2).max(nproc + 1);
    let mixes: [(&str, &[ServeReq], usize, usize); 5] = [
        ("uniform-small", &uniform, capacity, threads),
        ("mixed-sizes", &mixed, capacity, threads),
        ("faulted", &faulted, requests.max(capacity), threads),
        ("burst-overflow", &uniform, tight_capacity, threads),
        ("oversubscribed-2x", &uniform, capacity, over_threads),
    ];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve-bench: {requests} requests/mix, {threads} workers (nproc {nproc}), window {window}, capacity {capacity}, watchdog {watchdog_ms}ms{}",
        if smoke { " (smoke)" } else { "" }
    );
    let mut mix_json = Vec::new();
    let (mut all_exact, mut all_contract) = (true, true);
    let mut poisonings = 0usize;
    let mut incidents = 0u64;
    let mut faulted_registry: Option<Arc<TelemetryRegistry>> = None;
    for (name, specs, cap, mix_threads) in mixes {
        let r =
            run_serve_mix(name, specs, mix_threads, window, cap, watchdog, mix_threads > nproc);
        out.push_str(&r.text);
        mix_json.push(r.json);
        all_exact &= r.bit_exact;
        all_contract &= r.contract_ok;
        poisonings += r.pool_poisonings;
        incidents += r.incidents;
        if name == "faulted" {
            faulted_registry = Some(r.registry);
        }
    }
    let _ = writeln!(
        out,
        "all mixes bit-exact: {}; contracts honored: {}; pool poisonings: {poisonings}; incidents: {incidents}",
        if all_exact { "yes" } else { "NO" },
        if all_contract { "yes" } else { "NO" }
    );

    // Tracing overhead: interleaved untraced/traced uniform bursts,
    // min-of-reps each (min discards scheduler noise; the residual
    // difference is the per-span bookkeeping itself). Pinned within
    // nproc — oversubscription would measure the scheduler, not the
    // tracer.
    let overhead_threads = threads.min(nproc).max(1);
    let overhead_reps = if smoke { 7 } else { 9 };
    let burst = requests.min(if smoke { 12 } else { 32 }).max(4);
    let (mut untraced_s, mut traced_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..overhead_reps {
        untraced_s = untraced_s
            .min(time_serve_burst(overhead_threads, window, capacity.max(burst), burst, false));
        traced_s = traced_s
            .min(time_serve_burst(overhead_threads, window, capacity.max(burst), burst, true));
    }
    let overhead_raw_pct = (traced_s - untraced_s) / untraced_s.max(1e-12) * 100.0;
    let overhead_pct = overhead_raw_pct.max(0.0);
    let _ = writeln!(
        out,
        "serve tracing overhead: untraced {untraced_s:.3e}s traced {traced_s:.3e}s ({overhead_raw_pct:+.2}% raw, {overhead_pct:.2}% clamped)"
    );

    if let Some(path) = metrics_out {
        // The faulted mix's registry is the snapshot of record: it
        // carries every counter class (completions, timeouts,
        // cancellations, panics) plus incident dumps.
        let rendered = faulted_registry.as_deref().map(TelemetryRegistry::render);
        match rendered {
            Some(text) => match std::fs::write(path, &text) {
                Ok(()) => {
                    let _ = writeln!(out, "wrote {path} (Prometheus text, faulted mix)");
                }
                Err(e) => {
                    let _ = writeln!(out, "failed to write {path}: {e}");
                }
            },
            None => {
                let _ = writeln!(out, "no faulted-mix registry; {path} not written");
            }
        }
    }

    let generated_by = provenance("serve-bench");
    let json = format!(
        "{{\n  \"generated_by\": \"{generated_by}\",\n  \"smoke\": {smoke},\n  \"threads\": {threads},\n  \"nproc\": {nproc},\n  \"requests_per_mix\": {requests},\n  \"window\": {window},\n  \"capacity\": {capacity},\n  \"watchdog_ms\": {watchdog_ms},\n  \"mixes\": [\n{}\n  ],\n  \"serve_tracing_overhead\": {{\"reps\": {overhead_reps}, \"requests\": {burst}, \"untraced_s\": {untraced_s:.6e}, \"traced_s\": {traced_s:.6e}, \"overhead_raw_pct\": {overhead_raw_pct:.3}, \"overhead_pct\": {overhead_pct:.3}}},\n  \"all_bit_exact\": {all_exact},\n  \"all_contracts_ok\": {all_contract},\n  \"total_pool_poisonings\": {poisonings},\n  \"total_incidents\": {incidents}\n}}\n",
        mix_json.join(",\n"),
    );
    match std::fs::write(out_path, &json) {
        Ok(()) => {
            let _ = writeln!(out, "wrote {out_path}");
        }
        Err(e) => {
            let _ = writeln!(out, "failed to write {out_path}: {e}");
        }
    }
    out
}

fn run_chaos(shape: GemmShape, tile: TileShape, seeds: u64, threads: usize, watchdog_ms: u64, serve: bool) -> String {
    let watchdog = Duration::from_millis(watchdog_ms.max(1));
    let strategies: [(&str, Decomposition); 5] = [
        ("dp", Decomposition::data_parallel(shape, tile)),
        ("splitk:3", Decomposition::fixed_split(shape, tile, 3)),
        (
            "streamk",
            Decomposition::stream_k(shape, tile, threads.min(tile.output_tiles(shape).max(1) * 2)),
        ),
        ("dp+1t-streamk", Decomposition::dp_one_tile_stream_k(shape, tile, threads)),
        ("2t-streamk+dp", Decomposition::two_tile_stream_k_dp(shape, tile, threads)),
    ];
    type KindCtor = fn(Duration) -> FaultKind;
    let kinds: [(&str, KindCtor); 3] = [
        ("straggler", |w| FaultKind::Straggle(w / 4)),
        ("lost", |_| FaultKind::Lose),
        ("poison", |_| FaultKind::Poison),
    ];

    let exec = CpuExecutor::with_threads(threads).with_watchdog(watchdog);
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 0xC0FFEE);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 0xBEEF);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos: {shape} GEMM, blocking {tile}, {threads} workers, watchdog {watchdog_ms}ms, {seeds} seed(s) per cell"
    );
    let _ = writeln!(
        out,
        "\n{:<16} {:<10} {:>5} {:>9} {:>11} {:>12} {:>10}",
        "strategy", "fault", "runs", "survived", "recoveries", "recomputed", "bit-exact"
    );

    for (name, decomp) in &strategies {
        let baseline = match exec.try_gemm::<f64, f64>(&a, &b, decomp) {
            Ok(c) => c,
            Err(e) => {
                let _ = writeln!(out, "{name:<16} skipped: {e}");
                continue;
            }
        };
        let contributors = FaultPlan::contributors(decomp);
        for (kind_name, make_kind) in &kinds {
            let mut survived = 0u64;
            let mut recoveries = 0usize;
            let mut recomputed = 0usize;
            let mut bit_exact = true;
            for seed in 0..seeds {
                let plan = if contributors.is_empty() {
                    // No split seams: the fault has no victim and the
                    // run trivially survives.
                    FaultPlan::none()
                } else {
                    let victim = contributors[(seed as usize) % contributors.len()];
                    FaultPlan::single(victim, make_kind(watchdog))
                };
                match exec.gemm_with_faults::<f64, f64>(&a, &b, decomp, &plan) {
                    Ok((c, report)) => {
                        survived += 1;
                        recoveries += report.recoveries();
                        recomputed += report.recomputed_iters();
                        bit_exact &= c.max_abs_diff(&baseline) == 0.0;
                    }
                    Err(_) => bit_exact = false,
                }
            }
            let _ = writeln!(
                out,
                "{name:<16} {kind_name:<10} {seeds:>5} {survived:>9} {recoveries:>11} {recomputed:>12} {:>10}",
                if bit_exact { "yes" } else { "NO" }
            );
        }
    }

    let _ = writeln!(out, "\nsim straggler injection (A100 fp64, 2x slowdown on SM 1):");
    let _ = writeln!(out, "{:<16} {:>11} {:>19}", "strategy", "makespan x", "fixup-stall delta");
    let gpu = GpuSpec::a100();
    let sim_plan = SimFaultPlan::none().with_sm_slowdown(1, 2.0);
    for (name, decomp) in &strategies {
        let r = simulate_with_faults(decomp, &gpu, Precision::Fp64, &sim_plan);
        let _ = writeln!(
            out,
            "{name:<16} {:>10.3}x {:>17.3e}s",
            r.makespan_amplification(),
            r.fixup_stall_delta()
        );
    }

    // Service-level campaign: the same executor, but through
    // `GemmService` with seeded *request* faults — cancellations,
    // injected CTA panics, admission delays, and protocol faults all
    // interleaved in one concurrent burst per seed.
    if serve {
        let n_requests = 24usize;
        let decomp = &strategies[2].1;
        let baseline = match exec.try_gemm::<f64, f64>(&a, &b, decomp) {
            Ok(c) => c,
            Err(e) => {
                let _ = writeln!(out, "\nserve campaign skipped: {e}");
                return out;
            }
        };
        let _ = writeln!(
            out,
            "\nserve campaign ({n_requests} concurrent requests per seed through GemmService, stream-k grid):"
        );
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>9} {:>9} {:>8} {:>9} {:>11} {:>10} {:>11}",
            "seed",
            "submitted",
            "completed",
            "cancelled",
            "panicked",
            "timed-out",
            "recoveries",
            "bit-exact",
            "poisonings"
        );
        for seed in 0..seeds {
            let plan = ServeFaultPlan::seeded(seed, n_requests, watchdog);
            let quiet =
                plan.faults().iter().any(|f| matches!(f.kind, ServeFaultKind::PanicCta));
            let prev_hook = quiet.then(std::panic::take_hook);
            if quiet {
                std::panic::set_hook(Box::new(|_| {}));
            }
            let service = GemmService::<f64, f64>::start(&exec, ServeConfig::default());
            let handles: Vec<_> = (0..n_requests)
                .map(|i| {
                    let mut req = LaunchRequest::new(a.clone(), b.clone(), decomp.clone())
                        .with_priority(Priority::ALL[i % Priority::ALL.len()]);
                    if let Some(kind) = plan.fault_for(i) {
                        req = req.with_serve_fault(kind);
                    }
                    (i, service.submit(req).expect("chaos request admitted"))
                })
                .collect();
            let mut recoveries = 0usize;
            let mut bit_exact = true;
            for (i, handle) in handles {
                match (plan.fault_for(i), handle.wait()) {
                    (Some(ServeFaultKind::Cancel), Err(ServeError::Cancelled))
                    | (Some(ServeFaultKind::PanicCta), Err(ServeError::Panicked { .. })) => {}
                    (
                        None
                        | Some(
                            ServeFaultKind::AdmitDelay(_) | ServeFaultKind::Protocol(_),
                        ),
                        Ok((c, stats)),
                    ) => {
                        recoveries += stats.recoveries;
                        bit_exact &= c.max_abs_diff(&baseline) == 0.0;
                    }
                    _ => bit_exact = false,
                }
            }
            let s = service.shutdown();
            if let Some(prev) = prev_hook {
                std::panic::set_hook(prev);
            }
            let _ = writeln!(
                out,
                "{seed:<6} {:>9} {:>9} {:>9} {:>8} {:>9} {recoveries:>11} {:>10} {:>11}",
                s.submitted,
                s.completed,
                s.cancelled,
                s.panicked,
                s.timed_out,
                if bit_exact { "yes" } else { "NO" },
                s.pool_poisonings
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn run(s: &str) -> String {
        let argv: Vec<String> = s.split_whitespace().map(String::from).collect();
        execute(&Cli::parse(&argv).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run("help");
        assert!(out.contains("USAGE"));
        assert!(out.contains("streamk:G"));
    }

    #[test]
    fn schedule_shows_gantt_and_stats() {
        let out = run("schedule 384 384 128 --tile 128x128x4 --strategy streamk:4");
        assert!(out.contains("9 output tiles"));
        assert!(out.contains("SM0"));
        assert!(out.contains("quantization 100.0%"));
    }

    #[test]
    fn bestgrid_reproduces_figure8c() {
        let out = run("bestgrid 128 128 16384 --precision fp16");
        assert!(out.contains("g* = 8"), "{out}");
        assert!(out.contains("<-- g*"));
    }

    #[test]
    fn compare_lists_four_contenders() {
        let out = run("compare 1024 1024 1024 --precision fp64");
        for name in ["stream-k", "data-parallel", "cublas-like", "oracle"] {
            assert!(out.contains(name), "missing {name}: {out}");
        }
    }

    #[test]
    fn corpus_summary() {
        let out = run("corpus 200");
        assert!(out.contains("200 shapes"));
        assert!(out.contains("compute-bound"));
    }

    #[test]
    fn chaos_campaign_survives_every_cell() {
        // Small problem, short watchdog: the full campaign in well
        // under a second per lost-CTA cell.
        let out = run("chaos 96 80 64 --tile 32x32x16 --seeds 2 --threads 8 --watchdog-ms 100");
        for strategy in ["dp", "splitk:3", "streamk", "dp+1t-streamk", "2t-streamk+dp"] {
            assert!(out.contains(strategy), "missing {strategy}: {out}");
        }
        for kind in ["straggler", "lost", "poison"] {
            assert!(out.contains(kind), "missing {kind}: {out}");
        }
        assert!(out.contains("sim straggler injection"), "{out}");
        assert!(!out.contains("NO"), "a cell lost bit-exactness:\n{out}");
        assert!(!out.contains("skipped"), "a strategy was skipped:\n{out}");
    }

    #[test]
    fn chaos_serve_campaign_is_bit_exact_and_never_poisons() {
        let out = run("chaos 96 80 64 --tile 32x32x16 --seeds 2 --threads 8 --watchdog-ms 100 --serve");
        assert!(out.contains("serve campaign"), "{out}");
        assert!(out.contains("recoveries"), "{out}");
        assert!(!out.contains("skipped"), "{out}");
        assert!(!out.contains("NO"), "a campaign cell lost bit-exactness:\n{out}");
    }

    #[test]
    fn serve_bench_smoke_writes_json() {
        let path = std::env::temp_dir().join("streamk_cli_serve_bench_test.json");
        let out = run(&format!(
            "serve-bench --smoke --requests 8 --threads 4 --watchdog-ms 150 --out {}",
            path.display()
        ));
        assert!(out.contains("uniform-small"), "{out}");
        assert!(out.contains("mixed-sizes"), "{out}");
        assert!(out.contains("faulted"), "{out}");
        assert!(out.contains("burst-overflow"), "{out}");
        assert!(out.contains("all mixes bit-exact: yes"), "{out}");
        assert!(out.contains("contracts honored: yes"), "{out}");
        assert!(out.contains("pool poisonings: 0"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"all_bit_exact\": true"), "{json}");
        assert!(json.contains("\"all_contracts_ok\": true"), "{json}");
        assert!(json.contains("\"total_pool_poisonings\": 0"), "{json}");
        assert!(json.contains("\"p99_latency_s\""), "{json}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bench_smoke_writes_json() {
        let path = std::env::temp_dir().join("streamk_cli_bench_test.json");
        let out = run(&format!(
            "bench --smoke --size 96 --tile 32x32x8 --corpus 1 --reps 1 --out {}",
            path.display()
        ));
        assert!(out.contains("bit-exactness gate"), "{out}");
        assert!(out.contains("executor gate"), "{out}");
        assert!(out.contains("packed vs blocked"), "{out}");
        assert!(out.contains("simd vs scalar"), "{out}");
        assert!(out.contains("select_kernel_on"), "{out}");
        assert!(out.contains("thread scaling"), "{out}");
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"bit_exact_f64\": true"), "{json}");
        assert!(json.contains("\"speedup_packed_vs_blocked\""), "{json}");
        assert!(json.contains("\"speedup_simd_vs_scalar\""), "{json}");
        assert!(json.contains("\"cached_timings_s\""), "{json}");
        assert!(json.contains("\"thread_scaling\""), "{json}");
        assert!(json.contains("\"simd_level\""), "{json}");
        assert!(json.contains("\"cache_speedup\""), "{json}");
        // Sweep rows above the machine's core count are flagged so
        // downstream gates can skip them instead of judging noise.
        assert!(json.contains("\"oversubscribed\""), "{json}");
        assert!(json.contains("\"tracing_overhead\""), "{json}");
        assert!(json.contains("\"overhead_pct\""), "{json}");
        assert!(json.contains("\"overhead_raw_pct\""), "{json}");
        assert!(json.contains("\"gate_pct\": 5.0"), "{json}");
        assert!(out.contains("tracing overhead"), "{out}");
        // The gated overhead figure is clamped at zero — only the raw
        // delta may go negative.
        assert!(!json.contains("\"overhead_pct\": -"), "{json}");
        assert!(json.contains("\"layout_comparison\""), "{json}");
        assert!(json.contains("\"bit_exact\": true"), "{json}");
        for cell in ["row_shared_s", "row_sharded_s", "block_cached_s", "block_bypass_s"] {
            assert!(json.contains(cell), "missing {cell}: {json}");
        }
        assert!(out.contains("layout comparison"), "{out}");
        // The selection records the shape it calibrated on.
        assert!(json.contains("\"selection\": {\"best\""), "{json}");
        assert!(json.contains("\"shape\": \"96x96x96\""), "{json}");
        for name in ["scalar", "blocked4x4", "packed8x4", "packed4x8", "simd4x16", "simd8x32"] {
            assert!(json.contains(name), "missing {name}: {json}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn select_bench_smoke_adapts_and_persists() {
        let dir = std::env::temp_dir().join(format!("streamk_cli_select_bench_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cache = dir.join("cache");
        let json_path = dir.join("bench.json");
        let cmd = format!(
            "select-bench --smoke --shapes 1 --rounds 1 --reps 1 --cache {} --out {}",
            cache.display(),
            json_path.display()
        );
        let out = run(&cmd);
        assert!(out.contains("measured oracle"), "{out}");
        assert!(out.contains("warm ≤ cold: yes"), "{out}");
        assert!(out.contains("written true, reload-consistent true"), "{out}");
        assert!(out.contains("loaded false"), "first invocation must start cold: {out}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"selection_adaptive\""), "{json}");
        assert!(json.contains("\"all_bit_exact\": true"), "{json}");
        assert!(json.contains("\"cache_loaded\": false"), "{json}");
        assert!(json.contains("\"cache_written\": true"), "{json}");
        assert!(json.contains("\"cache_reload_consistent\": true"), "{json}");
        assert!(json.contains("\"warm_regret_pct\""), "{json}");
        assert!(json.contains("\"per_shape\""), "{json}");

        // Second invocation: starts from the persisted table, and the
        // splice replaces the old section instead of stacking a copy.
        let out2 = run(&cmd);
        assert!(out2.contains("loaded from a previous invocation"), "{out2}");
        let json2 = std::fs::read_to_string(&json_path).unwrap();
        assert!(json2.contains("\"cache_loaded\": true"), "{json2}");
        assert_eq!(json2.matches("\"selection_adaptive\"").count(), 1, "{json2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_emits_merged_trace_and_residuals() {
        let path = std::env::temp_dir().join("streamk_cli_profile_test.json");
        let svg = std::env::temp_dir().join("streamk_cli_profile_test.svg");
        let out = run(&format!(
            "profile 96 96 128 --tile 32x32x16 --threads 4 --strategy streamk:6 --layout block --out {} --svg {}",
            path.display(),
            svg.display()
        ));
        assert!(out.contains("untraced ring allocations: 0"), "{out}");
        assert!(out.contains("bit-exact: yes"), "{out}");
        assert!(out.contains("phase breakdown"), "{out}");
        assert!(out.contains("residual"), "{out}");
        assert!(out.contains("per-wave finish skew"), "{out}");
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        streamk_core::validate_json(&json).expect("merged trace must parse");
        // Both timelines are present as named processes.
        assert!(json.contains("streamk-cpu measured"), "{json}");
        assert!(json.contains("streamk-sim"), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        let svg_doc = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_doc.starts_with("<svg"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&svg);
    }

    #[test]
    fn svg_writes_file() {
        let path = std::env::temp_dir().join("streamk_cli_test.svg");
        let out = run(&format!("svg 384 384 128 --tile 128x128x4 --strategy streamk:4 --out {}", path.display()));
        assert!(out.contains("wrote"), "{out}");
        let svg = std::fs::read_to_string(&path).unwrap();
        assert!(svg.starts_with("<svg"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn auto_strategy_uses_model() {
        let out = run("schedule 128 128 16384 --tile 128x128x32 --sms 108 --strategy auto");
        // The schedule command models with FP64 constants: the tie-broken
        // minimum for a 512-iteration single tile lands at g = 9.
        assert!(out.contains("stream-k(g=9)"), "{out}");
    }
}
