//! Command implementations.

use crate::args::{Cli, Command, StrategyArg, USAGE};
use std::fmt::Write as _;
use std::time::Duration;
use streamk_core::{CostModel, Decomposition, GridSizeModel};
use streamk_corpus::{Corpus, CorpusConfig};
use streamk_cpu::{CpuExecutor, FaultKind, FaultPlan};
use streamk_ensemble::runners;
use streamk_matrix::Matrix;
use streamk_sim::{render_gantt, render_svg, simulate, simulate_with_faults, GpuSpec, SimFaultPlan, SvgOptions};
use streamk_types::{GemmShape, Layout, Precision, TileShape};

/// Builds the decomposition a [`StrategyArg`] describes.
fn build(strategy: StrategyArg, shape: GemmShape, tile: TileShape, sms: usize, precision: Precision) -> Decomposition {
    match strategy {
        StrategyArg::DataParallel => Decomposition::data_parallel(shape, tile),
        StrategyArg::FixedSplit(s) => Decomposition::fixed_split(shape, tile, s),
        StrategyArg::StreamK(g) => Decomposition::stream_k(shape, tile, g),
        StrategyArg::Hybrid => Decomposition::two_tile_stream_k_dp(shape, tile, sms),
        StrategyArg::Auto => GridSizeModel::new(CostModel::for_precision(precision), sms).decompose(shape, tile),
    }
}

/// Executes a parsed invocation, returning the output text.
#[must_use]
pub fn execute(cli: &Cli) -> String {
    match &cli.command {
        Command::Help => USAGE.to_string(),
        Command::Schedule { shape, tile, sms, strategy } => {
            let decomp = build(*strategy, *shape, *tile, *sms, Precision::Fp64);
            let mut gpu = GpuSpec::hypothetical_4sm();
            gpu.sms = *sms;
            let report = simulate(&decomp, &gpu, Precision::Fp64);
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{shape} GEMM, blocking {tile}, {} on a {sms}-SM overhead-free GPU",
                decomp.strategy()
            );
            let _ = writeln!(
                out,
                "{} output tiles x {} iterations; grid {} CTAs; {} split seams\n",
                decomp.space().tiles(),
                decomp.space().iters_per_tile(),
                decomp.grid_size(),
                decomp.split_tiles()
            );
            out.push_str(&render_gantt(&report, 72));
            out
        }
        Command::BestGrid { shape, tile, precision, sms } => {
            let model = GridSizeModel::new(CostModel::for_precision(*precision), *sms);
            let best = model.best_grid(*shape, *tile);
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{shape} at {tile} ({precision}): {} tiles x {} iters; modeled best grid g* = {best}",
                tile.output_tiles(*shape),
                tile.iters_per_tile(*shape)
            );
            let _ = writeln!(out, "\n  g   iters/CTA  peers  time(units)");
            let curve = model.curve(*shape, *tile);
            // Print a readable subsample: every point for small curves,
            // powers + neighbourhood of the minimum for large ones.
            let show: Vec<usize> = if curve.len() <= 24 {
                (1..=curve.len()).collect()
            } else {
                let mut v: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, curve.len()];
                for g in best.saturating_sub(2)..=(best + 2).min(curve.len()) {
                    if g >= 1 {
                        v.push(g);
                    }
                }
                v.sort_unstable();
                v.dedup();
                v
            };
            for g in show {
                let (_, t) = curve[g - 1];
                let marker = if g == best { "  <-- g*" } else { "" };
                let _ = writeln!(
                    out,
                    "{g:>4} {:>10} {:>6} {:>12.1}{marker}",
                    model.iters_per_cta(*shape, *tile, g),
                    model.fixup_peers(*shape, *tile, g),
                    t
                );
            }
            out
        }
        Command::Compare { shape, precision } => {
            let gpu = GpuSpec::a100();
            let sk = runners::run_stream_k(*shape, *precision, &gpu);
            let dp = runners::run_dp_single(*shape, *precision, &gpu);
            let heur = runners::run_heuristic(*shape, *precision, &gpu);
            let oracle = runners::run_oracle(*shape, *precision, &gpu);
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{shape} ({precision}) on the simulated A100 — intensity {:.1} flops/B ({})",
                shape.arithmetic_intensity(*precision),
                if shape.is_compute_bound(*precision) { "compute-bound" } else { "memory-bound" }
            );
            let _ = writeln!(out, "\n{:<22} {:>12} {:>9} {:>10}", "implementation", "makespan", "util", "vs stream-k");
            for (name, r) in [("stream-k", &sk), ("data-parallel", &dp), ("cublas-like", &heur), ("oracle", &oracle)] {
                let _ = writeln!(
                    out,
                    "{name:<22} {:>11.3e}s {:>8.1}% {:>9.2}x",
                    r.makespan,
                    r.utilization() * 100.0,
                    r.makespan / sk.makespan
                );
            }
            out
        }
        Command::Corpus { count } => {
            let corpus = Corpus::generate(CorpusConfig::smoke(*count));
            let mut flops: Vec<u64> = corpus.shapes().iter().map(GemmShape::flops).collect();
            flops.sort_unstable();
            let mut out = String::new();
            let _ = writeln!(out, "corpus: {} shapes, m/n/k log-uniform in [128, 8192]", corpus.len());
            let _ = writeln!(
                out,
                "flops: min {:.2e}  median {:.2e}  max {:.2e}",
                flops[0] as f64,
                flops[flops.len() / 2] as f64,
                flops[flops.len() - 1] as f64
            );
            for p in Precision::ALL {
                let cb = corpus.compute_bound(p);
                let _ = writeln!(
                    out,
                    "{p}: {} of {} compute-bound (> {} flops/B)",
                    cb.len(),
                    corpus.len(),
                    p.compute_bound_threshold()
                );
            }
            out
        }
        Command::Chaos { shape, tile, seeds, threads, watchdog_ms } => {
            run_chaos(*shape, *tile, *seeds, *threads, *watchdog_ms)
        }
        Command::Svg { shape, tile, sms, strategy, out } => {
            let decomp = build(*strategy, *shape, *tile, *sms, Precision::Fp64);
            let mut gpu = GpuSpec::hypothetical_4sm();
            gpu.sms = *sms;
            let report = simulate(&decomp, &gpu, Precision::Fp64);
            let svg = render_svg(&report, &SvgOptions::default());
            match std::fs::write(out, svg) {
                Ok(()) => format!(
                    "wrote {out} ({} CTAs, {:.1}% quantization)\n",
                    decomp.grid_size(),
                    report.quantization_efficiency() * 100.0
                ),
                Err(e) => format!("failed to write {out}: {e}\n"),
            }
        }
    }
}

/// The seeded fault campaign behind `streamk chaos`: every strategy
/// × every fault kind × every seed through the recovering executor,
/// with bit-exactness checked against the fault-free run, followed by
/// the simulator's straggler-SM injection.
fn run_chaos(shape: GemmShape, tile: TileShape, seeds: u64, threads: usize, watchdog_ms: u64) -> String {
    let watchdog = Duration::from_millis(watchdog_ms.max(1));
    let strategies: [(&str, Decomposition); 5] = [
        ("dp", Decomposition::data_parallel(shape, tile)),
        ("splitk:3", Decomposition::fixed_split(shape, tile, 3)),
        (
            "streamk",
            Decomposition::stream_k(shape, tile, threads.min(tile.output_tiles(shape).max(1) * 2)),
        ),
        ("dp+1t-streamk", Decomposition::dp_one_tile_stream_k(shape, tile, threads)),
        ("2t-streamk+dp", Decomposition::two_tile_stream_k_dp(shape, tile, threads)),
    ];
    type KindCtor = fn(Duration) -> FaultKind;
    let kinds: [(&str, KindCtor); 3] = [
        ("straggler", |w| FaultKind::Straggle(w / 4)),
        ("lost", |_| FaultKind::Lose),
        ("poison", |_| FaultKind::Poison),
    ];

    let exec = CpuExecutor::with_threads(threads).with_watchdog(watchdog);
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 0xC0FFEE);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 0xBEEF);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos: {shape} GEMM, blocking {tile}, {threads} workers, watchdog {watchdog_ms}ms, {seeds} seed(s) per cell"
    );
    let _ = writeln!(
        out,
        "\n{:<16} {:<10} {:>5} {:>9} {:>11} {:>12} {:>10}",
        "strategy", "fault", "runs", "survived", "recoveries", "recomputed", "bit-exact"
    );

    for (name, decomp) in &strategies {
        let baseline = match exec.try_gemm::<f64, f64>(&a, &b, decomp) {
            Ok(c) => c,
            Err(e) => {
                let _ = writeln!(out, "{name:<16} skipped: {e}");
                continue;
            }
        };
        let contributors = FaultPlan::contributors(decomp);
        for (kind_name, make_kind) in &kinds {
            let mut survived = 0u64;
            let mut recoveries = 0usize;
            let mut recomputed = 0usize;
            let mut bit_exact = true;
            for seed in 0..seeds {
                let plan = if contributors.is_empty() {
                    // No split seams: the fault has no victim and the
                    // run trivially survives.
                    FaultPlan::none()
                } else {
                    let victim = contributors[(seed as usize) % contributors.len()];
                    FaultPlan::single(victim, make_kind(watchdog))
                };
                match exec.gemm_with_faults::<f64, f64>(&a, &b, decomp, &plan) {
                    Ok((c, report)) => {
                        survived += 1;
                        recoveries += report.recoveries();
                        recomputed += report.recomputed_iters();
                        bit_exact &= c.max_abs_diff(&baseline) == 0.0;
                    }
                    Err(_) => bit_exact = false,
                }
            }
            let _ = writeln!(
                out,
                "{name:<16} {kind_name:<10} {seeds:>5} {survived:>9} {recoveries:>11} {recomputed:>12} {:>10}",
                if bit_exact { "yes" } else { "NO" }
            );
        }
    }

    let _ = writeln!(out, "\nsim straggler injection (A100 fp64, 2x slowdown on SM 1):");
    let _ = writeln!(out, "{:<16} {:>11} {:>19}", "strategy", "makespan x", "fixup-stall delta");
    let gpu = GpuSpec::a100();
    let sim_plan = SimFaultPlan::none().with_sm_slowdown(1, 2.0);
    for (name, decomp) in &strategies {
        let r = simulate_with_faults(decomp, &gpu, Precision::Fp64, &sim_plan);
        let _ = writeln!(
            out,
            "{name:<16} {:>10.3}x {:>17.3e}s",
            r.makespan_amplification(),
            r.fixup_stall_delta()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn run(s: &str) -> String {
        let argv: Vec<String> = s.split_whitespace().map(String::from).collect();
        execute(&Cli::parse(&argv).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run("help");
        assert!(out.contains("USAGE"));
        assert!(out.contains("streamk:G"));
    }

    #[test]
    fn schedule_shows_gantt_and_stats() {
        let out = run("schedule 384 384 128 --tile 128x128x4 --strategy streamk:4");
        assert!(out.contains("9 output tiles"));
        assert!(out.contains("SM0"));
        assert!(out.contains("quantization 100.0%"));
    }

    #[test]
    fn bestgrid_reproduces_figure8c() {
        let out = run("bestgrid 128 128 16384 --precision fp16");
        assert!(out.contains("g* = 8"), "{out}");
        assert!(out.contains("<-- g*"));
    }

    #[test]
    fn compare_lists_four_contenders() {
        let out = run("compare 1024 1024 1024 --precision fp64");
        for name in ["stream-k", "data-parallel", "cublas-like", "oracle"] {
            assert!(out.contains(name), "missing {name}: {out}");
        }
    }

    #[test]
    fn corpus_summary() {
        let out = run("corpus 200");
        assert!(out.contains("200 shapes"));
        assert!(out.contains("compute-bound"));
    }

    #[test]
    fn chaos_campaign_survives_every_cell() {
        // Small problem, short watchdog: the full campaign in well
        // under a second per lost-CTA cell.
        let out = run("chaos 96 80 64 --tile 32x32x16 --seeds 2 --threads 8 --watchdog-ms 100");
        for strategy in ["dp", "splitk:3", "streamk", "dp+1t-streamk", "2t-streamk+dp"] {
            assert!(out.contains(strategy), "missing {strategy}: {out}");
        }
        for kind in ["straggler", "lost", "poison"] {
            assert!(out.contains(kind), "missing {kind}: {out}");
        }
        assert!(out.contains("sim straggler injection"), "{out}");
        assert!(!out.contains("NO"), "a cell lost bit-exactness:\n{out}");
        assert!(!out.contains("skipped"), "a strategy was skipped:\n{out}");
    }

    #[test]
    fn svg_writes_file() {
        let path = std::env::temp_dir().join("streamk_cli_test.svg");
        let out = run(&format!("svg 384 384 128 --tile 128x128x4 --strategy streamk:4 --out {}", path.display()));
        assert!(out.contains("wrote"), "{out}");
        let svg = std::fs::read_to_string(&path).unwrap();
        assert!(svg.starts_with("<svg"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn auto_strategy_uses_model() {
        let out = run("schedule 128 128 16384 --tile 128x128x32 --sms 108 --strategy auto");
        // The schedule command models with FP64 constants: the tie-broken
        // minimum for a 512-iteration single tile lands at g = 9.
        assert!(out.contains("stream-k(g=9)"), "{out}");
    }
}
