//! Relative-performance statistics (Tables 1-2).

/// Summary statistics of a set of speedup ratios, in the format of
/// the paper's Tables 1 and 2: average, standard deviation, min, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioStats {
    /// Arithmetic mean.
    pub avg: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest ratio (worst case for the numerator implementation).
    pub min: f64,
    /// Largest ratio (best case).
    pub max: f64,
    /// Sample count.
    pub count: usize,
}

impl RatioStats {
    /// Computes the summary of `ratios`.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice or non-finite entries — a ratio of
    /// makespans is always positive and finite, so either indicates a
    /// harness bug.
    #[must_use]
    pub fn of(ratios: &[f64]) -> Self {
        assert!(!ratios.is_empty(), "no ratios to summarize");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &r in ratios {
            assert!(r.is_finite() && r > 0.0, "invalid ratio {r}");
            min = min.min(r);
            max = max.max(r);
            sum += r;
        }
        let avg = sum / ratios.len() as f64;
        let var = ratios.iter().map(|&r| (r - avg) * (r - avg)).sum::<f64>() / ratios.len() as f64;
        Self { avg, stddev: var.sqrt(), min, max, count: ratios.len() }
    }

    /// Fraction of ratios at or above 1.0 — "virtually no instances
    /// of slowdown" is this number approaching 1 (§6).
    #[must_use]
    pub fn win_fraction(ratios: &[f64]) -> f64 {
        if ratios.is_empty() {
            return 0.0;
        }
        ratios.iter().filter(|&&r| r >= 1.0).count() as f64 / ratios.len() as f64
    }

    /// One formatted table row: `avg stddev min max`, in the paper's
    /// `1.23× / 0.45 / 0.77× / 5.63×` style.
    #[must_use]
    pub fn table_row(&self) -> String {
        format!(
            "avg {:.2}x  stddev {:.2}  min {:.2}x  max {:.2}x  (n={})",
            self.avg, self.stddev, self.min, self.max, self.count
        )
    }
}

/// Geometric mean — a complementary aggregate for wide-range speedup
/// distributions (not in the paper's tables, used by the ablation
/// benches).
///
/// # Panics
///
/// Panics on an empty slice or non-positive entries.
#[must_use]
pub fn geometric_mean(ratios: &[f64]) -> f64 {
    assert!(!ratios.is_empty(), "no ratios to summarize");
    let log_sum: f64 = ratios
        .iter()
        .map(|&r| {
            assert!(r > 0.0, "invalid ratio {r}");
            r.ln()
        })
        .sum();
    (log_sum / ratios.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = RatioStats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.avg, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.count, 4);
        assert!((s.stddev - 1.118_033_988_749_895).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        let s = RatioStats::of(&[1.5]);
        assert_eq!(s.avg, 1.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!((s.min, s.max), (1.5, 1.5));
    }

    #[test]
    fn win_fraction_counts_at_least_one() {
        assert_eq!(RatioStats::win_fraction(&[0.5, 1.0, 1.5, 2.0]), 0.75);
        assert_eq!(RatioStats::win_fraction(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_of_reciprocals_is_one() {
        let g = geometric_mean(&[2.0, 0.5, 4.0, 0.25]);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_row_formats() {
        let s = RatioStats::of(&[1.0, 2.0]);
        let row = s.table_row();
        assert!(row.contains("avg 1.50x"));
        assert!(row.contains("n=2"));
    }

    #[test]
    #[should_panic(expected = "invalid ratio")]
    fn rejects_nonfinite() {
        let _ = RatioStats::of(&[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "no ratios")]
    fn rejects_empty() {
        let _ = RatioStats::of(&[]);
    }
}
