//! The evaluation corpus and its statistics.
//!
//! The paper evaluates 32,824 GEMM problem shapes, "log-sampled at
//! random within a domain of m, n, and k matrix dimensions whose
//! volume spans six orders of magnitude" — each dimension uniform in
//! log-space over `[128, 8192]` (Figure 4). [`Corpus`] reproduces
//! that domain deterministically from a seed; [`stats`] provides the
//! average / standard deviation / min / max relative-performance
//! summaries of Tables 1 and 2.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod generate;
pub mod stats;
pub mod suites;

pub use generate::{Corpus, CorpusConfig};
pub use stats::RatioStats;
pub use suites::Suite;
