//! Corpus generation (Figure 4).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use streamk_types::{GemmShape, Precision};

/// Parameters of the sampled problem domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Number of shapes to draw. The paper's corpus has 32,824.
    pub count: usize,
    /// Smallest extent per dimension (inclusive). Paper: 128.
    pub min_dim: usize,
    /// Largest extent per dimension (inclusive). Paper: 8192.
    pub max_dim: usize,
    /// RNG seed — the corpus is a pure function of its config.
    pub seed: u64,
}

impl CorpusConfig {
    /// The paper's full Figure 4 domain: 32,824 shapes in
    /// `[128, 8192]³`.
    #[must_use]
    pub fn paper() -> Self {
        Self { count: 32_824, min_dim: 128, max_dim: 8192, seed: 0x5742_EA4B }
    }

    /// A smaller corpus with the same distribution, for quick runs
    /// and tests.
    #[must_use]
    pub fn smoke(count: usize) -> Self {
        Self { count, ..Self::paper() }
    }
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A deterministic sample of GEMM problem shapes.
///
/// ```
/// use streamk_corpus::{Corpus, CorpusConfig};
///
/// let corpus = Corpus::generate(CorpusConfig::smoke(100));
/// assert_eq!(corpus.len(), 100);
/// for s in corpus.shapes() {
///     assert!((128..=8192).contains(&s.m));
/// }
/// // Same config, same corpus — experiments are reproducible.
/// assert_eq!(corpus, Corpus::generate(CorpusConfig::smoke(100)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    config: CorpusConfig,
    shapes: Vec<GemmShape>,
}

impl Corpus {
    /// Draws the corpus `config` describes: each of m, n, k
    /// independently log-uniform over `[min_dim, max_dim]`.
    ///
    /// # Panics
    ///
    /// Panics if `min_dim` is zero or exceeds `max_dim`.
    #[must_use]
    pub fn generate(config: CorpusConfig) -> Self {
        assert!(config.min_dim > 0, "min_dim must be positive");
        assert!(config.min_dim <= config.max_dim, "min_dim must not exceed max_dim");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let lo = (config.min_dim as f64).ln();
        let hi = (config.max_dim as f64).ln();
        let dim = move |rng: &mut StdRng| -> usize {
            let v: f64 = rng.random_range(lo..=hi);
            (v.exp().round() as usize).clamp(config.min_dim, config.max_dim)
        };
        let shapes = (0..config.count)
            .map(|_| {
                let m = dim(&mut rng);
                let n = dim(&mut rng);
                let k = dim(&mut rng);
                GemmShape::new(m, n, k)
            })
            .collect();
        Self { config, shapes }
    }

    /// The configuration this corpus was drawn from.
    #[must_use]
    pub fn config(&self) -> CorpusConfig {
        self.config
    }

    /// The sampled shapes.
    #[must_use]
    pub fn shapes(&self) -> &[GemmShape] {
        &self.shapes
    }

    /// Number of shapes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// The subset of shapes in `precision`'s compute-bound regime
    /// (above 150 ops/B for FP64, 400 ops/B for FP16→32 — §6).
    #[must_use]
    pub fn compute_bound(&self, precision: Precision) -> Vec<GemmShape> {
        self.shapes.iter().copied().filter(|s| s.is_compute_bound(precision)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Corpus::generate(CorpusConfig::smoke(100));
        let b = Corpus::generate(CorpusConfig::smoke(100));
        assert_eq!(a, b);
        let c = Corpus::generate(CorpusConfig { seed: 7, ..CorpusConfig::smoke(100) });
        assert_ne!(a, c);
    }

    #[test]
    fn extents_within_domain() {
        let corpus = Corpus::generate(CorpusConfig::smoke(2000));
        for s in corpus.shapes() {
            for d in [s.m, s.n, s.k] {
                assert!((128..=8192).contains(&d), "{s}");
            }
        }
    }

    #[test]
    fn log_uniform_median_near_geometric_mean() {
        // Geometric mean of [128, 8192] is √(128·8192) = 1024; a
        // log-uniform sample's median must sit near it.
        let corpus = Corpus::generate(CorpusConfig::smoke(4000));
        let mut ms: Vec<usize> = corpus.shapes().iter().map(|s| s.m).collect();
        ms.sort_unstable();
        let median = ms[ms.len() / 2] as f64;
        assert!((700.0..1500.0).contains(&median), "median = {median}");
    }

    #[test]
    fn volume_spans_six_orders_of_magnitude() {
        // The paper's domain: flops from 2·128³ ≈ 4.2e6 to
        // 2·8192³ ≈ 1.1e12.
        let corpus = Corpus::generate(CorpusConfig::smoke(5000));
        let min = corpus.shapes().iter().map(|s| s.flops()).min().unwrap();
        let max = corpus.shapes().iter().map(|s| s.flops()).max().unwrap();
        assert!(max as f64 / min as f64 > 1e4, "observed span {:.1e}", max as f64 / min as f64);
    }

    #[test]
    fn compute_bound_filter_is_strict_subset_fp16() {
        let corpus = Corpus::generate(CorpusConfig::smoke(500));
        let cb = corpus.compute_bound(Precision::Fp16To32);
        assert!(!cb.is_empty());
        assert!(cb.len() < corpus.len());
        for s in &cb {
            assert!(s.arithmetic_intensity(Precision::Fp16To32) > 400.0);
        }
    }

    #[test]
    fn paper_config_counts() {
        let c = CorpusConfig::paper();
        assert_eq!(c.count, 32_824);
        assert_eq!((c.min_dim, c.max_dim), (128, 8192));
    }

    #[test]
    #[should_panic(expected = "min_dim")]
    fn invalid_domain_panics() {
        let _ = Corpus::generate(CorpusConfig { min_dim: 0, ..CorpusConfig::smoke(1) });
    }
}
