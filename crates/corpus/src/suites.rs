//! Named workload suites.
//!
//! Beyond the random Figure-4 domain, these are curated shape sets
//! for targeted studies: the deep-learning GEMMs the paper's
//! introduction motivates, strong-scaling ladders, and
//! quantization-adversarial families. The examples and ablation
//! benches draw from here so workloads are named, not ad hoc.

use streamk_types::GemmShape;

/// A named set of GEMM shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suite {
    /// Suite name (for reports).
    pub name: &'static str,
    /// The shapes.
    pub shapes: Vec<GemmShape>,
}

/// Transformer-layer GEMMs (hidden size `h`, MLP expansion 4×) across
/// a ladder of token counts — the inference workloads of §2 where
/// small batches quantize poorly.
#[must_use]
pub fn transformer_suite(hidden: usize) -> Suite {
    let mut shapes = Vec::new();
    for tokens in [16usize, 64, 256, 1024, 4096] {
        shapes.push(GemmShape::new(tokens, 3 * hidden, hidden)); // QKV projection
        shapes.push(GemmShape::new(tokens, hidden, hidden)); // attention output
        shapes.push(GemmShape::new(tokens, 4 * hidden, hidden)); // MLP up
        shapes.push(GemmShape::new(tokens, hidden, 4 * hidden)); // MLP down
    }
    Suite { name: "transformer", shapes }
}

/// The strong-scaling ladder: a fixed small output (`m × n`) with
/// doubling accumulation depth — Figure 9's regime.
#[must_use]
pub fn strong_scaling_suite(m: usize, n: usize) -> Suite {
    let shapes = (8..=16).map(|p| GemmShape::new(m, n, 1 << p)).collect();
    Suite { name: "strong-scaling", shapes }
}

/// Square problems from cache-resident to device-filling.
#[must_use]
pub fn square_suite() -> Suite {
    let shapes = [128usize, 256, 512, 1024, 2048, 4096, 8192]
        .into_iter()
        .map(|d| GemmShape::new(d, d, d))
        .collect();
    Suite { name: "square", shapes }
}

/// Quantization-adversarial shapes for a `p`-core processor and a
/// given blocking edge: tile counts of `w·p ± 1` for several wave
/// counts — the worst cases for tile-centric decompositions (§1).
#[must_use]
pub fn adversarial_suite(p: usize, blk_m: usize, blk_n: usize, k: usize) -> Suite {
    let mut shapes = Vec::new();
    for waves in 1..=3usize {
        for delta in [-1i64, 1] {
            let tiles = (waves * p) as i64 + delta;
            if tiles < 1 {
                continue;
            }
            // Factor into a near-square tile grid.
            let tiles = tiles as usize;
            let tm = (1..=tiles)
                .filter(|d| tiles.is_multiple_of(*d))
                .min_by_key(|&d| (d as i64 - (tiles as f64).sqrt().round() as i64).abs())
                .unwrap_or(1);
            let tn = tiles / tm;
            shapes.push(GemmShape::new(tm * blk_m, tn * blk_n, k));
        }
    }
    Suite { name: "adversarial", shapes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformer_suite_covers_the_ladder() {
        let s = transformer_suite(4096);
        assert_eq!(s.shapes.len(), 20);
        // MLP down has the deep k.
        assert!(s.shapes.iter().any(|sh| sh.k == 16384));
        // Small-token shapes are present (the quantization-hostile
        // inference end).
        assert!(s.shapes.iter().any(|sh| sh.m == 16));
    }

    #[test]
    fn strong_scaling_doubles_k() {
        let s = strong_scaling_suite(128, 128);
        assert_eq!(s.shapes.first().unwrap().k, 256);
        assert_eq!(s.shapes.last().unwrap().k, 65536);
        for pair in s.shapes.windows(2) {
            assert_eq!(pair[1].k, 2 * pair[0].k);
            assert_eq!(pair[0].m, 128);
        }
    }

    #[test]
    fn square_suite_is_square() {
        for sh in square_suite().shapes {
            assert_eq!(sh.m, sh.n);
            assert_eq!(sh.n, sh.k);
        }
    }

    #[test]
    fn adversarial_tiles_straddle_wave_multiples() {
        let s = adversarial_suite(108, 128, 128, 4096);
        assert!(!s.shapes.is_empty());
        for sh in &s.shapes {
            let tiles = sh.m.div_ceil(128) * sh.n.div_ceil(128);
            assert!(tiles % 108 != 0, "{sh} quantizes perfectly, not adversarial");
        }
    }
}
