//! Selector persistence: round-trip through the cache file, rejection
//! of incompatible or damaged files (always a silent cold start, never
//! an error), and concurrent-writer atomicity.

use std::path::PathBuf;
use std::sync::Arc;
use streamk_select::{AdaptiveSelector, SelectionCache, SelectorConfig};
use streamk_types::{GemmShape, Layout, Precision};

/// A unique scratch directory per test (process id + test name), so
/// parallel test binaries and threads never collide.
fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("streamk-select-test-{}-{test}", std::process::id()));
    // Left over from a previous failed run, possibly.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn config(path: &std::path::Path) -> SelectorConfig {
    SelectorConfig::new(Precision::Fp64, 4).with_top_k(4).with_cache_path(path)
}

/// Warms one class with synthetic measurements so `selector` has a
/// non-trivial table: candidate `winner_index` gets the fastest time.
fn warm(selector: &mut AdaptiveSelector, shape: GemmShape, winner_index: usize) {
    let (class, slate) = selector.slate(shape, Layout::RowMajor);
    for (i, &candidate) in slate.iter().enumerate() {
        let sel = streamk_select::Selection {
            class,
            candidate,
            index: i,
            source: streamk_select::SelectionSource::Explore,
        };
        let secs = if i == winner_index { 1e-4 } else { 7e-4 };
        selector.feedback_raw(&sel, secs, 1e-6);
    }
}

#[test]
fn persist_then_reload_round_trips_the_table_and_the_decision() {
    let dir = scratch_dir("round-trip");
    let path = dir.join("cache");
    let shapes = [GemmShape::new(256, 256, 256), GemmShape::new(64, 64, 4096)];

    let mut first = AdaptiveSelector::new(config(&path));
    assert!(!first.loaded_from_disk(), "no file yet: must start cold");
    for (i, &shape) in shapes.iter().enumerate() {
        warm(&mut first, shape, 1 + i);
    }
    let trials = first.total_trials();
    assert!(trials > 0);
    assert!(first.persist().expect("persist"), "path configured: must write");
    assert!(path.exists(), "cache file must exist after persist");

    let mut second = AdaptiveSelector::new(config(&path));
    assert!(second.loaded_from_disk(), "intact file must be recovered");
    assert_eq!(second.total_trials(), trials);
    assert_eq!(second.class_count(), first.class_count());
    for &shape in &shapes {
        let a = first.select_frozen(shape, Layout::RowMajor);
        let b = second.select_frozen(shape, Layout::RowMajor);
        assert_eq!(a.candidate, b.candidate, "{shape}: reloaded winner differs");
        // Timings must survive bit-exactly, not just approximately.
        let class = first.class_of(shape, Layout::RowMajor);
        let e1 = &first.cache().entries[&class];
        let e2 = &second.cache().entries[&class];
        for (s1, s2) in e1.stats.iter().zip(&e2.stats) {
            assert_eq!(s1.trials, s2.trials);
            assert_eq!(s1.mean_s.to_bits(), s2.mean_s.to_bits());
            assert_eq!(s1.wait_s.to_bits(), s2.wait_s.to_bits());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatch_falls_back_to_cold_without_error() {
    let dir = scratch_dir("version");
    let path = dir.join("cache");
    let mut s = AdaptiveSelector::new(config(&path));
    warm(&mut s, GemmShape::new(128, 128, 128), 0);
    s.persist().expect("persist");

    // Rewrite the header with a future version; the payload stays
    // intact, so only the version gate can reject it.
    let text = std::fs::read_to_string(&path).expect("read cache");
    let bumped = text.replacen(" v1\n", " v999\n", 1);
    assert_ne!(text, bumped, "header rewrite must take effect");
    std::fs::write(&path, bumped).expect("rewrite cache");

    let reloaded = AdaptiveSelector::new(config(&path));
    assert!(!reloaded.loaded_from_disk(), "future version must be rejected");
    assert_eq!(reloaded.total_trials(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_or_corrupted_file_falls_back_to_cold_without_error() {
    let dir = scratch_dir("corrupt");
    let path = dir.join("cache");
    let mut s = AdaptiveSelector::new(config(&path));
    warm(&mut s, GemmShape::new(192, 192, 192), 2);
    s.persist().expect("persist");
    let intact = std::fs::read(&path).expect("read cache");

    // Truncation at several points, including mid-line.
    for cut in [0, 1, intact.len() / 2, intact.len() - 1] {
        std::fs::write(&path, &intact[..cut]).expect("truncate");
        let r = AdaptiveSelector::new(config(&path));
        assert!(!r.loaded_from_disk(), "truncation at {cut} must be rejected");
        assert_eq!(r.total_trials(), 0);
    }

    // Single-byte payload corruption: caught by the checksum.
    let mut flipped = intact.clone();
    let last = flipped.len() - 2;
    flipped[last] ^= 0x01;
    std::fs::write(&path, &flipped).expect("corrupt");
    let r = AdaptiveSelector::new(config(&path));
    assert!(!r.loaded_from_disk(), "bit flip must be rejected");

    // Outright garbage, and a missing file.
    std::fs::write(&path, b"\x00\xffnot a cache\n").expect("garbage");
    assert!(!AdaptiveSelector::new(config(&path)).loaded_from_disk());
    std::fs::remove_file(&path).expect("remove");
    assert!(!AdaptiveSelector::new(config(&path)).loaded_from_disk());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_leave_some_writers_complete_image() {
    let dir = scratch_dir("concurrent");
    let path = Arc::new(dir.join("cache"));

    // Each writer builds a distinct valid table (its own class), then
    // all save to the same path simultaneously, repeatedly.
    let writers: Vec<(u64, SelectionCache)> = (0..4)
        .map(|w| {
            let mut s = AdaptiveSelector::new(SelectorConfig::new(Precision::Fp64, 4).with_top_k(4));
            let extent = 64 << w; // distinct shape class per writer
            warm(&mut s, GemmShape::new(extent, extent, extent), 0);
            (s.total_trials(), s.cache().clone())
        })
        .collect();
    let trial_counts: Vec<u64> = writers.iter().map(|(t, _)| *t).collect();

    let handles: Vec<_> = writers
        .into_iter()
        .map(|(_, cache)| {
            let path = Arc::clone(&path);
            std::thread::spawn(move || {
                for _ in 0..25 {
                    cache.save(&path).expect("save");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }

    // The surviving file must be one writer's complete image — loadable
    // (checksum intact, so no torn interleaving) and matching one of
    // the written tables exactly.
    let loaded = SelectionCache::load(&path).expect("file must parse after the race");
    assert_eq!(loaded.entries.len(), 1, "each writer wrote exactly one class");
    assert!(
        trial_counts.contains(&loaded.total_trials()),
        "loaded table must match some writer's image"
    );

    // No temp droppings left behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("read scratch dir")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
