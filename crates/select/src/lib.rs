//! Online adaptive schedule selection — the Stream-K++ direction.
//!
//! The paper's App. A.1 heuristic picks a decomposition *statically*
//! from a grid-size model; the corpus results show no single
//! strategy × kernel × tile wins everywhere, and the static rules
//! mis-select on a long tail of shapes. Stream-K++ (arXiv:2408.11417)
//! replaces the static decision with an *online* selector that caches
//! measured per-shape winners. This crate rebuilds that loop for the
//! CPU executor:
//!
//! - [`class::ShapeClass`] — quantized m/n/k buckets + precision +
//!   layout + worker count, so measurements generalize across nearby
//!   shapes instead of memoizing every exact triple;
//! - [`candidates`] — the per-class candidate slate, top-K of the
//!   `streamk-tune` tile space crossed with decomposition strategies
//!   and microkernels, always seeded with the App. A.1 pick;
//! - [`cache::SelectionCache`] — the persistent measurement table:
//!   versioned, checksummed, corruption degrades to a silent cold
//!   start, written via temp-file + atomic rename so concurrent
//!   writers never clobber each other;
//! - [`selector::AdaptiveSelector`] — cold classes fall back to the
//!   App. A.1 heuristic, warm classes run epsilon-greedy over the
//!   slate fed by measured launch times and [`streamk_cpu::ExecStats`],
//!   and a converged table distills through
//!   [`streamk_tune::DecisionTree`] into zero-lookup dispatch;
//! - [`adaptive::SelectingExecutor`] — the loop threaded through
//!   [`streamk_cpu::CpuExecutor`], its batched/grouped entry points,
//!   and per-request selection for [`streamk_cpu::GemmService`].

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptive;
pub mod cache;
pub mod candidates;
pub mod class;
pub mod selector;

pub use adaptive::SelectingExecutor;
pub use cache::{CandidateStats, ClassEntry, SelectionCache};
pub use candidates::{candidates_for, candidates_for_with, Candidate};
pub use class::ShapeClass;
pub use selector::{AdaptiveSelector, Selection, SelectionSource, SelectorConfig};
