//! Shape classes: the keys of the selection table.
//!
//! Memoizing every exact `m × n × k` triple would make every shape a
//! cold start; quantizing each extent to half-octave log₂ buckets
//! (`round(2·log₂ x)`) groups shapes whose best schedule is the same
//! in practice — the decomposition decision is driven by tile counts
//! and wave quantization, both of which move on a log scale — while
//! still separating the strong-scaling tail (small m·n, large k) from
//! the throughput regime.

use streamk_types::{GemmShape, Layout, Precision};

/// A quantized GEMM launch signature: half-octave m/n/k buckets plus
/// the precision, operand layout, and worker count — everything the
/// measured winner may legitimately depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeClass {
    /// `round(2·log₂ m)`.
    pub m_bucket: u32,
    /// `round(2·log₂ n)`.
    pub n_bucket: u32,
    /// `round(2·log₂ k)`.
    pub k_bucket: u32,
    /// Compute precision (dtype of the launch).
    pub precision: Precision,
    /// Storage layout of the A operand.
    pub layout: Layout,
    /// Executor worker count the launch runs on.
    pub workers: u32,
}

/// Half-octave log₂ bucket of a dimension extent (`0` for extents of
/// `0` or `1`).
#[must_use]
pub fn bucket(extent: usize) -> u32 {
    if extent <= 1 {
        return 0;
    }
    let b = (2.0 * (extent as f64).log2()).round();
    b as u32
}

/// The smallest extent that maps to `bucket` — the representative
/// used when reasoning about a class without a concrete shape.
#[must_use]
pub fn bucket_floor(bucket: u32) -> usize {
    (f64::from(bucket) / 2.0).exp2().ceil() as usize
}

impl ShapeClass {
    /// Classifies a launch.
    #[must_use]
    pub fn of(shape: GemmShape, precision: Precision, layout: Layout, workers: usize) -> Self {
        Self {
            m_bucket: bucket(shape.m),
            n_bucket: bucket(shape.n),
            k_bucket: bucket(shape.k),
            precision,
            layout,
            workers: workers as u32,
        }
    }

    /// A representative shape for the class: the bucket floors.
    #[must_use]
    pub fn representative(&self) -> GemmShape {
        GemmShape::new(
            bucket_floor(self.m_bucket),
            bucket_floor(self.n_bucket),
            bucket_floor(self.k_bucket),
        )
    }

    /// The class as a numeric feature vector, the input side of
    /// decision-tree distillation. Buckets stay in log space (that is
    /// where the decision boundaries are axis-aligned), categorical
    /// fields become small integer codes.
    #[must_use]
    pub fn features(&self) -> Vec<f64> {
        vec![
            f64::from(self.m_bucket),
            f64::from(self.n_bucket),
            f64::from(self.k_bucket),
            f64::from(precision_code(self.precision)),
            f64::from(layout_code(self.layout)),
            f64::from(self.workers),
        ]
    }

    /// Compact stable key used by the cache file format.
    #[must_use]
    pub fn encode(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}:{}",
            self.m_bucket,
            self.n_bucket,
            self.k_bucket,
            precision_code(self.precision),
            layout_code(self.layout),
            self.workers
        )
    }

    /// Parses an [`encode`](Self::encode)d key.
    #[must_use]
    pub fn decode(s: &str) -> Option<Self> {
        let mut parts = s.split(':');
        let mut next = || parts.next()?.parse::<u32>().ok();
        let (m, n, k) = (next()?, next()?, next()?);
        let precision = precision_from_code(next()?)?;
        let layout = layout_from_code(next()?)?;
        let workers = next()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Self { m_bucket: m, n_bucket: n, k_bucket: k, precision, layout, workers })
    }
}

impl Ord for ShapeClass {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let key = |c: &Self| {
            (c.m_bucket, c.n_bucket, c.k_bucket, precision_code(c.precision), layout_code(c.layout), c.workers)
        };
        key(self).cmp(&key(other))
    }
}

impl PartialOrd for ShapeClass {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn precision_code(p: Precision) -> u32 {
    match p {
        Precision::Fp64 => 0,
        Precision::Fp16To32 => 1,
    }
}

fn precision_from_code(c: u32) -> Option<Precision> {
    match c {
        0 => Some(Precision::Fp64),
        1 => Some(Precision::Fp16To32),
        _ => None,
    }
}

fn layout_code(l: Layout) -> u32 {
    match l {
        Layout::RowMajor => 0,
        Layout::ColMajor => 1,
        Layout::BlockMajor => 2,
        Layout::BlockMajorZ => 3,
    }
}

fn layout_from_code(c: u32) -> Option<Layout> {
    match c {
        0 => Some(Layout::RowMajor),
        1 => Some(Layout::ColMajor),
        2 => Some(Layout::BlockMajor),
        3 => Some(Layout::BlockMajorZ),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_half_octave() {
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(4), 4);
        assert_eq!(bucket(1024), 20);
        // Half-octave resolution: ×√2 advances the bucket by one.
        assert_eq!(bucket(1448), 21);
        assert_eq!(bucket(2048), 22);
    }

    #[test]
    fn nearby_shapes_share_a_class_distant_ones_do_not() {
        let class = |m, n, k| {
            ShapeClass::of(GemmShape::new(m, n, k), Precision::Fp64, Layout::RowMajor, 4)
        };
        // Within ±≈10% of 512 the bucket is stable.
        assert_eq!(class(512, 512, 512), class(500, 520, 512));
        // A 2× change in any extent always separates.
        assert_ne!(class(512, 512, 512), class(1024, 512, 512));
        assert_ne!(class(512, 512, 512), class(512, 512, 1024));
    }

    #[test]
    fn precision_layout_and_workers_separate_classes() {
        let s = GemmShape::new(256, 256, 256);
        let base = ShapeClass::of(s, Precision::Fp64, Layout::RowMajor, 4);
        assert_ne!(base, ShapeClass::of(s, Precision::Fp16To32, Layout::RowMajor, 4));
        assert_ne!(base, ShapeClass::of(s, Precision::Fp64, Layout::BlockMajor, 4));
        assert_ne!(base, ShapeClass::of(s, Precision::Fp64, Layout::RowMajor, 2));
    }

    #[test]
    fn encode_decode_round_trips() {
        for layout in [Layout::RowMajor, Layout::ColMajor, Layout::BlockMajor, Layout::BlockMajorZ] {
            for precision in [Precision::Fp64, Precision::Fp16To32] {
                let c = ShapeClass::of(GemmShape::new(384, 96, 2048), precision, layout, 8);
                assert_eq!(ShapeClass::decode(&c.encode()), Some(c));
            }
        }
        assert_eq!(ShapeClass::decode("1:2:3"), None);
        assert_eq!(ShapeClass::decode("1:2:3:9:0:4"), None);
        assert_eq!(ShapeClass::decode("1:2:3:0:0:4:5"), None);
    }

    #[test]
    fn representative_lands_in_its_own_class() {
        for extent in [96usize, 128, 200, 512, 1000, 4096] {
            let shape = GemmShape::new(extent, extent, extent);
            let c = ShapeClass::of(shape, Precision::Fp64, Layout::RowMajor, 4);
            let r = c.representative();
            let c2 = ShapeClass::of(r, Precision::Fp64, Layout::RowMajor, 4);
            assert_eq!(c, c2, "extent {extent}: representative {r} escaped its class");
        }
    }

    #[test]
    fn features_are_stable_width() {
        let c = ShapeClass::of(GemmShape::new(64, 64, 64), Precision::Fp16To32, Layout::ColMajor, 2);
        assert_eq!(c.features().len(), 6);
    }
}
