//! The persistent selection table.
//!
//! A plain-text, line-oriented format: a version header, an FNV-1a
//! checksum of the payload, then one `class` line per shape class
//! followed by its `cand` measurement lines. Timings round-trip
//! exactly (`f64::to_bits` hex), so a save/load cycle is lossless.
//!
//! Robustness contract: *any* anomaly — missing file, wrong magic,
//! version mismatch, checksum mismatch, truncation, garbled line —
//! makes [`SelectionCache::load`] return `None` and the selector
//! starts cold, silently. A stale or corrupt cache must never be
//! worth more than an empty one. Saves go through a uniquely named
//! temp file in the target directory followed by an atomic rename, so
//! concurrent writers interleave to *some* writer's complete file,
//! never a torn mix.

use crate::candidates::Candidate;
use crate::class::ShapeClass;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Format magic; bump [`CACHE_VERSION`] on any layout change.
const CACHE_MAGIC: &str = "streamk-select-cache";
/// Current format version.
pub const CACHE_VERSION: u32 = 1;

/// Running measurement statistics for one candidate of one class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CandidateStats {
    /// Number of measured launches folded in.
    pub trials: u32,
    /// Running mean launch time in seconds.
    pub mean_s: f64,
    /// Running mean of summed fixup wait stall per launch in seconds
    /// (from `ExecStats` / `RequestStats`); breaks near-ties toward
    /// schedules that consolidate without blocking.
    pub wait_s: f64,
}

impl CandidateStats {
    /// Folds one measured launch into the running means.
    pub fn record(&mut self, secs: f64, wait_s: f64) {
        self.trials += 1;
        let n = f64::from(self.trials);
        self.mean_s += (secs - self.mean_s) / n;
        self.wait_s += (wait_s - self.wait_s) / n;
    }
}

/// One shape class's slate and its measurements (parallel arrays).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassEntry {
    /// The candidate slate, heuristic seed first.
    pub candidates: Vec<Candidate>,
    /// Per-candidate measurement state, indexed like `candidates`.
    pub stats: Vec<CandidateStats>,
}

impl ClassEntry {
    /// Builds an unmeasured entry over `candidates`.
    #[must_use]
    pub fn new(candidates: Vec<Candidate>) -> Self {
        let stats = vec![CandidateStats::default(); candidates.len()];
        Self { candidates, stats }
    }

    /// Index of the measured winner: lowest mean among tried
    /// candidates, near-ties (within 2%) broken by lower wait stall.
    /// `None` when nothing has been measured.
    #[must_use]
    pub fn winner(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, s) in self.stats.iter().enumerate() {
            if s.trials == 0 {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    let sb = &self.stats[b];
                    let near = (s.mean_s - sb.mean_s).abs() <= 0.02 * sb.mean_s;
                    if (near && s.wait_s < sb.wait_s) || (!near && s.mean_s < sb.mean_s) {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Index of the first untried candidate, if any.
    #[must_use]
    pub fn first_untried(&self) -> Option<usize> {
        self.stats.iter().position(|s| s.trials == 0)
    }
}

/// The selection table: shape class → measured slate.
#[derive(Debug, Clone, Default)]
pub struct SelectionCache {
    /// `BTreeMap` so serialization order — and thus the checksum — is
    /// deterministic.
    pub entries: BTreeMap<ShapeClass, ClassEntry>,
}

/// Monotonic counter making temp-file names unique within a process.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl SelectionCache {
    /// An empty (cold) table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total measured launches across all classes.
    #[must_use]
    pub fn total_trials(&self) -> u64 {
        self.entries
            .values()
            .flat_map(|e| e.stats.iter())
            .map(|s| u64::from(s.trials))
            .sum()
    }

    /// Serializes the payload (everything the checksum covers).
    fn payload(&self) -> String {
        let mut out = String::new();
        for (class, entry) in &self.entries {
            out.push_str(&format!("class {} {}\n", class.encode(), entry.candidates.len()));
            for (candidate, stats) in entry.candidates.iter().zip(&entry.stats) {
                out.push_str(&format!(
                    "cand {} {} {:016x} {:016x}\n",
                    candidate.encode(),
                    stats.trials,
                    stats.mean_s.to_bits(),
                    stats.wait_s.to_bits(),
                ));
            }
        }
        out
    }

    /// The full file image: magic + version, checksum, payload.
    #[must_use]
    pub fn serialize(&self) -> String {
        let payload = self.payload();
        format!("{CACHE_MAGIC} v{CACHE_VERSION}\nchecksum {:016x}\n{payload}", fnv1a(payload.as_bytes()))
    }

    /// Parses a file image; `None` on any anomaly.
    #[must_use]
    pub fn deserialize(text: &str) -> Option<Self> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let version = header.strip_prefix(CACHE_MAGIC)?.trim().strip_prefix('v')?;
        if version.parse::<u32>().ok()? != CACHE_VERSION {
            return None;
        }
        let checksum_line = lines.next()?;
        let expected = u64::from_str_radix(checksum_line.strip_prefix("checksum ")?, 16).ok()?;
        let payload_start = text.match_indices('\n').nth(1)? .0 + 1;
        let payload = &text[payload_start..];
        if fnv1a(payload.as_bytes()) != expected {
            return None;
        }

        let mut entries = BTreeMap::new();
        let mut lines = payload.lines().peekable();
        while let Some(line) = lines.next() {
            let rest = line.strip_prefix("class ")?;
            let (key, count) = rest.rsplit_once(' ')?;
            let class = ShapeClass::decode(key)?;
            let count: usize = count.parse().ok()?;
            let mut entry = ClassEntry::default();
            for _ in 0..count {
                let cand_line = lines.next()?.strip_prefix("cand ")?;
                // candidate encodings contain exactly two spaces
                // (strategy, tile, kernel), then three stat fields.
                let fields: Vec<&str> = cand_line.split(' ').collect();
                if fields.len() != 6 {
                    return None;
                }
                let candidate = Candidate::decode(&fields[..3].join(" "))?;
                let trials: u32 = fields[3].parse().ok()?;
                let mean_s = f64::from_bits(u64::from_str_radix(fields[4], 16).ok()?);
                let wait_s = f64::from_bits(u64::from_str_radix(fields[5], 16).ok()?);
                if !mean_s.is_finite() || !wait_s.is_finite() || mean_s < 0.0 || wait_s < 0.0 {
                    return None;
                }
                entry.candidates.push(candidate);
                entry.stats.push(CandidateStats { trials, mean_s, wait_s });
            }
            entries.insert(class, entry);
        }
        Some(Self { entries })
    }

    /// Loads a cache from `path`. `None` — silently — on any failure:
    /// a cold start is always acceptable, a torn table never is.
    #[must_use]
    pub fn load(path: &Path) -> Option<Self> {
        let text = std::fs::read_to_string(path).ok()?;
        Self::deserialize(&text)
    }

    /// Saves atomically: write a uniquely named temp file next to
    /// `path`, then rename over it. Concurrent savers race to the
    /// rename; the file is always *some* saver's complete image.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the temp write or the rename.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let mut temp = path.as_os_str().to_owned();
        temp.push(format!(".{}.{seq}.tmp", std::process::id()));
        let temp = std::path::PathBuf::from(temp);
        {
            let mut f = std::fs::File::create(&temp)?;
            f.write_all(self.serialize().as_bytes())?;
            f.sync_all()?;
        }
        let renamed = std::fs::rename(&temp, path);
        if renamed.is_err() {
            let _ = std::fs::remove_file(&temp);
        }
        renamed
    }
}

/// FNV-1a 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_core::Strategy;
    use streamk_cpu::KernelKind;
    use streamk_types::{GemmShape, Layout, Precision, TileShape};

    fn sample_cache() -> SelectionCache {
        let mut cache = SelectionCache::new();
        for (i, shape) in
            [GemmShape::new(256, 256, 256), GemmShape::new(64, 64, 4096)].iter().enumerate()
        {
            let class = ShapeClass::of(*shape, Precision::Fp64, Layout::RowMajor, 4);
            let mut entry = ClassEntry::new(vec![
                Candidate {
                    strategy: Strategy::DataParallel,
                    tile: TileShape::new(64, 64, 16),
                    kernel: KernelKind::Simd8x32,
                    strassen_depth: 0,
                },
                Candidate {
                    strategy: Strategy::StreamK { grid: 4 },
                    tile: TileShape::new(32, 32, 16),
                    kernel: KernelKind::Packed4x8,
                    strassen_depth: 0,
                },
            ]);
            entry.stats[0].record(1e-3 * (i + 1) as f64, 1e-5);
            entry.stats[1].record(2e-3, 3e-5);
            entry.stats[1].record(4e-3, 1e-5);
            cache.entries.insert(class, entry);
        }
        cache
    }

    #[test]
    fn serialize_round_trips_exactly() {
        let cache = sample_cache();
        let text = cache.serialize();
        let back = SelectionCache::deserialize(&text).expect("valid image");
        assert_eq!(back.entries.len(), cache.entries.len());
        for (class, entry) in &cache.entries {
            let b = &back.entries[class];
            assert_eq!(b.candidates, entry.candidates);
            for (s1, s2) in entry.stats.iter().zip(&b.stats) {
                assert_eq!(s1.trials, s2.trials);
                // Bit-exact timing round-trip.
                assert_eq!(s1.mean_s.to_bits(), s2.mean_s.to_bits());
                assert_eq!(s1.wait_s.to_bits(), s2.wait_s.to_bits());
            }
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = sample_cache().serialize();
        let bumped = text.replace(&format!("v{CACHE_VERSION}"), "v999");
        assert!(SelectionCache::deserialize(&bumped).is_none());
    }

    #[test]
    fn corruption_and_truncation_are_rejected() {
        let text = sample_cache().serialize();
        // Flip one payload byte: checksum must catch it.
        let flipped = text.replacen("cand dp", "cand dq", 1);
        assert!(SelectionCache::deserialize(&flipped).is_none());
        // Truncate mid-payload.
        let truncated = &text[..text.len() - 20];
        assert!(SelectionCache::deserialize(truncated).is_none());
        // Garbage and empty input.
        assert!(SelectionCache::deserialize("not a cache").is_none());
        assert!(SelectionCache::deserialize("").is_none());
    }

    #[test]
    fn winner_prefers_lower_mean_and_breaks_ties_on_wait() {
        let mut entry = ClassEntry::new(vec![
            Candidate {
                strategy: Strategy::DataParallel,
                tile: TileShape::new(64, 64, 16),
                kernel: KernelKind::Simd8x32,
                strassen_depth: 0,
            },
            Candidate {
                strategy: Strategy::StreamK { grid: 4 },
                tile: TileShape::new(64, 64, 16),
                kernel: KernelKind::Simd8x32,
                strassen_depth: 0,
            },
        ]);
        assert_eq!(entry.winner(), None);
        entry.stats[0].record(1.00e-3, 5e-5);
        assert_eq!(entry.winner(), Some(0));
        // Within 2% on time but much lower stall: the tie-break flips.
        entry.stats[1].record(1.01e-3, 1e-6);
        assert_eq!(entry.winner(), Some(1));
    }

    #[test]
    fn running_mean_is_exact_for_constant_series() {
        let mut s = CandidateStats::default();
        for _ in 0..17 {
            s.record(2.5e-3, 1e-4);
        }
        assert_eq!(s.trials, 17);
        assert!((s.mean_s - 2.5e-3).abs() < 1e-12);
        assert!((s.wait_s - 1e-4).abs() < 1e-12);
    }
}
