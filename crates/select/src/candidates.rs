//! The per-class candidate slate.
//!
//! Candidates cross the `streamk-tune` tile space with the
//! decomposition strategies of the paper and a small microkernel
//! palette, then keep the model-ranked top K. The App. A.1 heuristic
//! pick is always seeded at the front of the slate, so the epsilon-
//! greedy loop starts from the static decision and can only improve
//! on it.

use streamk_core::{Decomposition, Strategy};
use streamk_cpu::{KernelKind, StrassenConfig};
use streamk_ensemble::HeuristicSelector;
use streamk_tune::{candidate_tiles, estimated_efficiency};
use streamk_types::{GemmShape, Precision, TileShape};

/// One selectable schedule: strategy × tile × microkernel, plus an
/// optional Strassen–Winograd recursion depth on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The decomposition strategy.
    pub strategy: Strategy,
    /// The blocking factor.
    pub tile: TileShape,
    /// The microkernel executing every MAC-loop segment.
    pub kernel: KernelKind,
    /// Strassen–Winograd recursion depth; `0` is the classical
    /// (bit-exact) path. Non-zero candidates only enter slates when
    /// the selector was built with an enabled
    /// [`StrassenConfig`] — opt-in stays explicit end to end.
    pub strassen_depth: u8,
}

impl Candidate {
    /// Builds the decomposition this candidate describes for `shape`.
    #[must_use]
    pub fn decompose(&self, shape: GemmShape) -> Decomposition {
        Decomposition::from_strategy(shape, self.tile, self.strategy)
    }

    /// Compact stable encoding used by the cache file format.
    #[must_use]
    pub fn encode(&self) -> String {
        let strategy = match self.strategy {
            Strategy::DataParallel => "dp".to_string(),
            Strategy::FixedSplit { split } => format!("fs.{split}"),
            Strategy::StreamK { grid } => format!("sk.{grid}"),
            Strategy::DpOneTileStreamK { sms } => format!("dp1.{sms}"),
            Strategy::TwoTileStreamKDp { sms } => format!("sk2.{sms}"),
        };
        // The Strassen token is appended only when present so
        // classical encodings — and every cache image written before
        // the hybrid existed — stay byte-identical.
        if self.strassen_depth > 0 {
            format!("{strategy} {} {} sw.{}", self.tile, self.kernel.name(), self.strassen_depth)
        } else {
            format!("{strategy} {} {}", self.tile, self.kernel.name())
        }
    }

    /// Parses an [`encode`](Self::encode)d candidate.
    #[must_use]
    pub fn decode(s: &str) -> Option<Self> {
        let mut parts = s.split(' ');
        let strat = parts.next()?;
        let tile: TileShape = parts.next()?.parse().ok()?;
        let kernel = KernelKind::parse(parts.next()?)?;
        let strassen_depth = match parts.next() {
            None => 0,
            Some(token) => {
                let depth: u8 = token.strip_prefix("sw.")?.parse().ok()?;
                if depth == 0 {
                    return None;
                }
                depth
            }
        };
        if parts.next().is_some() {
            return None;
        }
        let strategy = match strat.split_once('.') {
            None if strat == "dp" => Strategy::DataParallel,
            Some(("fs", v)) => Strategy::FixedSplit { split: v.parse().ok()? },
            Some(("sk", v)) => Strategy::StreamK { grid: v.parse().ok()? },
            Some(("dp1", v)) => Strategy::DpOneTileStreamK { sms: v.parse().ok()? },
            Some(("sk2", v)) => Strategy::TwoTileStreamKDp { sms: v.parse().ok()? },
            _ => return None,
        };
        Some(Self { strategy, tile, kernel, strassen_depth })
    }
}

impl std::fmt::Display for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ {} [{}]", self.strategy, self.tile, self.kernel.name())?;
        if self.strassen_depth > 0 {
            write!(f, " sw.{}", self.strassen_depth)?;
        }
        Ok(())
    }
}

/// `true` when the candidate's fixup structure can run on `workers`
/// co-resident CTAs — the executor's admission constraint.
#[must_use]
pub fn feasible(candidate: &Candidate, shape: GemmShape, workers: usize) -> bool {
    let d = candidate.decompose(shape);
    if d.validate().is_err() {
        return false;
    }
    d.fixups().iter().map(streamk_core::TileFixup::covering_ctas).max().unwrap_or(1) <= workers
}

/// The microkernel palette the selector explores. Kept deliberately
/// small — the SIMD default, the best packed block (the corpus shows
/// `packed4x8` and `simd8x32` trading the lead shape-by-shape), and
/// the wide-n SIMD variant for skinny-m shapes.
#[must_use]
pub fn kernel_palette() -> Vec<KernelKind> {
    let mut palette = vec![KernelKind::default(), KernelKind::Packed4x8, KernelKind::Simd8x16];
    palette.dedup();
    palette
}

/// A crude CPU makespan proxy for ranking only: list-scheduling lower
/// bound over the workers, derated by tile and kernel efficiency,
/// plus a per-seam consolidation term. Measurement corrects any
/// ranking error inside the top K; this only has to keep obviously
/// bad candidates out of the slate.
fn proxy_cost(candidate: &Candidate, shape: GemmShape, workers: usize, precision: Precision) -> f64 {
    let d = candidate.decompose(shape);
    let per_iter =
        (candidate.tile.blk_m * candidate.tile.blk_n * candidate.tile.blk_k) as f64;
    let total = d.space().total_iters() as f64 * per_iter;
    let critical = d.max_iters_per_cta() as f64 * per_iter;
    // Wave quantization for one-tile-per-CTA grids: a worker runs
    // ceil(ctas/workers) CTAs back to back.
    let ctas = d.ctas().iter().filter(|c| !c.is_empty()).count();
    let waves = ctas.div_ceil(workers) as f64;
    let lower = (total / workers as f64).max(critical).max(waves * d.min_iters_per_cta().max(1) as f64 * per_iter);
    let eff = estimated_efficiency(candidate.tile, precision) * kernel_derate(candidate.kernel);
    let seam_cost = (candidate.tile.blk_m * candidate.tile.blk_n) as f64 * 2.0;
    lower / eff + d.split_tiles() as f64 * seam_cost
}

/// Relative throughput weight of each microkernel, for ranking only.
fn kernel_derate(kernel: KernelKind) -> f64 {
    match kernel {
        KernelKind::Simd8x32 => 1.0,
        KernelKind::Simd8x16 | KernelKind::Simd4x16 => 0.95,
        KernelKind::Packed4x8 | KernelKind::Packed8x8 => 0.85,
        KernelKind::Packed8x4 | KernelKind::Packed4x4 => 0.75,
        KernelKind::Blocked => 0.45,
        KernelKind::Scalar => 0.35,
    }
}

/// Builds the candidate slate for `shape`: the heuristic App. A.1
/// pick first, then the proxy-ranked top of the strategy × tile ×
/// kernel cross product, feasibility-filtered, at most `top_k`
/// entries (the heuristic seed does not count against `top_k` when it
/// would have been cut).
///
/// # Panics
///
/// Panics if `workers == 0` or `top_k == 0`.
#[must_use]
pub fn candidates_for(
    shape: GemmShape,
    precision: Precision,
    workers: usize,
    top_k: usize,
) -> Vec<Candidate> {
    candidates_for_with(shape, precision, workers, top_k, None)
}

/// [`candidates_for`] plus the opt-in Strassen–Winograd hybrid: when
/// `strassen` is enabled and the shape class is large enough to
/// recurse (its [`StrassenConfig::effective_depth`] is non-zero),
/// one hybrid candidate — the slate seed's tile and kernel at that
/// depth — is appended after the classical slate. It rides outside
/// `top_k` like the heuristic seed does, so enabling the hybrid
/// never evicts a classical candidate; the epsilon-greedy loop then
/// measures whether sub-cubic actually wins on this machine.
///
/// # Panics
///
/// Panics if `workers == 0` or `top_k == 0`.
#[must_use]
pub fn candidates_for_with(
    shape: GemmShape,
    precision: Precision,
    workers: usize,
    top_k: usize,
    strassen: Option<&StrassenConfig>,
) -> Vec<Candidate> {
    assert!(workers > 0, "workers must be at least 1");
    assert!(top_k > 0, "top_k must be at least 1");

    let heuristic =
        HeuristicSelector::new(streamk_ensemble::TileEnsemble::for_precision(precision), workers);
    let (config, strategy) = heuristic.select(shape);
    let seed =
        Candidate { strategy, tile: config.tile, kernel: KernelKind::default(), strassen_depth: 0 };

    let mut strategies = vec![
        Strategy::DataParallel,
        Strategy::StreamK { grid: workers },
        Strategy::TwoTileStreamKDp { sms: workers },
        Strategy::DpOneTileStreamK { sms: workers },
    ];
    if workers >= 2 {
        strategies.push(Strategy::FixedSplit { split: 2 });
    }

    let mut scored: Vec<(f64, Candidate)> = Vec::new();
    for tile in candidate_tiles(precision) {
        for &strategy in &strategies {
            for &kernel in &kernel_palette() {
                let candidate = Candidate { strategy, tile, kernel, strassen_depth: 0 };
                if candidate == seed || !feasible(&candidate, shape, workers) {
                    continue;
                }
                scored.push((proxy_cost(&candidate, shape, workers, precision), candidate));
            }
        }
    }
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut slate = vec![seed];
    for (_, candidate) in scored {
        if slate.len() >= top_k {
            break;
        }
        slate.push(candidate);
    }

    if let Some(cfg) = strassen {
        let depth = cfg.effective_depth(shape);
        if depth > 0 {
            // The hybrid reuses the seed's tile and kernel for its
            // leaf launches; its own residency guard degrades the
            // grouped burst to data-parallel when Stream-K would
            // oversubscribe the workers, so the candidate is always
            // runnable.
            let depth = u8::try_from(depth).unwrap_or(u8::MAX);
            slate.push(Candidate { strassen_depth: depth, ..seed });
        }
    }
    slate
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_types::Layout;

    #[test]
    fn encode_decode_round_trips_every_strategy() {
        for strategy in [
            Strategy::DataParallel,
            Strategy::FixedSplit { split: 4 },
            Strategy::StreamK { grid: 7 },
            Strategy::DpOneTileStreamK { sms: 3 },
            Strategy::TwoTileStreamKDp { sms: 8 },
        ] {
            for kernel in KernelKind::ALL {
                for strassen_depth in [0u8, 1, 2] {
                    let c = Candidate {
                        strategy,
                        tile: TileShape::new(32, 64, 8),
                        kernel,
                        strassen_depth,
                    };
                    assert_eq!(Candidate::decode(&c.encode()), Some(c), "{c}");
                }
            }
        }
        assert_eq!(Candidate::decode("nope 32x32x8 scalar"), None);
        assert_eq!(Candidate::decode("dp 32x32x8"), None);
        assert_eq!(Candidate::decode("dp 32x32x8 scalar extra"), None);
        // The Strassen token must be well-formed and non-zero.
        assert_eq!(Candidate::decode("dp 32x32x8 scalar sw.0"), None);
        assert_eq!(Candidate::decode("dp 32x32x8 scalar sw.x"), None);
        assert_eq!(Candidate::decode("dp 32x32x8 scalar sw.1 extra"), None);
    }

    #[test]
    fn classical_encoding_has_no_strassen_token() {
        // Pre-hybrid cache images must keep round-tripping.
        let c = Candidate {
            strategy: Strategy::DataParallel,
            tile: TileShape::new(64, 64, 16),
            kernel: KernelKind::Simd8x32,
            strassen_depth: 0,
        };
        assert_eq!(c.encode(), "dp 64x64x16 simd8x32");
    }

    #[test]
    fn strassen_candidate_joins_large_slates_only_when_opted_in() {
        use streamk_cpu::StrassenConfig;
        let big = GemmShape::new(2048, 2048, 2048);
        let small = GemmShape::new(256, 256, 256);
        let cfg = StrassenConfig::enabled();

        let plain = candidates_for(big, Precision::Fp64, 4, 8);
        assert!(plain.iter().all(|c| c.strassen_depth == 0));

        let hybrid = candidates_for_with(big, Precision::Fp64, 4, 8, Some(&cfg));
        assert_eq!(hybrid.len(), plain.len() + 1, "hybrid must not evict classicals");
        assert_eq!(hybrid[..plain.len()], plain[..]);
        let last = hybrid.last().unwrap();
        assert_eq!(last.strassen_depth, 1);
        assert_eq!(last.tile, hybrid[0].tile);

        // Below the cutoff the slate stays purely classical.
        let below = candidates_for_with(small, Precision::Fp64, 4, 8, Some(&cfg));
        assert!(below.iter().all(|c| c.strassen_depth == 0));
    }

    #[test]
    fn slate_is_seeded_with_the_heuristic_pick() {
        let shape = GemmShape::new(512, 512, 512);
        let workers = 4;
        let slate = candidates_for(shape, Precision::Fp64, workers, 8);
        let heuristic = HeuristicSelector::new(
            streamk_ensemble::TileEnsemble::for_precision(Precision::Fp64),
            workers,
        );
        let (config, strategy) = heuristic.select(shape);
        assert_eq!(slate[0].tile, config.tile);
        assert_eq!(slate[0].strategy, strategy);
        assert_eq!(slate[0].kernel, KernelKind::default());
    }

    #[test]
    fn slate_respects_top_k_and_feasibility() {
        let shape = GemmShape::new(256, 256, 256);
        for workers in [1, 2, 4] {
            let slate = candidates_for(shape, Precision::Fp64, workers, 6);
            assert!(slate.len() <= 6, "workers={workers}: {}", slate.len());
            assert!(slate.len() >= 2, "workers={workers}: slate too small");
            for c in &slate {
                assert!(feasible(c, shape, workers), "workers={workers}: infeasible {c}");
            }
        }
    }

    #[test]
    fn slate_is_duplicate_free_and_deterministic() {
        let shape = GemmShape::new(384, 128, 768);
        let a = candidates_for(shape, Precision::Fp64, 4, 8);
        let b = candidates_for(shape, Precision::Fp64, 4, 8);
        assert_eq!(a, b);
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                assert_ne!(a[i], a[j], "duplicate at {i}/{j}");
            }
        }
    }

    #[test]
    fn single_worker_slate_never_needs_coresidency() {
        // With one worker every fixed-split / multi-CTA seam would
        // deadlock the executor; feasibility must exclude them all.
        let shape = GemmShape::new(96, 96, 4096);
        let slate = candidates_for(shape, Precision::Fp64, 1, 8);
        for c in &slate {
            let d = c.decompose(shape);
            let max_cover = d
                .fixups()
                .iter()
                .map(streamk_core::TileFixup::covering_ctas)
                .max()
                .unwrap_or(1);
            assert_eq!(max_cover, 1, "{c}");
        }
    }

    #[test]
    fn decompose_matches_class_keying() {
        // The slate is shape-specific but must stay identical across
        // shapes in the same class when built from the representative.
        let shape = GemmShape::new(512, 512, 512);
        let class =
            crate::class::ShapeClass::of(shape, Precision::Fp64, Layout::RowMajor, 4);
        let from_repr = candidates_for(class.representative(), Precision::Fp64, 4, 8);
        assert!(!from_repr.is_empty());
    }
}
