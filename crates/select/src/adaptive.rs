//! The selection loop threaded through the CPU execution surfaces.
//!
//! [`SelectingExecutor`] wraps a [`CpuExecutor`] and closes the
//! measure → feed back → converge loop on every entry point:
//!
//! - single launches ([`gemm_adaptive`](SelectingExecutor::gemm_adaptive));
//! - uniform batches ([`gemm_batched_adaptive`](SelectingExecutor::gemm_batched_adaptive));
//! - ragged groups ([`gemm_grouped_adaptive`](SelectingExecutor::gemm_grouped_adaptive));
//! - the concurrent service, via per-request selection
//!   ([`request_for`](SelectingExecutor::request_for) /
//!   [`feedback_request`](SelectingExecutor::feedback_request)) keyed
//!   by each request's own shape class.
//!
//! Kernel switching is free: `CpuExecutor::clone().with_kernel(..)`
//! shares the persistent worker pool, so per-launch kernel choice
//! never respawns threads.

use crate::selector::{AdaptiveSelector, Selection, SelectorConfig};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;
use streamk_core::{
    BatchedDecomposition, BatchedSpace, GroupedDecomposition, GroupedSpace, Strategy,
};
use streamk_cpu::{CpuExecutor, LaunchRequest, RequestStats, StrassenConfig};
use streamk_matrix::{Matrix, Promote, Scalar};
use streamk_types::GemmShape;

/// A [`CpuExecutor`] with the adaptive selection loop attached.
#[derive(Debug)]
pub struct SelectingExecutor {
    executor: CpuExecutor,
    selector: Mutex<AdaptiveSelector>,
}

impl SelectingExecutor {
    /// Wraps `executor`. The selector's worker count is forced to the
    /// executor's thread count — selections must be keyed to the
    /// machine they run on.
    #[must_use]
    pub fn new(executor: CpuExecutor, config: SelectorConfig) -> Self {
        let config = SelectorConfig { workers: executor.threads(), ..config };
        Self { executor, selector: Mutex::new(AdaptiveSelector::new(config)) }
    }

    /// The wrapped executor.
    #[must_use]
    pub fn executor(&self) -> &CpuExecutor {
        &self.executor
    }

    /// Runs `f` against the selector (persist, distill, inspection).
    pub fn with_selector<R>(&self, f: impl FnOnce(&mut AdaptiveSelector) -> R) -> R {
        f(&mut self.selector.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Adaptive `C = A · B`: select a schedule for the launch's shape
    /// class, execute it, and feed the measured time and `ExecStats`
    /// back. Returns the product and the selection that produced it.
    ///
    /// When the selector was built with
    /// [`SelectorConfig::with_strassen`] and picks a hybrid
    /// candidate (`strassen_depth > 0`), the launch routes through
    /// [`CpuExecutor::gemm_strassen`] at that depth; the measured
    /// time competes in the same epsilon-greedy table as the
    /// classical candidates, so the crossover is learned online
    /// per shape class.
    pub fn gemm_adaptive<In, Acc>(&self, a: &Matrix<In>, b: &Matrix<In>) -> (Matrix<Acc>, Selection)
    where
        In: Promote<Acc> + Scalar,
        Acc: Scalar,
    {
        let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
        let selection = self
            .with_selector(|s| s.select(shape, a.layout()));
        let exec = self.executor.clone().with_kernel(selection.candidate.kernel);
        let depth = selection.candidate.strassen_depth;
        if depth > 0 {
            let base = self
                .with_selector(|s| s.config().strassen)
                .unwrap_or_else(StrassenConfig::enabled);
            let config = StrassenConfig { enabled: true, max_depth: depth as usize, ..base };
            let start = Instant::now();
            let (c, _report) =
                exec.gemm_strassen(a, b, selection.candidate.tile, &config);
            let secs = start.elapsed().as_secs_f64();
            let stats = exec.last_stats();
            self.with_selector(|s| s.feedback(&selection, secs, &stats));
            return (c, selection);
        }
        let decomp = selection.candidate.decompose(shape);
        let start = Instant::now();
        let c = exec.gemm(a, b, &decomp);
        let secs = start.elapsed().as_secs_f64();
        let stats = exec.last_stats();
        self.with_selector(|s| s.feedback(&selection, secs, &stats));
        (c, selection)
    }

    /// Adaptive uniform batch. Selection is keyed by the *instance*
    /// shape; the chosen strategy maps onto the batched decomposition
    /// forms (`DataParallel` stays data-parallel, everything else
    /// becomes batched Stream-K over the workers), and tile + kernel
    /// carry over as-is.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or mismatched instance shapes.
    pub fn gemm_batched_adaptive<In, Acc>(
        &self,
        a: &[Matrix<In>],
        b: &[Matrix<In>],
    ) -> (Vec<Matrix<Acc>>, Selection)
    where
        In: Promote<Acc>,
        Acc: Scalar,
    {
        assert!(!a.is_empty() && a.len() == b.len(), "batch must be non-empty and aligned");
        let shape = GemmShape::new(a[0].rows(), b[0].cols(), a[0].cols());
        let selection = self.with_selector(|s| s.select(shape, a[0].layout()));
        let space = BatchedSpace::new(a.len(), shape, selection.candidate.tile);
        let workers = self.executor.threads();
        let decomp = match selection.candidate.strategy {
            Strategy::DataParallel => BatchedDecomposition::data_parallel(space),
            Strategy::StreamK { grid } => BatchedDecomposition::stream_k(space, grid.max(1)),
            _ => BatchedDecomposition::stream_k(space, workers),
        };
        let decomp = residency_guard_batched(decomp, shape, a.len(), selection.candidate.tile, workers);
        let exec = self.executor.clone().with_kernel(selection.candidate.kernel);
        let start = Instant::now();
        let c = exec.gemm_batched(a, b, &decomp);
        let secs = start.elapsed().as_secs_f64();
        let stats = exec.last_stats();
        self.with_selector(|s| s.feedback(&selection, secs, &stats));
        (c, selection)
    }

    /// Adaptive ragged group. Selection is keyed by the group's
    /// *dominant* member (most MAC iterations — it decides the
    /// makespan); strategy mapping is as in the batched path.
    ///
    /// # Panics
    ///
    /// Panics on an empty group or mismatched operand lists.
    pub fn gemm_grouped_adaptive<In, Acc>(
        &self,
        a: &[Matrix<In>],
        b: &[Matrix<In>],
    ) -> (Vec<Matrix<Acc>>, Selection)
    where
        In: Promote<Acc>,
        Acc: Scalar,
    {
        assert!(!a.is_empty() && a.len() == b.len(), "group must be non-empty and aligned");
        let shapes: Vec<GemmShape> = a
            .iter()
            .zip(b)
            .map(|(ai, bi)| GemmShape::new(ai.rows(), bi.cols(), ai.cols()))
            .collect();
        let dominant = *shapes
            .iter()
            .max_by_key(|s| s.m * s.n * s.k)
            .expect("non-empty group");
        let selection = self.with_selector(|s| s.select(dominant, a[0].layout()));
        let space = GroupedSpace::new(&shapes, selection.candidate.tile);
        let workers = self.executor.threads();
        let decomp = match selection.candidate.strategy {
            Strategy::DataParallel => GroupedDecomposition::data_parallel(space),
            Strategy::StreamK { grid } => GroupedDecomposition::stream_k(space, grid.max(1)),
            _ => GroupedDecomposition::stream_k(space, workers),
        };
        let decomp = {
            let max_cover = decomp
                .fixups()
                .iter()
                .map(streamk_core::TileFixup::covering_ctas)
                .max()
                .unwrap_or(1);
            if max_cover > workers {
                GroupedDecomposition::data_parallel(GroupedSpace::new(
                    &shapes,
                    selection.candidate.tile,
                ))
            } else {
                decomp
            }
        };
        let exec = self.executor.clone().with_kernel(selection.candidate.kernel);
        let start = Instant::now();
        let c = exec.gemm_grouped(a, b, &decomp);
        let secs = start.elapsed().as_secs_f64();
        let stats = exec.last_stats();
        self.with_selector(|s| s.feedback(&selection, secs, &stats));
        (c, selection)
    }

    /// Builds a service request with per-request selection: the
    /// request carries the decomposition *and* the kernel the
    /// selector chose for its shape class. Pair with
    /// [`feedback_request`](Self::feedback_request) once the
    /// completion handle resolves. Hybrid candidates degrade to
    /// their classical base schedule here — a single service request
    /// carries one decomposition, not a recursion; use
    /// [`streamk_cpu::GemmService::gemm_strassen`] to put a hybrid
    /// burst through the service.
    pub fn request_for<In>(&self, a: Matrix<In>, b: Matrix<In>) -> (LaunchRequest<In>, Selection) {
        let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
        let selection = self.with_selector(|s| s.select(shape, a.layout()));
        let decomp = selection.candidate.decompose(shape);
        let request = LaunchRequest::new(a, b, decomp).with_kernel(selection.candidate.kernel);
        (request, selection)
    }

    /// Feeds a completed request's measured stats back into the
    /// selector (uses service time, not queue latency).
    pub fn feedback_request(&self, selection: &Selection, stats: &RequestStats) {
        self.with_selector(|s| s.feedback_request(selection, stats));
    }
}

/// Falls back to batched data-parallel when the mapped Stream-K grid
/// would need more co-resident CTAs than the pool has workers.
fn residency_guard_batched(
    decomp: BatchedDecomposition,
    shape: GemmShape,
    batch: usize,
    tile: streamk_types::TileShape,
    workers: usize,
) -> BatchedDecomposition {
    let max_cover = decomp
        .fixups()
        .iter()
        .map(streamk_core::TileFixup::covering_ctas)
        .max()
        .unwrap_or(1);
    if max_cover > workers {
        BatchedDecomposition::data_parallel(BatchedSpace::new(batch, shape, tile))
    } else {
        decomp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::SelectionSource;
    use streamk_core::Decomposition;
    use streamk_types::{Layout, Precision};

    fn adaptive(threads: usize) -> SelectingExecutor {
        SelectingExecutor::new(
            CpuExecutor::with_threads(threads),
            SelectorConfig::new(Precision::Fp64, threads).with_top_k(4),
        )
    }

    fn operands(shape: GemmShape) -> (Matrix<f64>, Matrix<f64>) {
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 11);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 12);
        (a, b)
    }

    #[test]
    fn adaptive_gemm_is_correct_and_feeds_back() {
        let e = adaptive(2);
        let shape = GemmShape::new(96, 64, 48);
        let (a, b) = operands(shape);
        // Reference through the same decomposition the selection
        // will pick is not knowable up front; use the scalar
        // kernel on a fixed decomposition and compare numerically.
        let reference: Matrix<f64> = e
            .executor()
            .gemm(&a, &b, &Decomposition::data_parallel(shape, streamk_types::TileShape::new(32, 32, 16)));
        let mut sources = Vec::new();
        for _ in 0..5 {
            let (c, sel): (Matrix<f64>, _) = e.gemm_adaptive(&a, &b);
            c.assert_close(&reference, 1e-10);
            sources.push(sel.source);
        }
        assert_eq!(sources[0], SelectionSource::ColdHeuristic);
        assert_eq!(e.with_selector(|s| s.total_trials()), 5);
    }

    #[test]
    fn adaptive_batched_and_grouped_are_correct() {
        let e = adaptive(2);
        let shape = GemmShape::new(64, 48, 32);
        let (a1, b1) = operands(shape);
        let (a2, b2) = operands(shape);
        let single: Matrix<f64> = e
            .executor()
            .gemm(&a1, &b1, &Decomposition::data_parallel(shape, streamk_types::TileShape::new(16, 16, 8)));

        let (cs, _) = e.gemm_batched_adaptive::<f64, f64>(
            &[a1.clone(), a2.clone()],
            &[b1.clone(), b2.clone()],
        );
        assert_eq!(cs.len(), 2);
        cs[0].assert_close(&single, 1e-10);

        let big = GemmShape::new(96, 96, 64);
        let (a3, b3) = operands(big);
        let (gs, sel) = e.gemm_grouped_adaptive::<f64, f64>(
            &[a1.clone(), a3],
            &[b1.clone(), b3],
        );
        assert_eq!(gs.len(), 2);
        gs[0].assert_close(&single, 1e-10);
        // Dominant-member keying: the class is the big shape's.
        assert_eq!(sel.class, e.with_selector(|s| s.class_of(big, Layout::RowMajor)));
    }

    #[test]
    fn strassen_candidate_is_routed_and_measured_when_opted_in() {
        use streamk_cpu::StrassenConfig;
        let threads = 2;
        let e = SelectingExecutor::new(
            CpuExecutor::with_threads(threads),
            SelectorConfig::new(Precision::Fp64, threads)
                .with_top_k(3)
                .with_strassen(StrassenConfig::enabled().with_cutoff(32).with_max_depth(1)),
        );
        let shape = GemmShape::new(96, 96, 96);
        let (a, b) = operands(shape);
        let reference: Matrix<f64> = e.executor().gemm(
            &a,
            &b,
            &Decomposition::data_parallel(shape, streamk_types::TileShape::new(32, 32, 16)),
        );

        let (_, slate) = e.with_selector(|s| s.slate(shape, Layout::RowMajor));
        assert_eq!(slate.last().map(|c| c.strassen_depth), Some(1), "hybrid joins the slate");

        // Warm the whole slate: the hybrid candidate gets routed
        // through gemm_strassen and measured like any other.
        let mut saw_hybrid = false;
        for _ in 0..slate.len() + 1 {
            let (c, sel): (Matrix<f64>, _) = e.gemm_adaptive(&a, &b);
            c.assert_close(&reference, 1e-9);
            saw_hybrid |= sel.candidate.strassen_depth > 0;
        }
        assert!(saw_hybrid, "warming must explore the hybrid candidate");
        assert_eq!(e.with_selector(|s| s.total_trials()), slate.len() as u64 + 1);
    }

    #[test]
    fn service_requests_carry_per_request_selection() {
        use streamk_cpu::{GemmService, ServeConfig};
        let e = adaptive(2);
        let shape = GemmShape::new(64, 48, 32);
        let (a, b) = operands(shape);
        let reference: Matrix<f64> = e
            .executor()
            .gemm(&a, &b, &Decomposition::data_parallel(shape, streamk_types::TileShape::new(16, 16, 8)));

        let service = GemmService::<f64, f64>::start(e.executor(), ServeConfig::default());
        for _ in 0..3 {
            let (request, selection) = e.request_for(a.clone(), b.clone());
            let handle = service.submit(request).expect("admitted");
            let (c, stats) = handle.wait().expect("completes");
            c.assert_close(&reference, 1e-10);
            e.feedback_request(&selection, &stats);
        }
        service.shutdown();
        assert_eq!(e.with_selector(|s| s.total_trials()), 3);
    }
}
