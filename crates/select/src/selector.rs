//! The online adaptive selector.
//!
//! The decision ladder, per launch:
//!
//! 1. **Cold class** (never seen): return the App. A.1 heuristic pick
//!    — the paper's static decision is the floor the selector can
//!    never regress below on first contact. If a distilled tree is
//!    loaded, it overrides the heuristic for cold classes (that is
//!    the zero-lookup steady state).
//! 2. **Warming class** (slate not fully measured): explore the first
//!    untried candidate — after `top_k` launches every candidate has
//!    one real measurement.
//! 3. **Warm class**: epsilon-greedy — with probability `epsilon`
//!    re-explore a uniform candidate (guards against measurement
//!    noise freezing a wrong winner), otherwise exploit the measured
//!    winner (near-ties broken by fixup wait stall from `ExecStats`).

use crate::cache::{ClassEntry, SelectionCache};
use crate::candidates::{candidates_for_with, Candidate};
use crate::class::ShapeClass;
use std::path::PathBuf;
use std::sync::Arc;
use streamk_cpu::{ExecStats, RequestStats, SelectOutcome, StrassenConfig, TelemetryRegistry};
use streamk_ensemble::{HeuristicSelector, TileEnsemble};
use streamk_tune::DecisionTree;
use streamk_types::{GemmShape, Layout, Precision};

/// Selector tuning knobs.
#[derive(Debug, Clone)]
pub struct SelectorConfig {
    /// Compute precision of the launches this selector serves.
    pub precision: Precision,
    /// Worker count of the executor the selections run on.
    pub workers: usize,
    /// Slate size per class (top-K of the tune space).
    pub top_k: usize,
    /// Re-exploration probability once a slate is fully measured.
    pub epsilon: f64,
    /// Seed of the deterministic epsilon stream.
    pub seed: u64,
    /// Cache file; `None` keeps the table in memory only.
    pub cache_path: Option<PathBuf>,
    /// Opt-in Strassen–Winograd hybrid: when set (and enabled),
    /// shape classes large enough to recurse gain one hybrid
    /// candidate and [`SelectingExecutor`](crate::SelectingExecutor)
    /// routes it through `gemm_strassen`. `None` keeps every slate
    /// purely classical.
    pub strassen: Option<StrassenConfig>,
}

impl SelectorConfig {
    /// Defaults: `top_k = 8`, `epsilon = 0.1`, fixed seed, no
    /// persistence.
    #[must_use]
    pub fn new(precision: Precision, workers: usize) -> Self {
        Self {
            precision,
            workers,
            top_k: 8,
            epsilon: 0.1,
            seed: 0x5eed_cafe,
            cache_path: None,
            strassen: None,
        }
    }

    /// Sets the slate size.
    #[must_use]
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k;
        self
    }

    /// Sets the re-exploration probability.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the epsilon-stream seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables persistence at `path`.
    #[must_use]
    pub fn with_cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// Opts the Strassen–Winograd hybrid into the candidate slates.
    #[must_use]
    pub fn with_strassen(mut self, strassen: StrassenConfig) -> Self {
        self.strassen = Some(strassen);
        self
    }
}

/// How a selection was made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionSource {
    /// Cold class: the App. A.1 static heuristic decision.
    ColdHeuristic,
    /// Cold class under a distilled tree: zero-lookup prediction.
    Distilled,
    /// Warming or epsilon re-exploration: gathering measurements.
    Explore,
    /// Warm class: the measured winner.
    Exploit,
}

/// One selection: enough context to execute it and to feed the
/// measurement back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selection {
    /// The class the launch was keyed to.
    pub class: ShapeClass,
    /// The chosen schedule.
    pub candidate: Candidate,
    /// Index of `candidate` in the class slate (best effort — the
    /// feedback path re-resolves by equality if the slate shifted).
    pub index: usize,
    /// Decision provenance.
    pub source: SelectionSource,
}

impl SelectionSource {
    /// The telemetry outcome tag this provenance exports as.
    #[must_use]
    pub fn outcome(self) -> SelectOutcome {
        match self {
            Self::ColdHeuristic => SelectOutcome::ColdHeuristic,
            Self::Distilled => SelectOutcome::Distilled,
            Self::Explore => SelectOutcome::Explore,
            Self::Exploit => SelectOutcome::Exploit,
        }
    }
}

/// The distilled model: a decision tree over class features plus the
/// label → candidate mapping it predicts into.
#[derive(Debug, Clone)]
struct DistilledModel {
    tree: DecisionTree,
    labels: Vec<Candidate>,
}

/// The online adaptive selector. See the module docs for the
/// decision ladder.
#[derive(Debug)]
pub struct AdaptiveSelector {
    config: SelectorConfig,
    heuristic: HeuristicSelector,
    cache: SelectionCache,
    /// Whether construction found and accepted a persisted table.
    loaded_from_disk: bool,
    distilled: Option<DistilledModel>,
    telemetry: Option<Arc<TelemetryRegistry>>,
    rng: u64,
}

impl AdaptiveSelector {
    /// Builds a selector, loading the persisted table when
    /// `config.cache_path` is set and the file is intact (any
    /// anomaly → silent cold start).
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0` or `config.top_k == 0`.
    #[must_use]
    pub fn new(config: SelectorConfig) -> Self {
        assert!(config.workers > 0, "workers must be at least 1");
        assert!(config.top_k > 0, "top_k must be at least 1");
        let heuristic = HeuristicSelector::new(
            TileEnsemble::for_precision(config.precision),
            config.workers,
        );
        let cache = config
            .cache_path
            .as_deref()
            .and_then(SelectionCache::load);
        let loaded_from_disk = cache.is_some();
        let rng = config.seed | 1;
        Self {
            heuristic,
            cache: cache.unwrap_or_default(),
            loaded_from_disk,
            distilled: None,
            telemetry: None,
            rng,
            config,
        }
    }

    /// Mirrors every measured decision into `registry` — the class,
    /// the chosen candidate, its explore/exploit provenance, and the
    /// measured regret against the class's best-known mean. Pass a
    /// [`GemmService`](streamk_cpu::GemmService)'s registry to fold
    /// selection quality into the same Prometheus scrape as the
    /// service counters.
    #[must_use]
    pub fn with_telemetry(mut self, registry: Arc<TelemetryRegistry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// As [`with_telemetry`](Self::with_telemetry), for an already-
    /// built selector.
    pub fn attach_telemetry(&mut self, registry: Arc<TelemetryRegistry>) {
        self.telemetry = Some(registry);
    }

    /// The configuration this selector was built with.
    #[must_use]
    pub fn config(&self) -> &SelectorConfig {
        &self.config
    }

    /// `true` when construction recovered a persisted table.
    #[must_use]
    pub fn loaded_from_disk(&self) -> bool {
        self.loaded_from_disk
    }

    /// The classes currently tracked.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.cache.entries.len()
    }

    /// Total measured launches folded into the table.
    #[must_use]
    pub fn total_trials(&self) -> u64 {
        self.cache.total_trials()
    }

    /// The class a launch of `shape` on `layout` operands keys to.
    #[must_use]
    pub fn class_of(&self, shape: GemmShape, layout: Layout) -> ShapeClass {
        ShapeClass::of(shape, self.config.precision, layout, self.config.workers)
    }

    /// The slate for `shape`, creating the class entry if absent.
    pub fn slate(&mut self, shape: GemmShape, layout: Layout) -> (ShapeClass, Vec<Candidate>) {
        let class = self.class_of(shape, layout);
        let entry = self.entry_mut(class, shape);
        (class, entry.candidates.clone())
    }

    fn entry_mut(&mut self, class: ShapeClass, shape: GemmShape) -> &mut ClassEntry {
        let config = &self.config;
        self.cache.entries.entry(class).or_insert_with(|| {
            ClassEntry::new(candidates_for_with(
                shape,
                config.precision,
                config.workers,
                config.top_k,
                config.strassen.as_ref(),
            ))
        })
    }

    fn next_random(&mut self) -> f64 {
        // xorshift64*: deterministic, seedable, plenty for epsilon.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Selects a schedule for a launch, advancing the exploration
    /// state (see the module docs for the ladder).
    pub fn select(&mut self, shape: GemmShape, layout: Layout) -> Selection {
        self.select_inner(shape, layout, true)
    }

    /// Selects without exploring: cold classes still fall back to the
    /// tree/heuristic, warm classes always return the measured
    /// winner. Use for regret evaluation and steady-state serving.
    pub fn select_frozen(&mut self, shape: GemmShape, layout: Layout) -> Selection {
        self.select_inner(shape, layout, false)
    }

    fn select_inner(&mut self, shape: GemmShape, layout: Layout, explore: bool) -> Selection {
        let class = self.class_of(shape, layout);
        let epsilon_roll = if explore { self.next_random() } else { 1.0 };
        self.entry_mut(class, shape);
        let pick = |entry: &ClassEntry, index: usize, source: SelectionSource| Selection {
            class,
            candidate: entry.candidates[index],
            index,
            source,
        };

        let cold = self.cache.entries[&class].stats.iter().all(|s| s.trials == 0);
        if cold {
            // Cold: distilled prediction when available, else the
            // static heuristic decision.
            if let Some(model) = &self.distilled {
                let predicted = model.labels[model.tree.predict(&class.features())];
                let entry = &self.cache.entries[&class];
                let index = entry.candidates.iter().position(|c| *c == predicted).unwrap_or(0);
                return pick(entry, index, SelectionSource::Distilled);
            }
            let (config, strategy) = self.heuristic.select(shape);
            let entry = &self.cache.entries[&class];
            let index = entry
                .candidates
                .iter()
                .position(|c| c.strategy == strategy && c.tile == config.tile)
                .unwrap_or(0);
            return pick(entry, index, SelectionSource::ColdHeuristic);
        }

        if explore {
            if let Some(index) = self.cache.entries[&class].first_untried() {
                return pick(&self.cache.entries[&class], index, SelectionSource::Explore);
            }
            if epsilon_roll < self.config.epsilon {
                let roll = self.next_random();
                let entry = &self.cache.entries[&class];
                let index = (roll * entry.candidates.len() as f64) as usize % entry.candidates.len();
                return pick(entry, index, SelectionSource::Explore);
            }
        }

        let entry = &self.cache.entries[&class];
        let index = entry.winner().unwrap_or(0);
        pick(entry, index, SelectionSource::Exploit)
    }

    /// Feeds one measured launch back into the table. `secs` is the
    /// wall time of the launch `selection` scheduled; `stats` is the
    /// executor's per-launch counter snapshot.
    pub fn feedback(&mut self, selection: &Selection, secs: f64, stats: &ExecStats) {
        self.feedback_raw(selection, secs, stats.wait_stall.as_secs_f64());
    }

    /// Serve-path feedback: per-request stats from [`streamk_cpu::GemmService`].
    /// Uses the request's service time (first claim → completion), not
    /// its queue latency — queueing is the service's doing, not the
    /// schedule's.
    pub fn feedback_request(&mut self, selection: &Selection, stats: &RequestStats) {
        self.feedback_raw(selection, stats.service.as_secs_f64(), stats.wait_stall.as_secs_f64());
    }

    /// Feedback with an explicit wait-stall figure (the common core;
    /// also the entry point for replay-style benches that measure
    /// outside the executor).
    pub fn feedback_raw(&mut self, selection: &Selection, secs: f64, wait_s: f64) {
        if !secs.is_finite() || secs < 0.0 {
            return;
        }
        let shape = selection.class.representative();
        let entry = self.entry_mut(selection.class, shape);
        let index = if entry.candidates.get(selection.index) == Some(&selection.candidate) {
            selection.index
        } else if let Some(i) = entry.candidates.iter().position(|c| *c == selection.candidate) {
            i
        } else {
            entry.candidates.push(selection.candidate);
            entry.stats.push(Default::default());
            entry.candidates.len() - 1
        };
        // Regret against the best mean known *before* this sample
        // folds in — a first-contact class has no baseline (regret 0).
        let best_s = entry
            .winner()
            .map(|w| entry.stats[w].mean_s)
            .filter(|m| m.is_finite() && *m > 0.0);
        entry.stats[index].record(secs, wait_s.max(0.0));
        if let Some(t) = &self.telemetry {
            let regret_ns = best_s.map_or(0.0, |b| (secs - b).max(0.0)) * 1e9;
            t.record_selection(
                selection.source.outcome(),
                selection.class.encode(),
                selection.candidate.to_string(),
                regret_ns.round() as u64,
            );
        }
    }

    /// Persists the table to the configured cache path. Returns
    /// `Ok(false)` when no path is configured.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from [`SelectionCache::save`].
    pub fn persist(&self) -> std::io::Result<bool> {
        match &self.config.cache_path {
            None => Ok(false),
            Some(path) => self.cache.save(path).map(|()| true),
        }
    }

    /// Distills the measured table into a decision tree over class
    /// features (via [`streamk_tune::DecisionTree`]). Classes with at
    /// least one measurement contribute their winner as a training
    /// sample. Returns the number of training classes, or `None` when
    /// nothing is measured yet. The tree then serves cold classes in
    /// [`select`](Self::select) — the zero-lookup steady state.
    pub fn distill(&mut self) -> Option<usize> {
        let mut labels: Vec<Candidate> = Vec::new();
        let mut samples: Vec<(Vec<f64>, usize)> = Vec::new();
        for (class, entry) in &self.cache.entries {
            let Some(w) = entry.winner() else { continue };
            let candidate = entry.candidates[w];
            let label = labels.iter().position(|c| *c == candidate).unwrap_or_else(|| {
                labels.push(candidate);
                labels.len() - 1
            });
            samples.push((class.features(), label));
        }
        if samples.is_empty() {
            return None;
        }
        let classes = samples.len();
        let tree = DecisionTree::train(&samples, 16, 1);
        self.distilled = Some(DistilledModel { tree, labels });
        Some(classes)
    }

    /// The distilled tree's prediction for `shape`, bypassing the
    /// ladder and the table entirely — the zero-lookup path a regret
    /// bench scores. `None` until [`distill`](Self::distill) has run.
    #[must_use]
    pub fn predict_distilled(&self, shape: GemmShape, layout: Layout) -> Option<Candidate> {
        let class = self.class_of(shape, layout);
        let model = self.distilled.as_ref()?;
        Some(model.labels[model.tree.predict(&class.features())])
    }

    /// `true` once a distilled tree is active.
    #[must_use]
    pub fn is_distilled(&self) -> bool {
        self.distilled.is_some()
    }

    /// Drops the distilled tree (selection falls back to the ladder).
    pub fn clear_distilled(&mut self) {
        self.distilled = None;
    }

    /// Read access to the underlying table (reporting, tests).
    #[must_use]
    pub fn cache(&self) -> &SelectionCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATS: ExecStats = ExecStats {
        steals: 0,
        deferrals: 0,
        wait_stall: std::time::Duration::ZERO,
        recoveries: 0,
        launches: 1,
    };

    fn selector() -> AdaptiveSelector {
        AdaptiveSelector::new(SelectorConfig::new(Precision::Fp64, 4).with_top_k(4))
    }

    #[test]
    fn cold_class_returns_the_heuristic_pick() {
        let mut s = selector();
        let shape = GemmShape::new(512, 512, 512);
        let sel = s.select(shape, Layout::RowMajor);
        assert_eq!(sel.source, SelectionSource::ColdHeuristic);
        let (config, strategy) = HeuristicSelector::new(TileEnsemble::fp64(), 4).select(shape);
        assert_eq!(sel.candidate.tile, config.tile);
        assert_eq!(sel.candidate.strategy, strategy);
    }

    #[test]
    fn exploration_covers_the_slate_then_exploits_the_winner() {
        let mut s = selector();
        let shape = GemmShape::new(256, 256, 256);
        let (_, slate) = s.slate(shape, Layout::RowMajor);

        // Feed every candidate a distinct synthetic time; candidate 2
        // is the plant.
        for round in 0..slate.len() {
            let sel = s.select(shape, Layout::RowMajor);
            assert!(
                matches!(sel.source, SelectionSource::ColdHeuristic | SelectionSource::Explore),
                "round {round}: {:?}",
                sel.source
            );
            let secs = if sel.candidate == slate[2] { 1e-4 } else { 5e-4 };
            s.feedback(&sel, secs, &STATS);
        }
        // Fully measured: frozen selection must return the plant.
        let sel = s.select_frozen(shape, Layout::RowMajor);
        assert_eq!(sel.source, SelectionSource::Exploit);
        assert_eq!(sel.candidate, slate[2]);
    }

    #[test]
    fn feedback_converges_to_the_measured_winner() {
        let mut s = AdaptiveSelector::new(
            SelectorConfig::new(Precision::Fp64, 4).with_top_k(4).with_epsilon(0.5),
        );
        let shape = GemmShape::new(128, 128, 1024);
        let (_, slate) = s.slate(shape, Layout::RowMajor);
        let planted = slate[1];
        for _ in 0..50 {
            let sel = s.select(shape, Layout::RowMajor);
            let secs = if sel.candidate == planted { 1e-4 } else { 8e-4 };
            s.feedback(&sel, secs, &STATS);
        }
        let sel = s.select_frozen(shape, Layout::RowMajor);
        assert_eq!(sel.candidate, planted, "epsilon-greedy failed to converge");
    }

    #[test]
    fn distilled_tree_predicts_the_converged_winner_for_cold_lookups() {
        let mut s = selector();
        // Converge several classes onto their slate seed (index 0) by
        // measuring it fastest.
        let shapes =
            [GemmShape::new(256, 256, 256), GemmShape::new(64, 64, 2048), GemmShape::new(512, 128, 128)];
        for &shape in &shapes {
            let (_, slate) = s.slate(shape, Layout::RowMajor);
            for (i, &candidate) in slate.iter().enumerate() {
                let sel = Selection {
                    class: s.class_of(shape, Layout::RowMajor),
                    candidate,
                    index: i,
                    source: SelectionSource::Explore,
                };
                s.feedback(&sel, if i == 1 { 1e-4 } else { 9e-4 }, &STATS);
            }
        }
        assert_eq!(s.distill(), Some(shapes.len()));
        assert!(s.is_distilled());

        // A fresh selector sharing the tree state: cold classes now
        // resolve through the tree. Simulate by clearing the table
        // but keeping the model.
        s.cache.entries.clear();
        for &shape in &shapes {
            let sel = s.select(shape, Layout::RowMajor);
            assert_eq!(sel.source, SelectionSource::Distilled, "{shape}");
            let (_, slate) = s.slate(shape, Layout::RowMajor);
            assert_eq!(sel.candidate, slate[1], "{shape}");
        }
    }

    #[test]
    fn feedback_with_shifted_index_reresolves_by_equality() {
        let mut s = selector();
        let shape = GemmShape::new(96, 96, 96);
        let (class, slate) = s.slate(shape, Layout::RowMajor);
        let sel = Selection {
            class,
            candidate: slate[1],
            index: 0, // wrong on purpose
            source: SelectionSource::Explore,
        };
        s.feedback(&sel, 1e-3, &STATS);
        let entry = &s.cache().entries[&class];
        assert_eq!(entry.stats[1].trials, 1);
        assert_eq!(entry.stats[0].trials, 0);
    }

    #[test]
    fn telemetry_mirrors_decisions_and_accumulates_regret() {
        let registry = Arc::new(TelemetryRegistry::new());
        let mut s = AdaptiveSelector::new(SelectorConfig::new(Precision::Fp64, 4).with_top_k(3))
            .with_telemetry(Arc::clone(&registry));
        let shape = GemmShape::new(256, 256, 256);
        let (_, slate) = s.slate(shape, Layout::RowMajor);

        for _ in 0..slate.len() {
            let sel = s.select(shape, Layout::RowMajor);
            let secs = if sel.candidate == slate[0] { 1e-4 } else { 2e-3 };
            s.feedback(&sel, secs, &STATS);
        }
        let sel = s.select_frozen(shape, Layout::RowMajor);
        s.feedback(&sel, 1e-4, &STATS);

        let events = registry.recent_selections();
        assert_eq!(events.len(), slate.len() + 1, "one event per measured launch");
        let exploits = registry.select_decisions(SelectOutcome::Exploit);
        assert!(exploits >= 1, "the frozen pick is an exploit event");
        // The slower candidates measured against the 1e-4 baseline
        // must have booked positive regret.
        assert!(events.iter().any(|e| e.regret_ns > 0), "slow picks accumulate regret");
        assert!(
            events.iter().all(|e| !e.class.is_empty() && !e.candidate.is_empty()),
            "events carry class and candidate labels"
        );
        let text = registry.render();
        assert!(text.contains("streamk_select_decisions_total"));
    }

    #[test]
    fn nonfinite_feedback_is_dropped() {
        let mut s = selector();
        let shape = GemmShape::new(96, 96, 96);
        let sel = s.select(shape, Layout::RowMajor);
        s.feedback_raw(&sel, f64::NAN, 0.0);
        s.feedback_raw(&sel, -1.0, 0.0);
        assert_eq!(s.total_trials(), 0);
    }
}
