//! Conv2d geometry.

use std::fmt;
use streamk_types::GemmShape;

/// The geometry of a 2-D convolution: `N` images of `C × H × W`
/// (stored NHWC), `K` filters of `C × R × S` (stored KRSC), with
/// symmetric zero padding and uniform stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output channels (filter count).
    pub k: usize,
    /// Filter height.
    pub r: usize,
    /// Filter width.
    pub s: usize,
    /// Zero padding on each vertical edge.
    pub pad_h: usize,
    /// Zero padding on each horizontal edge.
    pub pad_w: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
}

impl ConvShape {
    /// A convenience constructor for square filters with "same-ish"
    /// semantics: `pad = r/2`, stride 1.
    ///
    /// # Panics
    ///
    /// Panics on zero extents or if the output would be empty.
    #[must_use]
    pub fn same(n: usize, c: usize, hw: usize, k: usize, rs: usize) -> Self {
        Self::new(n, c, hw, hw, k, rs, rs, rs / 2, rs / 2, 1, 1)
    }

    /// Full constructor.
    ///
    /// # Panics
    ///
    /// Panics on zero extents, zero strides, or an empty output.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        k: usize,
        r: usize,
        s: usize,
        pad_h: usize,
        pad_w: usize,
        stride_h: usize,
        stride_w: usize,
    ) -> Self {
        assert!(n > 0 && c > 0 && h > 0 && w > 0 && k > 0 && r > 0 && s > 0, "conv extents must be non-zero");
        assert!(stride_h > 0 && stride_w > 0, "strides must be non-zero");
        let shape = Self { n, c, h, w, k, r, s, pad_h, pad_w, stride_h, stride_w };
        assert!(
            h + 2 * pad_h >= r && w + 2 * pad_w >= s,
            "filter larger than padded input: {shape}"
        );
        shape
    }

    /// Output height `P = ⌊(H + 2·pad − R) / stride⌋ + 1`.
    #[must_use]
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad_h - self.r) / self.stride_h + 1
    }

    /// Output width `Q`.
    #[must_use]
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad_w - self.s) / self.stride_w + 1
    }

    /// The implied forward-convolution GEMM (the im2col lowering):
    /// `M = N·P·Q` output positions, `N = K` filters, accumulation
    /// depth `C·R·S`.
    #[must_use]
    pub fn gemm_shape(&self) -> GemmShape {
        GemmShape::new(self.n * self.out_h() * self.out_w(), self.k, self.c * self.r * self.s)
    }

    /// Multiply-accumulate count: `N·P·Q·K·C·R·S`.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.gemm_shape().macs()
    }
}

impl fmt::Display for ConvShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n{}c{}h{}w{} k{}r{}s{} pad{}x{} stride{}x{}",
            self.n, self.c, self.h, self.w, self.k, self.r, self.s, self.pad_h, self.pad_w, self.stride_h, self.stride_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_conv_preserves_spatial_dims() {
        let c = ConvShape::same(2, 64, 56, 128, 3);
        assert_eq!(c.out_h(), 56);
        assert_eq!(c.out_w(), 56);
    }

    #[test]
    fn strided_conv_downsamples() {
        // ResNet stem: 7x7 stride 2 pad 3 on 224 -> 112.
        let c = ConvShape::new(1, 3, 224, 224, 64, 7, 7, 3, 3, 2, 2);
        assert_eq!(c.out_h(), 112);
        assert_eq!(c.out_w(), 112);
    }

    #[test]
    fn gemm_shape_is_npq_by_k_by_crs() {
        let c = ConvShape::same(2, 64, 56, 128, 3);
        let g = c.gemm_shape();
        assert_eq!(g.m, 2 * 56 * 56);
        assert_eq!(g.n, 128);
        assert_eq!(g.k, 64 * 9);
    }

    #[test]
    fn pointwise_conv_gemm() {
        // 1x1 convolution is a plain GEMM over channels.
        let c = ConvShape::new(1, 256, 14, 14, 512, 1, 1, 0, 0, 1, 1);
        let g = c.gemm_shape();
        assert_eq!(g.m, 196);
        assert_eq!(g.k, 256);
        assert_eq!(g.n, 512);
    }

    #[test]
    fn macs_counts_all_positions() {
        let c = ConvShape::new(1, 2, 4, 4, 3, 3, 3, 1, 1, 1, 1);
        assert_eq!(c.macs(), (16 * 3 * 18) as u64);
    }

    #[test]
    #[should_panic(expected = "filter larger")]
    fn oversized_filter_panics() {
        let _ = ConvShape::new(1, 1, 4, 4, 1, 7, 7, 0, 0, 1, 1);
    }
}
