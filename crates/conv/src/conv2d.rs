//! Stream-K-scheduled Conv2d.

use crate::im2col::{filter_matrix, fold_output, patch_matrix};
use crate::shape::ConvShape;
use crate::tensor::Tensor4;
use streamk_core::{CostModel, GridSizeModel};
use streamk_cpu::CpuExecutor;
use streamk_matrix::{Promote, Scalar};
use streamk_types::TileShape;

/// Conv2d execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct Conv2dConfig {
    /// Worker threads for the executor.
    pub threads: usize,
    /// Blocking factor of the lowered GEMM.
    pub tile: TileShape,
    /// Appendix A.1 constants for the launch model (defaults to the
    /// calibrated A100-FP16 ratios, which only steer grid-size
    /// selection here).
    pub cost: CostModel,
}

impl Default for Conv2dConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
            tile: TileShape::new(32, 32, 8),
            cost: CostModel::a100_fp16(),
        }
    }
}

/// Computes the forward convolution by lowering to the implicit GEMM,
/// letting the grid-size model pick a Stream-K launch, and executing
/// on the CPU worker pool. Output is NPQK.
///
/// Convolutions lower to short, deep GEMMs (`M = N·P·Q` can be small
/// while `K_acc = C·R·S` is large), the strong-scaling regime where
/// Stream-K's k-axis parallelism matters (§2, §7).
///
/// ```
/// use streamk_conv::{conv2d, Conv2dConfig, ConvShape, Tensor4};
/// use streamk_types::TileShape;
///
/// let conv = ConvShape::same(1, 4, 8, 8, 3); // 8x8x4 -> 8x8x8, 3x3 filters
/// let input = Tensor4::<f64>::random::<f64>([1, 8, 8, 4], 1);
/// let filter = Tensor4::<f64>::random::<f64>([8, 3, 3, 4], 2);
/// let config = Conv2dConfig { threads: 2, tile: TileShape::new(8, 8, 4), ..Default::default() };
/// let out: Tensor4<f64> = conv2d(&input, &filter, &conv, &config);
/// assert_eq!(out.dims(), [1, 8, 8, 8]);
/// ```
///
/// # Panics
///
/// Panics if the tensors don't match `conv`'s extents.
#[must_use]
pub fn conv2d<In, Acc>(
    input: &Tensor4<In>,
    filter: &Tensor4<In>,
    conv: &ConvShape,
    config: &Conv2dConfig,
) -> Tensor4<Acc>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let a = patch_matrix::<In, Acc>(input, conv);
    let b = filter_matrix::<In, Acc>(filter, conv);
    let model = GridSizeModel::new(config.cost, config.threads);
    let decomp = model.decompose(conv.gemm_shape(), config.tile);
    let exec = CpuExecutor::with_threads(config.threads);
    let out = exec.gemm::<In, Acc>(&a, &b, &decomp);
    fold_output(&out, conv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::conv2d_direct;

    fn config(threads: usize) -> Conv2dConfig {
        Conv2dConfig { threads, tile: TileShape::new(16, 16, 8), ..Conv2dConfig::default() }
    }

    #[test]
    fn matches_direct_reference_3x3() {
        let conv = ConvShape::same(2, 8, 12, 16, 3);
        let input = Tensor4::<f64>::random::<f64>([conv.n, conv.h, conv.w, conv.c], 10);
        let filter = Tensor4::<f64>::random::<f64>([conv.k, conv.r, conv.s, conv.c], 11);
        let got = conv2d::<f64, f64>(&input, &filter, &conv, &config(4));
        let want = conv2d_direct::<f64, f64>(&input, &filter, &conv);
        assert!(got.max_abs_diff(&want) < 1e-11, "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn matches_direct_reference_strided_asymmetric() {
        let conv = ConvShape::new(1, 5, 9, 11, 7, 3, 2, 1, 1, 2, 3);
        let input = Tensor4::<f64>::random::<f64>([conv.n, conv.h, conv.w, conv.c], 12);
        let filter = Tensor4::<f64>::random::<f64>([conv.k, conv.r, conv.s, conv.c], 13);
        let got = conv2d::<f64, f64>(&input, &filter, &conv, &config(6));
        let want = conv2d_direct::<f64, f64>(&input, &filter, &conv);
        assert!(got.max_abs_diff(&want) < 1e-11);
    }

    #[test]
    fn pointwise_conv_matches() {
        let conv = ConvShape::new(2, 32, 7, 7, 24, 1, 1, 0, 0, 1, 1);
        let input = Tensor4::<f64>::random::<f64>([conv.n, conv.h, conv.w, conv.c], 14);
        let filter = Tensor4::<f64>::random::<f64>([conv.k, conv.r, conv.s, conv.c], 15);
        let got = conv2d::<f64, f64>(&input, &filter, &conv, &config(4));
        let want = conv2d_direct::<f64, f64>(&input, &filter, &conv);
        assert!(got.max_abs_diff(&want) < 1e-11);
    }

    #[test]
    fn mixed_precision_conv() {
        use streamk_matrix::f16;
        let conv = ConvShape::same(1, 4, 8, 8, 3);
        let input = Tensor4::<f16>::random::<f32>([conv.n, conv.h, conv.w, conv.c], 16);
        let filter = Tensor4::<f16>::random::<f32>([conv.k, conv.r, conv.s, conv.c], 17);
        let got: Tensor4<f32> = conv2d::<f16, f32>(&input, &filter, &conv, &config(4));
        let want: Tensor4<f32> = conv2d_direct::<f16, f32>(&input, &filter, &conv);
        assert!(got.max_abs_diff(&want) < 1e-4);
    }
}
