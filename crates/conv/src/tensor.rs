//! A minimal 4-D tensor.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use streamk_matrix::{Promote, Scalar};

/// An owned dense rank-4 tensor in `(d0, d1, d2, d3)` order with the
/// last axis contiguous. Activations use it as NHWC, filters as KRSC.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4<T> {
    dims: [usize; 4],
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor4<T> {
    /// A zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn zeros(dims: [usize; 4]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "tensor dimensions must be non-zero: {dims:?}");
        Self { dims, data: vec![T::default(); dims.iter().product()] }
    }

    /// A tensor whose element at `[i, j, k, l]` is `f(i, j, k, l)`.
    #[must_use]
    pub fn from_fn(dims: [usize; 4], mut f: impl FnMut(usize, usize, usize, usize) -> T) -> Self {
        let mut t = Self::zeros(dims);
        for i0 in 0..dims[0] {
            for i1 in 0..dims[1] {
                for i2 in 0..dims[2] {
                    for i3 in 0..dims[3] {
                        t.set([i0, i1, i2, i3], f(i0, i1, i2, i3));
                    }
                }
            }
        }
        t
    }

    /// Uniform random values in `[-1, 1)`, demoted to the element's
    /// storage precision, from a seeded generator.
    #[must_use]
    pub fn random<Acc>(dims: [usize; 4], seed: u64) -> Self
    where
        Acc: Scalar,
        T: Promote<Acc>,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Self::zeros(dims);
        for v in &mut t.data {
            *v = T::demote_from_f64(rng.random_range(-1.0..1.0));
        }
        t
    }

    /// The dimensions.
    #[must_use]
    pub fn dims(&self) -> [usize; 4] {
        self.dims
    }

    #[inline]
    fn offset(&self, idx: [usize; 4]) -> usize {
        for (i, (&x, &d)) in idx.iter().zip(&self.dims).enumerate() {
            assert!(x < d, "index {x} out of bounds for axis {i} of extent {d}");
        }
        ((idx[0] * self.dims[1] + idx[1]) * self.dims[2] + idx[2]) * self.dims[3] + idx[3]
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    #[must_use]
    pub fn get(&self, idx: [usize; 4]) -> T {
        self.data[self.offset(idx)]
    }

    /// Element store.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, idx: [usize; 4], value: T) {
        let o = self.offset(idx);
        self.data[o] = value;
    }

    /// The backing storage.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T: Scalar> Tensor4<T> {
    /// The largest absolute elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.dims, other.dims, "dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_last_axis_contiguous() {
        let t = Tensor4::<f64>::from_fn([2, 3, 4, 5], |a, b, c, d| (a * 1000 + b * 100 + c * 10 + d) as f64);
        assert_eq!(t.get([0, 0, 0, 0]), 0.0);
        assert_eq!(t.get([1, 2, 3, 4]), 1234.0);
        // Last axis stride 1.
        let base = t.as_slice().iter().position(|&v| v == 1230.0).unwrap();
        assert_eq!(t.as_slice()[base + 4], 1234.0);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Tensor4::<f64>::random::<f64>([2, 2, 2, 2], 9);
        let b = Tensor4::<f64>::random::<f64>([2, 2, 2, 2], 9);
        assert_eq!(a, b);
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = Tensor4::<f64>::zeros([1, 2, 3, 4]);
        let mut b = a.clone();
        b.set([0, 1, 2, 3], 0.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        let t = Tensor4::<f64>::zeros([1, 1, 1, 1]);
        let _ = t.get([0, 0, 0, 1]);
    }
}
