//! The 7-loop direct convolution reference.

use crate::shape::ConvShape;
use crate::tensor::Tensor4;
use streamk_matrix::{Promote, Scalar};

/// Computes the forward convolution directly: for every output
/// position `(n, p, q, k)`, accumulate
/// `Σ_{c,r,s} input[n, p·stride+r−pad, q·stride+s−pad, c] · filter[k, r, s, c]`
/// with zero padding outside the input extents.
///
/// Input is NHWC, filters are KRSC, output is NPQK (i.e. NHWC of the
/// output feature map). Accumulation happens at `Acc` precision in
/// ascending `(r, s, c)` order — the same order the im2col lowering
/// flattens patches — so the GEMM path reproduces this reference
/// bit-for-bit on unsplit tiles.
///
/// # Panics
///
/// Panics on tensor/geometry mismatches.
#[must_use]
pub fn conv2d_direct<In, Acc>(input: &Tensor4<In>, filter: &Tensor4<In>, conv: &ConvShape) -> Tensor4<Acc>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    assert_eq!(input.dims(), [conv.n, conv.h, conv.w, conv.c], "input must be NHWC of {conv}");
    assert_eq!(filter.dims(), [conv.k, conv.r, conv.s, conv.c], "filter must be KRSC of {conv}");
    let (p_max, q_max) = (conv.out_h(), conv.out_w());
    let mut out = Tensor4::<Acc>::zeros([conv.n, p_max, q_max, conv.k]);

    for n in 0..conv.n {
        for p in 0..p_max {
            for q in 0..q_max {
                for k in 0..conv.k {
                    let mut acc = Acc::ZERO;
                    for r in 0..conv.r {
                        for s in 0..conv.s {
                            // Signed input coordinates before padding.
                            let ih = (p * conv.stride_h + r) as isize - conv.pad_h as isize;
                            let iw = (q * conv.stride_w + s) as isize - conv.pad_w as isize;
                            if ih < 0 || iw < 0 || ih >= conv.h as isize || iw >= conv.w as isize {
                                continue; // zero padding contributes nothing
                            }
                            for c in 0..conv.c {
                                acc = acc.mac(
                                    input.get([n, ih as usize, iw as usize, c]).promote(),
                                    filter.get([k, r, s, c]).promote(),
                                );
                            }
                        }
                    }
                    out.set([n, p, q, k], acc);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_filter_is_identity() {
        // A single 1x1 filter with weight 1 on one channel copies the
        // input channel through.
        let conv = ConvShape::new(1, 1, 3, 3, 1, 1, 1, 0, 0, 1, 1);
        let input = Tensor4::<f64>::from_fn([1, 3, 3, 1], |_, h, w, _| (h * 3 + w) as f64);
        let filter = Tensor4::<f64>::from_fn([1, 1, 1, 1], |_, _, _, _| 1.0);
        let out = conv2d_direct::<f64, f64>(&input, &filter, &conv);
        for h in 0..3 {
            for w in 0..3 {
                assert_eq!(out.get([0, h, w, 0]), (h * 3 + w) as f64);
            }
        }
    }

    #[test]
    fn box_filter_sums_neighbourhood() {
        // 3x3 all-ones filter with pad 1: interior outputs are the
        // 3x3 sum, corners the 2x2 sum.
        let conv = ConvShape::new(1, 1, 3, 3, 1, 3, 3, 1, 1, 1, 1);
        let input = Tensor4::<f64>::from_fn([1, 3, 3, 1], |_, _, _, _| 1.0);
        let filter = Tensor4::<f64>::from_fn([1, 3, 3, 1], |_, _, _, _| 1.0);
        let out = conv2d_direct::<f64, f64>(&input, &filter, &conv);
        assert_eq!(out.get([0, 1, 1, 0]), 9.0);
        assert_eq!(out.get([0, 0, 0, 0]), 4.0);
        assert_eq!(out.get([0, 0, 1, 0]), 6.0);
    }

    #[test]
    fn stride_skips_positions() {
        let conv = ConvShape::new(1, 1, 4, 4, 1, 1, 1, 0, 0, 2, 2);
        let input = Tensor4::<f64>::from_fn([1, 4, 4, 1], |_, h, w, _| (h * 4 + w) as f64);
        let filter = Tensor4::<f64>::from_fn([1, 1, 1, 1], |_, _, _, _| 1.0);
        let out = conv2d_direct::<f64, f64>(&input, &filter, &conv);
        assert_eq!(out.dims(), [1, 2, 2, 1]);
        assert_eq!(out.get([0, 0, 0, 0]), 0.0);
        assert_eq!(out.get([0, 0, 1, 0]), 2.0);
        assert_eq!(out.get([0, 1, 0, 0]), 8.0);
        assert_eq!(out.get([0, 1, 1, 0]), 10.0);
    }

    #[test]
    fn channels_accumulate() {
        let conv = ConvShape::new(1, 3, 1, 1, 1, 1, 1, 0, 0, 1, 1);
        let input = Tensor4::<f64>::from_fn([1, 1, 1, 3], |_, _, _, c| (c + 1) as f64);
        let filter = Tensor4::<f64>::from_fn([1, 1, 1, 3], |_, _, _, c| (c + 1) as f64);
        let out = conv2d_direct::<f64, f64>(&input, &filter, &conv);
        assert_eq!(out.get([0, 0, 0, 0]), 1.0 + 4.0 + 9.0);
    }
}
