//! The im2col lowering.
//!
//! Materializes the convolution's implicit GEMM operands:
//!
//! - the *patch matrix* `A` of shape `(N·P·Q) × (R·S·C)`, whose row
//!   `n·P·Q + p·Q + q` is the (zero-padded) input patch under filter
//!   position `(p, q)`, flattened in `(r, s, c)` order;
//! - the *filter matrix* `B` of shape `(R·S·C) × K`, column `k` being
//!   filter `k` flattened in the same `(r, s, c)` order.
//!
//! `A · B` is then exactly the convolution output in NPQK order, and
//! any Stream-K decomposition of that GEMM schedules the convolution.

use crate::shape::ConvShape;
use crate::tensor::Tensor4;
use streamk_matrix::{Matrix, Promote, Scalar};
use streamk_types::Layout;

/// Builds the patch matrix `A` (`N·P·Q × R·S·C`, row-major).
///
/// # Panics
///
/// Panics if `input` does not match `conv`'s NHWC extents.
#[must_use]
pub fn patch_matrix<In, Acc>(input: &Tensor4<In>, conv: &ConvShape) -> Matrix<In>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    assert_eq!(input.dims(), [conv.n, conv.h, conv.w, conv.c], "input must be NHWC of {conv}");
    let (p_max, q_max) = (conv.out_h(), conv.out_w());
    let rows = conv.n * p_max * q_max;
    let cols = conv.r * conv.s * conv.c;
    Matrix::from_fn(rows, cols, Layout::RowMajor, |row, col| {
        let n = row / (p_max * q_max);
        let p = (row / q_max) % p_max;
        let q = row % q_max;
        let r = col / (conv.s * conv.c);
        let s = (col / conv.c) % conv.s;
        let c = col % conv.c;
        let ih = (p * conv.stride_h + r) as isize - conv.pad_h as isize;
        let iw = (q * conv.stride_w + s) as isize - conv.pad_w as isize;
        if ih < 0 || iw < 0 || ih >= conv.h as isize || iw >= conv.w as isize {
            In::default() // zero padding
        } else {
            input.get([n, ih as usize, iw as usize, c])
        }
    })
}

/// Builds the filter matrix `B` (`R·S·C × K`, row-major).
///
/// # Panics
///
/// Panics if `filter` does not match `conv`'s KRSC extents.
#[must_use]
pub fn filter_matrix<In, Acc>(filter: &Tensor4<In>, conv: &ConvShape) -> Matrix<In>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    assert_eq!(filter.dims(), [conv.k, conv.r, conv.s, conv.c], "filter must be KRSC of {conv}");
    let rows = conv.r * conv.s * conv.c;
    Matrix::from_fn(rows, conv.k, Layout::RowMajor, |row, k| {
        let r = row / (conv.s * conv.c);
        let s = (row / conv.c) % conv.s;
        let c = row % conv.c;
        filter.get([k, r, s, c])
    })
}

/// Reshapes a GEMM result (`N·P·Q × K`) back into the NPQK output
/// tensor.
///
/// # Panics
///
/// Panics on a dimension mismatch.
#[must_use]
pub fn fold_output<Acc: Scalar>(gemm_out: &Matrix<Acc>, conv: &ConvShape) -> Tensor4<Acc> {
    let (p_max, q_max) = (conv.out_h(), conv.out_w());
    assert_eq!(
        (gemm_out.rows(), gemm_out.cols()),
        (conv.n * p_max * q_max, conv.k),
        "GEMM output does not match {conv}"
    );
    Tensor4::from_fn([conv.n, p_max, q_max, conv.k], |n, p, q, k| {
        gemm_out.get(n * p_max * q_max + p * q_max + q, k)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::conv2d_direct;
    use streamk_matrix::reference::gemm_naive;

    #[test]
    fn patch_rows_are_padded_windows() {
        // 3x3 input, 3x3 filter, pad 1: the first patch row has the
        // top-left window with zeros on two edges.
        let conv = ConvShape::same(1, 1, 3, 1, 3);
        let input = Tensor4::<f64>::from_fn([1, 3, 3, 1], |_, h, w, _| (h * 3 + w + 1) as f64);
        let a = patch_matrix::<f64, f64>(&input, &conv);
        assert_eq!(a.rows(), 9);
        assert_eq!(a.cols(), 9);
        // Patch at output (0,0), (r,s,c) order: rows r=0 fully padded,
        // then (0,0)=pad, 1, 2, (0) pad, 4, 5 (1-indexed values).
        let row0: Vec<f64> = (0..9).map(|j| a.get(0, j)).collect();
        assert_eq!(row0, vec![0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 4.0, 5.0]);
    }

    #[test]
    fn gemm_of_lowered_operands_is_the_convolution() {
        let conv = ConvShape::new(2, 3, 5, 6, 4, 3, 2, 1, 0, 1, 2);
        let input = Tensor4::<f64>::random::<f64>([conv.n, conv.h, conv.w, conv.c], 1);
        let filter = Tensor4::<f64>::random::<f64>([conv.k, conv.r, conv.s, conv.c], 2);

        let a = patch_matrix::<f64, f64>(&input, &conv);
        let b = filter_matrix::<f64, f64>(&filter, &conv);
        let out = fold_output(&gemm_naive::<f64, f64>(&a, &b), &conv);

        let direct = conv2d_direct::<f64, f64>(&input, &filter, &conv);
        assert!(out.max_abs_diff(&direct) < 1e-12, "diff {}", out.max_abs_diff(&direct));
    }

    #[test]
    fn gemm_shape_matches_lowered_dims() {
        let conv = ConvShape::same(2, 8, 7, 16, 3);
        let input = Tensor4::<f64>::random::<f64>([conv.n, conv.h, conv.w, conv.c], 3);
        let filter = Tensor4::<f64>::random::<f64>([conv.k, conv.r, conv.s, conv.c], 4);
        let g = conv.gemm_shape();
        let a = patch_matrix::<f64, f64>(&input, &conv);
        let b = filter_matrix::<f64, f64>(&filter, &conv);
        assert_eq!((a.rows(), a.cols()), (g.m, g.k));
        assert_eq!((b.rows(), b.cols()), (g.k, g.n));
    }
}
