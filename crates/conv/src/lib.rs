//! Convolution as implicit GEMM, scheduled by Stream-K.
//!
//! The paper's motivating workloads are deep-learning operators:
//! "image recognition and computer vision models rely on convolution,
//! which can be implemented directly as the product of filter and
//! image datasets" (§2), and §7 proposes Stream-K for "other
//! GEMM-like workloads that struggle with the same quantization
//! inefficiencies". Convolutions are the canonical case: their
//! implied GEMM shapes are often short and deep (few output tiles,
//! long accumulation over `C·R·S`), precisely the strong-scaling
//! regime where tile-centric schedules idle most of the processor.
//!
//! This crate provides:
//!
//! - [`Tensor4`] — a minimal NHWC activation / KRSC filter container;
//! - [`ConvShape`] — Conv2d geometry (padding, stride) and its
//!   implied GEMM shape;
//! - [`direct::conv2d_direct`] — the 7-loop reference;
//! - [`im2col`] — patch-matrix lowering;
//! - [`conv2d`] — the production path: im2col + a Stream-K-scheduled
//!   GEMM on the CPU executor, verified against the reference.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod conv2d;
pub mod direct;
pub mod im2col;
pub mod shape;
pub mod tensor;

pub use conv2d::{conv2d, Conv2dConfig};
pub use shape::ConvShape;
pub use tensor::Tensor4;
