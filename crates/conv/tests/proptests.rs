//! Property tests: the im2col + Stream-K path must equal the direct
//! reference for arbitrary convolution geometries.

use proptest::prelude::*;
use streamk_conv::direct::conv2d_direct;
use streamk_conv::{conv2d, Conv2dConfig, ConvShape, Tensor4};
use streamk_types::TileShape;

fn conv_shapes() -> impl proptest::strategy::Strategy<Value = ConvShape> {
    (
        1usize..3,  // n
        1usize..6,  // c
        1usize..10, // h
        1usize..10, // w
        1usize..6,  // k
        1usize..4,  // r
        1usize..4,  // s
        0usize..3,  // pad_h
        0usize..3,  // pad_w
        1usize..3,  // stride_h
        1usize..3,  // stride_w
    )
        .prop_filter_map("filter must fit padded input", |(n, c, h, w, k, r, s, ph, pw, sh, sw)| {
            if h + 2 * ph >= r && w + 2 * pw >= s {
                Some(ConvShape::new(n, c, h, w, k, r, s, ph, pw, sh, sw))
            } else {
                None
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whole-stack convolution correctness over random geometries,
    /// including padding, asymmetric strides and ragged extents.
    #[test]
    fn stream_k_conv_matches_direct(conv in conv_shapes(), seed in 0u64..500) {
        let input = Tensor4::<f64>::random::<f64>([conv.n, conv.h, conv.w, conv.c], seed);
        let filter = Tensor4::<f64>::random::<f64>([conv.k, conv.r, conv.s, conv.c], seed + 1);
        let config = Conv2dConfig { threads: 4, tile: TileShape::new(8, 8, 8), ..Conv2dConfig::default() };
        let got = conv2d::<f64, f64>(&input, &filter, &conv, &config);
        let want = conv2d_direct::<f64, f64>(&input, &filter, &conv);
        let diff = got.max_abs_diff(&want);
        prop_assert!(diff < 1e-11, "{conv}: diff {diff:.3e}");
    }

    /// The implied GEMM accounting is consistent with the direct MAC
    /// count... (trivially, but it pins the lowering arithmetic).
    #[test]
    fn gemm_shape_macs_match(conv in conv_shapes()) {
        let g = conv.gemm_shape();
        prop_assert_eq!(g.m, conv.n * conv.out_h() * conv.out_w());
        prop_assert_eq!(g.n, conv.k);
        prop_assert_eq!(g.k, conv.c * conv.r * conv.s);
        prop_assert_eq!(conv.macs(), g.macs());
    }
}
