//! Property tests for the numerical substrate.

use proptest::prelude::*;
use streamk_matrix::blocked::gemm_blocked;
use streamk_matrix::gemm_ex::gemm_ex_reference;
use streamk_matrix::reference::gemm_naive;
use streamk_matrix::{f16, Matrix};
use streamk_types::{Layout, TileShape};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// f16 conversion round-trips within half-precision epsilon for
    /// values in the normal range.
    #[test]
    fn f16_round_trip_error_bound(v in -60000.0f32..60000.0) {
        let h = f16::from_f32(v);
        let back = h.to_f32();
        let err = (back - v).abs();
        // Round-to-nearest guarantees err <= ulp/2 <= |v|·2^-11 for
        // normal values (subnormals have absolute bound 2^-25).
        let bound = (v.abs() * 2.0f32.powi(-11)).max(2.0f32.powi(-25));
        prop_assert!(err <= bound, "v={v}, back={back}, err={err}, bound={bound}");
    }

    /// Conversion is monotone over random pairs.
    #[test]
    fn f16_conversion_monotone(a in -65000.0f32..65000.0, b in -65000.0f32..65000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(f16::from_f32(lo) <= f16::from_f32(hi));
    }

    /// The cache-blocked GEMM (Algorithm 1) is bit-identical to the
    /// naive reference for any blocking of any shape (same
    /// accumulation order).
    #[test]
    fn blocked_gemm_is_bit_exact(
        m in 1usize..40, n in 1usize..40, k in 1usize..40,
        bm in 1usize..17, bn in 1usize..17, bk in 1usize..17,
        seed in 0u64..1000,
    ) {
        let a = Matrix::<f64>::random::<f64>(m, k, Layout::RowMajor, seed);
        let b = Matrix::<f64>::random::<f64>(k, n, Layout::RowMajor, seed + 1);
        let blocked = gemm_blocked::<f64, f64>(&a, &b, TileShape::new(bm, bn, bk));
        let naive = gemm_naive::<f64, f64>(&a, &b);
        prop_assert_eq!(blocked.max_abs_diff(&naive), 0.0);
    }

    /// View laws: double transpose is the identity; a submatrix of a
    /// transpose equals the transpose-indexed submatrix.
    #[test]
    fn view_transpose_laws(rows in 1usize..20, cols in 1usize..20, seed in 0u64..1000) {
        let m = Matrix::<f64>::random::<f64>(rows, cols, Layout::RowMajor, seed);
        let v = m.view();
        let tt = v.t().t();
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(tt.get(r, c), v.get(r, c));
                prop_assert_eq!(v.t().get(c, r), v.get(r, c));
            }
        }
    }

    /// gemm_ex is linear in alpha and affine in beta:
    /// result(α, β) == α·result(1, 0) + β·C0, elementwise.
    #[test]
    fn gemm_ex_alpha_beta_linearity(
        m in 1usize..12, n in 1usize..12, k in 1usize..12,
        alpha in -4.0f64..4.0, beta in -4.0f64..4.0,
        seed in 0u64..1000,
    ) {
        let a = Matrix::<f64>::random::<f64>(m, k, Layout::RowMajor, seed);
        let b = Matrix::<f64>::random::<f64>(k, n, Layout::RowMajor, seed + 1);
        let c0 = Matrix::<f64>::random::<f64>(m, n, Layout::RowMajor, seed + 2);

        let mut full = c0.clone();
        gemm_ex_reference(alpha, &a.view(), &b.view(), beta, &mut full);

        let ab = gemm_naive::<f64, f64>(&a, &b);
        for r in 0..m {
            for cc in 0..n {
                let expected = alpha * ab.get(r, cc) + beta * c0.get(r, cc);
                let got = full.get(r, cc);
                prop_assert!((got - expected).abs() <= 1e-12 * (1.0 + expected.abs()),
                    "({r},{cc}): {got} vs {expected}");
            }
        }
    }

    /// Mixed-precision naive GEMM equals an all-f64 computation of the
    /// promoted values when k is small enough for exact f32
    /// accumulation of half-precision inputs.
    #[test]
    fn mixed_precision_matches_promoted_f64(
        m in 1usize..8, n in 1usize..8, k in 1usize..16,
    ) {
        let a = Matrix::<f16>::patterned::<f32>(m, k, Layout::RowMajor);
        let b = Matrix::<f16>::patterned::<f32>(k, n, Layout::RowMajor);
        let c = gemm_naive::<f16, f32>(&a, &b);
        let a64 = Matrix::<f64>::from_fn(m, k, Layout::RowMajor, |r, cc| a.get(r, cc).to_f64());
        let b64 = Matrix::<f64>::from_fn(k, n, Layout::RowMajor, |r, cc| b.get(r, cc).to_f64());
        let c64 = gemm_naive::<f64, f64>(&a64, &b64);
        for r in 0..m {
            for cc in 0..n {
                prop_assert_eq!(f64::from(c.get(r, cc)), c64.get(r, cc));
            }
        }
    }
}
