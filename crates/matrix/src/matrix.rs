//! Owned dense matrix container.

use crate::scalar::{Promote, Scalar};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use streamk_types::Layout;

/// An owned dense `rows × cols` matrix with explicit storage layout.
///
/// This is the container every GEMM implementation in the workspace
/// consumes and produces. It deliberately stays simple: contiguous
/// storage, bounds-checked accessors, and fill/compare utilities for
/// tests and experiments. Kernels access the raw slice plus layout
/// index math for speed.
///
/// ```
/// use streamk_matrix::Matrix;
/// use streamk_types::Layout;
///
/// let a = Matrix::<f64>::from_fn(2, 3, Layout::RowMajor, |r, c| (r * 3 + c) as f64);
/// assert_eq!(a.get(1, 2), 5.0);
/// assert_eq!(a.t().get(2, 1), 5.0); // transposed view, no copy
///
/// // Deterministic random fills for reproducible experiments.
/// let x = Matrix::<f64>::random::<f64>(4, 4, Layout::RowMajor, 42);
/// let y = Matrix::<f64>::random::<f64>(4, 4, Layout::RowMajor, 42);
/// assert_eq!(x, y);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    layout: Layout,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates a `rows × cols` matrix of `T::default()` (zeros for all
    /// scalar types) in the given layout.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize, layout: Layout) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero: {rows}x{cols}");
        Self { rows, cols, layout, data: vec![T::default(); layout.storage_len(rows, cols)] }
    }

    /// Creates a matrix whose `(r, c)` element is `f(r, c)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, layout: Layout, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols, layout);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds for {}x{}", self.rows, self.cols);
        self.data[self.layout.index(row, col, self.rows, self.cols)]
    }

    /// Sets element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds for {}x{}", self.rows, self.cols);
        let i = self.layout.index(row, col, self.rows, self.cols);
        self.data[i] = value;
    }

    /// The backing storage in layout order.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing storage in layout order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Linear offset of `(row, col)` in the backing storage.
    #[inline]
    #[must_use]
    pub fn offset(&self, row: usize, col: usize) -> usize {
        self.layout.index(row, col, self.rows, self.cols)
    }

    /// A copy of this matrix converted to `layout` (same logical
    /// contents, possibly different storage order).
    #[must_use]
    pub fn to_layout(&self, layout: Layout) -> Self {
        if layout == self.layout {
            return self.clone();
        }
        Self::from_fn(self.rows, self.cols, layout, |r, c| self.get(r, c))
    }

    /// The transpose of this matrix (in the same storage layout).
    #[must_use]
    pub fn transposed(&self) -> Self {
        Self::from_fn(self.cols, self.rows, self.layout, |r, c| self.get(c, r))
    }
}

impl<T> Matrix<T> {
    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage layout.
    #[inline]
    #[must_use]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Consumes the matrix, returning its backing storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Builds a matrix around existing backing storage in `layout`
    /// order — the inverse of [`into_vec`](Self::into_vec). Lets an
    /// executor assemble its output in a buffer it owns and hand it
    /// over without a copy.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `data.len()` is not
    /// `layout.storage_len(rows, cols)` (`rows * cols` for the strided
    /// layouts; fragment-padded for the block-major ones).
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, layout: Layout, data: Vec<T>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero: {rows}x{cols}");
        assert_eq!(
            data.len(),
            layout.storage_len(rows, cols),
            "backing storage must be layout.storage_len(rows, cols)"
        );
        Self { rows, cols, layout, data }
    }
}

impl<T: Copy + Default> Matrix<T> {
    /// Fills with uniform random values in `[-1, 1)` from a seeded
    /// generator, demoted to the element's storage precision. The
    /// `[-1, 1)` range keeps long accumulations from overflowing f16
    /// storage and keeps cancellation realistic.
    #[must_use]
    pub fn random<Acc>(rows: usize, cols: usize, layout: Layout, seed: u64) -> Self
    where
        Acc: Scalar,
        T: Promote<Acc>,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::from_fn(rows, cols, layout, |_, _| {
            T::demote_from_f64(rng.random_range(-1.0..1.0))
        })
    }

    /// Fills with the deterministic pattern
    /// `((r·31 + c·17) mod 13 − 6) / 4`, exactly representable in f16,
    /// useful for bit-exact cross-implementation checks.
    #[must_use]
    pub fn patterned<Acc>(rows: usize, cols: usize, layout: Layout) -> Self
    where
        Acc: Scalar,
        T: Promote<Acc>,
    {
        Self::from_fn(rows, cols, layout, |r, c| {
            let v = ((r * 31 + c * 17) % 13) as f64 - 6.0;
            T::demote_from_f64(v / 4.0)
        })
    }
}

impl<T: Scalar> Matrix<T> {
    /// The largest absolute elementwise difference `max |aᵢⱼ − bᵢⱼ|`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        let mut worst = 0.0f64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let d = (self.get(r, c).to_f64() - other.get(r, c).to_f64()).abs();
                worst = worst.max(d);
            }
        }
        worst
    }

    /// The largest relative elementwise difference, with the usual
    /// `max(1, |a|, |b|)` denominator guard.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn max_rel_diff(&self, other: &Self) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        let mut worst = 0.0f64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let a = self.get(r, c).to_f64();
                let b = other.get(r, c).to_f64();
                let denom = 1.0f64.max(a.abs()).max(b.abs());
                worst = worst.max((a - b).abs() / denom);
            }
        }
        worst
    }

    /// Asserts elementwise closeness within `tol` (relative, guarded).
    ///
    /// # Panics
    ///
    /// Panics with the offending element if any difference exceeds
    /// `tol`.
    pub fn assert_close(&self, other: &Self, tol: f64) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for r in 0..self.rows {
            for c in 0..self.cols {
                let a = self.get(r, c).to_f64();
                let b = other.get(r, c).to_f64();
                let denom = 1.0f64.max(a.abs()).max(b.abs());
                let d = (a - b).abs() / denom;
                assert!(
                    d <= tol,
                    "matrices differ at ({r},{c}): {a} vs {b} (rel diff {d:.3e} > tol {tol:.3e})"
                );
            }
        }
    }

    /// The Frobenius norm `√(Σ aᵢⱼ²)` as f64.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        let mut sum = 0.0f64;
        for &v in &self.data {
            let x = v.to_f64();
            sum += x * x;
        }
        sum.sqrt()
    }
}

impl<T: Copy + Default + fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} ({}):", self.rows, self.cols, self.layout)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for r in 0..show_rows {
            write!(f, "  [")?;
            for c in 0..show_cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}", self.get(r, c))?;
            }
            if show_cols < self.cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if show_rows < self.rows {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = Matrix::<f64>::zeros(3, 4, Layout::RowMajor);
        assert_eq!(m.get(2, 3), 0.0);
        m.set(2, 3, 7.5);
        assert_eq!(m.get(2, 3), 7.5);
        assert_eq!(m.as_slice()[2 * 4 + 3], 7.5);
    }

    #[test]
    fn col_major_storage_order() {
        let m = Matrix::<f32>::from_fn(2, 3, Layout::ColMajor, |r, c| (r * 10 + c) as f32);
        // Column-major: columns contiguous.
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
    }

    #[test]
    fn to_layout_preserves_contents() {
        let m = Matrix::<f64>::from_fn(3, 5, Layout::RowMajor, |r, c| (r * 100 + c) as f64);
        let t = m.to_layout(Layout::ColMajor);
        for r in 0..3 {
            for c in 0..5 {
                assert_eq!(m.get(r, c), t.get(r, c));
            }
        }
        assert_ne!(m.as_slice(), t.as_slice());
    }

    #[test]
    fn block_major_round_trips_through_every_layout() {
        let m = Matrix::<f64>::from_fn(13, 21, Layout::RowMajor, |r, c| (r * 100 + c) as f64);
        for layout in [Layout::BlockMajor, Layout::BlockMajorZ] {
            let b = m.to_layout(layout);
            assert_eq!(b.as_slice().len(), layout.storage_len(13, 21));
            for r in 0..13 {
                for c in 0..21 {
                    assert_eq!(b.get(r, c), m.get(r, c), "{layout} ({r},{c})");
                }
            }
            let back = b.to_layout(Layout::RowMajor);
            assert_eq!(back, m);
        }
    }

    #[test]
    fn block_major_padding_stays_zero() {
        // from_fn only writes logical elements; the fragment padding
        // must remain T::default() so packed-equivalence (and norms)
        // hold.
        let b = Matrix::<f64>::from_fn(5, 5, Layout::BlockMajor, |_, _| 1.0);
        assert_eq!(b.as_slice().len(), 64);
        let written: f64 = b.as_slice().iter().sum();
        assert_eq!(written, 25.0);
        assert!((b.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_vec_blocked_requires_padded_len() {
        let b = Matrix::<f32>::zeros(5, 7, Layout::BlockMajor);
        let data = b.clone().into_vec();
        assert_eq!(data.len(), 64);
        let rebuilt = Matrix::<f32>::from_vec(5, 7, Layout::BlockMajor, data);
        assert_eq!(rebuilt, b);
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = Matrix::<f64>::from_fn(2, 3, Layout::RowMajor, |r, c| (r * 10 + c) as f64);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), m.get(1, 2));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Matrix::<f64>::random::<f64>(4, 4, Layout::RowMajor, 42);
        let b = Matrix::<f64>::random::<f64>(4, 4, Layout::RowMajor, 42);
        let c = Matrix::<f64>::random::<f64>(4, 4, Layout::RowMajor, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_values_in_range() {
        let m = Matrix::<f64>::random::<f64>(16, 16, Layout::RowMajor, 7);
        for &v in m.as_slice() {
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn patterned_is_f16_exact() {
        use crate::half::f16;
        let a = Matrix::<f16>::patterned::<f32>(8, 8, Layout::RowMajor);
        let b = Matrix::<f64>::patterned::<f64>(8, 8, Layout::RowMajor);
        for r in 0..8 {
            for c in 0..8 {
                assert_eq!(a.get(r, c).to_f64(), b.get(r, c));
            }
        }
    }

    #[test]
    fn diff_metrics() {
        let a = Matrix::<f64>::from_fn(2, 2, Layout::RowMajor, |r, c| (r + c) as f64);
        let mut b = a.clone();
        b.set(1, 1, 2.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!((a.max_rel_diff(&b) - 0.5 / 2.5).abs() < 1e-12);
        a.assert_close(&b, 0.3);
    }

    #[test]
    #[should_panic(expected = "differ at (1,1)")]
    fn assert_close_panics_on_large_diff() {
        let a = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        let mut b = a.clone();
        b.set(1, 1, 1.0);
        a.assert_close(&b, 1e-6);
    }

    #[test]
    fn frobenius_norm_of_unit() {
        let m = Matrix::<f64>::from_fn(3, 3, Layout::RowMajor, |r, c| if r == c { 1.0 } else { 0.0 });
        assert!((m.frobenius_norm() - 3.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        let _ = m.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Matrix::<f64>::zeros(0, 3, Layout::RowMajor);
    }
}
