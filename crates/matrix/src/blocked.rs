//! Sequential cache-blocked GEMM — the paper's Algorithm 1.
//!
//! The computation is divided into `BLK_M × BLK_N × BLK_K` blocks and
//! traversed tile-by-tile so that one block of each operand fits in
//! cache (paper §3.1). This is the sequential ancestor of the CTA-wide
//! `MacLoop` used by all parallel decompositions, and the accumulation
//! order within a tile (ascending k, `BLK_K` at a time) is the same
//! order `MacLoop` uses — so for an *un-split* tile the parallel
//! executors reproduce this result bit-for-bit.

use crate::matrix::Matrix;
use crate::scalar::{Promote, Scalar};
use streamk_types::TileShape;

/// Computes `C = A · B` with the six-loop cache-blocked schedule of
/// Algorithm 1, blocked by `tile`.
///
/// # Panics
///
/// Panics if the operand dimensions are not conformant.
#[must_use]
pub fn gemm_blocked<In, Acc>(a: &Matrix<In>, b: &Matrix<In>, tile: TileShape) -> Matrix<Acc>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree: A is {}x{}, B is {}x{}", a.rows(), a.cols(), b.rows(), b.cols());
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let mut c = Matrix::<Acc>::zeros(m, n, a.layout());

    // Tile-processing outer loops (Algorithm 1 lines 2-3).
    let mut mm = 0;
    while mm < m {
        let m_end = (mm + tile.blk_m).min(m);
        let mut nn = 0;
        while nn < n {
            let n_end = (nn + tile.blk_n).min(n);

            // Zero the accumulator tile (lines 5-9). `c` starts zeroed,
            // so nothing to do — kept as a comment to mirror the paper.

            // MAC iterations for this tile (lines 11-22).
            let mut kk = 0;
            while kk < k {
                let k_end = (kk + tile.blk_k).min(k);
                for i in mm..m_end {
                    for j in nn..n_end {
                        let mut acc = c.get(i, j);
                        for p in kk..k_end {
                            acc = acc.mac(a.get(i, p).promote(), b.get(p, j).promote());
                        }
                        c.set(i, j, acc);
                    }
                }
                kk = k_end;
            }
            nn = n_end;
        }
        mm = m_end;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::half::f16;
    use crate::reference::gemm_naive;
    use streamk_types::Layout;

    #[test]
    fn matches_naive_f64_exactly() {
        // Same accumulation order as naive (ascending k) → bit-exact.
        let a = Matrix::<f64>::random::<f64>(37, 29, Layout::RowMajor, 10);
        let b = Matrix::<f64>::random::<f64>(29, 41, Layout::RowMajor, 11);
        let blocked = gemm_blocked::<f64, f64>(&a, &b, TileShape::new(8, 8, 8));
        let naive = gemm_naive::<f64, f64>(&a, &b);
        blocked.assert_close(&naive, 0.0);
    }

    #[test]
    fn ragged_tiles_cover_everything() {
        // Dimensions deliberately not multiples of the blocking.
        let a = Matrix::<f64>::random::<f64>(13, 7, Layout::RowMajor, 12);
        let b = Matrix::<f64>::random::<f64>(7, 17, Layout::RowMajor, 13);
        for blk in [1usize, 2, 3, 5, 16, 100] {
            let blocked = gemm_blocked::<f64, f64>(&a, &b, TileShape::new(blk, blk, blk));
            blocked.assert_close(&gemm_naive::<f64, f64>(&a, &b), 0.0);
        }
    }

    #[test]
    fn tile_larger_than_matrix_degenerates_to_naive() {
        let a = Matrix::<f64>::random::<f64>(5, 5, Layout::RowMajor, 14);
        let b = Matrix::<f64>::random::<f64>(5, 5, Layout::RowMajor, 15);
        let blocked = gemm_blocked::<f64, f64>(&a, &b, TileShape::new(64, 64, 64));
        blocked.assert_close(&gemm_naive::<f64, f64>(&a, &b), 0.0);
    }

    #[test]
    fn mixed_precision_blocked() {
        let a = Matrix::<f16>::random::<f32>(24, 18, Layout::RowMajor, 16);
        let b = Matrix::<f16>::random::<f32>(18, 20, Layout::RowMajor, 17);
        let blocked = gemm_blocked::<f16, f32>(&a, &b, TileShape::new(8, 8, 4));
        let naive = gemm_naive::<f16, f32>(&a, &b);
        // Same accumulation order → identical f32 results.
        blocked.assert_close(&naive, 0.0);
    }

    #[test]
    fn col_major_blocked() {
        let a = Matrix::<f64>::random::<f64>(12, 9, Layout::ColMajor, 18);
        let b = Matrix::<f64>::random::<f64>(9, 14, Layout::ColMajor, 19);
        let blocked = gemm_blocked::<f64, f64>(&a, &b, TileShape::new(4, 4, 4));
        blocked.assert_close(&gemm_naive::<f64, f64>(&a, &b), 0.0);
    }
}
