//! The general GEMM entry semantics: `C = α·op(A)·op(B) + β·C`.
//!
//! The paper simplifies its exposition to `α = 1, β = 0` (§2); a
//! BLAS-like library must provide the full form. This module holds
//! the sequential reference implementation the parallel executors are
//! verified against.

use crate::matrix::Matrix;
use crate::scalar::{Promote, Scalar};
use crate::view::MatrixView;

/// Sequential reference for `C = α·A·B + β·C` over views (apply
/// transposition by passing `a.t()` / `b.t()`).
///
/// # Panics
///
/// Panics if the operand dimensions are not conformant with `c`.
pub fn gemm_ex_reference<In, Acc>(
    alpha: Acc,
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    beta: Acc,
    c: &mut Matrix<Acc>,
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree: op(A) is {}x{}, op(B) is {}x{}", a.rows(), a.cols(), b.rows(), b.cols());
    assert_eq!((c.rows(), c.cols()), (a.rows(), b.cols()), "C must be {}x{}", a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = Acc::ZERO;
            for p in 0..a.cols() {
                acc = acc.mac(a.get(i, p).promote(), b.get(p, j).promote());
            }
            let prior = if beta == Acc::ZERO { Acc::ZERO } else { beta * c.get(i, j) };
            c.set(i, j, alpha * acc + prior);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::gemm_naive;
    use streamk_types::Layout;

    #[test]
    fn alpha_one_beta_zero_matches_naive() {
        let a = Matrix::<f64>::random::<f64>(5, 7, Layout::RowMajor, 1);
        let b = Matrix::<f64>::random::<f64>(7, 4, Layout::RowMajor, 2);
        let mut c = Matrix::<f64>::zeros(5, 4, Layout::RowMajor);
        gemm_ex_reference(1.0, &a.view(), &b.view(), 0.0, &mut c);
        c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 0.0);
    }

    #[test]
    fn alpha_scales_beta_accumulates() {
        let a = Matrix::<f64>::random::<f64>(3, 3, Layout::RowMajor, 3);
        let b = Matrix::<f64>::random::<f64>(3, 3, Layout::RowMajor, 4);
        let c0 = Matrix::<f64>::random::<f64>(3, 3, Layout::RowMajor, 5);
        let mut c = c0.clone();
        gemm_ex_reference(2.5, &a.view(), &b.view(), -0.5, &mut c);
        let ab = gemm_naive::<f64, f64>(&a, &b);
        for i in 0..3 {
            for j in 0..3 {
                let expected = 2.5 * ab.get(i, j) - 0.5 * c0.get(i, j);
                assert!((c.get(i, j) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transposed_operands() {
        // C = Aᵀ·Bᵀ computed two ways.
        let a = Matrix::<f64>::random::<f64>(7, 5, Layout::RowMajor, 6);
        let b = Matrix::<f64>::random::<f64>(4, 7, Layout::RowMajor, 7);
        let mut c = Matrix::<f64>::zeros(5, 4, Layout::RowMajor);
        gemm_ex_reference(1.0, &a.t(), &b.t(), 0.0, &mut c);
        let at = a.transposed();
        let bt = b.transposed();
        c.assert_close(&gemm_naive::<f64, f64>(&at, &bt), 0.0);
    }

    #[test]
    fn beta_zero_ignores_garbage_c() {
        // β = 0 must not read C (NaN-safe), per BLAS convention.
        let a = Matrix::<f64>::random::<f64>(2, 2, Layout::RowMajor, 8);
        let b = Matrix::<f64>::random::<f64>(2, 2, Layout::RowMajor, 9);
        let mut c = Matrix::<f64>::from_fn(2, 2, Layout::RowMajor, |_, _| f64::NAN);
        gemm_ex_reference(1.0, &a.view(), &b.view(), 0.0, &mut c);
        assert!(c.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "C must be")]
    fn wrong_c_shape_panics() {
        let a = Matrix::<f64>::zeros(2, 3, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(3, 4, Layout::RowMajor);
        let mut c = Matrix::<f64>::zeros(2, 3, Layout::RowMajor);
        gemm_ex_reference(1.0, &a.view(), &b.view(), 0.0, &mut c);
    }
}
