//! Numeric abstractions for generic GEMM kernels.
//!
//! The paper evaluates two precisions: FP64 (f64 in, f64 accumulate)
//! and FP16→32 (f16 in, f32 accumulate). A GEMM kernel in this
//! workspace is therefore generic over *two* types: the input element
//! and the accumulator element, bridged by [`Promote`].

use crate::half::f16;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// An arithmetic element type usable as a GEMM accumulator (and, for
/// f32/f64, as an input).
///
/// The bound set is the minimum needed by the kernels: closed
/// addition/multiplication, a zero, and lossless-enough conversion to
/// `f64` for verification.
pub trait Scalar:
    Copy
    + Debug
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;

    /// Converts from `f64`, rounding as the type requires.
    fn from_f64(value: f64) -> Self;

    /// Converts to `f64` (exact for f32/f64).
    fn to_f64(self) -> f64;

    /// Fused or unfused multiply-add `self + a * b`. The default is
    /// unfused, matching how GPU MAC pipelines accumulate tile
    /// fragments at accumulator precision.
    #[inline]
    fn mac(self, a: Self, b: Self) -> Self {
        self + a * b
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_f64(value: f64) -> Self {
        value as f32
    }

    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_f64(value: f64) -> Self {
        value
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
}

/// An input element type that promotes to an accumulator type `Acc`
/// before arithmetic — the f16 → f32 promotion of mixed-precision
/// GEMM, and the identity promotion for f32/f64.
pub trait Promote<Acc: Scalar>: Copy + Debug + Default + Send + Sync + 'static {
    /// Widens this input element to the accumulator type.
    fn promote(self) -> Acc;

    /// Narrows an `f64` into this input type (used by fill routines;
    /// models the storage rounding an f16 input matrix suffers).
    fn demote_from_f64(value: f64) -> Self;

    /// This element as `f64`, via promotion.
    fn to_f64(self) -> f64 {
        self.promote().to_f64()
    }
}

impl Promote<f32> for f32 {
    #[inline]
    fn promote(self) -> f32 {
        self
    }

    #[inline]
    fn demote_from_f64(value: f64) -> Self {
        value as f32
    }
}

impl Promote<f64> for f64 {
    #[inline]
    fn promote(self) -> f64 {
        self
    }

    #[inline]
    fn demote_from_f64(value: f64) -> Self {
        value
    }
}

impl Promote<f32> for f16 {
    #[inline]
    fn promote(self) -> f32 {
        self.to_f32()
    }

    #[inline]
    fn demote_from_f64(value: f64) -> Self {
        f16::from_f64(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_identities() {
        assert_eq!(f32::ZERO + f32::ONE, 1.0f32);
        assert_eq!(f64::ZERO + f64::ONE, 1.0f64);
    }

    #[test]
    fn mac_computes_fma_shape() {
        assert_eq!(2.0f64.mac(3.0, 4.0), 14.0);
        assert_eq!(1.5f32.mac(0.5, 2.0), 2.5);
    }

    #[test]
    fn f16_promotes_through_f32() {
        let h = f16::from_f32(1.5);
        let promoted: f32 = h.promote();
        assert_eq!(promoted, 1.5);
        assert_eq!(Promote::<f32>::to_f64(h), 1.5);
    }

    #[test]
    fn demote_rounds_to_storage_precision() {
        // 1/3 is inexact in every binary format; f16 keeps ~3 decimal
        // digits.
        let h = <f16 as Promote<f32>>::demote_from_f64(1.0 / 3.0);
        assert!((h.to_f32() - 1.0 / 3.0).abs() < 2e-4);
        let s = <f32 as Promote<f32>>::demote_from_f64(1.0 / 3.0);
        assert!((f64::from(s) - 1.0 / 3.0).abs() < 1e-7);
    }

    #[test]
    fn round_trip_f64_scalar() {
        let x = <f64 as Scalar>::from_f64(0.123_456_789);
        assert_eq!(Scalar::to_f64(x), 0.123_456_789);
    }
}
