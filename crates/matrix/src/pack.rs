//! BLIS-style operand packing.
//!
//! The packed-panel microkernel pipeline copies each operand block
//! into a cache-friendly panel layout before the MAC loop touches it:
//!
//! - **A** is packed into *row panels* of `MR` rows. Within a panel
//!   the storage is k-major: for each k the `MR` elements of the
//!   panel's rows sit contiguously (`panel[k·MR + i] = A[r0+p·MR+i, k]`),
//!   so the microkernel loads one unit-stride `MR`-column of A per
//!   k-step.
//! - **B** is packed into *column panels* of `NR` columns, also
//!   k-major (`panel[k·NR + j] = B[k, c0+q·NR+j]`): one unit-stride
//!   `NR`-row of B per k-step.
//!
//! Ragged edges are **zero-padded** to the full `MR`/`NR` width, so
//! the microkernel needs no scalar edge path — padded lanes compute
//! garbage-free zeros that the caller simply never stores. Because
//! the pad only ever fills *lanes that are discarded*, the stored
//! lanes see exactly the same ascending-k operand sequence as the
//! unpacked kernels: results stay bit-identical.
//!
//! Packing reads through [`MatrixView`], so transposed and strided
//! operands are normalized to the same panel layout — after packing,
//! the microkernel no longer cares how the operand was stored.

use crate::view::{BlockInfo, MatrixView};
use std::ops::Range;
use streamk_types::FRAG;

/// Fragment-wise panel packer for views over blocked storage.
///
/// The generic element path pays a full swizzle-index computation
/// (`Layout::index`: four div/mods, plus a Morton interleave for
/// `BlockMajorZ`) per element. This walks the storage *fragments*
/// covering the requested window instead — one swizzle lookup per
/// 8×8 fragment, unit-stride reads inside it — and scatters into the
/// same k-major panel layout the strided packers produce.
///
/// `p_is_rows` selects the panel axis in view coordinates: `true`
/// packs A-style `pw`-row panels over `p_range` rows × `k_range` ks
/// (`panel[k·pw + i]`), `false` packs B-style `pw`-column panels over
/// `k_range` ks × `p_range` cols (`panel[k·pw + j]`). Ragged panel
/// edges are zero-padded exactly like the strided paths.
fn pack_panels_blocked<T: Copy + Default>(
    data: &[T],
    info: BlockInfo,
    p_is_rows: bool,
    p_range: Range<usize>,
    k_range: Range<usize>,
    pw: usize,
    out: &mut Vec<T>,
) {
    let klen = k_range.len();
    let panels = p_range.len().div_ceil(pw);
    let base = out.len();
    out.resize(base + panels * klen * pw, T::default());
    let dst = &mut out[base..];

    // The view window in storage coordinates (view (r, c) reads
    // storage (c, r) when transposed).
    let (vr, vc) = if p_is_rows { (p_range.clone(), k_range.clone()) } else { (k_range.clone(), p_range.clone()) };
    let (sr, sc) = if info.transposed {
        (info.origin_row + vc.start..info.origin_row + vc.end, info.origin_col + vr.start..info.origin_col + vr.end)
    } else {
        (info.origin_row + vr.start..info.origin_row + vr.end, info.origin_col + vc.start..info.origin_col + vc.end)
    };

    for fr in sr.start / FRAG..sr.end.div_ceil(FRAG) {
        for fc in sc.start / FRAG..sc.end.div_ceil(FRAG) {
            // The fragment's aligned corner has interior offset 0, so
            // its base is one swizzle lookup — shared by all 64
            // elements.
            let fb = info.layout.index(fr * FRAG, fc * FRAG, info.base_rows, info.base_cols);
            let frag = &data[fb..fb + FRAG * FRAG];
            for cc in 0..FRAG {
                let col = fc * FRAG + cc;
                if col < sc.start || col >= sc.end {
                    continue;
                }
                for rr in 0..FRAG {
                    let row = fr * FRAG + rr;
                    if row < sr.start || row >= sr.end {
                        continue;
                    }
                    let (r, c) = if info.transposed {
                        (col - info.origin_col, row - info.origin_row)
                    } else {
                        (row - info.origin_row, col - info.origin_col)
                    };
                    let (p, k) = if p_is_rows { (r, c) } else { (c, r) };
                    let (p_rel, k_rel) = (p - p_range.start, k - k_range.start);
                    dst[(p_rel / pw) * klen * pw + k_rel * pw + p_rel % pw] = frag[cc * FRAG + rr];
                }
            }
        }
    }
}

/// Length in elements of A packed over `rows × ks` with panel height
/// `mr`: `⌈rows/mr⌉` panels of `ks · mr` elements each.
#[inline]
#[must_use]
pub fn packed_a_len(rows: usize, ks: usize, mr: usize) -> usize {
    rows.div_ceil(mr) * ks * mr
}

/// Length in elements of B packed over `ks × cols` with panel width
/// `nr`: `⌈cols/nr⌉` panels of `ks · nr` elements each.
#[inline]
#[must_use]
pub fn packed_b_len(ks: usize, cols: usize, nr: usize) -> usize {
    cols.div_ceil(nr) * ks * nr
}

/// Packs `a[rows, ks]` into `MR`-row panels, k-major within each
/// panel, zero-padding the final panel's missing rows. `out` is
/// cleared and reused — steady-state callers pay no allocation once
/// the buffer has grown to its high-water mark.
///
/// # Panics
///
/// Panics if `rows`/`ks` exceed the view or `mr == 0`.
pub fn pack_a_into<T: Copy + Default>(
    a: &MatrixView<'_, T>,
    rows: Range<usize>,
    ks: Range<usize>,
    mr: usize,
    out: &mut Vec<T>,
) {
    assert!(mr > 0, "panel height must be positive");
    assert!(rows.end <= a.rows() && ks.end <= a.cols(), "pack_a range out of bounds");
    let kc = ks.len();
    out.clear();
    out.reserve(packed_a_len(rows.len(), kc, mr));
    let zero = T::default();

    if a.rows_contiguous() {
        // Fast path: zero the panel up front (which also pads the
        // ragged rows), then transpose one source row at a time —
        // each row is read with unit stride exactly once and scattered
        // at stride `mr` into the k-major panel, instead of
        // re-deriving a row slice per element.
        let mut r = rows.start;
        while r < rows.end {
            let height = mr.min(rows.end - r);
            let base = out.len();
            out.resize(base + kc * mr, zero);
            let panel = &mut out[base..];
            for i in 0..height {
                let row = &a.row_slice(r + i)[ks.clone()];
                for (col, &v) in panel.chunks_exact_mut(mr).zip(row) {
                    col[i] = v;
                }
            }
            r += mr;
        }
    } else if let Some((data, info)) = a.blocked_parts() {
        pack_panels_blocked(data, info, true, rows, ks, mr, out);
    } else {
        let mut r = rows.start;
        while r < rows.end {
            let height = mr.min(rows.end - r);
            for k in ks.clone() {
                for i in 0..height {
                    out.push(a.get(r + i, k));
                }
                for _ in height..mr {
                    out.push(zero);
                }
            }
            r += mr;
        }
    }
}

/// Packs `b[ks, cols]` into `NR`-column panels, k-major within each
/// panel, zero-padding the final panel's missing columns. `out` is
/// cleared and reused like [`pack_a_into`].
///
/// # Panics
///
/// Panics if `ks`/`cols` exceed the view or `nr == 0`.
pub fn pack_b_into<T: Copy + Default>(
    b: &MatrixView<'_, T>,
    ks: Range<usize>,
    cols: Range<usize>,
    nr: usize,
    out: &mut Vec<T>,
) {
    assert!(nr > 0, "panel width must be positive");
    assert!(ks.end <= b.rows() && cols.end <= b.cols(), "pack_b range out of bounds");
    let kc = ks.len();
    out.clear();
    out.reserve(packed_b_len(kc, cols.len(), nr));
    let zero = T::default();

    if b.rows_contiguous() {
        let mut c = cols.start;
        while c < cols.end {
            let width = nr.min(cols.end - c);
            for k in ks.clone() {
                let brow = &b.row_slice(k)[c..c + width];
                out.extend_from_slice(brow);
                for _ in width..nr {
                    out.push(zero);
                }
            }
            c += nr;
        }
    } else if let Some((data, info)) = b.blocked_parts() {
        pack_panels_blocked(data, info, false, cols, ks, nr, out);
    } else {
        let mut c = cols.start;
        while c < cols.end {
            let width = nr.min(cols.end - c);
            for k in ks.clone() {
                for j in 0..width {
                    out.push(b.get(k, c + j));
                }
                for _ in width..nr {
                    out.push(zero);
                }
            }
            c += nr;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use streamk_types::Layout;

    fn counting(rows: usize, cols: usize, layout: Layout) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, layout, |r, c| (r * 100 + c) as f64)
    }

    #[test]
    fn a_panels_are_k_major() {
        let a = counting(6, 4, Layout::RowMajor);
        let mut out = Vec::new();
        pack_a_into(&a.view(), 0..6, 0..4, 4, &mut out);
        assert_eq!(out.len(), packed_a_len(6, 4, 4));
        // Panel 0, k = 0: rows 0..4 of column 0.
        assert_eq!(&out[0..4], &[0.0, 100.0, 200.0, 300.0]);
        // Panel 0, k = 3: rows 0..4 of column 3.
        assert_eq!(&out[12..16], &[3.0, 103.0, 203.0, 303.0]);
        // Panel 1 (rows 4..6, zero-padded to 4), k = 0.
        assert_eq!(&out[16..20], &[400.0, 500.0, 0.0, 0.0]);
    }

    #[test]
    fn b_panels_are_k_major() {
        let b = counting(3, 6, Layout::RowMajor);
        let mut out = Vec::new();
        pack_b_into(&b.view(), 0..3, 0..6, 4, &mut out);
        assert_eq!(out.len(), packed_b_len(3, 6, 4));
        // Panel 0, k = 0: cols 0..4 of row 0.
        assert_eq!(&out[0..4], &[0.0, 1.0, 2.0, 3.0]);
        // Panel 0, k = 2.
        assert_eq!(&out[8..12], &[200.0, 201.0, 202.0, 203.0]);
        // Panel 1 (cols 4..6, zero-padded), k = 1.
        assert_eq!(&out[16..20], &[104.0, 105.0, 0.0, 0.0]);
    }

    #[test]
    fn sub_ranges_offset_correctly() {
        let a = counting(8, 8, Layout::RowMajor);
        let mut out = Vec::new();
        pack_a_into(&a.view(), 2..5, 3..6, 2, &mut out);
        // Panel 0 rows 2..4, k = 3..6; first entry is A[2,3].
        assert_eq!(out[0], 203.0);
        assert_eq!(out[1], 303.0);
        // Panel 1 row 4 (padded), k = 3.
        assert_eq!(&out[6..8], &[403.0, 0.0]);
    }

    #[test]
    fn strided_views_normalize_to_the_same_panels() {
        let row = counting(7, 5, Layout::RowMajor);
        let col = row.to_layout(Layout::ColMajor);
        let (mut pr, mut pc) = (Vec::new(), Vec::new());
        pack_a_into(&row.view(), 0..7, 0..5, 4, &mut pr);
        pack_a_into(&col.view(), 0..7, 0..5, 4, &mut pc);
        assert_eq!(pr, pc);
        pack_b_into(&row.view(), 0..7, 0..5, 4, &mut pr);
        pack_b_into(&col.view(), 0..7, 0..5, 4, &mut pc);
        assert_eq!(pr, pc);
        // A transposed view packs the logical (not stored) element.
        let mut pt = Vec::new();
        pack_a_into(&row.t(), 0..5, 0..7, 4, &mut pt);
        assert_eq!(pt[0], row.get(0, 0));
        assert_eq!(pt[1], row.get(0, 1)); // logical row 1 of Aᵀ
    }

    #[test]
    fn buffers_are_reused_without_reallocation() {
        let a = counting(16, 16, Layout::RowMajor);
        let mut out = Vec::new();
        pack_a_into(&a.view(), 0..16, 0..16, 8, &mut out);
        let cap = out.capacity();
        let ptr = out.as_ptr();
        for _ in 0..10 {
            pack_a_into(&a.view(), 0..16, 0..16, 8, &mut out);
        }
        assert_eq!(out.capacity(), cap);
        assert_eq!(out.as_ptr(), ptr);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_pack_range_panics() {
        let a = counting(4, 4, Layout::RowMajor);
        let mut out = Vec::new();
        pack_a_into(&a.view(), 0..5, 0..4, 4, &mut out);
    }

    /// The invariant the zero-pack bypass rests on: a `BlockMajor`
    /// matrix's backing storage IS the packed-A panel table with
    /// `MR = FRAG` — bitwise, including the zero-padded ragged rows —
    /// whenever the k-extent is fragment-aligned.
    #[test]
    fn block_major_storage_is_packed_a_table() {
        use streamk_types::FRAG;
        for (rows, cols) in [(16, 16), (13, 24), (8, 8), (24, 40), (7, 16)] {
            let row = counting(rows, cols, Layout::RowMajor);
            let blocked = row.to_layout(Layout::BlockMajor);
            let mut packed = Vec::new();
            pack_a_into(&row.view(), 0..rows, 0..cols, FRAG, &mut packed);
            assert_eq!(
                blocked.as_slice(),
                &packed[..],
                "{rows}x{cols}: blocked storage != packed-A panels"
            );
        }
    }

    /// The B-side twin: Bᵀ stored `BlockMajor` is the packed-B column
    /// panel table of B with `NR = FRAG` when k is fragment-aligned.
    #[test]
    fn transposed_block_major_storage_is_packed_b_table() {
        use streamk_types::FRAG;
        for (k, n) in [(16, 16), (24, 13), (8, 8), (40, 21)] {
            let b = counting(k, n, Layout::RowMajor);
            let bt_blocked = b.transposed().to_layout(Layout::BlockMajor);
            let mut packed = Vec::new();
            pack_b_into(&b.view(), 0..k, 0..n, FRAG, &mut packed);
            assert_eq!(
                bt_blocked.as_slice(),
                &packed[..],
                "{k}x{n}: Bᵀ blocked storage != packed-B panels"
            );
        }
    }

    /// Packing *from* a block-major view must produce the same panels
    /// as packing from the row-major original (generic path).
    #[test]
    fn packing_from_blocked_views_matches_row_major() {
        for layout in [Layout::BlockMajor, Layout::BlockMajorZ] {
            let row = counting(19, 21, Layout::RowMajor);
            let blocked = row.to_layout(layout);
            let (mut pr, mut pb) = (Vec::new(), Vec::new());
            pack_a_into(&row.view(), 0..19, 3..17, 8, &mut pr);
            pack_a_into(&blocked.view(), 0..19, 3..17, 8, &mut pb);
            assert_eq!(pr, pb, "{layout} pack_a");
            pack_b_into(&row.view(), 0..19, 0..21, 16, &mut pr);
            pack_b_into(&blocked.view(), 0..19, 0..21, 16, &mut pb);
            assert_eq!(pr, pb, "{layout} pack_b");
            // Transposed and sub-window blocked views route through
            // the same fragment walker with remapped coordinates.
            pack_a_into(&row.t(), 0..21, 2..15, 4, &mut pr);
            pack_a_into(&blocked.t(), 0..21, 2..15, 4, &mut pb);
            assert_eq!(pr, pb, "{layout} pack_a transposed");
            let rs = row.view().submatrix(2..17, 1..20);
            let bs = blocked.view().submatrix(2..17, 1..20);
            pack_b_into(&rs, 3..15, 0..19, 8, &mut pr);
            pack_b_into(&bs, 3..15, 0..19, 8, &mut pb);
            assert_eq!(pr, pb, "{layout} pack_b sub-window");
        }
    }
}
