//! Borrowed, strided matrix views.
//!
//! A [`MatrixView`] is the BLAS-style window the GEMM entry points
//! consume: it can present a [`Matrix`] as-is, transposed (the `_tn`,
//! `_nt`, `_tt` operand variants the paper mentions via
//! `hgemm_tt()`), or restricted to a rectangular sub-block — all
//! without copying, through row/column strides.

use crate::matrix::Matrix;
use std::ops::Range;

/// Whether an operand enters the product as itself or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatOp {
    /// Use the matrix as stored.
    #[default]
    None,
    /// Use the transpose of the matrix.
    Transpose,
}

impl MatOp {
    /// BLAS-style one-letter tag (`n` / `t`).
    #[must_use]
    pub fn tag(self) -> char {
        match self {
            MatOp::None => 'n',
            MatOp::Transpose => 't',
        }
    }
}

/// A borrowed, possibly strided, possibly transposed window over a
/// matrix's storage.
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a, T> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    row_stride: usize,
    col_stride: usize,
}

impl<'a, T: Copy> MatrixView<'a, T> {
    /// Builds a view from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the view's furthest element would fall outside
    /// `data`.
    #[must_use]
    pub fn from_parts(data: &'a [T], rows: usize, cols: usize, row_stride: usize, col_stride: usize) -> Self {
        assert!(rows > 0 && cols > 0, "view dimensions must be non-zero");
        let last = (rows - 1) * row_stride + (cols - 1) * col_stride;
        assert!(last < data.len(), "view extends past the backing storage: last offset {last}, len {}", data.len());
        Self { data, rows, cols, row_stride, col_stride }
    }

    /// Rows of the view.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the view.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices (debug-friendly; the GEMM inner
    /// loops use [`get_unchecked_logical`](Self::row_slice) patterns
    /// only through checked slices).
    #[inline]
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.rows && col < self.cols, "view index ({row},{col}) out of bounds for {}x{}", self.rows, self.cols);
        self.data[row * self.row_stride + col * self.col_stride]
    }

    /// The transposed view (no data movement).
    #[must_use]
    pub fn t(&self) -> MatrixView<'a, T> {
        MatrixView {
            data: self.data,
            rows: self.cols,
            cols: self.rows,
            row_stride: self.col_stride,
            col_stride: self.row_stride,
        }
    }

    /// Applies `op` (identity or transpose).
    #[must_use]
    pub fn with_op(&self, op: MatOp) -> MatrixView<'a, T> {
        match op {
            MatOp::None => *self,
            MatOp::Transpose => self.t(),
        }
    }

    /// A rectangular sub-view.
    ///
    /// # Panics
    ///
    /// Panics if the ranges exceed the view or are empty.
    #[must_use]
    pub fn submatrix(&self, rows: Range<usize>, cols: Range<usize>) -> MatrixView<'a, T> {
        assert!(rows.end <= self.rows && cols.end <= self.cols, "submatrix out of bounds");
        assert!(!rows.is_empty() && !cols.is_empty(), "submatrix must be non-empty");
        MatrixView {
            data: &self.data[rows.start * self.row_stride + cols.start * self.col_stride..],
            rows: rows.len(),
            cols: cols.len(),
            row_stride: self.row_stride,
            col_stride: self.col_stride,
        }
    }

    /// `true` when rows are contiguous (`col_stride == 1`) — the fast
    /// path condition for the executor's microkernel.
    #[inline]
    #[must_use]
    pub fn rows_contiguous(&self) -> bool {
        self.col_stride == 1
    }

    /// The contiguous slice of row `row`, when
    /// [`rows_contiguous`](Self::rows_contiguous) holds.
    ///
    /// # Panics
    ///
    /// Panics if the view is not row-contiguous or `row` is out of
    /// bounds.
    #[inline]
    #[must_use]
    pub fn row_slice(&self, row: usize) -> &'a [T] {
        assert!(self.rows_contiguous(), "row_slice on a strided view");
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.row_stride..row * self.row_stride + self.cols]
    }

    /// Materializes the view into an owned row-major [`Matrix`].
    #[must_use]
    pub fn to_matrix(&self) -> Matrix<T>
    where
        T: Default,
    {
        Matrix::from_fn(self.rows, self.cols, streamk_types::Layout::RowMajor, |r, c| self.get(r, c))
    }
}

impl<T: Copy + Default> Matrix<T> {
    /// A full view of this matrix.
    #[must_use]
    pub fn view(&self) -> MatrixView<'_, T> {
        let (rs, cs) = match self.layout() {
            streamk_types::Layout::RowMajor => (self.cols(), 1),
            streamk_types::Layout::ColMajor => (1, self.rows()),
        };
        MatrixView::from_parts(self.as_slice(), self.rows(), self.cols(), rs, cs)
    }

    /// A transposed view of this matrix (no data movement).
    #[must_use]
    pub fn t(&self) -> MatrixView<'_, T> {
        self.view().t()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_types::Layout;

    fn counting(rows: usize, cols: usize, layout: Layout) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, layout, |r, c| (r * 100 + c) as f64)
    }

    #[test]
    fn full_view_matches_matrix() {
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let m = counting(3, 5, layout);
            let v = m.view();
            for r in 0..3 {
                for c in 0..5 {
                    assert_eq!(v.get(r, c), m.get(r, c), "{layout} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn transpose_view_swaps() {
        let m = counting(3, 5, Layout::RowMajor);
        let t = m.t();
        assert_eq!((t.rows(), t.cols()), (5, 3));
        assert_eq!(t.get(4, 2), m.get(2, 4));
        // Double transpose is the identity.
        let tt = t.t();
        assert_eq!(tt.get(2, 4), m.get(2, 4));
    }

    #[test]
    fn with_op() {
        let m = counting(2, 4, Layout::RowMajor);
        assert_eq!(m.view().with_op(MatOp::None).get(1, 3), m.get(1, 3));
        assert_eq!(m.view().with_op(MatOp::Transpose).get(3, 1), m.get(1, 3));
        assert_eq!(MatOp::None.tag(), 'n');
        assert_eq!(MatOp::Transpose.tag(), 't');
    }

    #[test]
    fn submatrix_offsets() {
        let m = counting(6, 8, Layout::RowMajor);
        let s = m.view().submatrix(2..5, 3..7);
        assert_eq!((s.rows(), s.cols()), (3, 4));
        assert_eq!(s.get(0, 0), m.get(2, 3));
        assert_eq!(s.get(2, 3), m.get(4, 6));
        // Sub-view of a transposed view.
        let st = m.t().submatrix(1..4, 2..6);
        assert_eq!(st.get(0, 0), m.get(2, 1));
    }

    #[test]
    fn contiguity_detection() {
        let m = counting(3, 4, Layout::RowMajor);
        assert!(m.view().rows_contiguous());
        assert!(!m.t().rows_contiguous());
        let c = counting(3, 4, Layout::ColMajor);
        assert!(!c.view().rows_contiguous());
        assert!(c.t().rows_contiguous());
        assert_eq!(m.view().row_slice(1), &[100.0, 101.0, 102.0, 103.0]);
    }

    #[test]
    fn to_matrix_round_trip() {
        let m = counting(4, 3, Layout::ColMajor);
        let owned = m.t().to_matrix();
        assert_eq!(owned.rows(), 3);
        assert_eq!(owned.get(2, 3), m.get(3, 2));
    }

    #[test]
    #[should_panic(expected = "past the backing")]
    fn oversized_view_panics() {
        let data = vec![0.0f64; 10];
        let _ = MatrixView::from_parts(&data, 3, 4, 4, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn submatrix_oob_panics() {
        let m = counting(3, 3, Layout::RowMajor);
        let _ = m.view().submatrix(0..4, 0..2);
    }
}
