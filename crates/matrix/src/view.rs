//! Borrowed, strided matrix views.
//!
//! A [`MatrixView`] is the BLAS-style window the GEMM entry points
//! consume: it can present a [`Matrix`] as-is, transposed (the `_tn`,
//! `_nt`, `_tt` operand variants the paper mentions via
//! `hgemm_tt()`), or restricted to a rectangular sub-block — all
//! without copying, through row/column strides.

use crate::matrix::Matrix;
use std::ops::Range;
use streamk_types::{Layout, FRAG};

/// Whether an operand enters the product as itself or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatOp {
    /// Use the matrix as stored.
    #[default]
    None,
    /// Use the transpose of the matrix.
    Transpose,
}

impl MatOp {
    /// BLAS-style one-letter tag (`n` / `t`).
    #[must_use]
    pub fn tag(self) -> char {
        match self {
            MatOp::None => 'n',
            MatOp::Transpose => 't',
        }
    }
}

/// Indexing metadata for a view over block-major storage, which two
/// strides cannot express. The view keeps the *whole* fragment-padded
/// storage slice and maps logical coordinates through
/// `Layout::index` — transposition and sub-windows are coordinate
/// remappings, not pointer offsets.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockInfo {
    /// `Layout::BlockMajor` or `Layout::BlockMajorZ`.
    pub(crate) layout: Layout,
    /// Storage-logical dimensions (before any transpose).
    pub(crate) base_rows: usize,
    pub(crate) base_cols: usize,
    /// View `(r, c)` reads storage `(c, r)` when set.
    pub(crate) transposed: bool,
    /// Sub-window origin in storage coordinates.
    pub(crate) origin_row: usize,
    pub(crate) origin_col: usize,
}

/// A borrowed, possibly strided, possibly transposed window over a
/// matrix's storage.
///
/// Views over the block-major layouts carry a [`BlockInfo`] instead of
/// meaningful strides; all element access routes through
/// [`get`](Self::get), and [`rows_contiguous`](Self::rows_contiguous)
/// reports `false` so strided fast paths never engage.
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a, T> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    row_stride: usize,
    col_stride: usize,
    block: Option<BlockInfo>,
}

impl<'a, T: Copy> MatrixView<'a, T> {
    /// Builds a view from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the view's furthest element would fall outside
    /// `data`.
    #[must_use]
    pub fn from_parts(data: &'a [T], rows: usize, cols: usize, row_stride: usize, col_stride: usize) -> Self {
        assert!(rows > 0 && cols > 0, "view dimensions must be non-zero");
        let last = (rows - 1) * row_stride + (cols - 1) * col_stride;
        assert!(last < data.len(), "view extends past the backing storage: last offset {last}, len {}", data.len());
        Self { data, rows, cols, row_stride, col_stride, block: None }
    }

    /// Builds a view over block-major storage.
    ///
    /// # Panics
    ///
    /// Panics if `layout` is not block-major or `data` is not exactly
    /// the fragment-padded storage of a `rows × cols` matrix.
    #[must_use]
    pub fn from_blocked(data: &'a [T], rows: usize, cols: usize, layout: Layout) -> Self {
        assert!(rows > 0 && cols > 0, "view dimensions must be non-zero");
        assert!(layout.is_blocked(), "from_blocked requires a block-major layout, got {layout}");
        assert_eq!(data.len(), layout.storage_len(rows, cols), "blocked storage length mismatch");
        Self {
            data,
            rows,
            cols,
            row_stride: 0,
            col_stride: 0,
            block: Some(BlockInfo {
                layout,
                base_rows: rows,
                base_cols: cols,
                transposed: false,
                origin_row: 0,
                origin_col: 0,
            }),
        }
    }

    /// Rows of the view.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the view.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices (debug-friendly; the GEMM inner
    /// loops use [`get_unchecked_logical`](Self::row_slice) patterns
    /// only through checked slices).
    #[inline]
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.rows && col < self.cols, "view index ({row},{col}) out of bounds for {}x{}", self.rows, self.cols);
        match self.block {
            None => self.data[row * self.row_stride + col * self.col_stride],
            Some(b) => {
                let (sr, sc) = if b.transposed {
                    (b.origin_row + col, b.origin_col + row)
                } else {
                    (b.origin_row + row, b.origin_col + col)
                };
                self.data[b.layout.index(sr, sc, b.base_rows, b.base_cols)]
            }
        }
    }

    /// The transposed view (no data movement).
    #[must_use]
    pub fn t(&self) -> MatrixView<'a, T> {
        MatrixView {
            data: self.data,
            rows: self.cols,
            cols: self.rows,
            row_stride: self.col_stride,
            col_stride: self.row_stride,
            block: self.block.map(|b| BlockInfo { transposed: !b.transposed, ..b }),
        }
    }

    /// Applies `op` (identity or transpose).
    #[must_use]
    pub fn with_op(&self, op: MatOp) -> MatrixView<'a, T> {
        match op {
            MatOp::None => *self,
            MatOp::Transpose => self.t(),
        }
    }

    /// A rectangular sub-view.
    ///
    /// # Panics
    ///
    /// Panics if the ranges exceed the view or are empty.
    #[must_use]
    pub fn submatrix(&self, rows: Range<usize>, cols: Range<usize>) -> MatrixView<'a, T> {
        assert!(rows.end <= self.rows && cols.end <= self.cols, "submatrix out of bounds");
        assert!(!rows.is_empty() && !cols.is_empty(), "submatrix must be non-empty");
        match self.block {
            None => MatrixView {
                data: &self.data[rows.start * self.row_stride + cols.start * self.col_stride..],
                rows: rows.len(),
                cols: cols.len(),
                row_stride: self.row_stride,
                col_stride: self.col_stride,
                block: None,
            },
            Some(b) => {
                // Blocked storage has no pointer-offset sub-windows;
                // shift the coordinate origin instead.
                let (dr, dc) =
                    if b.transposed { (cols.start, rows.start) } else { (rows.start, cols.start) };
                MatrixView {
                    data: self.data,
                    rows: rows.len(),
                    cols: cols.len(),
                    row_stride: 0,
                    col_stride: 0,
                    block: Some(BlockInfo {
                        origin_row: b.origin_row + dr,
                        origin_col: b.origin_col + dc,
                        ..b
                    }),
                }
            }
        }
    }

    /// `true` when rows are contiguous (`col_stride == 1`) — the fast
    /// path condition for the executor's microkernel. Always `false`
    /// for views over block-major storage.
    #[inline]
    #[must_use]
    pub fn rows_contiguous(&self) -> bool {
        self.block.is_none() && self.col_stride == 1
    }

    /// The storage layout behind this view when it is block-major.
    #[inline]
    #[must_use]
    pub fn block_layout(&self) -> Option<Layout> {
        self.block.map(|b| b.layout)
    }

    /// The backing slice and block metadata for views over blocked
    /// storage — the packers iterate fragments directly instead of
    /// paying a full swizzle-index computation per element.
    #[inline]
    pub(crate) fn blocked_parts(&self) -> Option<(&'a [T], BlockInfo)> {
        self.block.map(|b| (self.data, b))
    }

    /// The zero-pack bypass probe for an **A** operand: when this view
    /// is a full, untransposed window over `BlockMajor` (linear
    /// fragment order) storage, returns the raw panel table — the
    /// backing slice, whose `FRAG`-row panels are bit-identical BLIS
    /// packed-A panels — together with the padded k-stride
    /// (`cols` rounded up to `FRAG`). Sub-windows, transposes, and the
    /// Morton variant return `None` (their panels are not contiguous).
    #[inline]
    #[must_use]
    pub fn block_panels(&self) -> Option<(&'a [T], usize)> {
        match self.block {
            Some(b)
                if b.layout == Layout::BlockMajor
                    && !b.transposed
                    && b.origin_row == 0
                    && b.origin_col == 0
                    && self.rows == b.base_rows
                    && self.cols == b.base_cols =>
            {
                Some((self.data, self.cols.div_ceil(FRAG) * FRAG))
            }
            _ => None,
        }
    }

    /// The zero-pack bypass probe for a **B** operand: when this view
    /// is a full *transposed* window over `BlockMajor` storage (i.e.
    /// the caller stored Bᵀ block-major and views it back as `k × n`),
    /// returns the raw panel table and padded k-stride. Each `FRAG`-row
    /// panel of the Bᵀ storage is bit-identical to a BLIS packed-B
    /// column panel of B with `NR = FRAG`.
    #[inline]
    #[must_use]
    pub fn t_block_panels(&self) -> Option<(&'a [T], usize)> {
        match self.block {
            Some(b)
                if b.layout == Layout::BlockMajor
                    && b.transposed
                    && b.origin_row == 0
                    && b.origin_col == 0
                    && self.rows == b.base_cols
                    && self.cols == b.base_rows =>
            {
                Some((self.data, self.rows.div_ceil(FRAG) * FRAG))
            }
            _ => None,
        }
    }

    /// The contiguous slice of row `row`, when
    /// [`rows_contiguous`](Self::rows_contiguous) holds.
    ///
    /// # Panics
    ///
    /// Panics if the view is not row-contiguous or `row` is out of
    /// bounds.
    #[inline]
    #[must_use]
    pub fn row_slice(&self, row: usize) -> &'a [T] {
        assert!(self.rows_contiguous(), "row_slice on a strided view");
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.row_stride..row * self.row_stride + self.cols]
    }

    /// Materializes the view into an owned row-major [`Matrix`].
    #[must_use]
    pub fn to_matrix(&self) -> Matrix<T>
    where
        T: Default,
    {
        Matrix::from_fn(self.rows, self.cols, streamk_types::Layout::RowMajor, |r, c| self.get(r, c))
    }
}

impl<T: Copy + Default> Matrix<T> {
    /// A full view of this matrix.
    #[must_use]
    pub fn view(&self) -> MatrixView<'_, T> {
        let (rs, cs) = match self.layout() {
            Layout::RowMajor => (self.cols(), 1),
            Layout::ColMajor => (1, self.rows()),
            blocked => {
                return MatrixView::from_blocked(self.as_slice(), self.rows(), self.cols(), blocked)
            }
        };
        MatrixView::from_parts(self.as_slice(), self.rows(), self.cols(), rs, cs)
    }

    /// A transposed view of this matrix (no data movement).
    #[must_use]
    pub fn t(&self) -> MatrixView<'_, T> {
        self.view().t()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_types::Layout;

    fn counting(rows: usize, cols: usize, layout: Layout) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, layout, |r, c| (r * 100 + c) as f64)
    }

    #[test]
    fn full_view_matches_matrix() {
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let m = counting(3, 5, layout);
            let v = m.view();
            for r in 0..3 {
                for c in 0..5 {
                    assert_eq!(v.get(r, c), m.get(r, c), "{layout} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn transpose_view_swaps() {
        let m = counting(3, 5, Layout::RowMajor);
        let t = m.t();
        assert_eq!((t.rows(), t.cols()), (5, 3));
        assert_eq!(t.get(4, 2), m.get(2, 4));
        // Double transpose is the identity.
        let tt = t.t();
        assert_eq!(tt.get(2, 4), m.get(2, 4));
    }

    #[test]
    fn with_op() {
        let m = counting(2, 4, Layout::RowMajor);
        assert_eq!(m.view().with_op(MatOp::None).get(1, 3), m.get(1, 3));
        assert_eq!(m.view().with_op(MatOp::Transpose).get(3, 1), m.get(1, 3));
        assert_eq!(MatOp::None.tag(), 'n');
        assert_eq!(MatOp::Transpose.tag(), 't');
    }

    #[test]
    fn submatrix_offsets() {
        let m = counting(6, 8, Layout::RowMajor);
        let s = m.view().submatrix(2..5, 3..7);
        assert_eq!((s.rows(), s.cols()), (3, 4));
        assert_eq!(s.get(0, 0), m.get(2, 3));
        assert_eq!(s.get(2, 3), m.get(4, 6));
        // Sub-view of a transposed view.
        let st = m.t().submatrix(1..4, 2..6);
        assert_eq!(st.get(0, 0), m.get(2, 1));
    }

    #[test]
    fn contiguity_detection() {
        let m = counting(3, 4, Layout::RowMajor);
        assert!(m.view().rows_contiguous());
        assert!(!m.t().rows_contiguous());
        let c = counting(3, 4, Layout::ColMajor);
        assert!(!c.view().rows_contiguous());
        assert!(c.t().rows_contiguous());
        assert_eq!(m.view().row_slice(1), &[100.0, 101.0, 102.0, 103.0]);
    }

    #[test]
    fn to_matrix_round_trip() {
        let m = counting(4, 3, Layout::ColMajor);
        let owned = m.t().to_matrix();
        assert_eq!(owned.rows(), 3);
        assert_eq!(owned.get(2, 3), m.get(3, 2));
    }

    #[test]
    fn blocked_views_read_like_strided_views() {
        for layout in [Layout::BlockMajor, Layout::BlockMajorZ] {
            let row = counting(13, 21, Layout::RowMajor);
            let blocked = row.to_layout(layout);
            let v = blocked.view();
            assert!(!v.rows_contiguous());
            assert_eq!(v.block_layout(), Some(layout));
            for r in 0..13 {
                for c in 0..21 {
                    assert_eq!(v.get(r, c), row.get(r, c), "{layout} ({r},{c})");
                }
            }
            // Transpose and sub-window are coordinate remappings.
            let t = v.t();
            assert_eq!(t.get(20, 12), row.get(12, 20));
            let s = v.submatrix(2..9, 5..18);
            assert_eq!(s.get(0, 0), row.get(2, 5));
            assert_eq!(s.get(6, 12), row.get(8, 17));
            let st = t.submatrix(1..4, 2..6);
            assert_eq!(st.get(0, 0), row.get(2, 1));
        }
    }

    #[test]
    fn block_panel_probes_gate_correctly() {
        let m = counting(16, 24, Layout::RowMajor).to_layout(Layout::BlockMajor);
        let v = m.view();
        let (panels, k_pad) = v.block_panels().expect("full linear blocked view bypasses");
        assert_eq!(k_pad, 24);
        assert_eq!(panels.len(), m.as_slice().len());
        // Transposed full view flips to the B-side probe.
        assert!(v.t().block_panels().is_none());
        let (tp, tk) = v.t().t_block_panels().expect("transposed blocked view is a B panel table");
        assert_eq!((tp.len(), tk), (panels.len(), 24));
        // Sub-windows and Morton order do not bypass.
        assert!(v.submatrix(0..8, 0..24).block_panels().is_none());
        assert!(counting(16, 24, Layout::RowMajor)
            .to_layout(Layout::BlockMajorZ)
            .view()
            .block_panels()
            .is_none());
        // Ragged k pads the stride up to the fragment edge.
        let ragged = counting(16, 21, Layout::RowMajor).to_layout(Layout::BlockMajor);
        assert_eq!(ragged.view().block_panels().unwrap().1, 24);
    }

    #[test]
    #[should_panic(expected = "past the backing")]
    fn oversized_view_panics() {
        let data = vec![0.0f64; 10];
        let _ = MatrixView::from_parts(&data, 3, 4, 4, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn submatrix_oob_panics() {
        let m = counting(3, 3, Layout::RowMajor);
        let _ = m.view().submatrix(0..4, 0..2);
    }
}
