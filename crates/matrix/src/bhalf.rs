//! A software bfloat16 ("brain float") type.
//!
//! CUTLASS ships its Stream-K kernels for bf16 alongside f16, and
//! mixed bf16→f32 GEMM dominates deep-learning training today. The
//! format is the top 16 bits of an IEEE binary32 — 1 sign, 8 exponent,
//! 7 mantissa bits — so it trades f16's precision for f32's full
//! exponent range: conversions never overflow to infinity for finite
//! f32 inputs, and there are no bf16-specific subnormal surprises
//! (subnormals are just inherited from f32's bottom range).
//!
//! As with [`f16`](crate::f16), arithmetic happens after promotion to
//! f32; the type models storage rounding only. Conversion uses
//! round-to-nearest-even, matching hardware cvt instructions (the
//! cheaper truncation variant is provided separately for tests and
//! comparisons).

use std::cmp::Ordering;
use std::fmt;

/// bfloat16: the high half of an IEEE 754 binary32.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Default)]
pub struct bf16(u16);

impl bf16 {
    /// Positive zero.
    pub const ZERO: bf16 = bf16(0);
    /// One.
    pub const ONE: bf16 = bf16(0x3F80);
    /// Positive infinity.
    pub const INFINITY: bf16 = bf16(0x7F80);
    /// A quiet NaN.
    pub const NAN: bf16 = bf16(0x7FC0);
    /// Largest finite value ≈ 3.3895 × 10³⁸.
    pub const MAX: bf16 = bf16(0x7F7F);
    /// The difference between 1.0 and the next larger representable
    /// value: 2⁻⁷.
    pub const EPSILON: bf16 = bf16(0x3C00);

    /// Constructs from the raw bit pattern.
    #[inline]
    #[must_use]
    pub const fn from_bits(bits: u16) -> Self {
        bf16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    #[must_use]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` with round-to-nearest-even.
    #[must_use]
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        if value.is_nan() {
            // Keep a quiet NaN, preserving the sign and top payload
            // bit so the result is still NaN after truncation.
            return bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the 16 dropped bits.
        let round_bit = 0x0000_8000u32;
        let rem = bits & 0x0000_FFFF;
        let mut hi = (bits >> 16) as u16;
        if rem > round_bit || (rem == round_bit && (hi & 1) == 1) {
            hi = hi.wrapping_add(1); // may carry into exponent: monotone representation makes this correct
        }
        bf16(hi)
    }

    /// Converts an `f32` by truncation (the historically common cheap
    /// path; biased toward zero by up to one ulp).
    #[must_use]
    pub fn from_f32_truncate(value: f32) -> Self {
        if value.is_nan() {
            return bf16(((value.to_bits() >> 16) as u16) | 0x0040);
        }
        bf16((value.to_bits() >> 16) as u16)
    }

    /// Converts to `f32` exactly (pad with zero mantissa bits).
    #[inline]
    #[must_use]
    pub fn to_f32(self) -> f32 {
        f32::from_bits(u32::from(self.0) << 16)
    }

    /// Converts an `f64` through `f32`.
    #[must_use]
    pub fn from_f64(value: f64) -> Self {
        Self::from_f32(value as f32)
    }

    /// Converts to `f64` exactly.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// `true` if NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// `true` if ±∞.
    #[must_use]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7F80
    }

    /// `true` if neither infinite nor NaN.
    #[must_use]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7F80) != 0x7F80
    }
}

impl From<bf16> for f32 {
    fn from(value: bf16) -> f32 {
        value.to_f32()
    }
}

impl PartialEq for bf16 {
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}bf16", self.to_f32())
    }
}

impl fmt::Display for bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl crate::scalar::Promote<f32> for bf16 {
    #[inline]
    fn promote(self) -> f32 {
        self.to_f32()
    }

    #[inline]
    fn demote_from_f64(value: f64) -> Self {
        bf16::from_f64(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(bf16::ZERO.to_f32(), 0.0);
        assert_eq!(bf16::ONE.to_f32(), 1.0);
        assert_eq!(bf16::EPSILON.to_f32(), 2.0f32.powi(-7));
        assert!(bf16::INFINITY.is_infinite());
        assert!(bf16::NAN.is_nan());
    }

    #[test]
    fn exact_values_round_trip() {
        // Powers of two and small integers are exact in bf16.
        for v in [0.5f32, 1.0, -2.0, 3.0, 128.0, -0.25] {
            assert_eq!(bf16::from_f32(v).to_f32(), v, "{v}");
        }
        // Wide-range values survive within one ulp (2^-8 relative) —
        // the exponent range is f32's, unlike f16.
        for v in [1.0e20f32, -1.0e-20, 2.9e38, 1.1e-38] {
            let b = bf16::from_f32(v);
            assert!((b.to_f32() - v).abs() <= v.abs() * 2.0f32.powi(-8), "{v}");
        }
    }

    #[test]
    fn no_overflow_for_finite_f32() {
        // Unlike f16, bf16 covers f32's whole exponent range.
        let b = bf16::from_f32(f32::MAX);
        assert!(b.is_finite() || b.is_infinite()); // MAX rounds up to inf
        let b = bf16::from_f32(3.0e38);
        assert!(b.to_f32() > 2.9e38);
        assert!(!bf16::from_f32(1.0e30).is_infinite());
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-8 is halfway between 1.0 and 1 + 2^-7: rounds to even (1.0).
        assert_eq!(bf16::from_f32(1.0 + 2.0f32.powi(-8)).to_f32(), 1.0);
        // 1 + 3·2^-8 is halfway between 1+2^-7 and 1+2^-6: rounds up.
        assert_eq!(bf16::from_f32(1.0 + 3.0 * 2.0f32.powi(-8)).to_f32(), 1.0 + 2.0f32.powi(-6));
        // Just above halfway rounds away.
        assert_eq!(bf16::from_f32(1.0 + 2.0f32.powi(-8) + 1.0e-6).to_f32(), 1.0 + 2.0f32.powi(-7));
    }

    #[test]
    fn truncation_is_biased_rounding_is_not() {
        let v = 1.0 + 2.0f32.powi(-8) + 2.0f32.powi(-12); // above halfway
        assert_eq!(bf16::from_f32_truncate(v).to_f32(), 1.0); // truncates down
        assert_eq!(bf16::from_f32(v).to_f32(), 1.0 + 2.0f32.powi(-7)); // rounds up
    }

    /// Exhaustive: every bit pattern survives bf16 → f32 → bf16.
    #[test]
    fn exhaustive_round_trip() {
        for bits in 0..=u16::MAX {
            let b = bf16::from_bits(bits);
            let back = bf16::from_f32(b.to_f32());
            if b.is_nan() {
                assert!(back.is_nan(), "bits {bits:#06x} lost NaN-ness");
            } else {
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x} changed");
            }
        }
    }

    #[test]
    fn rounding_carry_into_exponent() {
        // Largest value below 2.0 rounds up to exactly 2.0.
        let v = 2.0 - 2.0f32.powi(-9);
        assert_eq!(bf16::from_f32(v).to_f32(), 2.0);
    }

    #[test]
    fn gemm_with_bf16_inputs() {
        use crate::matrix::Matrix;
        use crate::reference::gemm_naive;
        use streamk_types::Layout;
        let a = Matrix::<bf16>::random::<f32>(8, 12, Layout::RowMajor, 1);
        let b = Matrix::<bf16>::random::<f32>(12, 6, Layout::RowMajor, 2);
        let c = gemm_naive::<bf16, f32>(&a, &b);
        // Cross-check against f64 on the promoted values.
        let a64 = Matrix::<f64>::from_fn(8, 12, Layout::RowMajor, |r, cc| a.get(r, cc).to_f64());
        let b64 = Matrix::<f64>::from_fn(12, 6, Layout::RowMajor, |r, cc| b.get(r, cc).to_f64());
        let c64 = gemm_naive::<f64, f64>(&a64, &b64);
        for r in 0..8 {
            for cc in 0..6 {
                assert!((f64::from(c.get(r, cc)) - c64.get(r, cc)).abs() < 1e-4);
            }
        }
    }
}
