//! Dense matrices and reference GEMM implementations.
//!
//! This crate provides the numerical substrate of the Stream-K
//! reproduction:
//!
//! - [`f16`] — a software IEEE 754 binary16 type, because the paper's
//!   FP16→32 GEMM consumes half-precision inputs and this workspace
//!   has no hardware half support (see DESIGN.md §1) — and [`bf16`],
//!   the brain-float sibling CUTLASS ships Stream-K kernels for.
//! - [`Scalar`] / [`Promote`] — the numeric abstraction that lets one
//!   generic GEMM cover f64 (FP64), f32, and f16-in/f32-accumulate
//!   (FP16→32).
//! - [`Matrix`] — an owned dense matrix with row- or column-major
//!   layout.
//! - [`reference::gemm_naive`] — the ground-truth triple loop.
//! - [`blocked::gemm_blocked`] — the sequential cache-blocked GEMM of
//!   the paper's Algorithm 1.
//! - [`pack`] — BLIS-style operand packing into `MR`/`NR` panels, the
//!   cache-blocked layout the packed microkernel pipeline walks with
//!   unit stride.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod bhalf;
pub mod blocked;
pub mod gemm_ex;
mod half;
pub mod matrix;
pub mod pack;
pub mod reference;
pub mod scalar;
pub mod view;

pub use bhalf::bf16;
pub use half::f16;
pub use pack::{pack_a_into, pack_b_into, packed_a_len, packed_b_len};
pub use matrix::Matrix;
pub use scalar::{Promote, Scalar};
pub use view::{MatOp, MatrixView};
pub use gemm_ex::gemm_ex_reference;
