//! A software IEEE 754 binary16 ("half precision") type.
//!
//! The paper's FP16→32 GEMM reads half-precision **A** and **B**
//! matrices and accumulates in f32 (§6). Rust has no stable `f16`
//! primitive and this workspace avoids external crates beyond its
//! allow-list, so we implement binary16 storage ourselves: a 16-bit
//! pattern (1 sign, 5 exponent, 10 mantissa bits) with bit-exact
//! conversion to and from `f32`, including subnormals, infinities, NaN
//! and round-to-nearest-even.
//!
//! Arithmetic is deliberately *not* implemented on `f16` itself: just
//! like tensor cores, all arithmetic happens at f32 (or wider) after
//! promotion. The type exists purely to model storage rounding.

use std::cmp::Ordering;
use std::fmt;

/// IEEE 754 binary16 floating point, stored as its raw bit pattern.
///
/// ```
/// use streamk_matrix::f16;
///
/// let h = f16::from_f32(1.5);          // exactly representable
/// assert_eq!(h.to_f32(), 1.5);
/// assert_eq!(f16::from_f32(65504.0), f16::MAX);
/// assert!(f16::from_f32(1.0e9).is_infinite()); // overflow saturates
/// ```
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Default)]
pub struct f16(u16);

const EXP_BITS: u32 = 5;
const MAN_BITS: u32 = 10;
const EXP_BIAS: i32 = 15;
const EXP_MASK: u16 = ((1 << EXP_BITS) - 1) << MAN_BITS; // 0x7C00
const MAN_MASK: u16 = (1 << MAN_BITS) - 1; // 0x03FF
const SIGN_MASK: u16 = 0x8000;

impl f16 {
    /// Positive zero.
    pub const ZERO: f16 = f16(0);
    /// One.
    pub const ONE: f16 = f16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: f16 = f16(EXP_MASK);
    /// Negative infinity.
    pub const NEG_INFINITY: f16 = f16(EXP_MASK | SIGN_MASK);
    /// A quiet NaN.
    pub const NAN: f16 = f16(EXP_MASK | 0x0200);
    /// Largest finite value: 65504.
    pub const MAX: f16 = f16(0x7BFF);
    /// Smallest positive normal value: 2^-14.
    pub const MIN_POSITIVE: f16 = f16(0x0400);
    /// Smallest positive subnormal value: 2^-24.
    pub const MIN_POSITIVE_SUBNORMAL: f16 = f16(0x0001);
    /// The difference between 1.0 and the next larger representable
    /// value: 2^-10.
    pub const EPSILON: f16 = f16(0x1400);

    /// Constructs an `f16` from its raw bit pattern.
    #[inline]
    #[must_use]
    pub const fn from_bits(bits: u16) -> Self {
        f16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    #[must_use]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `f16` with round-to-nearest-even, the
    /// rounding mode used by GPU conversion instructions.
    #[must_use]
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN. Preserve NaN payload top bit so NaNs
            // stay NaNs; collapse the rest.
            return if man == 0 {
                f16(sign | EXP_MASK)
            } else {
                f16(sign | EXP_MASK | 0x0200 | ((man >> 13) as u16 & MAN_MASK))
            };
        }

        // Unbiased exponent of the f32 value.
        let unbiased = exp - 127;
        let half_exp = unbiased + EXP_BIAS;

        if half_exp >= 0x1F {
            // Overflows binary16 range: round to infinity.
            return f16(sign | EXP_MASK);
        }

        if half_exp <= 0 {
            // Result is subnormal (or rounds to zero). The implicit
            // leading 1 becomes explicit and the mantissa is shifted
            // right by the exponent deficit.
            if half_exp < -10 {
                // Too small for even the largest subnormal rounding.
                return f16(sign);
            }
            let man = man | 0x0080_0000; // make the leading 1 explicit
            let shift = (14 - half_exp) as u32; // 14..=24
            let half_man = man >> shift;
            // Round to nearest even on the bits shifted out.
            let rem = man & ((1 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let rounded = match rem.cmp(&halfway) {
                Ordering::Greater => half_man + 1,
                Ordering::Equal => half_man + (half_man & 1),
                Ordering::Less => half_man,
            };
            return f16(sign | rounded as u16);
        }

        // Normal result: keep top 10 mantissa bits, round on the 13
        // dropped bits.
        let half_man = man >> 13;
        let rem = man & 0x1FFF;
        let rounded = match rem.cmp(&0x1000) {
            Ordering::Greater => half_man + 1,
            Ordering::Equal => half_man + (half_man & 1),
            Ordering::Less => half_man,
        };
        // Mantissa overflow from rounding carries into the exponent —
        // adding works because the representation is monotone.
        let bits = ((half_exp as u32) << MAN_BITS) + rounded;
        if bits >= (0x1F << MAN_BITS) {
            f16(sign | EXP_MASK)
        } else {
            f16(sign | bits as u16)
        }
    }

    /// Converts to `f32` exactly (every binary16 value is
    /// representable in binary32).
    #[must_use]
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & SIGN_MASK) << 16;
        let exp = (self.0 & EXP_MASK) >> MAN_BITS;
        let man = u32::from(self.0 & MAN_MASK);

        let bits = match exp {
            0 => {
                if man == 0 {
                    sign // signed zero
                } else {
                    // Subnormal: value = man × 2^-24. Normalize it.
                    let shift = man.leading_zeros() - (32 - MAN_BITS - 1);
                    let man = (man << shift) & u32::from(MAN_MASK);
                    let exp = (127 - EXP_BIAS - shift as i32 + 1) as u32;
                    sign | (exp << 23) | (man << 13)
                }
            }
            0x1F => sign | 0x7F80_0000 | (man << 13), // inf / NaN
            _ => {
                let exp = u32::from(exp) as i32 - EXP_BIAS + 127;
                sign | ((exp as u32) << 23) | (man << 13)
            }
        };
        f32::from_bits(bits)
    }

    /// Converts an `f64` through `f32` to `f16`. Double rounding is
    /// acceptable here because callers only use this for test-data
    /// generation, never in a numerical kernel.
    #[must_use]
    pub fn from_f64(value: f64) -> Self {
        Self::from_f32(value as f32)
    }

    /// Converts to `f64` exactly.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// `true` if this value is NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// `true` if this value is positive or negative infinity.
    #[must_use]
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// `true` if this value is neither infinite nor NaN.
    #[must_use]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// `true` if the sign bit is set (including -0.0 and NaNs with the
    /// sign bit set).
    #[must_use]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }
}

impl From<f16> for f32 {
    fn from(value: f16) -> f32 {
        value.to_f32()
    }
}

impl From<f16> for f64 {
    fn from(value: f16) -> f64 {
        value.to_f64()
    }
}

impl PartialEq for f16 {
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for f16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}f16", self.to_f32())
    }
}

impl fmt::Display for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_round_trip() {
        assert_eq!(f16::ZERO.to_f32(), 0.0);
        assert_eq!(f16::ONE.to_f32(), 1.0);
        assert_eq!(f16::MAX.to_f32(), 65504.0);
        assert_eq!(f16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(f16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(f16::EPSILON.to_f32(), 2.0f32.powi(-10));
    }

    #[test]
    fn simple_values() {
        for v in [0.5f32, 1.0, 2.0, -3.25, 100.0, 0.099975586, 1024.0] {
            let h = f16::from_f32(v);
            // These are all exactly representable (or chosen as exact
            // binary16 values).
            if v == 0.099975586 {
                assert!((h.to_f32() - v).abs() < 1e-4);
            } else {
                assert_eq!(h.to_f32(), v, "value {v}");
            }
        }
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert!(f16::from_f32(65520.0).is_infinite());
        assert!(f16::from_f32(1e10).is_infinite());
        assert!(f16::from_f32(-1e10).is_infinite());
        assert!(f16::from_f32(-1e10).is_sign_negative());
        // 65504 is the max finite value and must NOT overflow.
        assert_eq!(f16::from_f32(65504.0).to_f32(), 65504.0);
    }

    #[test]
    fn underflow_rounds_to_zero() {
        let tiny = f16::from_f32(1e-10);
        assert_eq!(tiny.to_f32(), 0.0);
        let neg_tiny = f16::from_f32(-1e-10);
        assert_eq!(neg_tiny.to_f32(), -0.0);
        assert!(neg_tiny.is_sign_negative());
    }

    #[test]
    fn subnormals_round_trip() {
        // Every subnormal is k * 2^-24 for k in 1..1024.
        for k in [1u32, 2, 3, 511, 512, 1023] {
            let v = k as f32 * 2.0f32.powi(-24);
            let h = f16::from_f32(v);
            assert_eq!(h.to_f32(), v, "subnormal k={k}");
        }
    }

    #[test]
    fn nan_propagates() {
        assert!(f16::NAN.is_nan());
        assert!(f16::from_f32(f32::NAN).is_nan());
        assert!(f16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn infinities() {
        assert_eq!(f16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(f16::from_f32(f32::NEG_INFINITY).to_f32(), f32::NEG_INFINITY);
        assert_eq!(f16::INFINITY.to_f32(), f32::INFINITY);
        assert_eq!(f16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10;
        // nearest-even rounds down to 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(halfway).to_f32(), 1.0);
        // 1 + 3·2^-11 is halfway between 1+2^-10 and 1+2^-9;
        // nearest-even rounds up to 1+2^-9.
        let halfway_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(halfway_up).to_f32(), 1.0 + 2.0f32.powi(-9));
        // Just above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(f16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn mantissa_rounding_carries_into_exponent() {
        // The largest value below 2.0 rounds up to exactly 2.0.
        let v = 2.0 - 2.0f32.powi(-12);
        assert_eq!(f16::from_f32(v).to_f32(), 2.0);
    }

    /// Exhaustive: every one of the 65536 bit patterns must survive a
    /// f16 → f32 → f16 round trip (NaNs must stay NaN).
    #[test]
    fn exhaustive_round_trip() {
        for bits in 0..=u16::MAX {
            let h = f16::from_bits(bits);
            let back = f16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(back.is_nan(), "bits {bits:#06x} lost NaN-ness");
            } else {
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x} changed");
            }
        }
    }

    /// Conversion must be monotone: larger f32 in, not-smaller f16 out.
    #[test]
    fn conversion_is_monotone() {
        let mut prev = f16::from_f32(-70000.0);
        let mut v = -70000.0f32;
        while v < 70000.0 {
            let h = f16::from_f32(v);
            assert!(h >= prev, "non-monotone at {v}");
            prev = h;
            v += 13.7;
        }
    }

    #[test]
    fn ordering_matches_f32() {
        let a = f16::from_f32(1.5);
        let b = f16::from_f32(2.5);
        assert!(a < b);
        assert!(f16::NAN.partial_cmp(&a).is_none());
    }
}
