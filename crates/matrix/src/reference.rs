//! Ground-truth naive GEMM.
//!
//! The simplest possible triple loop, used as the oracle every other
//! implementation in the workspace is verified against. It accumulates
//! in the accumulator type `Acc` after promoting each input element,
//! exactly as the paper's mixed-precision pipeline does.

use crate::matrix::Matrix;
use crate::scalar::{Promote, Scalar};
use streamk_types::GemmShape;

/// Computes `C = A · B` with a naive `m × n × k` triple loop.
///
/// * `a` is `m × k`, `b` is `k × n`; the result is `m × n` in `a`'s
///   layout.
/// * Accumulation order is the canonical ascending-k order, which the
///   blocked and parallel implementations match *except* at tile-split
///   seams (where addition reassociates — tolerance-checked in tests).
///
/// # Panics
///
/// Panics if the operand dimensions are not conformant.
#[must_use]
pub fn gemm_naive<In, Acc>(a: &Matrix<In>, b: &Matrix<In>) -> Matrix<Acc>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree: A is {}x{}, B is {}x{}", a.rows(), a.cols(), b.rows(), b.cols());
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let mut c = Matrix::<Acc>::zeros(m, n, a.layout());
    for i in 0..m {
        for j in 0..n {
            let mut acc = Acc::ZERO;
            for p in 0..k {
                acc = acc.mac(a.get(i, p).promote(), b.get(p, j).promote());
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// The [`GemmShape`] of the product `a · b`.
///
/// # Panics
///
/// Panics if the operands are not conformant.
#[must_use]
pub fn product_shape<In>(a: &Matrix<In>, b: &Matrix<In>) -> GemmShape {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    GemmShape::new(a.rows(), b.cols(), a.cols())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::half::f16;
    use streamk_types::Layout;

    #[test]
    fn identity_times_anything() {
        let eye = Matrix::<f64>::from_fn(3, 3, Layout::RowMajor, |r, c| if r == c { 1.0 } else { 0.0 });
        let b = Matrix::<f64>::random::<f64>(3, 5, Layout::RowMajor, 1);
        let c = gemm_naive::<f64, f64>(&eye, &b);
        c.assert_close(&b, 0.0);
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::<f64>::from_fn(2, 2, Layout::RowMajor, |r, c| (r * 2 + c + 1) as f64); // [[1,2],[3,4]]
        let b = Matrix::<f64>::from_fn(2, 2, Layout::RowMajor, |r, c| (r * 2 + c + 5) as f64); // [[5,6],[7,8]]
        let c = gemm_naive::<f64, f64>(&a, &b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn layout_invariance() {
        let a_r = Matrix::<f64>::random::<f64>(7, 5, Layout::RowMajor, 2);
        let b_r = Matrix::<f64>::random::<f64>(5, 9, Layout::RowMajor, 3);
        let a_c = a_r.to_layout(Layout::ColMajor);
        let b_c = b_r.to_layout(Layout::ColMajor);
        let c_r = gemm_naive::<f64, f64>(&a_r, &b_r);
        let c_c = gemm_naive::<f64, f64>(&a_c, &b_c);
        c_r.assert_close(&c_c.to_layout(Layout::RowMajor), 0.0);
    }

    #[test]
    fn mixed_precision_accumulates_in_f32() {
        // With f16 inputs that are exactly representable, a short
        // accumulation is exact in f32.
        let a = Matrix::<f16>::patterned::<f32>(4, 6, Layout::RowMajor);
        let b = Matrix::<f16>::patterned::<f32>(6, 3, Layout::RowMajor);
        let c = gemm_naive::<f16, f32>(&a, &b);
        // Cross-check against an all-f64 computation of the same values.
        let a64 = Matrix::<f64>::from_fn(4, 6, Layout::RowMajor, |r, c| a.get(r, c).to_f64());
        let b64 = Matrix::<f64>::from_fn(6, 3, Layout::RowMajor, |r, c| b.get(r, c).to_f64());
        let c64 = gemm_naive::<f64, f64>(&a64, &b64);
        for r in 0..4 {
            for cc in 0..3 {
                assert_eq!(f64::from(c.get(r, cc)), c64.get(r, cc));
            }
        }
    }

    #[test]
    fn product_shape_reports_mnk() {
        let a = Matrix::<f64>::zeros(4, 7, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(7, 3, Layout::RowMajor);
        assert_eq!(product_shape(&a, &b), GemmShape::new(4, 3, 7));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn nonconformant_panics() {
        let a = Matrix::<f64>::zeros(4, 7, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(6, 3, Layout::RowMajor);
        let _ = gemm_naive::<f64, f64>(&a, &b);
    }
}
