//! Property tests for the simulator's conservation laws.

use proptest::prelude::*;
use streamk_core::Decomposition;
use streamk_core::Strategy as Decomp;
use streamk_sim::{simulate, GpuSpec};
use streamk_types::{GemmShape, Precision, TileShape};

fn shapes() -> impl proptest::strategy::Strategy<Value = GemmShape> {
    (1usize..700, 1usize..700, 1usize..900).prop_map(|(m, n, k)| GemmShape::new(m, n, k))
}

fn tiles() -> impl proptest::strategy::Strategy<Value = TileShape> {
    (
        prop_oneof![Just(32usize), Just(64), Just(128), Just(48)],
        prop_oneof![Just(32usize), Just(64), Just(128)],
        prop_oneof![Just(8usize), Just(16), Just(32)],
    )
        .prop_map(|(m, n, k)| TileShape::new(m, n, k))
}

fn strategies() -> impl proptest::strategy::Strategy<Value = Decomp> {
    prop_oneof![
        Just(Decomp::DataParallel),
        (1usize..8).prop_map(|split| Decomp::FixedSplit { split }),
        (1usize..200).prop_map(|grid| Decomp::StreamK { grid }),
        (1usize..130).prop_map(|sms| Decomp::DpOneTileStreamK { sms }),
        (1usize..130).prop_map(|sms| Decomp::TwoTileStreamKDp { sms }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any decomposition simulates on any GPU without deadlock, and
    /// the report obeys the conservation laws: spans fit within the
    /// makespan, per-SM spans never overlap, utilization and
    /// quantization efficiency are proper fractions, and every
    /// iteration is accounted for.
    #[test]
    fn report_conservation_laws(
        shape in shapes(),
        tile in tiles(),
        strategy in strategies(),
        precision in prop_oneof![Just(Precision::Fp64), Just(Precision::Fp16To32)],
        gpu in prop_oneof![
            Just(GpuSpec::a100()),
            Just(GpuSpec::a100_ideal()),
            Just(GpuSpec::hypothetical_4sm()),
            Just(GpuSpec::h100_like()),
            Just(GpuSpec::v100_like()),
        ],
    ) {
        let d = Decomposition::from_strategy(shape, tile, strategy);
        let r = simulate(&d, &gpu, precision);

        prop_assert!(r.makespan.is_finite() && r.makespan > 0.0);
        prop_assert!(r.makespan + 1e-18 >= r.compute_makespan.max(r.memory_time));
        prop_assert!(r.utilization() > 0.0 && r.utilization() <= 1.0 + 1e-9, "util {}", r.utilization());
        prop_assert!(r.quantization_efficiency() <= 1.0 + 1e-9);

        // Iteration accounting.
        let span_iters: usize = r.spans.iter().map(|s| s.iters).sum();
        prop_assert_eq!(span_iters, d.space().total_iters());

        // Per-SM spans must not overlap.
        let mut per_sm: Vec<Vec<(f64, f64)>> = vec![Vec::new(); r.sms];
        for s in &r.spans {
            prop_assert!(s.end >= s.start);
            prop_assert!(s.end <= r.compute_makespan + 1e-15);
            per_sm[s.sm].push((s.start, s.end));
        }
        for sm_spans in &mut per_sm {
            sm_spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in sm_spans.windows(2) {
                prop_assert!(pair[1].0 >= pair[0].1 - 1e-15, "SM overlap: {pair:?}");
            }
        }
    }

    /// On an overhead-free GPU the quantization efficiency equals the
    /// analytic value total_iters / (waves · p · max_share)... more
    /// robustly: Stream-K with g = p·k (perfect split) reaches 100%.
    #[test]
    fn stream_k_full_grid_is_perfect_on_ideal_gpu(
        tiles_m in 1usize..12,
        tiles_n in 1usize..12,
        iters in 1usize..40,
        waves in 1usize..4,
    ) {
        // Construct a problem whose iteration count divides evenly by
        // the grid: total = tiles·iters, grid = total / waves (when it
        // divides).
        let tile = TileShape::new(32, 32, 8);
        let shape = GemmShape::new(tiles_m * 32, tiles_n * 32, iters * 8);
        let total = tiles_m * tiles_n * iters;
        prop_assume!(total % waves == 0);
        let g = total / waves;
        let mut gpu = GpuSpec::hypothetical_4sm();
        gpu.sms = g.max(1);
        let d = Decomposition::stream_k(shape, tile, g);
        let r = simulate(&d, &gpu, Precision::Fp64);
        prop_assert!((r.quantization_efficiency() - 1.0).abs() < 1e-9,
            "qe = {}", r.quantization_efficiency());
    }

    /// Monotonicity: on the ideal GPU, Stream-K at g = p never loses
    /// to data-parallel of the same blocking (it can only balance
    /// better).
    #[test]
    fn ideal_stream_k_never_loses_to_dp(shape in shapes(), tile in tiles()) {
        let gpu = GpuSpec::a100_ideal();
        let sk = simulate(&Decomposition::stream_k(shape, tile, gpu.sms), &gpu, Precision::Fp64);
        let dp = simulate(&Decomposition::data_parallel(shape, tile), &gpu, Precision::Fp64);
        prop_assert!(sk.makespan <= dp.makespan * (1.0 + 1e-9),
            "sk {} > dp {}", sk.makespan, dp.makespan);
    }
}
