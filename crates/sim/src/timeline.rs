//! ASCII Gantt rendering of execution schedules.
//!
//! Reproduces the schedule illustrations of the paper's Figures 1-3
//! and 9 as terminal output: one row per SM, CTAs as labeled blocks,
//! time flowing left to right.

use crate::report::SimReport;

/// Renders `report`'s schedule as an ASCII Gantt chart `width`
/// characters wide. Each SM is one row; each CTA appears as a block
/// of its (last two digits of) id, with `·` marking idle time and `~`
/// marking fixup-wait stalls at the end of a CTA's span.
///
/// Intended for the small hypothetical-GPU schedules; rendering a
/// 108-SM report works but is mostly useful piped to a file.
#[must_use]
pub fn render_gantt(report: &SimReport, width: usize) -> String {
    let width = width.max(10);
    let makespan = report.compute_makespan.max(f64::MIN_POSITIVE);
    let scale = width as f64 / makespan;

    let mut rows: Vec<Vec<char>> = vec![vec!['·'; width]; report.sms];
    for span in &report.spans {
        let c0 = ((span.start * scale) as usize).min(width - 1);
        let c1 = (((span.end * scale).ceil()) as usize).clamp(c0 + 1, width);
        let label: Vec<char> = format!("{:02}", span.cta_id % 100).chars().collect();
        let wait_cols = ((span.waited * scale).round() as usize).min(c1 - c0);
        let row = &mut rows[span.sm];
        for (i, cell) in row[c0..c1].iter_mut().enumerate() {
            let pos = c1 - c0 - 1 - i; // distance from the right edge
            *cell = if pos < wait_cols {
                '~'
            } else if i == 0 {
                '['
            } else if i == c1 - c0 - 1 {
                ']'
            } else {
                label[(i - 1) % label.len()]
            };
        }
    }

    let mut out = String::new();
    for (sm, row) in rows.iter().enumerate() {
        out.push_str(&format!("SM{sm:<3}|"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "      makespan {:.3e}s  quantization {:.1}%  utilization {:.1}%\n",
        report.compute_makespan,
        report.quantization_efficiency() * 100.0,
        report.utilization() * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::gpu::GpuSpec;
    use streamk_core::Decomposition;
    use streamk_types::{GemmShape, Precision, TileShape};

    #[test]
    fn renders_one_row_per_sm() {
        let d = Decomposition::data_parallel(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 128));
        let r = simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
        let g = render_gantt(&r, 60);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 5); // 4 SMs + footer
        assert!(lines[0].starts_with("SM0"));
        assert!(lines[4].contains("quantization 75.0%"));
    }

    #[test]
    fn idle_time_is_visible_for_partial_waves() {
        let d = Decomposition::data_parallel(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 128));
        let r = simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
        let g = render_gantt(&r, 60);
        // 9 tiles on 4 SMs: three SMs idle in the last wave.
        assert!(g.contains('·'));
    }

    #[test]
    fn full_stream_k_schedule_has_no_idle() {
        let d = Decomposition::stream_k(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 4), 4);
        let r = simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
        let g = render_gantt(&r, 64);
        let body: String = g.lines().take(4).collect();
        assert!(!body.contains('·'), "unexpected idle cells:\n{g}");
    }
}
