//! Simulating grouped decompositions.

use crate::cost::{CtaCosts, DEFAULT_MAC_EFFICIENCY};
use crate::engine::{finish_report, run_des, CtaFacts, GridDesc};
use crate::gpu::GpuSpec;
use crate::report::SimReport;
use streamk_core::GroupedDecomposition;
use streamk_types::Precision;

/// Simulates a grouped decomposition on `gpu` at `precision`, at the
/// default MAC efficiency.
///
/// # Panics
///
/// Panics if the decomposition is structurally invalid.
#[must_use]
pub fn simulate_grouped(decomp: &GroupedDecomposition, gpu: &GpuSpec, precision: Precision) -> SimReport {
    simulate_grouped_with_efficiency(decomp, gpu, precision, DEFAULT_MAC_EFFICIENCY)
}

/// [`simulate_grouped`] with an explicit MAC efficiency.
///
/// # Panics
///
/// Panics if the decomposition is structurally invalid.
#[must_use]
pub fn simulate_grouped_with_efficiency(
    decomp: &GroupedDecomposition,
    gpu: &GpuSpec,
    precision: Precision,
    mac_efficiency: f64,
) -> SimReport {
    decomp.validate().expect("invalid grouped decomposition");
    let space = decomp.space();
    let tile = space.instances()[0].tile();
    let costs = CtaCosts::derive(gpu, precision, tile, mac_efficiency);

    // Per-CTA facts from the grouped segment walk (iteration depths
    // differ per instance, so the uniform-ipt shortcut doesn't apply).
    let facts: Vec<CtaFacts> = decomp
        .ctas()
        .iter()
        .map(|cta| {
            let segs = space.segments(cta);
            match segs.first() {
                None => CtaFacts { iters: 0, contributes: false, first_seg_iters: 0 },
                Some(seg) => CtaFacts {
                    iters: cta.len(),
                    contributes: !seg.starts_tile,
                    first_seg_iters: seg.local_end - seg.local_begin,
                },
            }
        })
        .collect();

    let mut owner_peers: Vec<Vec<usize>> = vec![Vec::new(); decomp.grid_size()];
    let mut partial_records = 0usize;
    for fixup in decomp.fixups() {
        partial_records += fixup.peers.len();
        if !fixup.peers.is_empty() {
            owner_peers[fixup.owner] = fixup.peers;
        }
    }
    let grid = GridDesc { facts, owner_peers, partial_records };
    let des = run_des(&grid, gpu, &costs);

    let compulsory: f64 = space
        .instances()
        .iter()
        .map(|inst| {
            let s = inst.shape();
            ((s.m * s.k + s.k * s.n) * precision.input_bytes()) as f64
        })
        .sum();
    let useful_flops: f64 = space.instances().iter().map(|inst| inst.shape().flops() as f64).sum();

    finish_report(des, &grid, gpu, precision, tile, space.total_iters(), space.tiles(), compulsory, useful_flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_core::{Decomposition, GroupedSpace};
    use streamk_types::{GemmShape, TileShape};

    #[test]
    fn single_group_matches_plain_simulation() {
        let shape = GemmShape::new(512, 384, 768);
        let tile = TileShape::FP16_STREAMK;
        let gpu = GpuSpec::a100();
        let grouped = GroupedDecomposition::stream_k(GroupedSpace::new(&[shape], tile), 64);
        let plain = Decomposition::stream_k(shape, tile, 64);
        let rg = simulate_grouped(&grouped, &gpu, Precision::Fp16To32);
        let rp = crate::engine::simulate(&plain, &gpu, Precision::Fp16To32);
        assert!((rg.makespan - rp.makespan).abs() / rp.makespan < 1e-12);
        assert_eq!(rg.useful_flops, rp.useful_flops);
    }

    /// The grouped motivation: a mixture of small instances, each
    /// quantizing badly alone, schedules near-perfectly as one grid.
    #[test]
    fn grouped_stream_k_beats_sequential_launches() {
        let gpu = GpuSpec::a100();
        let tile = TileShape::FP16_STREAMK;
        // A dozen mismatched compute-bound instances.
        let shapes: Vec<GemmShape> = (0..12)
            .map(|i| GemmShape::new(256 + 128 * (i % 4), 384 + 128 * (i % 3), 2048 + 512 * (i % 5)))
            .collect();

        let sequential: f64 = shapes
            .iter()
            .map(|&s| crate::engine::simulate(&Decomposition::data_parallel(s, tile), &gpu, Precision::Fp16To32).makespan)
            .sum();

        let grouped = GroupedDecomposition::stream_k(GroupedSpace::new(&shapes, tile), gpu.sms);
        let r = simulate_grouped(&grouped, &gpu, Precision::Fp16To32);
        assert!(
            r.makespan < sequential / 3.0,
            "grouped {} vs sequential {sequential}",
            r.makespan
        );
        assert!(r.utilization() > 0.7, "utilization {}", r.utilization());
    }

    #[test]
    fn report_is_self_consistent() {
        let gpu = GpuSpec::a100();
        let tile = TileShape::new(64, 64, 16);
        let shapes = [GemmShape::new(100, 200, 300), GemmShape::new(77, 33, 999)];
        let grouped = GroupedDecomposition::stream_k(GroupedSpace::new(&shapes, tile), 32);
        let r = simulate_grouped(&grouped, &gpu, Precision::Fp64);
        let span_iters: usize = r.spans.iter().map(|s| s.iters).sum();
        assert_eq!(span_iters, grouped.space().total_iters());
        assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
    }
}
