//! Closed-form schedule predictions.
//!
//! For schedules without cross-CTA dependencies and with
//! near-uniform CTA durations, makespans have closed forms that both
//! (a) cross-validate the event-driven engine and (b) let corpus-scale
//! sweeps skip the DES when only aggregate numbers are needed.

use crate::cost::CtaCosts;
use crate::gpu::GpuSpec;
use streamk_core::Decomposition;
use streamk_types::{ceil_div, GemmShape, TileShape};

/// Closed-form compute makespan of the pure data-parallel schedule:
/// `⌈t / p⌉ · (a + c·iters_per_tile)` — every CTA is identical and
/// independent, so the greedy dispatcher produces exactly
/// `waves` back-to-back rounds.
#[must_use]
pub fn data_parallel_makespan(shape: GemmShape, tile: TileShape, gpu: &GpuSpec, costs: &CtaCosts) -> f64 {
    let tiles = tile.output_tiles(shape);
    let waves = ceil_div(tiles, gpu.sms);
    waves as f64 * (costs.a + costs.c * tile.iters_per_tile(shape) as f64)
}

/// Closed-form *lower bound* on any schedule's compute makespan: the
/// critical-path bound `max(total work / p, longest CTA)`.
#[must_use]
pub fn makespan_lower_bound(decomp: &Decomposition, gpu: &GpuSpec, costs: &CtaCosts) -> f64 {
    let total_work: f64 = decomp
        .ctas()
        .iter()
        .map(|c| costs.a + costs.c * c.len() as f64)
        .sum();
    let longest = decomp
        .ctas()
        .iter()
        .map(|c| costs.a + costs.c * c.len() as f64)
        .fold(0.0f64, f64::max);
    (total_work / gpu.sms as f64).max(longest)
}

/// The analytic quantization-efficiency ceiling of a data-parallel
/// schedule (Figure 1's 75% / 90% numbers): `t / (⌈t/p⌉ · p)`.
#[must_use]
pub fn data_parallel_ceiling(shape: GemmShape, tile: TileShape, sms: usize) -> f64 {
    streamk_types::quantization_efficiency(tile.output_tiles(shape), sms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_types::Precision;
    use crate::cost::DEFAULT_MAC_EFFICIENCY;
    use crate::engine::simulate;

    /// The DES must agree with the closed form exactly for pure
    /// data-parallel schedules on any GPU.
    #[test]
    fn des_matches_closed_form_for_dp() {
        for (m, n, k) in [(384, 384, 128), (4096, 2048, 512), (129, 257, 65)] {
            let shape = GemmShape::new(m, n, k);
            let tile = TileShape::new(64, 64, 16);
            let decomp = Decomposition::data_parallel(shape, tile);
            for gpu in [GpuSpec::a100(), GpuSpec::hypothetical_4sm(), GpuSpec::v100_like()] {
                let costs = CtaCosts::derive(&gpu, Precision::Fp64, tile, DEFAULT_MAC_EFFICIENCY);
                let des = simulate(&decomp, &gpu, Precision::Fp64);
                let closed = data_parallel_makespan(shape, tile, &gpu, &costs);
                assert!(
                    (des.compute_makespan - closed).abs() <= 1e-12 * closed.max(1e-30),
                    "{m}x{n}x{k} on {}: DES {} vs closed {closed}",
                    gpu.name,
                    des.compute_makespan
                );
            }
        }
    }

    /// No simulated schedule may beat the critical-path bound.
    #[test]
    fn des_respects_lower_bound() {
        let shape = GemmShape::new(1000, 700, 900);
        let tile = TileShape::new(64, 64, 16);
        let gpu = GpuSpec::a100();
        for decomp in [
            Decomposition::data_parallel(shape, tile),
            Decomposition::stream_k(shape, tile, gpu.sms),
            Decomposition::two_tile_stream_k_dp(shape, tile, gpu.sms),
            Decomposition::fixed_split(shape, tile, 2),
        ] {
            let costs = CtaCosts::derive(&gpu, Precision::Fp64, tile, DEFAULT_MAC_EFFICIENCY);
            let des = simulate(&decomp, &gpu, Precision::Fp64);
            let bound = makespan_lower_bound(&decomp, &gpu, &costs);
            assert!(
                des.compute_makespan >= bound * (1.0 - 1e-12),
                "{}: DES {} beat bound {bound}",
                decomp.strategy(),
                des.compute_makespan
            );
        }
    }

    /// The analytic ceiling matches the simulated quantization
    /// efficiency on the overhead-free GPU.
    #[test]
    fn ceiling_matches_overhead_free_simulation() {
        let shape = GemmShape::new(384, 384, 128);
        let tile = TileShape::new(128, 128, 128);
        let gpu = GpuSpec::hypothetical_4sm();
        let des = simulate(&Decomposition::data_parallel(shape, tile), &gpu, Precision::Fp64);
        let ceiling = data_parallel_ceiling(shape, tile, gpu.sms);
        assert!((des.quantization_efficiency() - ceiling).abs() < 1e-12);
        assert!((ceiling - 0.75).abs() < 1e-12);
    }
}
