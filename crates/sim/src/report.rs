//! Simulation results.

use streamk_types::Precision;

/// One CTA's residency on an SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtaSpan {
    /// The CTA.
    pub cta_id: usize,
    /// The SM it ran on.
    pub sm: usize,
    /// Dispatch time, seconds.
    pub start: f64,
    /// Completion time, seconds.
    pub end: f64,
    /// MAC-loop iterations it executed.
    pub iters: usize,
    /// Time spent stalled waiting for fixup peers' signals, seconds.
    pub waited: f64,
}

/// The outcome of simulating one decomposition on one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The precision simulated.
    pub precision: Precision,
    /// SM count of the simulated GPU.
    pub sms: usize,
    /// Peak throughput of the simulated GPU at this precision, FLOP/s.
    pub peak_flops: f64,
    /// End-to-end runtime: `max(compute makespan, memory floor)` plus
    /// the grid launch latency, seconds.
    pub makespan: f64,
    /// Makespan of the event-driven compute schedule alone, seconds.
    pub compute_makespan: f64,
    /// The memory-roofline floor `traffic / bandwidth`, seconds.
    pub memory_time: f64,
    /// *Useful* floating-point work: `2mnk` of the original problem
    /// (padding MACs in edge tiles are executed but not counted).
    pub useful_flops: f64,
    /// Modeled global-memory traffic, bytes.
    pub traffic_bytes: f64,
    /// Σ over CTAs of pure MAC-iteration time, seconds.
    pub mac_busy: f64,
    /// Σ over CTAs of fixup-wait stall time, seconds.
    pub total_wait: f64,
    /// Per-CTA residency records, in CTA-id order.
    pub spans: Vec<CtaSpan>,
}

impl SimReport {
    /// Achieved fraction of peak throughput: `useful_flops /
    /// (makespan · peak)`. The y-axis of the paper's roofline
    /// landscapes (Figures 5-6).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.useful_flops / (self.makespan * self.peak_flops)
    }

    /// Achieved throughput in TFLOP/s.
    #[must_use]
    pub fn tflops(&self) -> f64 {
        self.useful_flops / self.makespan / 1e12
    }

    /// Quantization efficiency of the compute schedule: the fraction
    /// of SM-time occupied by MAC iterations,
    /// `mac_busy / (sms · compute_makespan)`. On the overhead-free
    /// hypothetical GPU this reproduces the paper's 75% / 90% / 100%
    /// figures exactly.
    #[must_use]
    pub fn quantization_efficiency(&self) -> f64 {
        if self.compute_makespan == 0.0 {
            return 1.0;
        }
        self.mac_busy / (self.sms as f64 * self.compute_makespan)
    }

    /// `true` when the memory roofline, not the compute schedule,
    /// determined the makespan.
    #[must_use]
    pub fn is_memory_bound(&self) -> bool {
        self.memory_time > self.compute_makespan
    }

    /// Speedup of this run relative to `baseline` (same problem
    /// assumed): `baseline.makespan / self.makespan`.
    #[must_use]
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        baseline.makespan / self.makespan
    }

    /// Idle time per SM within the compute schedule: the gap between
    /// each SM's busy span total and the makespan, in seconds, indexed
    /// by SM. The tail-wave idle of Figure 1 shows up here as three
    /// SMs with one tile-duration of idle each.
    #[must_use]
    pub fn idle_per_sm(&self) -> Vec<f64> {
        let mut busy = vec![0.0f64; self.sms];
        for s in &self.spans {
            busy[s.sm] += s.end - s.start;
        }
        busy.iter().map(|&b| (self.compute_makespan - b).max(0.0)).collect()
    }

    /// The number of SMs busy at each of `samples` uniformly spaced
    /// instants of the compute schedule — the occupancy curve a
    /// profiler timeline would show.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    #[must_use]
    pub fn occupancy_curve(&self, samples: usize) -> Vec<usize> {
        assert!(samples > 0, "need at least one sample");
        let makespan = self.compute_makespan.max(f64::MIN_POSITIVE);
        (0..samples)
            .map(|i| {
                // Sample at the interval midpoint to avoid boundary
                // double-counting.
                let t = makespan * (i as f64 + 0.5) / samples as f64;
                self.spans.iter().filter(|s| s.start <= t && t < s.end).count()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(makespan: f64, useful: f64) -> SimReport {
        SimReport {
            precision: Precision::Fp64,
            sms: 4,
            peak_flops: 1e12,
            makespan,
            compute_makespan: makespan,
            memory_time: 0.0,
            useful_flops: useful,
            traffic_bytes: 0.0,
            mac_busy: 0.0,
            total_wait: 0.0,
            spans: Vec::new(),
        }
    }

    #[test]
    fn utilization_and_tflops() {
        let r = report(1.0, 0.5e12);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        assert!((r.tflops() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_ratio_of_makespans() {
        let fast = report(1.0, 1e12);
        let slow = report(4.0, 1e12);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_flag() {
        let mut r = report(2.0, 1e12);
        r.memory_time = 3.0;
        assert!(r.is_memory_bound());
        r.memory_time = 1.0;
        assert!(!r.is_memory_bound());
    }

    #[test]
    fn idle_and_occupancy_of_partial_wave() {
        // 2 SMs, makespan 2: SM0 busy [0,2), SM1 busy [0,1).
        let mut r = report(2.0, 1e12);
        r.sms = 2;
        r.spans = vec![
            CtaSpan { cta_id: 0, sm: 0, start: 0.0, end: 2.0, iters: 2, waited: 0.0 },
            CtaSpan { cta_id: 1, sm: 1, start: 0.0, end: 1.0, iters: 1, waited: 0.0 },
        ];
        let idle = r.idle_per_sm();
        assert_eq!(idle, vec![0.0, 1.0]);
        let occ = r.occupancy_curve(4);
        assert_eq!(occ, vec![2, 2, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn occupancy_rejects_zero_samples() {
        let _ = report(1.0, 1e12).occupancy_curve(0);
    }
}
