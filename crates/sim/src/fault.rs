//! Fault injection for the timing simulator.
//!
//! Where `streamk-cpu`'s fault plan corrupts the fixup *protocol*
//! (and proves recovery correct), this module degrades the
//! *schedule* and quantifies what the paper's timing model predicts
//! faults cost:
//!
//! - **per-SM straggler slowdown** — a slow SM multiplies every cost
//!   term of the CTAs it hosts, modeling a thermally-throttled or
//!   contended processor. Stream-K's fixup dependencies then amplify
//!   the damage: an owner whose peer landed on the slow SM inherits
//!   the delay through the `Wait`.
//! - **CTA preemption / re-dispatch** — a CTA is evicted after some
//!   fraction of its MAC work (the partial progress is wasted, as on
//!   a GPU without CTA checkpointing) and re-enters the dispatch
//!   queue after a delay, or never returns ([`Preemption`] with
//!   `redispatch_after: None`): the lost-CTA case, whose blocked
//!   owners surface as [`FaultSimReport::deadlocked`] instead of a
//!   panic.
//!
//! [`FaultSimReport`] pairs the degraded schedule with its fault-free
//! baseline so makespan degradation and fixup-stall amplification are
//! one method call away.

use crate::cost::{CtaCosts, DEFAULT_MAC_EFFICIENCY};
use crate::engine::{finish_report, DesOutcome, GridDesc};
use crate::gpu::GpuSpec;
use crate::report::{CtaSpan, SimReport};
use crate::simulate;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use streamk_core::Decomposition;
use streamk_types::Precision;

/// One CTA preemption event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Preemption {
    /// Fraction of the CTA's MAC work completed when it is evicted
    /// (clamped to `[0, 1]`); that partial progress is wasted.
    pub progress: f64,
    /// Seconds after eviction until the CTA re-enters the dispatch
    /// queue and restarts from scratch; `None` means it never
    /// returns — the lost-CTA case.
    pub redispatch_after: Option<f64>,
}

/// Schedule-level faults to inject into one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimFaultPlan {
    slowdowns: Vec<(usize, f64)>,
    preemptions: Vec<(usize, Preemption)>,
}

impl SimFaultPlan {
    /// The empty plan: a fault-free schedule.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Marks SM `sm` as running `factor`× slower than nominal
    /// (`factor = 2.0` → everything on that SM takes twice as long).
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and ≥ 1.
    #[must_use]
    pub fn with_sm_slowdown(mut self, sm: usize, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 1.0, "slowdown factor must be >= 1, got {factor}");
        self.slowdowns.retain(|&(s, _)| s != sm);
        self.slowdowns.push((sm, factor));
        self
    }

    /// Preempts CTA `cta` (first dispatch only) after `progress` of
    /// its MAC work, re-dispatching it `redispatch_after` seconds
    /// later — or never, if `None`.
    #[must_use]
    pub fn with_preemption(mut self, cta: usize, progress: f64, redispatch_after: Option<f64>) -> Self {
        self.preemptions.retain(|&(c, _)| c != cta);
        self.preemptions.push((cta, Preemption { progress: progress.clamp(0.0, 1.0), redispatch_after }));
        self
    }

    /// `true` when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slowdowns.is_empty() && self.preemptions.is_empty()
    }

    /// The slowdown factor for `sm` (1.0 when healthy).
    #[must_use]
    pub fn sm_factor(&self, sm: usize) -> f64 {
        self.slowdowns.iter().find(|&&(s, _)| s == sm).map_or(1.0, |&(_, f)| f)
    }

    /// The preemption planned for `cta`, if any.
    #[must_use]
    pub fn preemption_for(&self, cta: usize) -> Option<Preemption> {
        self.preemptions.iter().find(|&&(c, _)| c == cta).map(|&(_, p)| p)
    }
}

/// The outcome of a fault-injected simulation, paired with its
/// fault-free baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSimReport {
    /// The degraded schedule.
    pub faulty: SimReport,
    /// The same decomposition simulated fault-free.
    pub baseline: SimReport,
    /// `true` when at least one tile owner blocked forever on a peer
    /// that never signaled (a lost contributor). The GPU analogue is
    /// a hung kernel; the simulator reports it instead of panicking.
    pub deadlocked: bool,
    /// CTAs that were preempted and never re-dispatched.
    pub lost_ctas: Vec<usize>,
    /// Owners still blocked when the schedule drained.
    pub unresolved_owners: Vec<usize>,
    /// Number of re-dispatch events that occurred.
    pub redispatches: usize,
}

impl FaultSimReport {
    /// Makespan degradation: `faulty / baseline` (≥ 1 for any real
    /// fault; exactly 1 for an empty plan).
    #[must_use]
    pub fn makespan_amplification(&self) -> f64 {
        self.faulty.makespan / self.baseline.makespan
    }

    /// Additional fixup-stall time the faults induced, seconds.
    #[must_use]
    pub fn fixup_stall_delta(&self) -> f64 {
        self.faulty.total_wait - self.baseline.total_wait
    }

    /// Fixup-stall amplification: `faulty.total_wait /
    /// baseline.total_wait`. When the baseline had no stalls at all,
    /// returns 1.0 if the faulty run also has none and `f64::INFINITY`
    /// otherwise (any stall is infinitely worse than no stall).
    #[must_use]
    pub fn fixup_stall_amplification(&self) -> f64 {
        if self.baseline.total_wait > 0.0 {
            self.faulty.total_wait / self.baseline.total_wait
        } else if self.faulty.total_wait > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }

    /// `true` when every CTA completed and no owner is blocked.
    #[must_use]
    pub fn survived(&self) -> bool {
        !self.deadlocked && self.lost_ctas.is_empty()
    }
}

/// Simulates `decomp` on `gpu` under `plan`'s schedule faults and
/// pairs the result with the fault-free baseline.
///
/// Unlike [`simulate`], a dependency that can never resolve (an owner
/// waiting on a lost peer) is *reported* — the schedule drains as far
/// as it can and [`FaultSimReport::deadlocked`] is set — rather than
/// panicking, because reaching that state is the point of injecting
/// the fault.
#[must_use]
pub fn simulate_with_faults(
    decomp: &Decomposition,
    gpu: &GpuSpec,
    precision: Precision,
    plan: &SimFaultPlan,
) -> FaultSimReport {
    debug_assert!(decomp.validate().is_ok(), "invalid decomposition: {:?}", decomp.validate());
    let baseline = simulate(decomp, gpu, precision);
    let space = decomp.space();
    let tile = space.tile();
    let costs = CtaCosts::derive(gpu, precision, tile, DEFAULT_MAC_EFFICIENCY);
    let grid = GridDesc::from_parts(decomp.ctas(), space.iters_per_tile(), decomp.fixups());

    let (des, stats) = run_faulty_des(&grid, gpu, &costs, plan);
    let shape = space.shape();
    let faulty = finish_report(
        des,
        &grid,
        gpu,
        precision,
        tile,
        space.total_iters(),
        space.tiles(),
        ((shape.m * shape.k + shape.k * shape.n) * precision.input_bytes()) as f64,
        shape.flops() as f64,
    );

    FaultSimReport {
        faulty,
        baseline,
        deadlocked: !stats.unresolved_owners.is_empty(),
        lost_ctas: stats.lost_ctas,
        unresolved_owners: stats.unresolved_owners,
        redispatches: stats.redispatches,
    }
}

struct FaultStats {
    lost_ctas: Vec<usize>,
    unresolved_owners: Vec<usize>,
    redispatches: usize,
}

/// The queue-based variant of the engine's dispatch loop: CTAs enter
/// a dispatch queue (initially in id order), and a preempted CTA
/// re-enters it at its re-dispatch time — the machinery plain
/// [`simulate`] doesn't need because its CTAs run exactly once.
fn run_faulty_des(grid: &GridDesc, gpu: &GpuSpec, costs: &CtaCosts, plan: &SimFaultPlan) -> (DesOutcome, FaultStats) {
    let g = grid.facts.len();
    let key = |t: f64, sm: usize| Reverse((t.to_bits(), sm));
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..gpu.sms).map(|sm| Reverse((0f64.to_bits(), sm))).collect();

    let mut pending: VecDeque<usize> = (0..g).collect();
    // Re-dispatch arrivals not yet in the queue: (ready_time, cta).
    let mut arrivals: Vec<(f64, usize)> = Vec::new();
    let mut preempted_once = vec![false; g];

    let mut signal_time: Vec<Option<f64>> = vec![None; g];
    let mut spans: Vec<CtaSpan> = Vec::with_capacity(g);
    let mut blocked: Vec<(usize, usize, f64, usize)> = Vec::new();
    let mut mac_busy = 0.0f64;
    let mut total_wait = 0.0f64;
    let mut lost_ctas = Vec::new();
    let mut redispatches = 0usize;

    let finish_owner = |t_ready: f64, d: f64, peers: &[usize], signals: &[Option<f64>]| -> (f64, f64) {
        let mut t = t_ready;
        let mut waited = 0.0;
        for &p in peers {
            let sig = signals[p].expect("peer signal resolved");
            if sig > t {
                waited += sig - t;
                t = sig;
            }
            t += d;
        }
        (t, waited)
    };

    loop {
        if pending.is_empty() && arrivals.is_empty() {
            break;
        }
        let Some(Reverse((bits, sm))) = heap.pop() else {
            // Every SM is occupied by a blocked owner: nothing can
            // ever dispatch again. Reported, not panicked.
            break;
        };
        let t_free = f64::from_bits(bits);

        // Arrivals whose ready time has passed join the back of the
        // queue in ready order.
        arrivals.sort_by(|x, y| x.0.total_cmp(&y.0));
        while let Some(&(ready, cta)) = arrivals.first() {
            if ready <= t_free {
                pending.push_back(cta);
                arrivals.remove(0);
            } else {
                break;
            }
        }
        let (start, cta_id) = if let Some(cta) = pending.pop_front() {
            (t_free, cta)
        } else if let Some((ready, cta)) = arrivals.first().copied() {
            arrivals.remove(0);
            (ready.max(t_free), cta)
        } else {
            heap.push(key(t_free, sm));
            break;
        };

        let f = &grid.facts[cta_id];
        let slow = plan.sm_factor(sm);

        if let Some(p) = plan.preemption_for(cta_id) {
            if !preempted_once[cta_id] {
                preempted_once[cta_id] = true;
                // Evicted mid-MAC-loop: the SM frees, the partial
                // progress is discarded (no checkpoint), nothing
                // signals.
                let wasted_iters = (f.iters as f64 * p.progress) as usize;
                let end = start + slow * (costs.a + costs.c * f.iters as f64 * p.progress);
                spans.push(CtaSpan { cta_id, sm, start, end, iters: wasted_iters, waited: 0.0 });
                heap.push(key(end, sm));
                match p.redispatch_after {
                    Some(delay) => {
                        arrivals.push((end + delay, cta_id));
                        redispatches += 1;
                    }
                    None => lost_ctas.push(cta_id),
                }
                continue;
            }
        }

        let mut t = start + costs.a * slow;
        if f.contributes {
            t += slow * (costs.c * f.first_seg_iters as f64 + costs.b);
            signal_time[cta_id] = Some(t);
            t += slow * costs.c * (f.iters - f.first_seg_iters) as f64;
        } else {
            t += slow * costs.c * f.iters as f64;
        }
        mac_busy += slow * costs.c * f.iters as f64;

        let span_idx = spans.len();
        spans.push(CtaSpan { cta_id, sm, start, end: t, iters: f.iters, waited: 0.0 });

        let peers = &grid.owner_peers[cta_id];
        if peers.is_empty() {
            heap.push(key(t, sm));
        } else if peers.iter().all(|&p| signal_time[p].is_some()) {
            let (end, waited) = finish_owner(t, costs.d * slow, peers, &signal_time);
            total_wait += waited;
            spans[span_idx].end = end;
            spans[span_idx].waited = waited;
            heap.push(key(end, sm));
        } else {
            blocked.push((cta_id, sm, t, span_idx));
        }

        if signal_time[cta_id].is_some() {
            let mut i = 0;
            while i < blocked.len() {
                let (owner, owner_sm, t_ready, span_idx) = blocked[i];
                if grid.owner_peers[owner].iter().all(|&p| signal_time[p].is_some()) {
                    let d = costs.d * plan.sm_factor(owner_sm);
                    let (end, waited) = finish_owner(t_ready, d, &grid.owner_peers[owner], &signal_time);
                    total_wait += waited;
                    spans[span_idx].end = end;
                    spans[span_idx].waited = waited;
                    heap.push(key(end, owner_sm));
                    blocked.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
    }

    // Owners still blocked are deadlocked on a lost peer; their spans
    // end where their own work did, and their stall is unbounded — we
    // leave it out of total_wait (it's infinite) and report them.
    let mut unresolved_owners: Vec<usize> = blocked.iter().map(|&(cta, ..)| cta).collect();
    unresolved_owners.sort_unstable();
    lost_ctas.sort_unstable();

    let compute_makespan = spans.iter().map(|s| s.end).fold(0.0f64, f64::max);
    (
        DesOutcome { spans, compute_makespan, mac_busy, total_wait },
        FaultStats { lost_ctas, unresolved_owners, redispatches },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_types::{GemmShape, TileShape};

    fn split_decomp() -> Decomposition {
        // Deep fixed-split: plenty of fixup traffic for faults to
        // amplify.
        Decomposition::fixed_split(GemmShape::new(128, 128, 4096), TileShape::new(128, 128, 32), 16)
    }

    #[test]
    fn empty_plan_reproduces_the_baseline() {
        let d = split_decomp();
        let r = simulate_with_faults(&d, &GpuSpec::a100(), Precision::Fp16To32, &SimFaultPlan::none());
        assert!(r.survived());
        assert!(!r.deadlocked);
        assert_eq!(r.redispatches, 0);
        assert_eq!(r.faulty, r.baseline);
        assert!((r.makespan_amplification() - 1.0).abs() < 1e-12);
        assert!((r.fixup_stall_amplification() - 1.0).abs() < 1e-12 || r.baseline.total_wait > 0.0);
        assert_eq!(r.fixup_stall_delta(), 0.0);
    }

    #[test]
    fn slow_sm_degrades_makespan_and_amplifies_stalls() {
        let d = split_decomp();
        let gpu = GpuSpec::a100();
        // CTA i dispatches onto SM i here; slowing SM 1 makes peer
        // CTA 1 a straggler the tile owner (CTA 0) must wait out.
        let plan = SimFaultPlan::none().with_sm_slowdown(1, 4.0);
        let r = simulate_with_faults(&d, &gpu, Precision::Fp16To32, &plan);
        assert!(r.survived());
        assert!(r.makespan_amplification() > 1.0, "amplification {}", r.makespan_amplification());
        // The owner waits on peers hosted by the slow SM: stalls grow.
        assert!(r.fixup_stall_delta() > 0.0, "delta {}", r.fixup_stall_delta());
        assert!(r.fixup_stall_amplification() > 1.0);
    }

    #[test]
    fn straggler_slowdown_is_interrogable() {
        let plan = SimFaultPlan::none().with_sm_slowdown(3, 2.5).with_sm_slowdown(3, 3.0);
        assert_eq!(plan.sm_factor(3), 3.0);
        assert_eq!(plan.sm_factor(0), 1.0);
        assert!(!plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "slowdown factor")]
    fn sub_unit_slowdown_is_rejected() {
        let _ = SimFaultPlan::none().with_sm_slowdown(0, 0.5);
    }

    #[test]
    fn preempted_cta_redispatches_and_completes() {
        let d = split_decomp();
        let gpu = GpuSpec::a100();
        // Preempt a contributor halfway, bring it back shortly after.
        let victim = d.fixups()[0].peers[0];
        let base = simulate(&d, &gpu, Precision::Fp16To32);
        let delay = base.makespan * 0.1;
        let plan = SimFaultPlan::none().with_preemption(victim, 0.5, Some(delay));
        let r = simulate_with_faults(&d, &gpu, Precision::Fp16To32, &plan);
        assert!(r.survived());
        assert_eq!(r.redispatches, 1);
        // Two spans for the victim: the wasted attempt and the rerun.
        let victim_spans: Vec<_> = r.faulty.spans.iter().filter(|s| s.cta_id == victim).collect();
        assert_eq!(victim_spans.len(), 2);
        assert!(r.makespan_amplification() > 1.0);
    }

    #[test]
    fn lost_contributor_deadlocks_its_owner_without_panicking() {
        let d = split_decomp();
        let victim = d.fixups()[0].peers[0];
        let owner = d.fixups()[0].owner;
        let plan = SimFaultPlan::none().with_preemption(victim, 0.3, None);
        let r = simulate_with_faults(&d, &GpuSpec::a100(), Precision::Fp16To32, &plan);
        assert!(r.deadlocked);
        assert!(!r.survived());
        assert_eq!(r.lost_ctas, vec![victim]);
        assert!(r.unresolved_owners.contains(&owner), "{:?}", r.unresolved_owners);
    }

    #[test]
    fn lost_data_parallel_cta_loses_a_tile_but_nothing_blocks() {
        let d = Decomposition::data_parallel(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 128));
        let plan = SimFaultPlan::none().with_preemption(2, 0.9, None);
        let r = simulate_with_faults(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64, &plan);
        // No fixup structure: nobody waits on the lost CTA, so the
        // schedule drains — but the run did not survive intact.
        assert!(!r.deadlocked);
        assert_eq!(r.lost_ctas, vec![2]);
        assert!(!r.survived());
    }

    #[test]
    fn faulty_spans_never_overlap_on_an_sm() {
        let d = split_decomp();
        let victim = d.fixups()[0].peers[1];
        let plan = SimFaultPlan::none().with_sm_slowdown(1, 2.0).with_preemption(victim, 0.4, Some(1e-6));
        let r = simulate_with_faults(&d, &GpuSpec::a100(), Precision::Fp16To32, &plan);
        assert!(r.survived());
        let mut per_sm: Vec<Vec<(f64, f64)>> = vec![Vec::new(); r.faulty.sms];
        for s in &r.faulty.spans {
            assert!(s.end >= s.start);
            per_sm[s.sm].push((s.start, s.end));
        }
        for sm_spans in &mut per_sm {
            sm_spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in sm_spans.windows(2) {
                assert!(pair[1].0 >= pair[0].1 - 1e-15, "overlap on an SM: {pair:?}");
            }
        }
    }
}
