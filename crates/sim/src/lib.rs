//! An event-driven GPU execution simulator.
//!
//! This crate is the reproduction's stand-in for the paper's NVIDIA
//! A100 testbed (DESIGN.md §1). It executes a
//! [`Decomposition`](streamk_core::Decomposition) the way a GPU's work
//! distributor would:
//!
//! - CTAs dispatch in id order onto the earliest-available SM, one
//!   resident CTA per SM (the paper's occupancy model — a Stream-K
//!   launch of `g = p` CTAs exactly fills the processor);
//! - each CTA's runtime follows the Appendix A.1 cost structure
//!   `a + b·[stores partials] + c·iters + d·(fixup peers)`, with the
//!   constants derived from the simulated GPU's physical parameters
//!   ([`cost`]);
//! - `Signal`/`Wait` consolidation dependencies are honored: a
//!   tile-owning CTA cannot accumulate a peer's partial sums before
//!   that peer has signaled, so fixup latency (and Stream-K's
//!   temporal-skew latency *hiding*) emerges from the schedule;
//! - the final makespan is floored by a memory roofline
//!   `traffic / bandwidth`, which yields the bandwidth-bound regime of
//!   the paper's Figures 5-7.
//!
//! What this deliberately does **not** model: warp scheduling,
//! instruction issue, shared-memory bank conflicts — effects that are
//! identical across the compared decompositions and therefore cancel
//! in every relative measurement the paper reports.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod analytic;
pub mod batched;
pub mod cost;
pub mod engine;
pub mod fault;
pub mod gpu;
pub mod grouped;
pub mod report;
pub mod svg;
pub mod timeline;
pub mod trace;

pub use batched::{simulate_batched, simulate_batched_with_efficiency};
pub use cost::CtaCosts;
pub use engine::{simulate, simulate_with_efficiency};
pub use fault::{simulate_with_faults, FaultSimReport, Preemption, SimFaultPlan};
pub use gpu::GpuSpec;
pub use grouped::{simulate_grouped, simulate_grouped_with_efficiency};
pub use report::{CtaSpan, SimReport};
pub use svg::{render_svg, SvgOptions};
pub use trace::{render_chrome_trace, write_chrome_trace};
pub use timeline::render_gantt;
