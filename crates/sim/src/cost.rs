//! Per-CTA cost derivation.
//!
//! Translates a simulated GPU's physical parameters into the four
//! workload constants of the Appendix A.1 CTA runtime model, in
//! seconds, for a given precision and blocking factor.
//!
//! The time scale comes from physics: one MAC-loop iteration of a
//! `BLK_M × BLK_N × BLK_K` tile runs on a *single SM*, so
//! `c = 2·BLK_M·BLK_N·BLK_K · p / (peak · efficiency)` seconds (the
//! whole-GPU peak divided by `p` SMs). The *ratios* `a/c`, `b/c`,
//! `d/c` come from the calibrated
//! [`CostModel`](streamk_core::CostModel) — the same constants the
//! Appendix A.1 grid-size selector uses, so the simulator and the
//! launch heuristic agree about the cost of splitting (exactly as the
//! paper's microbenchmark-calibrated deployment would).

use crate::gpu::GpuSpec;
use streamk_core::CostModel;
use streamk_types::{Precision, TileShape};

/// The Appendix A.1 constants in seconds for one (GPU, precision,
/// blocking, efficiency) combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtaCosts {
    /// Fixed per-CTA cost, seconds.
    pub a: f64,
    /// Partial-store + signal cost, seconds.
    pub b: f64,
    /// Per-MAC-iteration cost, seconds.
    pub c: f64,
    /// Per-peer fixup (wait bookkeeping + load + accumulate) cost,
    /// seconds.
    pub d: f64,
}

/// The fraction of peak throughput the paper's chosen blocking factors
/// achieve on very large volumes (§5.1: "the smallest CTA-wide tile
/// size capable of achieving 99% of the GPU's peak").
pub const DEFAULT_MAC_EFFICIENCY: f64 = 0.99;

impl CtaCosts {
    /// Derives the constants for `tile` at `precision` on `gpu`,
    /// where `mac_efficiency ∈ (0, 1]` is the fraction of peak this
    /// blocking factor can sustain (smaller tiles hide less latency
    /// and sustain less — §3.2).
    ///
    /// # Panics
    ///
    /// Panics if `mac_efficiency` is not in `(0, 1]`.
    #[must_use]
    pub fn derive(gpu: &GpuSpec, precision: Precision, tile: TileShape, mac_efficiency: f64) -> Self {
        assert!(
            mac_efficiency > 0.0 && mac_efficiency <= 1.0,
            "mac_efficiency must be in (0, 1], got {mac_efficiency}"
        );
        // Per-SM sustained throughput for this blocking factor.
        let per_sm_flops = gpu.peak_flops(precision) * mac_efficiency / gpu.sms as f64;
        let flops_per_iter = 2.0 * tile.macs_per_iter() as f64;
        let c = flops_per_iter / per_sm_flops;

        let units: CostModel = gpu.cost_units(precision);
        CtaCosts {
            a: units.a / units.c * c,
            b: units.b / units.c * c,
            c,
            d: units.d / units.c * c,
        }
    }

    /// Constants at the default 99%-of-peak efficiency.
    #[must_use]
    pub fn default_for(gpu: &GpuSpec, precision: Precision, tile: TileShape) -> Self {
        Self::derive(gpu, precision, tile, DEFAULT_MAC_EFFICIENCY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp16_iteration_cost_magnitude() {
        let gpu = GpuSpec::a100();
        let costs = CtaCosts::default_for(&gpu, Precision::Fp16To32, TileShape::FP16_STREAMK);
        // One 128×128×32 iteration = 1,048,576 flops at a per-SM peak
        // of ~2.04 TFLOP/s ≈ 0.51 µs.
        assert!((4.0e-7..6.5e-7).contains(&costs.c), "c = {}", costs.c);
        // Fixup costs sit between one iteration and one tile
        // (32 iterations).
        assert!(costs.d > costs.c);
        assert!(costs.d < 32.0 * costs.c);
    }

    #[test]
    fn fp64_iteration_cost_magnitude() {
        let gpu = GpuSpec::a100();
        let costs = CtaCosts::default_for(&gpu, Precision::Fp64, TileShape::FP64_STREAMK);
        // One 64×64×16 iteration = 131,072 flops at a per-SM peak of
        // ~127 GFLOP/s ≈ 1.03 µs.
        assert!((0.8e-6..1.3e-6).contains(&costs.c), "c = {}", costs.c);
    }

    #[test]
    fn ratios_match_calibrated_model() {
        let gpu = GpuSpec::a100();
        let units = CostModel::a100_fp16();
        let costs = CtaCosts::default_for(&gpu, Precision::Fp16To32, TileShape::FP16_STREAMK);
        assert!((costs.d / costs.c - units.d / units.c).abs() < 1e-9);
        assert!((costs.a / costs.c - units.a / units.c).abs() < 1e-9);
    }

    #[test]
    fn aggregate_mac_time_matches_peak() {
        // Total MAC time across all SMs must equal flops / (peak·eff):
        // the simulator can neither create nor destroy throughput.
        let gpu = GpuSpec::a100();
        let tile = TileShape::FP16_STREAMK;
        let costs = CtaCosts::derive(&gpu, Precision::Fp16To32, tile, 1.0);
        let iters = 1_000u64;
        let agg_sm_seconds = costs.c * iters as f64;
        let flops = 2.0 * tile.macs_per_iter() as f64 * iters as f64;
        let ideal_gpu_seconds = flops / gpu.peak_flops(Precision::Fp16To32);
        assert!((agg_sm_seconds / gpu.sms as f64 - ideal_gpu_seconds).abs() / ideal_gpu_seconds < 1e-12);
    }

    #[test]
    fn hypothetical_gpu_has_zero_overheads() {
        let gpu = GpuSpec::hypothetical_4sm();
        let costs = CtaCosts::default_for(&gpu, Precision::Fp64, TileShape::new(128, 128, 4));
        assert_eq!(costs.a, 0.0);
        assert_eq!(costs.b, 0.0);
        assert_eq!(costs.d, 0.0);
        assert!(costs.c > 0.0);
    }

    #[test]
    fn lower_efficiency_raises_all_costs_proportionally() {
        let gpu = GpuSpec::a100();
        let tile = TileShape::new(64, 64, 16);
        let full = CtaCosts::derive(&gpu, Precision::Fp64, tile, 1.0);
        let half = CtaCosts::derive(&gpu, Precision::Fp64, tile, 0.5);
        assert!((half.c / full.c - 2.0).abs() < 1e-12);
        assert!((half.d / full.d - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mac_efficiency")]
    fn rejects_zero_efficiency() {
        let gpu = GpuSpec::a100();
        let _ = CtaCosts::derive(&gpu, Precision::Fp64, TileShape::FP64_STREAMK, 0.0);
    }
}
