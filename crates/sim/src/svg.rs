//! SVG rendering of execution schedules.
//!
//! The publication-quality counterpart of the ASCII Gantt in
//! [`timeline`](crate::timeline): one lane per SM, CTAs as colored
//! blocks (hue cycles with CTA id), fixup-wait stalls hatched at the
//! end of a span. The output is a self-contained `<svg>` document.

use crate::report::SimReport;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Total chart width in pixels.
    pub width: f64,
    /// Height of one SM lane in pixels.
    pub lane_height: f64,
    /// Gap between lanes in pixels.
    pub lane_gap: f64,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self { width: 900.0, lane_height: 26.0, lane_gap: 6.0 }
    }
}

/// Renders `report`'s schedule as an SVG document.
#[must_use]
pub fn render_svg(report: &SimReport, options: &SvgOptions) -> String {
    let label_w = 52.0;
    let chart_w = options.width - label_w;
    let makespan = report.compute_makespan.max(f64::MIN_POSITIVE);
    let scale = chart_w / makespan;
    let lane = options.lane_height + options.lane_gap;
    let height = report.sms as f64 * lane + 30.0;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{height:.0}" font-family="monospace" font-size="11">"#,
        options.width
    );
    let _ = writeln!(svg, r##"<rect width="100%" height="100%" fill="#ffffff"/>"##);

    // Lane backgrounds and labels.
    for sm in 0..report.sms {
        let y = sm as f64 * lane;
        let _ = writeln!(
            svg,
            r##"<rect x="{label_w}" y="{y:.1}" width="{chart_w:.1}" height="{:.1}" fill="#f2f2f2"/>"##,
            options.lane_height
        );
        let _ = writeln!(
            svg,
            r##"<text x="4" y="{:.1}" fill="#333">SM{sm}</text>"##,
            y + options.lane_height * 0.7
        );
    }

    // CTA spans.
    for span in &report.spans {
        if span.end <= span.start {
            continue;
        }
        let x = label_w + span.start * scale;
        let w = ((span.end - span.start) * scale).max(1.0);
        let y = span.sm as f64 * lane;
        let hue = (span.cta_id * 47) % 360;
        let _ = writeln!(
            svg,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{:.1}" fill="hsl({hue},60%,70%)" stroke="#555" stroke-width="0.5"/>"##,
            options.lane_height
        );
        if span.waited > 0.0 {
            let wx = label_w + (span.end - span.waited) * scale;
            let ww = (span.waited * scale).max(0.5);
            let _ = writeln!(
                svg,
                r##"<rect x="{wx:.1}" y="{y:.1}" width="{ww:.1}" height="{:.1}" fill="none" stroke="#c00" stroke-width="1" stroke-dasharray="2,2"/>"##,
                options.lane_height
            );
        }
        if w > 18.0 {
            let _ = writeln!(
                svg,
                r##"<text x="{:.1}" y="{:.1}" fill="#222">{}</text>"##,
                x + 2.0,
                y + options.lane_height * 0.7,
                span.cta_id
            );
        }
    }

    let _ = writeln!(
        svg,
        r##"<text x="{label_w}" y="{:.1}" fill="#333">makespan {:.3e}s · quantization {:.1}% · utilization {:.1}%</text>"##,
        report.sms as f64 * lane + 18.0,
        report.compute_makespan,
        report.quantization_efficiency() * 100.0,
        report.utilization() * 100.0
    );
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::gpu::GpuSpec;
    use streamk_core::Decomposition;
    use streamk_types::{GemmShape, Precision, TileShape};

    fn report() -> SimReport {
        let d = Decomposition::stream_k(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 4), 4);
        simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64)
    }

    #[test]
    fn produces_well_formed_svg() {
        let svg = render_svg(&report(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One background lane per SM plus one block per CTA.
        assert_eq!(svg.matches("fill=\"#f2f2f2\"").count(), 4);
        assert_eq!(svg.matches("hsl(").count(), 4);
    }

    #[test]
    fn wait_stalls_are_marked() {
        // A deep fixed-split forces the owner to stall: the SVG must
        // contain the hatched wait marker.
        let shape = GemmShape::new(128, 128, 16384);
        let tile = TileShape::new(128, 128, 32);
        let d = Decomposition::fixed_split(shape, tile, 16);
        let r = simulate(&d, &GpuSpec::a100(), Precision::Fp16To32);
        assert!(r.total_wait > 0.0);
        let svg = render_svg(&r, &SvgOptions::default());
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn footer_reports_metrics() {
        let svg = render_svg(&report(), &SvgOptions::default());
        assert!(svg.contains("quantization 100.0%"));
    }
}
