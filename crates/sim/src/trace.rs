//! Chrome trace export.
//!
//! Serializes a schedule as a Trace Event Format JSON array — load it
//! at `chrome://tracing` or in Perfetto to scrub through the schedule
//! interactively. Each SM is a "thread"; each CTA a complete event;
//! fixup-wait stalls appear as nested "wait" events.
//!
//! The JSON emission itself lives in the shared
//! [`streamk_core::tev::TraceWriter`], so the simulator's *predicted*
//! timeline and the CPU executor's *measured* timeline
//! (`streamk-cpu::trace`) can be written into one document as two
//! trace "processes" — that merge is what `streamk profile` emits.

use crate::report::SimReport;
use streamk_core::tev::{ArgValue, TraceWriter};

/// Writes `report`'s schedule into `w` as trace process `pid`:
/// process/thread metadata, one complete event per CTA, and nested
/// "wait" events for fixup stalls.
pub fn write_chrome_trace(w: &mut TraceWriter, report: &SimReport, pid: usize) {
    let us = 1e6; // seconds → microseconds
    w.process_name(
        pid,
        &format!(
            "streamk-sim ({} SMs, {:.1} TFLOP/s peak)",
            report.sms,
            report.peak_flops / 1e12
        ),
    );
    for sm in 0..report.sms {
        w.thread_name(pid, sm, &format!("SM{sm}"));
    }
    for span in &report.spans {
        let ts = span.start * us;
        let dur = (span.end - span.start) * us;
        w.complete(
            pid,
            span.sm,
            &format!("CTA {}", span.cta_id),
            ts,
            dur,
            &[("iters", ArgValue::U64(span.iters as u64))],
        );
        if span.waited > 0.0 {
            let wts = (span.end - span.waited) * us;
            w.complete(pid, span.sm, "wait", wts, span.waited * us, &[]);
        }
    }
}

/// Renders `report` alone as Trace Event Format JSON (process 1).
#[must_use]
pub fn render_chrome_trace(report: &SimReport) -> String {
    let mut w = TraceWriter::new();
    write_chrome_trace(&mut w, report, 1);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::gpu::GpuSpec;
    use streamk_core::tev::validate_json;
    use streamk_core::Decomposition;
    use streamk_types::{GemmShape, Precision, TileShape};

    #[test]
    fn emits_one_event_per_cta_plus_metadata() {
        let d = Decomposition::stream_k(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 4), 4);
        let r = simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
        let json = render_chrome_trace(&r);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches(r#""ph": "X""#).count(), 4);
        assert_eq!(json.matches("thread_name").count(), 4);
        // Commas between events, none trailing.
        assert!(!json.contains(",\n]"));
        validate_json(&json).unwrap();
    }

    #[test]
    fn wait_events_appear_for_stalled_owners() {
        let shape = GemmShape::new(128, 128, 16384);
        let d = Decomposition::fixed_split(shape, TileShape::new(128, 128, 32), 16);
        let r = simulate(&d, &GpuSpec::a100(), Precision::Fp16To32);
        assert!(r.total_wait > 0.0);
        let json = render_chrome_trace(&r);
        assert!(json.contains(r#""name": "wait""#));
        validate_json(&json).unwrap();
    }

    #[test]
    fn pid_parameter_relocates_the_whole_process() {
        let d = Decomposition::stream_k(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 4), 4);
        let r = simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
        let mut w = TraceWriter::new();
        write_chrome_trace(&mut w, &r, 7);
        let json = w.finish();
        assert!(json.contains(r#""pid": 7"#));
        assert!(!json.contains(r#""pid": 1"#));
        validate_json(&json).unwrap();
    }
}
