//! Chrome trace export.
//!
//! Serializes a schedule as a Trace Event Format JSON array — load it
//! at `chrome://tracing` or in Perfetto to scrub through the schedule
//! interactively. Each SM is a "thread"; each CTA a complete event;
//! fixup-wait stalls appear as nested "wait" events.
//!
//! The format needs only objects with
//! `{name, ph: "X", ts, dur, pid, tid}` (microsecond timestamps);
//! this writer emits it by hand, keeping the workspace free of JSON
//! dependencies.

use crate::report::SimReport;
use std::fmt::Write as _;

/// Renders `report` as Trace Event Format JSON.
#[must_use]
pub fn render_chrome_trace(report: &SimReport) -> String {
    let us = 1e6; // seconds → microseconds
    let mut out = String::from("[\n");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        out.push_str(&s);
        *first = false;
    };

    // Process metadata: name the "process" after the simulated run.
    push(
        format!(
            r#"  {{"name": "process_name", "ph": "M", "pid": 1, "args": {{"name": "streamk-sim ({} SMs, {:.1} TFLOP/s peak)"}}}}"#,
            report.sms,
            report.peak_flops / 1e12
        ),
        &mut out,
        &mut first,
    );
    for sm in 0..report.sms {
        push(
            format!(
                r#"  {{"name": "thread_name", "ph": "M", "pid": 1, "tid": {sm}, "args": {{"name": "SM{sm}"}}}}"#
            ),
            &mut out,
            &mut first,
        );
    }

    for span in &report.spans {
        let ts = span.start * us;
        let dur = (span.end - span.start) * us;
        push(
            format!(
                r#"  {{"name": "CTA {}", "ph": "X", "ts": {ts:.3}, "dur": {dur:.3}, "pid": 1, "tid": {}, "args": {{"iters": {}}}}}"#,
                span.cta_id, span.sm, span.iters
            ),
            &mut out,
            &mut first,
        );
        if span.waited > 0.0 {
            let wts = (span.end - span.waited) * us;
            push(
                format!(
                    r#"  {{"name": "wait", "ph": "X", "ts": {wts:.3}, "dur": {:.3}, "pid": 1, "tid": {}}}"#,
                    span.waited * us,
                    span.sm
                ),
                &mut out,
                &mut first,
            );
        }
    }
    let _ = write!(out, "\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::gpu::GpuSpec;
    use streamk_core::Decomposition;
    use streamk_types::{GemmShape, Precision, TileShape};

    #[test]
    fn emits_one_event_per_cta_plus_metadata() {
        let d = Decomposition::stream_k(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 4), 4);
        let r = simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
        let json = render_chrome_trace(&r);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches(r#""ph": "X""#).count(), 4);
        assert_eq!(json.matches("thread_name").count(), 4);
        // Commas between events, none trailing.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn wait_events_appear_for_stalled_owners() {
        let shape = GemmShape::new(128, 128, 16384);
        let d = Decomposition::fixed_split(shape, TileShape::new(128, 128, 32), 16);
        let r = simulate(&d, &GpuSpec::a100(), Precision::Fp16To32);
        assert!(r.total_wait > 0.0);
        let json = render_chrome_trace(&r);
        assert!(json.contains(r#""name": "wait""#));
    }
}
