//! The event-driven execution engine.
//!
//! Dispatch model: CTAs launch in id order onto the
//! earliest-available SM, one resident CTA per SM — the GPU work
//! distributor's wave behaviour. Fixup dependencies follow
//! Algorithm 5:
//!
//! - a CTA whose *first* segment does not start its tile is a
//!   **contributor**: after its MAC iterations it stores a partial
//!   record (`b`) and signals; its signal time never depends on any
//!   wait, which is what makes the schedule deadlock-free;
//! - a CTA whose *last* segment starts but does not end its tile is
//!   the tile's **owner**: it must wait for each peer's signal, then
//!   pays `d` per peer for the serial accumulate, then stores the
//!   tile.
//!
//! A waiting owner occupies its SM (GPUs cannot preempt a resident
//! CTA), so fixup stalls genuinely consume processor time — the effect
//! the two-tile hybrid exists to hide (§5.2).

use crate::cost::{CtaCosts, DEFAULT_MAC_EFFICIENCY};
use crate::gpu::GpuSpec;
use crate::report::{CtaSpan, SimReport};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use streamk_core::{CtaWork, Decomposition, TileFixup};
use streamk_types::Precision;

/// Simulates `decomp` on `gpu` at `precision`, with the blocking
/// factor running at the default 99%-of-peak MAC efficiency.
///
/// ```
/// use streamk_core::Decomposition;
/// use streamk_sim::{simulate, GpuSpec};
/// use streamk_types::{GemmShape, Precision, TileShape};
///
/// // Figure 1a: nine large tiles on four SMs cap at 75%.
/// let d = Decomposition::data_parallel(GemmShape::new(384, 384, 128), TileShape::new(128, 128, 128));
/// let r = simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
/// assert!((r.quantization_efficiency() - 0.75).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if the decomposition is structurally invalid (debug builds
/// validate it) or if its dependency graph deadlocks — which no
/// decomposition produced by `streamk-core` can.
#[must_use]
pub fn simulate(decomp: &Decomposition, gpu: &GpuSpec, precision: Precision) -> SimReport {
    simulate_with_efficiency(decomp, gpu, precision, DEFAULT_MAC_EFFICIENCY)
}

/// [`simulate`] with an explicit MAC efficiency for the blocking
/// factor (used by the ensemble baselines, whose smaller tiles sustain
/// a lower fraction of peak).
#[must_use]
pub fn simulate_with_efficiency(
    decomp: &Decomposition,
    gpu: &GpuSpec,
    precision: Precision,
    mac_efficiency: f64,
) -> SimReport {
    debug_assert!(decomp.validate().is_ok(), "invalid decomposition: {:?}", decomp.validate());
    let space = decomp.space();
    let tile = space.tile();
    let costs = CtaCosts::derive(gpu, precision, tile, mac_efficiency);

    let grid = GridDesc::from_parts(decomp.ctas(), space.iters_per_tile(), decomp.fixups());
    let des = run_des(&grid, gpu, &costs);

    let shape = space.shape();
    finish_report(
        des,
        &grid,
        gpu,
        precision,
        tile,
        space.total_iters(),
        space.tiles(),
        // Compulsory floor: each input element read at least once.
        ((shape.m * shape.k + shape.k * shape.n) * precision.input_bytes()) as f64,
        shape.flops() as f64,
    )
}

/// A simulator-facing description of a grid: per-CTA iteration
/// ranges plus the derived fixup structure. Built from single-GEMM
/// and batched decompositions alike.
pub(crate) struct GridDesc {
    pub(crate) facts: Vec<CtaFacts>,
    pub(crate) owner_peers: Vec<Vec<usize>>,
    pub(crate) partial_records: usize,
}

/// Per-CTA static facts the DES consumes.
pub(crate) struct CtaFacts {
    pub(crate) iters: usize,
    /// First segment stores a partial (it does not start its tile).
    pub(crate) contributes: bool,
    /// Length of that first segment.
    pub(crate) first_seg_iters: usize,
}

impl GridDesc {
    pub(crate) fn from_parts(ctas: &[CtaWork], iters_per_tile: usize, fixups: Vec<TileFixup>) -> Self {
        let mut owner_peers: Vec<Vec<usize>> = vec![Vec::new(); ctas.len()];
        let mut partial_records = 0usize;
        for fixup in fixups {
            partial_records += fixup.peers.len();
            if !fixup.peers.is_empty() {
                owner_peers[fixup.owner] = fixup.peers;
            }
        }
        let facts = ctas
            .iter()
            .map(|cta| {
                if cta.is_empty() {
                    return CtaFacts { iters: 0, contributes: false, first_seg_iters: 0 };
                }
                let tile_first = (cta.iter_begin / iters_per_tile) * iters_per_tile;
                let first_seg_end = cta.iter_end.min(tile_first + iters_per_tile);
                CtaFacts {
                    iters: cta.len(),
                    contributes: cta.iter_begin != tile_first,
                    first_seg_iters: first_seg_end - cta.iter_begin,
                }
            })
            .collect();
        Self { facts, owner_peers, partial_records }
    }
}

/// The raw outcome of the event-driven dispatch.
pub(crate) struct DesOutcome {
    pub(crate) spans: Vec<CtaSpan>,
    pub(crate) compute_makespan: f64,
    pub(crate) mac_busy: f64,
    pub(crate) total_wait: f64,
}

/// Runs the event-driven dispatch of `grid` on `gpu` at the given
/// per-CTA costs.
pub(crate) fn run_des(grid: &GridDesc, gpu: &GpuSpec, costs: &CtaCosts) -> DesOutcome {
    let g = grid.facts.len();
    // Min-heap of (free_time, sm). Non-negative f64 orders correctly
    // through its bit pattern.
    let key = |t: f64, sm: usize| Reverse((t.to_bits(), sm));
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..gpu.sms).map(|sm| Reverse((0f64.to_bits(), sm))).collect();

    let mut signal_time: Vec<Option<f64>> = vec![None; g];
    let mut spans: Vec<CtaSpan> = Vec::with_capacity(g);
    // Owners blocked on unresolved peer signals: (cta, sm, time after
    // its own MACs, span index).
    let mut blocked: Vec<(usize, usize, f64, usize)> = Vec::new();
    let mut mac_busy = 0.0f64;
    let mut total_wait = 0.0f64;

    let finish_owner = |t_ready: f64, peers: &[usize], signals: &[Option<f64>]| -> (f64, f64) {
        // Serial accumulation in peer order: each load can begin only
        // after that peer has signaled.
        let mut t = t_ready;
        let mut waited = 0.0;
        for &p in peers {
            let sig = signals[p].expect("peer signal resolved");
            if sig > t {
                waited += sig - t;
                t = sig;
            }
            t += costs.d;
        }
        (t, waited)
    };

    for (cta_id, f) in grid.facts.iter().enumerate() {
        let Reverse((bits, sm)) = heap.pop().unwrap_or_else(|| {
            panic!("deadlock: all {} SMs blocked while dispatching CTA {cta_id}", gpu.sms)
        });
        let start = f64::from_bits(bits);
        let mut t = start + costs.a;

        if f.contributes {
            // MACs of the first segment, then partial store + signal.
            t += costs.c * f.first_seg_iters as f64 + costs.b;
            signal_time[cta_id] = Some(t);
            // Remaining segments' MACs.
            t += costs.c * (f.iters - f.first_seg_iters) as f64;
        } else {
            t += costs.c * f.iters as f64;
        }
        mac_busy += costs.c * f.iters as f64;

        let span_idx = spans.len();
        spans.push(CtaSpan { cta_id, sm, start, end: t, iters: f.iters, waited: 0.0 });

        let peers = &grid.owner_peers[cta_id];
        if peers.is_empty() {
            heap.push(key(t, sm));
        } else if peers.iter().all(|&p| signal_time[p].is_some()) {
            let (end, waited) = finish_owner(t, peers, &signal_time);
            total_wait += waited;
            spans[span_idx].end = end;
            spans[span_idx].waited = waited;
            heap.push(key(end, sm));
        } else {
            blocked.push((cta_id, sm, t, span_idx));
        }

        // Newly resolved signals may unblock earlier owners.
        if signal_time[cta_id].is_some() {
            let mut i = 0;
            while i < blocked.len() {
                let (owner, owner_sm, t_ready, span_idx) = blocked[i];
                if grid.owner_peers[owner].iter().all(|&p| signal_time[p].is_some()) {
                    let (end, waited) = finish_owner(t_ready, &grid.owner_peers[owner], &signal_time);
                    total_wait += waited;
                    spans[span_idx].end = end;
                    spans[span_idx].waited = waited;
                    heap.push(key(end, owner_sm));
                    blocked.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
    }
    assert!(blocked.is_empty(), "simulation ended with {} CTAs still blocked", blocked.len());

    let compute_makespan = spans.iter().map(|s| s.end).fold(0.0f64, f64::max);
    DesOutcome { spans, compute_makespan, mac_busy, total_wait }
}

/// Applies the memory roofline and assembles the report.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_report(
    des: DesOutcome,
    grid: &GridDesc,
    gpu: &GpuSpec,
    precision: Precision,
    tile: streamk_types::TileShape,
    total_iters: usize,
    tiles: usize,
    compulsory_input_bytes: f64,
    useful_flops: f64,
) -> SimReport {
    let fragment_traffic = total_iters as f64 * tile.fragment_bytes(precision) as f64 / gpu.l2_reuse;
    let input_traffic = fragment_traffic.max(compulsory_input_bytes);
    let output_traffic = (tiles * tile.tile_output_bytes(precision) as usize) as f64;
    // Each partial record is written once and read once, at
    // accumulator width. Partials are produced and consumed within
    // the launch and fit comfortably in L2 (O(g) tile-sized buffers),
    // so they ride the L2 bandwidth lane, not DRAM.
    let partial_traffic = 2.0 * grid.partial_records as f64 * tile.tile_output_bytes(precision) as f64;
    let traffic_bytes = input_traffic + output_traffic + partial_traffic;
    let dram_time = if gpu.mem_bw.is_finite() { (input_traffic + output_traffic) / gpu.mem_bw } else { 0.0 };
    let l2_time = if gpu.l2_bw.is_finite() { traffic_bytes / gpu.l2_bw } else { 0.0 };
    let memory_time = dram_time.max(l2_time);

    let makespan = des.compute_makespan.max(memory_time) + gpu.grid_launch_s;

    SimReport {
        precision,
        sms: gpu.sms,
        peak_flops: gpu.peak_flops(precision),
        makespan,
        compute_makespan: des.compute_makespan,
        memory_time,
        useful_flops,
        traffic_bytes,
        mac_busy: des.mac_busy,
        total_wait: des.total_wait,
        spans: des.spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_types::{GemmShape, TileShape};

    const FIG1_SHAPE: GemmShape = GemmShape { m: 384, n: 384, k: 128 };

    /// Figure 1a: 9 large tiles on 4 SMs, data-parallel → exactly 75%
    /// quantization efficiency.
    #[test]
    fn figure1a_utilization_ceiling() {
        let d = Decomposition::data_parallel(FIG1_SHAPE, TileShape::new(128, 128, 128));
        let r = simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
        assert!((r.quantization_efficiency() - 0.75).abs() < 1e-9, "{}", r.quantization_efficiency());
    }

    /// Figure 1b: halving BLK_N gives 18 tiles → 90%.
    #[test]
    fn figure1b_utilization_ceiling() {
        let d = Decomposition::data_parallel(FIG1_SHAPE, TileShape::new(128, 64, 128));
        let r = simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
        assert!((r.quantization_efficiency() - 0.90).abs() < 1e-9);
    }

    /// Figure 2a: fixed-split s=2 → 18 CTAs → 90%.
    #[test]
    fn figure2a_fixed_split_efficiency() {
        let d = Decomposition::fixed_split(FIG1_SHAPE, TileShape::new(128, 128, 64), 2);
        let r = simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
        assert!((r.quantization_efficiency() - 0.90).abs() < 1e-9);
    }

    /// Figure 2b: basic Stream-K g=4 → 100% on the overhead-free GPU.
    #[test]
    fn figure2b_stream_k_efficiency() {
        let d = Decomposition::stream_k(FIG1_SHAPE, TileShape::new(128, 128, 4), 4);
        let r = simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
        assert!((r.quantization_efficiency() - 1.0).abs() < 1e-9);
        // And Stream-K beats data-parallel end to end.
        let dp = Decomposition::data_parallel(FIG1_SHAPE, TileShape::new(128, 128, 128));
        let dp_r = simulate(&dp, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
        assert!(r.makespan < dp_r.makespan);
    }

    /// The fixup dependency is real: on a GPU with overheads, a
    /// 32-way fixed-split of one tile serializes its reduction in the
    /// owner.
    #[test]
    fn fixed_split_owner_waits() {
        let shape = GemmShape::new(128, 128, 16384);
        let tile = TileShape::new(128, 128, 32);
        let d = Decomposition::fixed_split(shape, tile, 32);
        let r = simulate(&d, &GpuSpec::a100(), Precision::Fp16To32);
        // Owner is CTA 0; all 31 peers finish at ~the same time, so
        // the owner must have stalled.
        assert!(r.total_wait > 0.0);
        assert_eq!(r.spans[0].cta_id, 0);
        assert!(r.spans[0].waited > 0.0);
    }

    /// Stream-K's temporal skew hides fixup latency: with more tiles
    /// than CTAs, the owner reaches its wait long after the peer
    /// signaled, so waits are (near) zero (§4).
    #[test]
    fn stream_k_skew_hides_fixup_latency() {
        let shape = GemmShape::new(1024, 1024, 2048);
        let tile = TileShape::new(128, 128, 32);
        let d = Decomposition::stream_k(shape, tile, 8);
        let r = simulate(&d, &GpuSpec::a100(), Precision::Fp16To32);
        assert_eq!(r.total_wait, 0.0, "wait = {}", r.total_wait);
    }

    /// Every span is well-formed and within the makespan; SMs never
    /// run two CTAs at once.
    #[test]
    fn spans_are_consistent() {
        let shape = GemmShape::new(896, 384, 128);
        let tile = TileShape::new(128, 128, 32);
        for d in [
            Decomposition::data_parallel(shape, tile),
            Decomposition::stream_k(shape, tile, 4),
            Decomposition::fixed_split(shape, tile, 3),
            Decomposition::two_tile_stream_k_dp(shape, tile, 4),
        ] {
            let r = simulate(&d, &GpuSpec::a100(), Precision::Fp64);
            let mut per_sm: Vec<Vec<(f64, f64)>> = vec![Vec::new(); r.sms];
            for s in &r.spans {
                assert!(s.end >= s.start);
                assert!(s.end <= r.compute_makespan + 1e-15);
                per_sm[s.sm].push((s.start, s.end));
            }
            for sm_spans in &mut per_sm {
                sm_spans.sort_by(|a, b| a.0.total_cmp(&b.0));
                for pair in sm_spans.windows(2) {
                    assert!(pair[1].0 >= pair[0].1 - 1e-15, "overlap on an SM: {pair:?}");
                }
            }
        }
    }

    /// Utilization can never exceed 1 (useful flops ≤ peak · time).
    #[test]
    fn utilization_bounded() {
        let gpu = GpuSpec::a100();
        for (m, n, k) in [(128, 128, 128), (4096, 4096, 4096), (256, 3584, 8192), (129, 257, 511)] {
            let shape = GemmShape::new(m, n, k);
            let tile = TileShape::FP16_STREAMK;
            let d = Decomposition::two_tile_stream_k_dp(shape, tile, gpu.sms);
            let r = simulate(&d, &gpu, Precision::Fp16To32);
            assert!(r.utilization() <= 1.0, "{m}x{n}x{k}: {}", r.utilization());
            assert!(r.utilization() > 0.0);
        }
    }

    /// Large cube problems must land near peak for Stream-K.
    #[test]
    fn large_problem_near_peak() {
        let gpu = GpuSpec::a100();
        let shape = GemmShape::new(8192, 8192, 8192);
        let d = Decomposition::two_tile_stream_k_dp(shape, TileShape::FP16_STREAMK, gpu.sms);
        let r = simulate(&d, &gpu, Precision::Fp16To32);
        assert!(r.utilization() > 0.90, "utilization = {}", r.utilization());
    }

    /// Small problems are memory-bound.
    #[test]
    fn small_problem_memory_bound() {
        // A wide, shallow product: 62 flops/byte, far below the
        // fp16→32 balance point of ~143.
        let gpu = GpuSpec::a100();
        let shape = GemmShape::new(4096, 4096, 128);
        let d = Decomposition::two_tile_stream_k_dp(shape, TileShape::FP16_STREAMK, gpu.sms);
        let r = simulate(&d, &gpu, Precision::Fp16To32);
        assert!(r.is_memory_bound());
    }

    /// Empty CTAs (grid larger than the iteration space) simulate
    /// without incident.
    #[test]
    fn empty_ctas_are_harmless() {
        let shape = GemmShape::new(64, 64, 32);
        let tile = TileShape::new(64, 64, 16);
        let d = Decomposition::stream_k(shape, tile, 7);
        let r = simulate(&d, &GpuSpec::hypothetical_4sm(), Precision::Fp64);
        assert_eq!(r.spans.len(), 7);
        assert!(r.makespan > 0.0);
    }
}
