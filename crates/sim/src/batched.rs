//! Simulating batched decompositions.
//!
//! A [`BatchedDecomposition`] runs through the same event-driven core
//! as a single GEMM — its global tile ids behave exactly like tile
//! ids, so the `GridDesc` machinery carries over. Only the roofline
//! bookkeeping differs: compulsory input traffic and useful FLOPs
//! scale with the batch.

use crate::cost::{CtaCosts, DEFAULT_MAC_EFFICIENCY};
use crate::engine::{finish_report, run_des, GridDesc};
use crate::gpu::GpuSpec;
use crate::report::SimReport;
use streamk_core::BatchedDecomposition;
use streamk_types::Precision;

/// Simulates a batched decomposition on `gpu` at `precision`, at the
/// default MAC efficiency.
///
/// # Panics
///
/// Panics if the decomposition is structurally invalid.
#[must_use]
pub fn simulate_batched(decomp: &BatchedDecomposition, gpu: &GpuSpec, precision: Precision) -> SimReport {
    simulate_batched_with_efficiency(decomp, gpu, precision, DEFAULT_MAC_EFFICIENCY)
}

/// [`simulate_batched`] with an explicit MAC efficiency.
///
/// # Panics
///
/// Panics if the decomposition is structurally invalid.
#[must_use]
pub fn simulate_batched_with_efficiency(
    decomp: &BatchedDecomposition,
    gpu: &GpuSpec,
    precision: Precision,
    mac_efficiency: f64,
) -> SimReport {
    decomp.validate().expect("invalid batched decomposition");
    let space = decomp.space();
    let instance = space.instance();
    let tile = instance.tile();
    let shape = instance.shape();
    let costs = CtaCosts::derive(gpu, precision, tile, mac_efficiency);

    let grid = GridDesc::from_parts(decomp.ctas(), space.iters_per_tile(), decomp.fixups());
    let des = run_des(&grid, gpu, &costs);

    let batch = space.batch() as f64;
    finish_report(
        des,
        &grid,
        gpu,
        precision,
        tile,
        space.total_iters(),
        space.tiles(),
        batch * ((shape.m * shape.k + shape.k * shape.n) * precision.input_bytes()) as f64,
        batch * shape.flops() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_core::{BatchedSpace, Decomposition};
    use streamk_types::{GemmShape, TileShape};

    #[test]
    fn batch_of_one_matches_single_gemm() {
        let shape = GemmShape::new(512, 384, 768);
        let tile = TileShape::FP16_STREAMK;
        let gpu = GpuSpec::a100();
        let batched = BatchedDecomposition::stream_k(BatchedSpace::new(1, shape, tile), 64);
        let single = Decomposition::stream_k(shape, tile, 64);
        let rb = simulate_batched(&batched, &gpu, Precision::Fp16To32);
        let rs = crate::engine::simulate(&single, &gpu, Precision::Fp16To32);
        assert!((rb.makespan - rs.makespan).abs() / rs.makespan < 1e-12);
        assert_eq!(rb.useful_flops, rs.useful_flops);
    }

    /// The batched motivation: many tiny instances quantize terribly
    /// as per-instance grids but perfectly as one Stream-K grid.
    #[test]
    fn batched_stream_k_beats_per_instance_dispatch() {
        let gpu = GpuSpec::a100();
        // 40 instances x 9 tiles = 360 global tiles; per-instance DP
        // would run 9 CTAs on 108 SMs, 40 times (with 40 launches).
        let shape = GemmShape::new(384, 384, 2048);
        let tile = TileShape::FP16_STREAMK;

        let per_instance_makespan: f64 = (0..40)
            .map(|_| {
                crate::engine::simulate(&Decomposition::data_parallel(shape, tile), &gpu, Precision::Fp16To32)
                    .makespan
            })
            .sum();

        let batched = BatchedDecomposition::stream_k(BatchedSpace::new(40, shape, tile), gpu.sms);
        let r = simulate_batched(&batched, &gpu, Precision::Fp16To32);
        assert!(
            r.makespan < per_instance_makespan / 5.0,
            "batched {} vs per-instance {}",
            r.makespan,
            per_instance_makespan
        );
        assert!(r.utilization() > 0.8, "utilization {}", r.utilization());
    }

    #[test]
    fn batched_dp_still_quantizes_badly() {
        let gpu = GpuSpec::a100();
        // 13 compute-bound instances x 9 tiles = 117 global tiles on
        // 108 SMs: the classic partial second wave, now arising from
        // the batch axis.
        let shape = GemmShape::new(384, 384, 4096);
        let tile = TileShape::FP16_STREAMK;
        let space = BatchedSpace::new(13, shape, tile);
        assert_eq!(space.tiles(), 117);
        let dp = simulate_batched(&BatchedDecomposition::data_parallel(space.clone()), &gpu, Precision::Fp16To32);
        let sk = simulate_batched(&BatchedDecomposition::stream_k(space, gpu.sms), &gpu, Precision::Fp16To32);
        assert!(sk.makespan < dp.makespan);
        assert!(dp.quantization_efficiency() < 0.60);
        assert!(sk.quantization_efficiency() > 0.85);
    }

    #[test]
    fn report_accounting_scales_with_batch() {
        let gpu = GpuSpec::a100();
        let shape = GemmShape::new(256, 256, 512);
        let tile = TileShape::FP16_STREAMK;
        let r1 = simulate_batched(
            &BatchedDecomposition::stream_k(BatchedSpace::new(2, shape, tile), 16),
            &gpu,
            Precision::Fp16To32,
        );
        let r2 = simulate_batched(
            &BatchedDecomposition::stream_k(BatchedSpace::new(4, shape, tile), 16),
            &gpu,
            Precision::Fp16To32,
        );
        assert!((r2.useful_flops / r1.useful_flops - 2.0).abs() < 1e-12);
        assert!(r2.traffic_bytes > r1.traffic_bytes);
    }
}
