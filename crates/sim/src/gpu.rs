//! Simulated GPU specifications.

use streamk_core::CostModel;
use streamk_types::Precision;

/// The physical parameters of a simulated GPU.
///
/// Two presets matter for the reproduction: [`GpuSpec::a100`] (the
/// paper's locked-clock A100) and [`GpuSpec::hypothetical_4sm`] (the
/// overhead-free four-SM processor of the paper's Figures 1-3 and 9,
/// where utilization numbers like 75%/90%/100% are exact).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Streaming multiprocessor count `p`.
    pub sms: usize,
    /// Peak FP64 tensor-core throughput, TFLOP/s.
    pub fp64_tflops: f64,
    /// Peak FP16→32 tensor-core throughput, TFLOP/s.
    pub fp16t32_tflops: f64,
    /// Global-memory bandwidth, bytes/s. `f64::INFINITY` disables the
    /// memory roofline (useful for pure-quantization studies).
    pub mem_bw: f64,
    /// L2-cache bandwidth, bytes/s. Partial-sum fixup records are
    /// small (`g` tile-sized buffers — a few MB, far below the A100's
    /// 40 MB L2) and are produced and consumed within the launch, so
    /// their traffic is served at L2 rather than DRAM speed.
    pub l2_bw: f64,
    /// Cross-CTA reuse factor the L2 cache provides on operand
    /// fragment traffic (≥ 1). Neighbouring CTAs re-read the same
    /// **A** row-panels / **B** column-panels; a 40 MB A100 L2 absorbs
    /// roughly this fraction.
    pub l2_reuse: f64,
    /// One-time grid launch latency, seconds (added once per launch).
    pub grid_launch_s: f64,
    /// Appendix A.1 cost-unit ratios for FP64 kernels (the `c` field
    /// sets the unit; `a/c`, `b/c`, `d/c` are what the simulator
    /// uses). Shared with the grid-size selection model so launch
    /// decisions and simulated outcomes agree.
    pub fp64_units: CostModel,
    /// Cost-unit ratios for FP16→32 kernels.
    pub fp16t32_units: CostModel,
}

impl GpuSpec {
    /// The paper's test GPU: NVIDIA A100 with 108 SMs, power locked at
    /// 400 W and SM clocks at 1005 MHz, giving 13.9 TFLOP/s FP64 and
    /// 222.3 TFLOP/s FP16→32 tensor-core peaks (§6 "Hardware
    /// environment"). Memory bandwidth is the A100-80GB HBM2e figure;
    /// cost-unit ratios are the Figure-8-calibrated constants of
    /// `streamk_core::CostModel`.
    #[must_use]
    pub fn a100() -> Self {
        GpuSpec {
            name: "A100-sim (108 SM, locked clocks)",
            sms: 108,
            fp64_tflops: 13.9,
            fp16t32_tflops: 222.3,
            mem_bw: 1.555e12,
            l2_bw: 4.5e12,
            l2_reuse: 4.0,
            grid_launch_s: 3.0e-6,
            fp64_units: CostModel::a100_fp64(),
            fp16t32_units: CostModel::a100_fp16(),
        }
    }

    /// The paper's hypothetical four-SM GPU (Figures 1, 2, 3, 9): no
    /// overheads, no bandwidth ceiling, so schedules show pure
    /// quantization behaviour and the utilization ceilings quoted in
    /// the figures (75%, 90%, 100%) are exact.
    #[must_use]
    pub fn hypothetical_4sm() -> Self {
        let zero_overhead = CostModel { a: 0.0, b: 0.0, c: 1.0, d: 0.0 };
        GpuSpec {
            name: "hypothetical 4-SM GPU",
            sms: 4,
            fp64_tflops: 1.0,
            fp16t32_tflops: 1.0,
            mem_bw: f64::INFINITY,
            l2_bw: f64::INFINITY,
            l2_reuse: 1.0,
            grid_launch_s: 0.0,
            fp64_units: zero_overhead,
            fp16t32_units: zero_overhead,
        }
    }

    /// An overhead-free variant of [`GpuSpec::a100`] for isolating
    /// quantization effects at A100 scale.
    #[must_use]
    pub fn a100_ideal() -> Self {
        let zero_overhead = CostModel { a: 0.0, b: 0.0, c: 1.0, d: 0.0 };
        GpuSpec {
            mem_bw: f64::INFINITY,
            l2_bw: f64::INFINITY,
            l2_reuse: 1.0,
            grid_launch_s: 0.0,
            name: "A100-sim (ideal, overhead-free)",
            fp64_units: zero_overhead,
            fp16t32_units: zero_overhead,
            ..Self::a100()
        }
    }

    /// An H100-SXM-like preset (132 SMs): wider and faster than the
    /// A100, with proportionally higher bandwidth — used by the
    /// processor-width studies (the paper's §1: quantization
    /// inefficiency grows as processors grow).
    #[must_use]
    pub fn h100_like() -> Self {
        GpuSpec {
            name: "H100-like (132 SM)",
            sms: 132,
            fp64_tflops: 67.0,
            fp16t32_tflops: 989.0,
            mem_bw: 3.35e12,
            l2_bw: 9.0e12,
            ..Self::a100()
        }
    }

    /// A V100-like preset (80 SMs): the narrower previous generation,
    /// where the classic data-parallel decomposition still
    /// oversubscribes well.
    #[must_use]
    pub fn v100_like() -> Self {
        GpuSpec {
            name: "V100-like (80 SM)",
            sms: 80,
            fp64_tflops: 7.8,
            fp16t32_tflops: 125.0,
            mem_bw: 0.9e12,
            l2_bw: 2.5e12,
            ..Self::a100()
        }
    }

    /// Peak throughput for `precision`, FLOP/s.
    #[must_use]
    pub fn peak_flops(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Fp64 => self.fp64_tflops * 1e12,
            Precision::Fp16To32 => self.fp16t32_tflops * 1e12,
        }
    }

    /// The Appendix A.1 cost-unit ratios for `precision`.
    #[must_use]
    pub fn cost_units(&self, precision: Precision) -> CostModel {
        match precision {
            Precision::Fp64 => self.fp64_units,
            Precision::Fp16To32 => self.fp16t32_units,
        }
    }

    /// The machine-balance point for `precision`: the arithmetic
    /// intensity (FLOP/byte) at which compute and memory rooflines
    /// cross.
    #[must_use]
    pub fn balance_flops_per_byte(&self, precision: Precision) -> f64 {
        self.peak_flops(precision) / self.mem_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_paper_environment() {
        let gpu = GpuSpec::a100();
        assert_eq!(gpu.sms, 108);
        assert_eq!(gpu.peak_flops(Precision::Fp64), 13.9e12);
        assert_eq!(gpu.peak_flops(Precision::Fp16To32), 222.3e12);
    }

    #[test]
    fn hypothetical_gpu_is_overhead_free() {
        let gpu = GpuSpec::hypothetical_4sm();
        assert_eq!(gpu.sms, 4);
        assert_eq!(gpu.grid_launch_s, 0.0);
        assert_eq!(gpu.cost_units(Precision::Fp64).d, 0.0);
        assert!(gpu.mem_bw.is_infinite());
    }

    #[test]
    fn cost_units_match_core_calibration() {
        let gpu = GpuSpec::a100();
        assert_eq!(gpu.cost_units(Precision::Fp16To32), CostModel::a100_fp16());
        assert_eq!(gpu.cost_units(Precision::Fp64), CostModel::a100_fp64());
    }

    #[test]
    fn generation_presets_scale_sensibly() {
        let v100 = GpuSpec::v100_like();
        let a100 = GpuSpec::a100();
        let h100 = GpuSpec::h100_like();
        assert!(v100.sms < a100.sms && a100.sms < h100.sms);
        assert!(v100.peak_flops(Precision::Fp16To32) < a100.peak_flops(Precision::Fp16To32));
        assert!(a100.peak_flops(Precision::Fp16To32) < h100.peak_flops(Precision::Fp16To32));
        assert!(v100.mem_bw < a100.mem_bw && a100.mem_bw < h100.mem_bw);
    }

    #[test]
    fn balance_point_is_plausible() {
        let gpu = GpuSpec::a100();
        // A100 fp64 balance ≈ 9 flops/byte; fp16→32 ≈ 143.
        let fp64 = gpu.balance_flops_per_byte(Precision::Fp64);
        assert!((8.0..10.0).contains(&fp64), "{fp64}");
        let fp16 = gpu.balance_flops_per_byte(Precision::Fp16To32);
        assert!((130.0..155.0).contains(&fp16), "{fp16}");
    }
}
