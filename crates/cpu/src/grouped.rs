//! Grouped GEMM execution — one grid, many problem shapes.

use crate::executor::CpuExecutor;
use crate::fixup::{FixupBoard, WaitPolicy};
use crate::output::TileWriter;
use crate::packcache::{mac_loop_kernel_cached, PackCache};
use crate::sched::GridCursor;
use crate::workspace::Workspace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use streamk_core::{GroupedDecomposition, PeerTable};
use streamk_matrix::{Matrix, Promote, Scalar};

impl CpuExecutor {
    /// Computes `C_i = A_i · B_i` for every instance of the group by
    /// executing `decomp`'s single grid. Instances may have unrelated
    /// shapes; they share the blocking factor.
    ///
    /// # Panics
    ///
    /// Panics if the operand counts or shapes don't match the
    /// decomposition, or if the fixup structure needs more co-resident
    /// CTAs than there are workers.
    #[must_use]
    pub fn gemm_grouped<In, Acc>(
        &self,
        a: &[Matrix<In>],
        b: &[Matrix<In>],
        decomp: &GroupedDecomposition,
    ) -> Vec<Matrix<Acc>>
    where
        In: Promote<Acc>,
        Acc: Scalar,
    {
        let space = decomp.space();
        assert_eq!(a.len(), space.groups(), "need one A per instance");
        assert_eq!(b.len(), space.groups(), "need one B per instance");
        for (i, inst) in space.instances().iter().enumerate() {
            let shape = inst.shape();
            assert_eq!((a[i].rows(), a[i].cols()), (shape.m, shape.k), "A[{i}] must be m x k");
            assert_eq!((b[i].rows(), b[i].cols()), (shape.k, shape.n), "B[{i}] must be k x n");
        }
        decomp.validate().expect("invalid grouped decomposition");

        let fixups = decomp.fixups();
        let max_covering = fixups.iter().map(|f| f.covering_ctas()).max().unwrap_or(1);
        assert!(
            max_covering <= self.threads(),
            "decomposition needs {max_covering} co-resident CTAs but the executor has {} threads",
            self.threads()
        );
        // Flat CSR peer table — no per-launch Vec-of-Vec cloning.
        let owner_peers = PeerTable::new(decomp.grid_size(), &fixups);

        // One blocking factor for all instances — the shared
        // accumulator size.
        let tile = space.instances()[0].tile();
        let mut outputs: Vec<Matrix<Acc>> = space
            .instances()
            .iter()
            .enumerate()
            .map(|(i, inst)| Matrix::<Acc>::zeros(inst.shape().m, inst.shape().n, a[i].layout()))
            .collect();
        let writers: Vec<TileWriter<'_, Acc>> = outputs
            .iter_mut()
            .zip(space.instances())
            .map(|(c, inst)| {
                let (rows, cols, layout) = (c.rows(), c.cols(), c.layout());
                TileWriter::new(c.as_mut_slice(), rows, cols, layout, inst.tiles())
            })
            .collect();

        let board = FixupBoard::<Acc>::new(decomp.grid_size());
        let cursor = GridCursor::new(decomp.grid_size());
        let ctas = decomp.ctas();
        let kind = self.kernel();
        // One pack cache per instance, keyed by that instance's own
        // iteration space (grouped instances have unrelated shapes).
        // Empty when caching is off or the kernel doesn't consume
        // panels; `get` then yields `None` and the dispatcher packs
        // privately.
        let policy = WaitPolicy::with_watchdog(self.watchdog());
        let caches: Vec<PackCache<In>> = if self.pack_cache() {
            space.instances().iter().filter_map(|inst| PackCache::for_kernel(inst, kind, policy)).collect()
        } else {
            Vec::new()
        };

        // Round-robin cursor claiming (owners block in
        // `wait_and_take`): the interleave keeps a blocked owner's
        // peers claimed by other workers, which static ranges would
        // not guarantee.
        let tile_len = tile.blk_m * tile.blk_n;
        let wait_ns = AtomicU64::new(0);
        self.worker_pool().run(&|wid, scratch| {
            // Per-worker arena from the persistent pool's scratch
            // store, warm across launches; the dispatcher handles each
            // instance's layout (packed kernels normalize it, Blocked
            // falls back to scalar when strided).
            let ws = scratch.get_or_insert_with(|| Workspace::<In, Acc>::new(tile_len));
            ws.ensure_tile_len(tile_len);
            while let Some(id) = cursor.claim() {
                let cta = &ctas[id];
                for seg in space.segments(cta) {
                    let inst = &space.instances()[seg.instance];
                    let (av, bv) = (a[seg.instance].view(), b[seg.instance].view());

                    if !seg.starts_tile {
                        let mut partial = ws.take_partial();
                        mac_loop_kernel_cached(kind, caches.get(seg.instance), wid, &av, &bv, inst, seg.local_tile, seg.local_begin, seg.local_end, &mut partial, &mut ws.pack);
                        board
                            .store_and_signal(cta.cta_id, partial)
                            .expect("fault-free grouped schedule");
                        continue;
                    }
                    ws.reset_accum();
                    mac_loop_kernel_cached(kind, caches.get(seg.instance), wid, &av, &bv, inst, seg.local_tile, seg.local_begin, seg.local_end, &mut ws.accum, &mut ws.pack);
                    if !seg.ends_tile {
                        for &peer in owner_peers.peers(cta.cta_id) {
                            let t0 = Instant::now();
                            let partial = board.wait_and_take(peer);
                            wait_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            for (acc, p) in ws.accum.iter_mut().zip(&partial) {
                                *acc += *p;
                            }
                            ws.recycle_partial(partial);
                        }
                    }
                    let (rows, cols) = inst.tile_extents(seg.local_tile);
                    writers[seg.instance].store_tile(seg.local_tile, rows, cols, tile.blk_n, &ws.accum);
                }
            }
        });
        self.record_stats(0, 0, Duration::from_nanos(wait_ns.load(Ordering::Relaxed)), 0);
        drop(writers);
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_core::GroupedSpace;
    use streamk_matrix::reference::gemm_naive;
    use streamk_types::{GemmShape, Layout, TileShape};

    fn operands(shapes: &[GemmShape], seed: u64) -> (Vec<Matrix<f64>>, Vec<Matrix<f64>>) {
        let a = shapes
            .iter()
            .enumerate()
            .map(|(i, s)| Matrix::<f64>::random::<f64>(s.m, s.k, Layout::RowMajor, seed + i as u64))
            .collect();
        let b = shapes
            .iter()
            .enumerate()
            .map(|(i, s)| Matrix::<f64>::random::<f64>(s.k, s.n, Layout::RowMajor, seed + 50 + i as u64))
            .collect();
        (a, b)
    }

    fn verify(shapes: &[GemmShape], tile: TileShape, grid: usize, threads: usize, seed: u64) {
        let (a, b) = operands(shapes, seed);
        let space = GroupedSpace::new(shapes, tile);
        let decomp = GroupedDecomposition::stream_k(space, grid);
        let c = CpuExecutor::with_threads(threads).gemm_grouped::<f64, f64>(&a, &b, &decomp);
        for i in 0..shapes.len() {
            c[i].assert_close(&gemm_naive::<f64, f64>(&a[i], &b[i]), 1e-11);
        }
    }

    #[test]
    fn mixed_shapes_match_reference() {
        verify(
            &[GemmShape::new(32, 32, 48), GemmShape::new(48, 16, 96), GemmShape::new(16, 64, 16)],
            TileShape::new(16, 16, 8),
            6,
            6,
            1,
        );
    }

    #[test]
    fn ragged_mixed_shapes() {
        verify(
            &[GemmShape::new(19, 23, 31), GemmShape::new(7, 53, 11), GemmShape::new(41, 13, 67)],
            TileShape::new(16, 16, 8),
            5,
            5,
            2,
        );
    }

    #[test]
    fn transformer_like_group() {
        // The four GEMMs of one attention layer at tokens = 24,
        // hidden = 32: wildly different aspect ratios, one launch.
        let h = 32;
        let t = 24;
        verify(
            &[
                GemmShape::new(t, 3 * h, h),
                GemmShape::new(t, h, h),
                GemmShape::new(t, 4 * h, h),
                GemmShape::new(t, h, 4 * h),
            ],
            TileShape::new(16, 16, 8),
            8,
            8,
            3,
        );
    }

    #[test]
    fn grouped_data_parallel_matches_reference() {
        let shapes = [GemmShape::new(32, 32, 16), GemmShape::new(16, 16, 64)];
        let (a, b) = operands(&shapes, 4);
        let decomp = GroupedDecomposition::data_parallel(GroupedSpace::new(&shapes, TileShape::new(16, 16, 8)));
        let c = CpuExecutor::with_threads(4).gemm_grouped::<f64, f64>(&a, &b, &decomp);
        for i in 0..2 {
            c[i].assert_close(&gemm_naive::<f64, f64>(&a[i], &b[i]), 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "one A per instance")]
    fn mismatched_group_count_panics() {
        let shapes = [GemmShape::new(16, 16, 16)];
        let (a, b) = operands(&shapes, 5);
        let both = [shapes[0], shapes[0]];
        let decomp = GroupedDecomposition::stream_k(GroupedSpace::new(&both, TileShape::new(16, 16, 16)), 2);
        let _ = CpuExecutor::with_threads(2).gemm_grouped::<f64, f64>(&a, &b, &decomp);
    }
}
