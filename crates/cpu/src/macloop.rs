//! The CTA-wide `MacLoop` subroutine (Algorithm 3).
//!
//! Performs a range of MAC-loop iterations for one output tile,
//! accumulating into a `BLK_M × BLK_N` accumulator at accumulator
//! precision. Inputs are promoted per element — the f16 → f32
//! promotion of mixed-precision GEMM happens here, exactly where
//! tensor cores do it.
//!
//! Operands arrive as [`MatrixView`]s, so transposed and strided
//! inputs (the `_nt`/`_tn`/`_tt` GEMM variants) share this one
//! kernel; a fast path covers the row-contiguous case.

use streamk_core::IterSpace;
use streamk_matrix::{Matrix, MatrixView, Promote, Scalar};

/// Executes local MAC-loop iterations `[local_begin, local_end)` of
/// `tile_idx`, adding into `accum` (a row-major `BLK_M × BLK_N`
/// scratch tile). Operands are logical `m × k` / `k × n` views.
///
/// Edge tiles are clamped to the problem extents; accumulator entries
/// outside the clamped region are left untouched.
///
/// # Panics
///
/// Panics if `accum` is not `BLK_M · BLK_N` long or the local range is
/// out of bounds.
pub fn mac_loop_view<In, Acc>(
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    space: &IterSpace,
    tile_idx: usize,
    local_begin: usize,
    local_end: usize,
    accum: &mut [Acc],
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let tile = space.tile();
    assert_eq!(accum.len(), tile.blk_m * tile.blk_n, "accumulator must be BLK_M x BLK_N");
    assert!(local_end <= space.iters_per_tile(), "local range out of bounds");
    let (rows, cols) = space.tile_extents(tile_idx);

    // Fast path: row-contiguous operands let us walk B rows as slices
    // in the inner loop (i-k-j order), the cache-friendly traversal
    // the shared-memory staging of Algorithm 3 emulates.
    if a.rows_contiguous() && b.rows_contiguous() {
        for local in local_begin..local_end {
            let ks = space.k_extents(local);
            for i in rows.clone() {
                let arow = a.row_slice(i);
                let acc_row = &mut accum[(i - rows.start) * tile.blk_n..];
                for k in ks.clone() {
                    let aik = arow[k].promote();
                    let brow = &b.row_slice(k)[cols.clone()];
                    for (acc, &bkj) in acc_row.iter_mut().zip(brow) {
                        *acc = acc.mac(aik, bkj.promote());
                    }
                }
            }
        }
        return;
    }

    // Generic path for any stride combination.
    for local in local_begin..local_end {
        let ks = space.k_extents(local);
        for i in rows.clone() {
            for k in ks.clone() {
                let aik = a.get(i, k).promote();
                for j in cols.clone() {
                    let idx = (i - rows.start) * tile.blk_n + (j - cols.start);
                    accum[idx] = accum[idx].mac(aik, b.get(k, j).promote());
                }
            }
        }
    }
}

/// [`mac_loop_view`] over owned matrices — the original Algorithm 3
/// signature, kept for the common non-transposed case.
///
/// # Panics
///
/// As [`mac_loop_view`].
pub fn mac_loop<In, Acc>(
    a: &Matrix<In>,
    b: &Matrix<In>,
    space: &IterSpace,
    tile_idx: usize,
    local_begin: usize,
    local_end: usize,
    accum: &mut [Acc],
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    mac_loop_view(&a.view(), &b.view(), space, tile_idx, local_begin, local_end, accum);
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_matrix::reference::gemm_naive;
    use streamk_types::{GemmShape, Layout, TileShape};

    fn space(shape: GemmShape, tile: TileShape) -> IterSpace {
        IterSpace::new(shape, tile)
    }

    #[test]
    fn full_tile_matches_reference() {
        let shape = GemmShape::new(8, 8, 12);
        let tile = TileShape::new(8, 8, 4);
        let s = space(shape, tile);
        let a = Matrix::<f64>::random::<f64>(8, 12, Layout::RowMajor, 1);
        let b = Matrix::<f64>::random::<f64>(12, 8, Layout::RowMajor, 2);
        let mut accum = vec![0.0f64; 64];
        mac_loop(&a, &b, &s, 0, 0, s.iters_per_tile(), &mut accum);
        let reference = gemm_naive::<f64, f64>(&a, &b);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(accum[i * 8 + j], reference.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn split_ranges_sum_to_whole() {
        // Accumulating [0,2) then [2,5) must equal [0,5) exactly
        // (same order, same arithmetic).
        let shape = GemmShape::new(4, 4, 20);
        let tile = TileShape::new(4, 4, 4);
        let s = space(shape, tile);
        let a = Matrix::<f64>::random::<f64>(4, 20, Layout::RowMajor, 3);
        let b = Matrix::<f64>::random::<f64>(20, 4, Layout::RowMajor, 4);
        let mut whole = vec![0.0f64; 16];
        mac_loop(&a, &b, &s, 0, 0, 5, &mut whole);
        let mut parts = vec![0.0f64; 16];
        mac_loop(&a, &b, &s, 0, 0, 2, &mut parts);
        mac_loop(&a, &b, &s, 0, 2, 5, &mut parts);
        assert_eq!(whole, parts);
    }

    #[test]
    fn edge_tile_clamps() {
        // 10x6 output with 8x8 tiles: 2x1 tile grid; tile 1 covers
        // rows 8..10, cols 0..6.
        let shape = GemmShape::new(10, 6, 4);
        let tile = TileShape::new(8, 8, 4);
        let s = space(shape, tile);
        assert_eq!(s.tiles(), 2);
        let a = Matrix::<f64>::random::<f64>(10, 4, Layout::RowMajor, 5);
        let b = Matrix::<f64>::random::<f64>(4, 6, Layout::RowMajor, 6);
        let mut accum = vec![0.0f64; 64];
        mac_loop(&a, &b, &s, 1, 0, 1, &mut accum);
        let reference = gemm_naive::<f64, f64>(&a, &b);
        for i in 0..2 {
            for j in 0..6 {
                assert_eq!(accum[i * 8 + j], reference.get(8 + i, j));
            }
        }
        // Outside the clamped region the accumulator is untouched.
        assert_eq!(accum[2 * 8], 0.0);
        assert_eq!(accum[7], 0.0);
    }

    #[test]
    fn generic_path_matches_fast_path() {
        let shape = GemmShape::new(16, 12, 24);
        let tile = TileShape::new(8, 8, 8);
        let s = space(shape, tile);
        let a_r = Matrix::<f64>::random::<f64>(16, 24, Layout::RowMajor, 7);
        let b_r = Matrix::<f64>::random::<f64>(24, 12, Layout::RowMajor, 8);
        let a_c = a_r.to_layout(Layout::ColMajor);
        let b_c = b_r.to_layout(Layout::ColMajor);
        for tile_idx in 0..s.tiles() {
            let mut fast = vec![0.0f64; 64];
            let mut generic = vec![0.0f64; 64];
            mac_loop(&a_r, &b_r, &s, tile_idx, 0, s.iters_per_tile(), &mut fast);
            mac_loop(&a_c, &b_c, &s, tile_idx, 0, s.iters_per_tile(), &mut generic);
            assert_eq!(fast, generic, "tile {tile_idx}");
        }
    }

    #[test]
    fn transposed_views_match_materialized_transpose() {
        let shape = GemmShape::new(12, 10, 14);
        let tile = TileShape::new(8, 8, 8);
        let s = space(shape, tile);
        // A stored as kxm, B stored as nxk; use transposed views.
        let a_store = Matrix::<f64>::random::<f64>(14, 12, Layout::RowMajor, 9);
        let b_store = Matrix::<f64>::random::<f64>(10, 14, Layout::RowMajor, 10);
        let a_mat = a_store.transposed();
        let b_mat = b_store.transposed();
        for tile_idx in 0..s.tiles() {
            let mut via_views = vec![0.0f64; 64];
            let mut via_copies = vec![0.0f64; 64];
            mac_loop_view(&a_store.t(), &b_store.t(), &s, tile_idx, 0, s.iters_per_tile(), &mut via_views);
            mac_loop(&a_mat, &b_mat, &s, tile_idx, 0, s.iters_per_tile(), &mut via_copies);
            assert_eq!(via_views, via_copies, "tile {tile_idx}");
        }
    }

    #[test]
    fn mixed_precision_promotes_before_accumulating() {
        use streamk_matrix::f16;
        let shape = GemmShape::new(4, 4, 8);
        let tile = TileShape::new(4, 4, 4);
        let s = space(shape, tile);
        let a = Matrix::<f16>::patterned::<f32>(4, 8, Layout::RowMajor);
        let b = Matrix::<f16>::patterned::<f32>(8, 4, Layout::RowMajor);
        let mut accum = vec![0.0f32; 16];
        mac_loop(&a, &b, &s, 0, 0, 2, &mut accum);
        let reference = gemm_naive::<f16, f32>(&a, &b);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(accum[i * 4 + j], reference.get(i, j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "accumulator")]
    fn wrong_accumulator_size_panics() {
        let shape = GemmShape::new(8, 8, 8);
        let tile = TileShape::new(8, 8, 8);
        let s = space(shape, tile);
        let a = Matrix::<f64>::zeros(8, 8, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(8, 8, Layout::RowMajor);
        let mut accum = vec![0.0f64; 10];
        mac_loop(&a, &b, &s, 0, 0, 1, &mut accum);
    }
}
