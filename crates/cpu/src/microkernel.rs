//! Register-blocked inner kernels.
//!
//! The paper's `MacLoop` implementations "fully unroll the per-thread
//! MAC-loop iteration [and] implement additional blocking at the warp
//! and/or thread levels" (§3.2). This module is the CPU analogue, in
//! three generations:
//!
//! - [`mac_loop_blocked`] — a `4 × 4` register-blocked update over
//!   *unpacked* row-contiguous views, with a scalar edge path;
//! - [`mac_loop_packed`] — the packed-panel pipeline: operands are
//!   first copied into BLIS-style `MR`/`NR` panels
//!   ([`streamk_matrix::pack`]), then a const-generic `MR × NR`
//!   register block walks both panels with unit stride. Ragged edges
//!   are zero-padded at pack time, so there is no scalar edge path —
//!   padded lanes are computed and discarded;
//! - [`mac_loop_simd`] — the same panel walk with the inner block
//!   dispatched to runtime-detected AVX-512F/AVX2 kernels
//!   ([`crate::simd`]); unfused multiply-then-add per lane keeps it
//!   bit-exact with every other generation. [`mac_loop_cached`] is
//!   the variant that consumes pre-packed full-k panels from the
//!   grid-shared [`crate::packcache::PackCache`] instead of packing
//!   per segment.
//!
//! Every kernel accumulates each output element in ascending-k order,
//! so all of them — and the scalar
//! [`mac_loop_view`](crate::macloop::mac_loop_view) — produce
//! bit-identical results; property tests pin that. [`KernelKind`]
//! names each variant for runtime selection (see
//! [`crate::calibrate::select_kernel`]), and [`mac_loop_kernel`] is
//! the one dispatch point the executors call.

use std::fmt;
use streamk_core::IterSpace;
use streamk_matrix::{pack_a_into, pack_b_into, MatrixView, Promote, Scalar};

use crate::macloop::mac_loop_view;
use crate::simd::{simd_block, SimdLevel};

/// Register block height of the legacy unpacked kernel.
pub const MR: usize = 4;
/// Register block width of the legacy unpacked kernel.
pub const NR: usize = 4;

/// Reusable staging buffers for packed operands — one pair per
/// worker, grown once and reused for every segment thereafter.
#[derive(Debug, Default)]
pub struct PackBuffers<In> {
    /// A packed into `MR`-row panels.
    pub a: Vec<In>,
    /// B packed into `NR`-column panels.
    pub b: Vec<In>,
}

impl<In> PackBuffers<In> {
    /// Empty buffers; they grow to the high-water mark on first use.
    #[must_use]
    pub fn new() -> Self {
        Self { a: Vec::new(), b: Vec::new() }
    }
}

/// The inner-kernel implementations the executors can run.
///
/// All variants are bit-exact against each other (identical
/// ascending-k accumulation per output element); they differ only in
/// speed. `Blocked` requires row-contiguous operands and silently
/// falls back to `Scalar` otherwise; the packed variants normalize
/// any operand layout at pack time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// The scalar `MacLoop` ([`mac_loop_view`]); works on any strides.
    Scalar,
    /// The legacy unpacked `4 × 4` register block.
    Blocked,
    /// Packed panels with a `4 × 4` register block.
    Packed4x4,
    /// Packed panels with an `8 × 4` register block.
    Packed8x4,
    /// Packed panels with a `4 × 8` register block.
    Packed4x8,
    /// Packed panels with an `8 × 8` register block.
    Packed8x8,
    /// SIMD `4 × 16` block (one AVX-512 / two AVX2 vectors wide).
    Simd4x16,
    /// SIMD `8 × 16` block (eight accumulator vectors on AVX-512).
    Simd8x16,
    /// SIMD `8 × 32` block (sixteen AVX-512 accumulator vectors —
    /// the default: enough independent accumulation chains to cover
    /// the add latency of both FP ports, and the widest measured
    /// throughput on AVX-512 hosts; non-x86 builds fall back to the
    /// scalar block at the same shape).
    #[default]
    Simd8x32,
}

impl KernelKind {
    /// Every selectable kernel.
    pub const ALL: [KernelKind; 9] = [
        KernelKind::Scalar,
        KernelKind::Blocked,
        KernelKind::Packed4x4,
        KernelKind::Packed8x4,
        KernelKind::Packed4x8,
        KernelKind::Packed8x8,
        KernelKind::Simd4x16,
        KernelKind::Simd8x16,
        KernelKind::Simd8x32,
    ];

    /// The scalar packed-panel variants.
    pub const PACKED: [KernelKind; 4] =
        [KernelKind::Packed4x4, KernelKind::Packed8x4, KernelKind::Packed4x8, KernelKind::Packed8x8];

    /// The SIMD packed-panel variants (scalar fallback on hosts
    /// without the vector unit or for unsupported element types).
    pub const SIMD: [KernelKind; 3] =
        [KernelKind::Simd4x16, KernelKind::Simd8x16, KernelKind::Simd8x32];

    /// Stable lowercase name (used by the CLI and `BENCH_cpu.json`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Blocked => "blocked4x4",
            KernelKind::Packed4x4 => "packed4x4",
            KernelKind::Packed8x4 => "packed8x4",
            KernelKind::Packed4x8 => "packed4x8",
            KernelKind::Packed8x8 => "packed8x8",
            KernelKind::Simd4x16 => "simd4x16",
            KernelKind::Simd8x16 => "simd8x16",
            KernelKind::Simd8x32 => "simd8x32",
        }
    }

    /// Parses [`name`](Self::name)'s output back into a kind.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether this variant runs the scalar packed-panel pipeline.
    #[must_use]
    pub fn is_packed(self) -> bool {
        matches!(
            self,
            KernelKind::Packed4x4 | KernelKind::Packed8x4 | KernelKind::Packed4x8 | KernelKind::Packed8x8
        )
    }

    /// Whether this variant runs the SIMD packed-panel pipeline.
    #[must_use]
    pub fn is_simd(self) -> bool {
        matches!(self, KernelKind::Simd4x16 | KernelKind::Simd8x16 | KernelKind::Simd8x32)
    }

    /// Whether this variant consumes packed panels at all — i.e.
    /// whether the grid-shared [`crate::packcache::PackCache`] can
    /// serve it.
    #[must_use]
    pub fn uses_panels(self) -> bool {
        self.is_packed() || self.is_simd()
    }

    /// Register block `(MR, NR)` of the panel-consuming variants.
    #[must_use]
    pub fn register_block(self) -> Option<(usize, usize)> {
        match self {
            KernelKind::Packed4x4 => Some((4, 4)),
            KernelKind::Packed8x4 => Some((8, 4)),
            KernelKind::Packed4x8 => Some((4, 8)),
            KernelKind::Packed8x8 => Some((8, 8)),
            KernelKind::Simd4x16 => Some((4, 16)),
            KernelKind::Simd8x16 => Some((8, 16)),
            KernelKind::Simd8x32 => Some((8, 32)),
            _ => None,
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Executes local MAC-loop iterations `[local_begin, local_end)` of
/// `tile_idx` with `kind`'s kernel, adding into `accum` (row-major
/// `BLK_M × BLK_N`). The one dispatch point behind every executor.
///
/// `bufs` is the caller's pack staging; untouched by the unpacked
/// variants. [`KernelKind::Blocked`] falls back to the scalar path on
/// non-row-contiguous operands.
///
/// # Panics
///
/// Panics if `accum` has the wrong size or the local range is out of
/// bounds.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn mac_loop_kernel<In, Acc>(
    kind: KernelKind,
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    space: &IterSpace,
    tile_idx: usize,
    local_begin: usize,
    local_end: usize,
    accum: &mut [Acc],
    bufs: &mut PackBuffers<In>,
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    match kind {
        KernelKind::Scalar => mac_loop_view(a, b, space, tile_idx, local_begin, local_end, accum),
        KernelKind::Blocked => {
            if a.rows_contiguous() && b.rows_contiguous() {
                mac_loop_blocked(a, b, space, tile_idx, local_begin, local_end, accum);
            } else {
                mac_loop_view(a, b, space, tile_idx, local_begin, local_end, accum);
            }
        }
        KernelKind::Packed4x4 => {
            mac_loop_packed::<In, Acc, 4, 4>(a, b, space, tile_idx, local_begin, local_end, accum, bufs);
        }
        KernelKind::Packed8x4 => {
            mac_loop_packed::<In, Acc, 8, 4>(a, b, space, tile_idx, local_begin, local_end, accum, bufs);
        }
        KernelKind::Packed4x8 => {
            mac_loop_packed::<In, Acc, 4, 8>(a, b, space, tile_idx, local_begin, local_end, accum, bufs);
        }
        KernelKind::Packed8x8 => {
            mac_loop_packed::<In, Acc, 8, 8>(a, b, space, tile_idx, local_begin, local_end, accum, bufs);
        }
        KernelKind::Simd4x16 => {
            mac_loop_simd::<In, Acc, 4, 16>(a, b, space, tile_idx, local_begin, local_end, accum, bufs);
        }
        KernelKind::Simd8x16 => {
            mac_loop_simd::<In, Acc, 8, 16>(a, b, space, tile_idx, local_begin, local_end, accum, bufs);
        }
        KernelKind::Simd8x32 => {
            mac_loop_simd::<In, Acc, 8, 32>(a, b, space, tile_idx, local_begin, local_end, accum, bufs);
        }
    }
}

/// Executes local MAC-loop iterations `[local_begin, local_end)` of
/// `tile_idx` through the packed-panel pipeline with an `MR × NR`
/// register block, adding into `accum` (row-major `BLK_M × BLK_N`).
///
/// Both operands are first packed (zero-padded) into `bufs`; the
/// register block then walks the panels with unit stride and no edge
/// path. Works on any operand strides. Accumulation per output
/// element is ascending-k with only genuine operand values, so the
/// result is bit-identical to [`mac_loop_view`].
///
/// # Panics
///
/// Panics if `accum` has the wrong size or the local range is out of
/// bounds.
#[allow(clippy::too_many_arguments)]
pub fn mac_loop_packed<In, Acc, const MR_: usize, const NR_: usize>(
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    space: &IterSpace,
    tile_idx: usize,
    local_begin: usize,
    local_end: usize,
    accum: &mut [Acc],
    bufs: &mut PackBuffers<In>,
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    mac_loop_panels::<In, Acc, MR_, NR_>(None, a, b, space, tile_idx, local_begin, local_end, accum, bufs);
}

/// [`mac_loop_packed`] with the inner block handed to the host's
/// SIMD unit ([`crate::simd`]) when a vector kernel exists for this
/// `(instruction set, element type, MR, NR)` combination; the scalar
/// block otherwise. Bit-exact either way.
///
/// # Panics
///
/// As [`mac_loop_packed`].
#[allow(clippy::too_many_arguments)]
pub fn mac_loop_simd<In, Acc, const MR_: usize, const NR_: usize>(
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    space: &IterSpace,
    tile_idx: usize,
    local_begin: usize,
    local_end: usize,
    accum: &mut [Acc],
    bufs: &mut PackBuffers<In>,
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let level = SimdLevel::detect();
    mac_loop_panels::<In, Acc, MR_, NR_>(
        Some(level),
        a,
        b,
        space,
        tile_idx,
        local_begin,
        local_end,
        accum,
        bufs,
    );
}

/// The shared packed-panel walk: packs the segment's operand block
/// into `bufs`, then runs one register block per `MR × NR` sub-tile —
/// vectorized when `level` is `Some` and a SIMD kernel matches,
/// scalar otherwise.
#[allow(clippy::too_many_arguments)]
fn mac_loop_panels<In, Acc, const MR_: usize, const NR_: usize>(
    level: Option<SimdLevel>,
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    space: &IterSpace,
    tile_idx: usize,
    local_begin: usize,
    local_end: usize,
    accum: &mut [Acc],
    bufs: &mut PackBuffers<In>,
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let tile = space.tile();
    assert_eq!(accum.len(), tile.blk_m * tile.blk_n, "accumulator must be BLK_M x BLK_N");
    assert!(local_end <= space.iters_per_tile(), "local range out of bounds");
    if local_begin >= local_end {
        return;
    }
    let (rows, cols) = space.tile_extents(tile_idx);
    let (m_extent, n_extent) = (rows.len(), cols.len());
    // Local iterations are contiguous k-chunks, so their union is one
    // contiguous k-range (the last chunk clamped to the problem's k).
    let k_begin = space.k_extents(local_begin).start;
    let k_end = space.k_extents(local_end - 1).end;
    let kc = k_end - k_begin;

    let t0 = crate::trace::start();
    pack_a_into(a, rows, k_begin..k_end, MR_, &mut bufs.a);
    pack_b_into(b, k_begin..k_end, cols, NR_, &mut bufs.b);
    crate::trace::finish(crate::trace::SpanKind::PackPrivate, t0, tile_idx as u32, kc as u32);

    let a_panel = kc * MR_;
    let b_panel = kc * NR_;
    // q-outer / p-inner, as in `mac_loop_cached`: keeps the B
    // sub-panel L1-resident across the column of blocks.
    for q in 0..n_extent.div_ceil(NR_) {
        let bpanel = &bufs.b[q * b_panel..(q + 1) * b_panel];
        let jw = NR_.min(n_extent - q * NR_);
        for p in 0..m_extent.div_ceil(MR_) {
            let apanel = &bufs.a[p * a_panel..(p + 1) * a_panel];
            let ih = MR_.min(m_extent - p * MR_);
            apply_block::<In, Acc, MR_, NR_>(level, apanel, bpanel, kc, ih, jw, p, q, tile.blk_n, accum);
        }
    }
}

/// The k-window geometry of a panel table handed to
/// [`mac_loop_cached`]: each sub-panel covers `[k0, k0 + k_cap)` of
/// the problem's k-extent in k-major order.
///
/// The grid-shared cache packs full-k panels (`k0 = 0`,
/// `k_cap = shape.k`); the block-major zero-pack bypass serves the
/// matrix's own storage (`k0 = 0`, `k_cap` = k padded to the fragment
/// edge — padding beyond `shape.k` exists but is never read); private
/// per-segment packs cover exactly the segment's k-range.
#[derive(Debug, Clone, Copy)]
pub struct PanelSpan {
    /// First problem-k index the table covers.
    pub k0: usize,
    /// K-steps each sub-panel is strided for.
    pub k_cap: usize,
}

impl PanelSpan {
    /// A full-k table (the pack-cache shape).
    #[inline]
    #[must_use]
    pub fn full(k_total: usize) -> Self {
        Self { k0: 0, k_cap: k_total }
    }
}

/// Runs local MAC-loop iterations `[local_begin, local_end)` of
/// `tile_idx` against *pre-packed panel tables* — the
/// [`crate::packcache::PackCache`] / zero-pack-bypass fast path.
/// `a_panels` is the tile's A row-panel table (every `MR` sub-panel
/// spanning `a_span`'s k-window) and `b_panels` its B column-panel
/// table; the segment's k-sub-range is a contiguous slice of each
/// sub-panel because the panel layout is k-major. No packing happens
/// here — that is the point.
///
/// Accumulation order is identical to [`mac_loop_packed`], so neither
/// caching nor the bypass ever changes results.
///
/// # Panics
///
/// Panics if `accum` or either panel has the wrong size, the local
/// range is out of bounds, or the segment's k-range leaves a span.
#[allow(clippy::too_many_arguments)]
pub fn mac_loop_cached<In, Acc, const MR_: usize, const NR_: usize>(
    level: Option<SimdLevel>,
    a_panels: &[In],
    a_span: PanelSpan,
    b_panels: &[In],
    b_span: PanelSpan,
    space: &IterSpace,
    tile_idx: usize,
    local_begin: usize,
    local_end: usize,
    accum: &mut [Acc],
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let tile = space.tile();
    assert_eq!(accum.len(), tile.blk_m * tile.blk_n, "accumulator must be BLK_M x BLK_N");
    assert!(local_end <= space.iters_per_tile(), "local range out of bounds");
    if local_begin >= local_end {
        return;
    }
    let (rows, cols) = space.tile_extents(tile_idx);
    let (m_extent, n_extent) = (rows.len(), cols.len());
    let k_begin = space.k_extents(local_begin).start;
    let k_end = space.k_extents(local_end - 1).end;
    let kc = k_end - k_begin;
    assert!(
        a_span.k0 <= k_begin && k_end <= a_span.k0 + a_span.k_cap,
        "segment k-range [{k_begin},{k_end}) outside A panel span"
    );
    assert!(
        b_span.k0 <= k_begin && k_end <= b_span.k0 + b_span.k_cap,
        "segment k-range [{k_begin},{k_end}) outside B panel span"
    );

    let a_stride = a_span.k_cap * MR_;
    let b_stride = b_span.k_cap * NR_;
    assert_eq!(a_panels.len(), m_extent.div_ceil(MR_) * a_stride, "A panel table size");
    assert_eq!(b_panels.len(), n_extent.div_ceil(NR_) * b_stride, "B panel table size");
    let (ak0, ak1) = (k_begin - a_span.k0, k_end - a_span.k0);
    let (bk0, bk1) = (k_begin - b_span.k0, k_end - b_span.k0);

    // q-outer / p-inner: the B sub-panel (the operand every k-step
    // loads a fresh vector from) stays hot in L1 across the whole
    // column of register blocks; only the narrower A sub-panels
    // stream. Block order does not affect results — each output
    // element's k-accumulation happens inside a single block call.
    for q in 0..n_extent.div_ceil(NR_) {
        let bpanel = &b_panels[q * b_stride + bk0 * NR_..q * b_stride + bk1 * NR_];
        let jw = NR_.min(n_extent - q * NR_);
        for p in 0..m_extent.div_ceil(MR_) {
            let apanel = &a_panels[p * a_stride + ak0 * MR_..p * a_stride + ak1 * MR_];
            let ih = MR_.min(m_extent - p * MR_);
            apply_block::<In, Acc, MR_, NR_>(level, apanel, bpanel, kc, ih, jw, p, q, tile.blk_n, accum);
        }
    }
}

/// Loads the live `ih × jw` window of one `MR × NR` sub-tile into a
/// register-block accumulator, runs the SIMD or scalar block, and
/// stores the live window back. Padded lanes start at zero and are
/// never stored.
#[allow(clippy::too_many_arguments)]
#[inline]
fn apply_block<In, Acc, const MR_: usize, const NR_: usize>(
    level: Option<SimdLevel>,
    apanel: &[In],
    bpanel: &[In],
    kc: usize,
    ih: usize,
    jw: usize,
    p: usize,
    q: usize,
    blk_n: usize,
    accum: &mut [Acc],
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let mut c = [[Acc::ZERO; NR_]; MR_];
    for (i, crow) in c.iter_mut().enumerate().take(ih) {
        let base = (p * MR_ + i) * blk_n + q * NR_;
        crow[..jw].copy_from_slice(&accum[base..base + jw]);
    }
    let vectorized = match level {
        Some(lv) => simd_block::<In, Acc, MR_, NR_>(lv, apanel, bpanel, kc, &mut c),
        None => false,
    };
    if !vectorized {
        packed_block::<In, Acc, MR_, NR_>(apanel, bpanel, kc, &mut c);
    }
    for (i, crow) in c.iter().enumerate().take(ih) {
        let base = (p * MR_ + i) * blk_n + q * NR_;
        accum[base..base + jw].copy_from_slice(&crow[..jw]);
    }
}

/// The register-resident core: one `MR × NR` block over `kc` packed
/// k-steps, both panels walked with unit stride.
#[inline]
fn packed_block<In, Acc, const MR_: usize, const NR_: usize>(
    apanel: &[In],
    bpanel: &[In],
    kc: usize,
    c: &mut [[Acc; NR_]; MR_],
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    // chunks_exact tells LLVM each k-step's operand slices are
    // exactly MR/NR long: no bounds checks survive in the inner
    // loop, and the NR-wide update vectorizes.
    for (acol, brow) in apanel.chunks_exact(MR_).zip(bpanel.chunks_exact(NR_)).take(kc) {
        let av: [Acc; MR_] = std::array::from_fn(|i| acol[i].promote());
        let bv: [Acc; NR_] = std::array::from_fn(|j| brow[j].promote());
        for (crow, &ai) in c.iter_mut().zip(&av) {
            for (cv, &bj) in crow.iter_mut().zip(&bv) {
                *cv = cv.mac(ai, bj);
            }
        }
    }
}

/// Executes local MAC-loop iterations `[local_begin, local_end)` of
/// `tile_idx` with `MR × NR` register blocking, adding into `accum`
/// (row-major `BLK_M × BLK_N`).
///
/// Requires row-contiguous operand views; falls back to the scalar
/// path for the ragged edges of the tile.
///
/// # Panics
///
/// Panics if the views are not row-contiguous, `accum` has the wrong
/// size, or the local range is out of bounds.
#[inline]
pub fn mac_loop_blocked<In, Acc>(
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    space: &IterSpace,
    tile_idx: usize,
    local_begin: usize,
    local_end: usize,
    accum: &mut [Acc],
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    assert!(a.rows_contiguous() && b.rows_contiguous(), "blocked microkernel requires row-contiguous operands");
    let tile = space.tile();
    assert_eq!(accum.len(), tile.blk_m * tile.blk_n, "accumulator must be BLK_M x BLK_N");
    assert!(local_end <= space.iters_per_tile(), "local range out of bounds");
    let (rows, cols) = space.tile_extents(tile_idx);
    let (r0, c0) = (rows.start, cols.start);
    let m_extent = rows.end - rows.start;
    let n_extent = cols.end - cols.start;
    let m_main = m_extent - m_extent % MR;
    let n_main = n_extent - n_extent % NR;

    for local in local_begin..local_end {
        let ks = space.k_extents(local);

        // Main MR x NR blocks.
        let mut i = 0;
        while i < m_main {
            let mut j = 0;
            while j < n_main {
                // Sixteen live accumulators.
                let mut c = [[Acc::ZERO; NR]; MR];
                for (bi, row) in c.iter_mut().enumerate() {
                    let base = (i + bi) * tile.blk_n + j;
                    for (bj, v) in row.iter_mut().enumerate() {
                        *v = accum[base + bj];
                    }
                }
                // A's four row windows are hoisted out of the k-loop:
                // re-deriving them per k-step costs four stride
                // multiplies and slice bounds checks per iteration,
                // which is what made this kernel lose to the plain
                // scalar loop.
                let ar: [&[In]; MR] = std::array::from_fn(|bi| &a.row_slice(r0 + i + bi)[ks.clone()]);
                for (kk, k) in ks.clone().enumerate() {
                    let a0 = ar[0][kk].promote();
                    let a1 = ar[1][kk].promote();
                    let a2 = ar[2][kk].promote();
                    let a3 = ar[3][kk].promote();
                    let brow = &b.row_slice(k)[c0 + j..c0 + j + NR];
                    for bj in 0..NR {
                        let bv = brow[bj].promote();
                        c[0][bj] = c[0][bj].mac(a0, bv);
                        c[1][bj] = c[1][bj].mac(a1, bv);
                        c[2][bj] = c[2][bj].mac(a2, bv);
                        c[3][bj] = c[3][bj].mac(a3, bv);
                    }
                }
                for (bi, row) in c.iter().enumerate() {
                    let base = (i + bi) * tile.blk_n + j;
                    accum[base..base + NR].copy_from_slice(row);
                }
                j += NR;
            }
            // Right edge of the main rows.
            for bi in 0..MR {
                scalar_row(a, b, r0 + i + bi, c0, n_main..n_extent, ks.clone(), &mut accum[(i + bi) * tile.blk_n..]);
            }
            i += MR;
        }
        // Bottom edge rows.
        for bi in m_main..m_extent {
            scalar_row(a, b, r0 + bi, c0, 0..n_extent, ks.clone(), &mut accum[bi * tile.blk_n..]);
        }
    }
}

/// Scalar update of one output row over a column range — the ragged
/// edge path, same accumulation order as the blocked body. A's row
/// slice and the accumulator window are hoisted out of the k-loop so
/// the inner loop carries no per-iteration bounds re-derivation.
#[inline]
fn scalar_row<In, Acc>(
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    row: usize,
    c0: usize,
    cols: std::ops::Range<usize>,
    ks: std::ops::Range<usize>,
    acc_row: &mut [Acc],
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    if cols.is_empty() {
        return;
    }
    let arow = a.row_slice(row);
    let (b0, b1) = (c0 + cols.start, c0 + cols.end);
    let acc = &mut acc_row[cols];
    for k in ks {
        let av = arow[k].promote();
        let brow = &b.row_slice(k)[b0..b1];
        for (cv, &bv) in acc.iter_mut().zip(brow) {
            *cv = cv.mac(av, bv.promote());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macloop::mac_loop_view;
    use streamk_matrix::Matrix;
    use streamk_types::{GemmShape, Layout, TileShape};

    fn compare(shape: GemmShape, tile: TileShape, seed: u64) {
        let space = IterSpace::new(shape, tile);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, seed);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, seed + 1);
        let mut bufs = PackBuffers::new();
        for tile_idx in 0..space.tiles() {
            let mut scalar = vec![0.0f64; tile.blk_m * tile.blk_n];
            mac_loop_view(&a.view(), &b.view(), &space, tile_idx, 0, space.iters_per_tile(), &mut scalar);
            for kind in KernelKind::ALL {
                let mut got = vec![0.0f64; tile.blk_m * tile.blk_n];
                mac_loop_kernel(kind, &a.view(), &b.view(), &space, tile_idx, 0, space.iters_per_tile(), &mut got, &mut bufs);
                assert_eq!(got, scalar, "{kind} tile {tile_idx} of {shape} at {tile}");
            }
        }
    }

    #[test]
    fn every_kernel_matches_scalar_on_aligned_tiles() {
        compare(GemmShape::new(32, 32, 24), TileShape::new(16, 16, 8), 1);
    }

    #[test]
    fn every_kernel_matches_scalar_on_ragged_tiles() {
        // Edge tiles exercise the blocked kernel's scalar edge path
        // and the packed kernels' zero-padded panels.
        compare(GemmShape::new(30, 27, 19), TileShape::new(16, 16, 8), 2);
        compare(GemmShape::new(7, 5, 11), TileShape::new(8, 8, 4), 3);
        compare(GemmShape::new(13, 14, 15), TileShape::new(13, 14, 5), 4);
    }

    #[test]
    fn every_kernel_matches_scalar_on_partial_iter_ranges() {
        let shape = GemmShape::new(16, 16, 64);
        let tile = TileShape::new(16, 16, 8);
        let space = IterSpace::new(shape, tile);
        let a = Matrix::<f64>::random::<f64>(16, 64, Layout::RowMajor, 5);
        let b = Matrix::<f64>::random::<f64>(64, 16, Layout::RowMajor, 6);
        let mut bufs = PackBuffers::new();
        for (lb, le) in [(0usize, 3usize), (3, 8), (2, 5), (7, 8), (4, 4)] {
            let mut scalar = vec![0.0f64; 256];
            mac_loop_view(&a.view(), &b.view(), &space, 0, lb, le, &mut scalar);
            for kind in KernelKind::ALL {
                let mut got = vec![0.0f64; 256];
                mac_loop_kernel(kind, &a.view(), &b.view(), &space, 0, lb, le, &mut got, &mut bufs);
                assert_eq!(got, scalar, "{kind} range [{lb},{le})");
            }
        }
    }

    #[test]
    fn packed_handles_strided_operands() {
        // The packed pipeline normalizes layout at pack time — no
        // scalar fallback for col-major or transposed views.
        let shape = GemmShape::new(20, 18, 26);
        let tile = TileShape::new(16, 16, 8);
        let space = IterSpace::new(shape, tile);
        let a = Matrix::<f64>::random::<f64>(20, 26, Layout::ColMajor, 7);
        let b = Matrix::<f64>::random::<f64>(26, 18, Layout::ColMajor, 8);
        let mut bufs = PackBuffers::new();
        for tile_idx in 0..space.tiles() {
            let mut scalar = vec![0.0f64; tile.blk_m * tile.blk_n];
            mac_loop_view(&a.view(), &b.view(), &space, tile_idx, 0, space.iters_per_tile(), &mut scalar);
            for kind in KernelKind::PACKED {
                let mut got = vec![0.0f64; tile.blk_m * tile.blk_n];
                mac_loop_kernel(kind, &a.view(), &b.view(), &space, tile_idx, 0, space.iters_per_tile(), &mut got, &mut bufs);
                assert_eq!(got, scalar, "{kind} tile {tile_idx}");
            }
        }
    }

    #[test]
    fn packed_accumulates_into_existing_values() {
        let shape = GemmShape::new(8, 8, 16);
        let tile = TileShape::new(8, 8, 8);
        let space = IterSpace::new(shape, tile);
        let a = Matrix::<f64>::random::<f64>(8, 16, Layout::RowMajor, 7);
        let b = Matrix::<f64>::random::<f64>(16, 8, Layout::RowMajor, 8);
        let mut bufs = PackBuffers::new();
        // Split accumulation [0,1) then [1,2) must equal [0,2).
        let mut whole = vec![0.0f64; 64];
        mac_loop_packed::<f64, f64, 8, 4>(&a.view(), &b.view(), &space, 0, 0, 2, &mut whole, &mut bufs);
        let mut parts = vec![0.0f64; 64];
        mac_loop_packed::<f64, f64, 8, 4>(&a.view(), &b.view(), &space, 0, 0, 1, &mut parts, &mut bufs);
        mac_loop_packed::<f64, f64, 8, 4>(&a.view(), &b.view(), &space, 0, 1, 2, &mut parts, &mut bufs);
        assert_eq!(whole, parts);
    }

    #[test]
    fn accumulates_into_existing_values() {
        let shape = GemmShape::new(8, 8, 16);
        let tile = TileShape::new(8, 8, 8);
        let space = IterSpace::new(shape, tile);
        let a = Matrix::<f64>::random::<f64>(8, 16, Layout::RowMajor, 7);
        let b = Matrix::<f64>::random::<f64>(16, 8, Layout::RowMajor, 8);
        // Split accumulation [0,1) then [1,2) must equal [0,2).
        let mut whole = vec![0.0f64; 64];
        mac_loop_blocked(&a.view(), &b.view(), &space, 0, 0, 2, &mut whole);
        let mut parts = vec![0.0f64; 64];
        mac_loop_blocked(&a.view(), &b.view(), &space, 0, 0, 1, &mut parts);
        mac_loop_blocked(&a.view(), &b.view(), &space, 0, 1, 2, &mut parts);
        assert_eq!(whole, parts);
    }

    #[test]
    fn kernel_kind_names_round_trip() {
        for kind in KernelKind::ALL {
            assert_eq!(KernelKind::parse(kind.name()), Some(kind), "{kind}");
        }
        assert_eq!(KernelKind::parse("bogus"), None);
        assert_eq!(KernelKind::default(), KernelKind::Simd8x32);
        assert!(KernelKind::Packed4x8.is_packed());
        assert!(!KernelKind::Blocked.is_packed());
        assert!(KernelKind::Simd8x16.is_simd() && !KernelKind::Simd8x16.is_packed());
        assert!(KernelKind::Simd4x16.uses_panels() && KernelKind::Packed8x8.uses_panels());
        assert!(!KernelKind::Scalar.uses_panels() && !KernelKind::Blocked.uses_panels());
        assert_eq!(KernelKind::Packed8x4.register_block(), Some((8, 4)));
        assert_eq!(KernelKind::Simd8x32.register_block(), Some((8, 32)));
        assert_eq!(KernelKind::Scalar.register_block(), None);
    }

    #[test]
    #[should_panic(expected = "row-contiguous")]
    fn rejects_strided_views() {
        let shape = GemmShape::new(8, 8, 8);
        let tile = TileShape::new(8, 8, 8);
        let space = IterSpace::new(shape, tile);
        let a = Matrix::<f64>::zeros(8, 8, Layout::ColMajor);
        let b = Matrix::<f64>::zeros(8, 8, Layout::RowMajor);
        let mut acc = vec![0.0f64; 64];
        mac_loop_blocked(&a.view(), &b.view(), &space, 0, 0, 1, &mut acc);
    }
}
