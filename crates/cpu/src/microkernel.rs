//! Register-blocked inner kernels.
//!
//! The paper's `MacLoop` implementations "fully unroll the per-thread
//! MAC-loop iteration [and] implement additional blocking at the warp
//! and/or thread levels" (§3.2). This module is the CPU analogue: a
//! `4 × 4` register-blocked update that keeps sixteen accumulators
//! live across the k-loop, giving the compiler straight-line code it
//! can keep in registers and vectorize.
//!
//! [`mac_loop_blocked`] is a drop-in replacement for the scalar
//! [`mac_loop_view`](crate::macloop::mac_loop_view) fast path on
//! row-contiguous operands: identical accumulation order per output
//! element (ascending k), so results are bit-identical — property
//! tests below pin that.

use streamk_core::IterSpace;
use streamk_matrix::{MatrixView, Promote, Scalar};

/// Register block height (rows of C per inner block).
pub const MR: usize = 4;
/// Register block width (columns of C per inner block).
pub const NR: usize = 4;

/// Executes local MAC-loop iterations `[local_begin, local_end)` of
/// `tile_idx` with `MR × NR` register blocking, adding into `accum`
/// (row-major `BLK_M × BLK_N`).
///
/// Requires row-contiguous operand views; falls back to the scalar
/// path for the ragged edges of the tile.
///
/// # Panics
///
/// Panics if the views are not row-contiguous, `accum` has the wrong
/// size, or the local range is out of bounds.
pub fn mac_loop_blocked<In, Acc>(
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    space: &IterSpace,
    tile_idx: usize,
    local_begin: usize,
    local_end: usize,
    accum: &mut [Acc],
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    assert!(a.rows_contiguous() && b.rows_contiguous(), "blocked microkernel requires row-contiguous operands");
    let tile = space.tile();
    assert_eq!(accum.len(), tile.blk_m * tile.blk_n, "accumulator must be BLK_M x BLK_N");
    assert!(local_end <= space.iters_per_tile(), "local range out of bounds");
    let (rows, cols) = space.tile_extents(tile_idx);
    let (r0, c0) = (rows.start, cols.start);
    let m_extent = rows.end - rows.start;
    let n_extent = cols.end - cols.start;
    let m_main = m_extent - m_extent % MR;
    let n_main = n_extent - n_extent % NR;

    for local in local_begin..local_end {
        let ks = space.k_extents(local);

        // Main MR x NR blocks.
        let mut i = 0;
        while i < m_main {
            let mut j = 0;
            while j < n_main {
                // Sixteen live accumulators.
                let mut c = [[Acc::ZERO; NR]; MR];
                for (bi, row) in c.iter_mut().enumerate() {
                    let base = (i + bi) * tile.blk_n + j;
                    for (bj, v) in row.iter_mut().enumerate() {
                        *v = accum[base + bj];
                    }
                }
                for k in ks.clone() {
                    let a0 = a.row_slice(r0 + i)[k].promote();
                    let a1 = a.row_slice(r0 + i + 1)[k].promote();
                    let a2 = a.row_slice(r0 + i + 2)[k].promote();
                    let a3 = a.row_slice(r0 + i + 3)[k].promote();
                    let brow = &b.row_slice(k)[c0 + j..c0 + j + NR];
                    for bj in 0..NR {
                        let bv = brow[bj].promote();
                        c[0][bj] = c[0][bj].mac(a0, bv);
                        c[1][bj] = c[1][bj].mac(a1, bv);
                        c[2][bj] = c[2][bj].mac(a2, bv);
                        c[3][bj] = c[3][bj].mac(a3, bv);
                    }
                }
                for (bi, row) in c.iter().enumerate() {
                    let base = (i + bi) * tile.blk_n + j;
                    accum[base..base + NR].copy_from_slice(row);
                }
                j += NR;
            }
            // Right edge of the main rows.
            for bi in 0..MR {
                scalar_row(a, b, r0 + i + bi, c0, n_main..n_extent, ks.clone(), &mut accum[(i + bi) * tile.blk_n..]);
            }
            i += MR;
        }
        // Bottom edge rows.
        for bi in m_main..m_extent {
            scalar_row(a, b, r0 + bi, c0, 0..n_extent, ks.clone(), &mut accum[bi * tile.blk_n..]);
        }
    }
}

/// Scalar update of one output row over a column range — the ragged
/// edge path, same accumulation order as the blocked body.
fn scalar_row<In, Acc>(
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    row: usize,
    c0: usize,
    cols: std::ops::Range<usize>,
    ks: std::ops::Range<usize>,
    acc_row: &mut [Acc],
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    if cols.is_empty() {
        return;
    }
    for k in ks {
        let av = a.row_slice(row)[k].promote();
        let brow = &b.row_slice(k)[c0 + cols.start..c0 + cols.end];
        for (acc, &bv) in acc_row[cols.clone()].iter_mut().zip(brow) {
            *acc = acc.mac(av, bv.promote());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macloop::mac_loop_view;
    use streamk_matrix::Matrix;
    use streamk_types::{GemmShape, Layout, TileShape};

    fn compare(shape: GemmShape, tile: TileShape, seed: u64) {
        let space = IterSpace::new(shape, tile);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, seed);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, seed + 1);
        for tile_idx in 0..space.tiles() {
            let mut blocked = vec![0.0f64; tile.blk_m * tile.blk_n];
            let mut scalar = vec![0.0f64; tile.blk_m * tile.blk_n];
            mac_loop_blocked(&a.view(), &b.view(), &space, tile_idx, 0, space.iters_per_tile(), &mut blocked);
            mac_loop_view(&a.view(), &b.view(), &space, tile_idx, 0, space.iters_per_tile(), &mut scalar);
            assert_eq!(blocked, scalar, "tile {tile_idx} of {shape} at {tile}");
        }
    }

    #[test]
    fn matches_scalar_on_aligned_tiles() {
        compare(GemmShape::new(32, 32, 24), TileShape::new(16, 16, 8), 1);
    }

    #[test]
    fn matches_scalar_on_ragged_tiles() {
        // Edge tiles exercise both the right-edge and bottom-edge
        // scalar paths (extents not multiples of 4).
        compare(GemmShape::new(30, 27, 19), TileShape::new(16, 16, 8), 2);
        compare(GemmShape::new(7, 5, 11), TileShape::new(8, 8, 4), 3);
        compare(GemmShape::new(13, 14, 15), TileShape::new(13, 14, 5), 4);
    }

    #[test]
    fn matches_scalar_on_partial_iter_ranges() {
        let shape = GemmShape::new(16, 16, 64);
        let tile = TileShape::new(16, 16, 8);
        let space = IterSpace::new(shape, tile);
        let a = Matrix::<f64>::random::<f64>(16, 64, Layout::RowMajor, 5);
        let b = Matrix::<f64>::random::<f64>(64, 16, Layout::RowMajor, 6);
        for (lb, le) in [(0usize, 3usize), (3, 8), (2, 5), (7, 8)] {
            let mut blocked = vec![0.0f64; 256];
            let mut scalar = vec![0.0f64; 256];
            mac_loop_blocked(&a.view(), &b.view(), &space, 0, lb, le, &mut blocked);
            mac_loop_view(&a.view(), &b.view(), &space, 0, lb, le, &mut scalar);
            assert_eq!(blocked, scalar, "range [{lb},{le})");
        }
    }

    #[test]
    fn accumulates_into_existing_values() {
        let shape = GemmShape::new(8, 8, 16);
        let tile = TileShape::new(8, 8, 8);
        let space = IterSpace::new(shape, tile);
        let a = Matrix::<f64>::random::<f64>(8, 16, Layout::RowMajor, 7);
        let b = Matrix::<f64>::random::<f64>(16, 8, Layout::RowMajor, 8);
        // Split accumulation [0,1) then [1,2) must equal [0,2).
        let mut whole = vec![0.0f64; 64];
        mac_loop_blocked(&a.view(), &b.view(), &space, 0, 0, 2, &mut whole);
        let mut parts = vec![0.0f64; 64];
        mac_loop_blocked(&a.view(), &b.view(), &space, 0, 0, 1, &mut parts);
        mac_loop_blocked(&a.view(), &b.view(), &space, 0, 1, 2, &mut parts);
        assert_eq!(whole, parts);
    }

    #[test]
    #[should_panic(expected = "row-contiguous")]
    fn rejects_strided_views() {
        let shape = GemmShape::new(8, 8, 8);
        let tile = TileShape::new(8, 8, 8);
        let space = IterSpace::new(shape, tile);
        let a = Matrix::<f64>::zeros(8, 8, Layout::ColMajor);
        let b = Matrix::<f64>::zeros(8, 8, Layout::RowMajor);
        let mut acc = vec![0.0f64; 64];
        mac_loop_blocked(&a.view(), &b.view(), &space, 0, 0, 1, &mut acc);
    }
}
