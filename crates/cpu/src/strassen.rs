//! Strassen–Winograd recursion on the Stream-K substrate.
//!
//! The classical executor is O(m·n·k) no matter how well it
//! schedules. This module goes sub-cubic by pairing Strassen's
//! seven-product recursion with the workspace's two burst surfaces
//! (the pairing of "Implementing Strassen's Algorithm with CUTLASS
//! on NVIDIA Volta GPUs", arXiv:1808.07984 — recursion on top of a
//! tiled GEMM substrate):
//!
//! - **Direct path** ([`CpuExecutor::gemm_strassen`]): all `7^d`
//!   leaf sub-products are submitted as **one**
//!   [`gemm_grouped`](CpuExecutor::gemm_grouped) launch. Strassen is
//!   traditionally hard to schedule because its seven products
//!   quantize poorly one at a time; Stream-K's grouped decomposition
//!   concatenates their iteration spaces and splits the *sum* evenly
//!   across the grid, so the seven-product skew is absorbed by
//!   construction. A **single-worker** executor has no skew to
//!   absorb and the grouped grid would only pay per-instance setup,
//!   so it runs the leaves back-to-back through the classical
//!   single-launch path instead — same leaves, same results, no
//!   grouped overhead.
//! - **Service path** ([`GemmService::gemm_strassen`]): the same
//!   leaves go in as one atomically-admitted request group
//!   ([`GemmService::submit_group`]) and complete as a unit through
//!   [`GroupHandle::wait_all`](crate::GroupHandle::wait_all).
//!
//! ## Numerics (opt-in, bounded, never silent)
//!
//! Strassen trades the classical path's bit-exactness for fewer
//! multiplications: it is **opt-in** via
//! [`StrassenConfig`]`{ enabled, max_depth, cutoff }` and falls back
//! to the classical executor below the calibrated `cutoff` (and for
//! `depth == 0`), where the result is *bit-identical* to
//! [`CpuExecutor::gemm`] — the f64 bit-exact gate is untouched. When
//! the recursion does fire, the forward error is bounded per element
//! by the Strassen–Winograd bound (Higham, *Accuracy and Stability
//! of Numerical Algorithms*, §23.2.2):
//!
//! ```text
//! |Ĉ − C|_max  ≤  18^d · (k₀² + 5·k₀) · ε · ‖A‖_max · ‖B‖_max ,
//!               k₀ = ⌈k / 2^d⌉
//! ```
//!
//! implemented by [`strassen_error_bound`] and dominated by the
//! issue-level envelope `c · (m·n·k) · ε · ‖A‖·‖B‖` with `c = 1`
//! for every shape this workspace runs (DESIGN.md §15 derives both
//! and shows the domination). Tests and the `strassen_hybrid` bench
//! section gate every hybrid result against it.
//!
//! ## Workspace contract (§8)
//!
//! All intermediate storage — quadrant operand sums, inner product
//! assemblies — is drawn from a [`StrassenArena`] and recycled, so a
//! warmed arena performs **zero heap allocation** per launch for the
//! recursion's own buffers (the burst's outputs are owned by the
//! grouped executor, whose workers already run on pooled
//! [`Workspace`](crate::Workspace)s). `StrassenArena::fresh_allocs`
//! pins the steady state, exactly like `Workspace::fresh_allocs`.

use crate::executor::CpuExecutor;
use crate::fault::FaultPlan;
use crate::serve::{AdmissionError, GemmService, GroupError, LaunchRequest};
use std::collections::HashMap;
use streamk_core::{Decomposition, GroupedDecomposition, GroupedSpace, TileFixup};
use streamk_matrix::{Matrix, Promote, Scalar};
use streamk_types::{GemmShape, Layout, TileShape};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Opt-in configuration of the Strassen–Winograd hybrid.
///
/// The default is **disabled**: every launch takes the classical
/// (bit-exact) path until a caller explicitly enables the recursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrassenConfig {
    /// Master switch. `false` routes everything classically.
    pub enabled: bool,
    /// Maximum recursion depth (`0` behaves like `enabled: false`
    /// for the launch, which is how the bench measures pure hybrid
    /// dispatch overhead).
    pub max_depth: usize,
    /// Crossover cutoff: recursion only fires while every halved
    /// extent stays `≥ cutoff`, i.e. a shape recurses only when
    /// `min(m, n, k) ≥ 2 · cutoff`. Below that the classical path is
    /// faster (the `strassen_hybrid` bench section measures the
    /// curve this default is calibrated from).
    pub cutoff: usize,
}

impl Default for StrassenConfig {
    fn default() -> Self {
        Self { enabled: false, max_depth: 1, cutoff: 512 }
    }
}

impl StrassenConfig {
    /// An enabled config with the default depth and cutoff.
    #[must_use]
    pub fn enabled() -> Self {
        Self { enabled: true, ..Self::default() }
    }

    /// Sets the maximum recursion depth.
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Sets the crossover cutoff (clamped to at least 1).
    #[must_use]
    pub fn with_cutoff(mut self, cutoff: usize) -> Self {
        self.cutoff = cutoff.max(1);
        self
    }

    /// The recursion depth this config actually applies to `shape`:
    /// halve while every extent stays at or above `cutoff`, capped at
    /// [`max_depth`](Self::max_depth). `0` means classical fallback.
    #[must_use]
    pub fn effective_depth(&self, shape: GemmShape) -> usize {
        if !self.enabled {
            return 0;
        }
        let cutoff = self.cutoff.max(1);
        let mut depth = 0;
        let (mut m, mut n, mut k) = (shape.m, shape.n, shape.k);
        while depth < self.max_depth && m.min(n).min(k) >= 2 * cutoff {
            m = m.div_ceil(2);
            n = n.div_ceil(2);
            k = k.div_ceil(2);
            depth += 1;
        }
        depth
    }
}

/// What one hybrid launch actually did — depth taken, leaf count,
/// padding, and whether it fell back to the classical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrassenReport {
    /// Recursion depth used (`0` when the launch fell back).
    pub depth: usize,
    /// Leaf sub-products dispatched in the burst (`7^depth`, or `1`
    /// on fallback).
    pub leaf_products: usize,
    /// `true` when the launch routed classically (disabled config,
    /// `max_depth == 0`, or a shape below the cutoff) — the result
    /// is then bit-identical to [`CpuExecutor::gemm`].
    pub fell_back: bool,
    /// The zero-padded extents the recursion ran on (`(m, n, k)`
    /// rounded up to multiples of `2^depth`; equal to the input
    /// extents on fallback).
    pub padded: (usize, usize, usize),
}

// ---------------------------------------------------------------------------
// Workspace arena
// ---------------------------------------------------------------------------

/// One pool of same-typed, length-keyed buffers with the
/// take-zeroed / recycle discipline of [`crate::Workspace`].
#[derive(Debug)]
struct BufferPool<T> {
    pools: HashMap<usize, Vec<Vec<T>>>,
    fresh: usize,
}

impl<T: Scalar> BufferPool<T> {
    fn new() -> Self {
        Self { pools: HashMap::new(), fresh: 0 }
    }

    /// A buffer of exactly `len` elements with *unspecified*
    /// contents — for callers that overwrite every element before
    /// reading. Skips the zero-fill pass [`take`](Self::take) pays.
    fn take_full(&mut self, len: usize) -> Vec<T> {
        match self.pools.get_mut(&len).and_then(Vec::pop) {
            Some(buf) => buf,
            None => {
                self.fresh += 1;
                vec![T::ZERO; len]
            }
        }
    }

    fn recycle(&mut self, buf: Vec<T>) {
        if !buf.is_empty() {
            self.pools.entry(buf.len()).or_default().push(buf);
        }
    }
}

/// Reusable buffers for the recursion's intermediate sums and
/// assemblies. Keep one arena per call site and the hybrid's own
/// storage is allocation-free once warm:
///
/// - operand-sum matrices (`S`/`T` quadrant combinations) in input
///   precision,
/// - inner-node product assemblies in accumulator precision.
///
/// The leaf burst's *outputs* are allocated by the grouped executor
/// (they are the caller-visible results of that launch) and their
/// storage is recycled into this arena after recombination, so the
/// pools warm up from traffic exactly like
/// [`Workspace`](crate::Workspace)'s partial pool.
#[derive(Debug)]
pub struct StrassenArena<In, Acc> {
    inputs: BufferPool<In>,
    accs: BufferPool<Acc>,
}

impl<In: Scalar, Acc: Scalar> StrassenArena<In, Acc> {
    /// An empty arena; pools grow to their high-water mark on use.
    #[must_use]
    pub fn new() -> Self {
        Self { inputs: BufferPool::new(), accs: BufferPool::new() }
    }

    /// Heap allocations performed since construction (pool misses).
    /// A warmed arena stops incrementing this — the §8 contract.
    #[must_use]
    pub fn fresh_allocs(&self) -> usize {
        self.inputs.fresh + self.accs.fresh
    }
}

impl<In: Scalar, Acc: Scalar> Default for StrassenArena<In, Acc> {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Quadrant views: split / combine / recombine
// ---------------------------------------------------------------------------

/// A signed quadrant term: `(quadrant row, quadrant col, +1/-1)`.
type Term = (usize, usize, f64);

/// Winograd's seven left operands as signed quadrant sums of `A`.
const A_TERMS: [&[Term]; 7] = [
    &[(0, 0, 1.0)],                                       // M1: A11
    &[(0, 1, 1.0)],                                       // M2: A12
    &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, -1.0), (1, 1, -1.0)], // M3: S4 = A11+A12-A21-A22
    &[(1, 1, 1.0)],                                       // M4: A22
    &[(1, 0, 1.0), (1, 1, 1.0)],                          // M5: S1 = A21+A22
    &[(1, 0, 1.0), (1, 1, 1.0), (0, 0, -1.0)],            // M6: S2 = A21+A22-A11
    &[(0, 0, 1.0), (1, 0, -1.0)],                         // M7: S3 = A11-A21
];

/// Winograd's seven right operands as signed quadrant sums of `B`.
const B_TERMS: [&[Term]; 7] = [
    &[(0, 0, 1.0)],                                       // M1: B11
    &[(1, 0, 1.0)],                                       // M2: B21
    &[(1, 1, 1.0)],                                       // M3: B22
    &[(0, 0, 1.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 1.0)], // M4: T4 = B11-B12-B21+B22
    &[(0, 1, 1.0), (0, 0, -1.0)],                         // M5: T1 = B12-B11
    &[(0, 0, 1.0), (0, 1, -1.0), (1, 1, 1.0)],            // M6: T2 = B11-B12+B22
    &[(1, 1, 1.0), (0, 1, -1.0)],                         // M7: T3 = B22-B12
];

/// Accumulates `sign · src[quadrant]` into `dst` (a zeroed row-major
/// `half_rows × half_cols` buffer). Reads past `src`'s bounds are the
/// zero padding of odd/ragged extents. Row-major sources take a
/// contiguous-slice fast path; blocked and column-major layouts go
/// through coordinate reads.
fn accumulate_quadrant<T: Scalar>(
    dst: &mut [T],
    src: &Matrix<T>,
    half_rows: usize,
    half_cols: usize,
    qi: usize,
    qj: usize,
    sign: f64,
) {
    let (rows, cols) = (src.rows(), src.cols());
    let (row0, col0) = (qi * half_rows, qj * half_cols);
    let valid_rows = rows.saturating_sub(row0).min(half_rows);
    let valid_cols = cols.saturating_sub(col0).min(half_cols);
    if valid_rows == 0 || valid_cols == 0 {
        return;
    }
    let negate = sign < 0.0;
    if src.layout() == Layout::RowMajor {
        let data = src.as_slice();
        for r in 0..valid_rows {
            let s = &data[(row0 + r) * cols + col0..][..valid_cols];
            let d = &mut dst[r * half_cols..][..valid_cols];
            if negate {
                for (dv, sv) in d.iter_mut().zip(s) {
                    *dv = *dv - *sv;
                }
            } else {
                for (dv, sv) in d.iter_mut().zip(s) {
                    *dv += *sv;
                }
            }
        }
    } else {
        for r in 0..valid_rows {
            for c in 0..valid_cols {
                let v = src.get(row0 + r, col0 + c);
                let slot = &mut dst[r * half_cols + c];
                *slot = if negate { *slot - v } else { *slot + v };
            }
        }
    }
}

/// Assigns `sign · src[quadrant]` over the whole of `dst` — the
/// valid window is copied (or negated), everything outside it is the
/// zero padding. The overwrite form of [`accumulate_quadrant`] for a
/// term list's *first* entry, so the destination never needs a
/// zero-fill pass of its own.
fn write_quadrant<T: Scalar>(
    dst: &mut [T],
    src: &Matrix<T>,
    half_rows: usize,
    half_cols: usize,
    qi: usize,
    qj: usize,
    sign: f64,
) {
    let (rows, cols) = (src.rows(), src.cols());
    let (row0, col0) = (qi * half_rows, qj * half_cols);
    let valid_rows = rows.saturating_sub(row0).min(half_rows);
    let valid_cols = cols.saturating_sub(col0).min(half_cols);
    let negate = sign < 0.0;
    if src.layout() == Layout::RowMajor {
        let data = src.as_slice();
        for r in 0..half_rows {
            let d = &mut dst[r * half_cols..][..half_cols];
            if r < valid_rows && valid_cols > 0 {
                let s = &data[(row0 + r) * cols + col0..][..valid_cols];
                if negate {
                    for (dv, sv) in d[..valid_cols].iter_mut().zip(s) {
                        *dv = T::ZERO - *sv;
                    }
                } else {
                    d[..valid_cols].copy_from_slice(s);
                }
                d[valid_cols..].fill(T::ZERO);
            } else {
                d.fill(T::ZERO);
            }
        }
    } else {
        for r in 0..half_rows {
            for c in 0..half_cols {
                let v = if r < valid_rows && c < valid_cols {
                    src.get(row0 + r, col0 + c)
                } else {
                    T::ZERO
                };
                dst[r * half_cols + c] = if negate { T::ZERO - v } else { v };
            }
        }
    }
}

/// Materializes one signed quadrant combination of `src` as a
/// row-major `half_rows × half_cols` matrix drawn from `pool`. The
/// first term overwrites (no zero-fill), the rest accumulate.
fn combine_quadrants<T: Scalar>(
    pool: &mut BufferPool<T>,
    src: &Matrix<T>,
    half_rows: usize,
    half_cols: usize,
    terms: &[Term],
) -> Matrix<T> {
    let mut buf = pool.take_full(half_rows * half_cols);
    let (&(qi0, qj0, sign0), rest) = terms.split_first().expect("a term list is never empty");
    write_quadrant(&mut buf, src, half_rows, half_cols, qi0, qj0, sign0);
    for &(qi, qj, sign) in rest {
        accumulate_quadrant(&mut buf, src, half_rows, half_cols, qi, qj, sign);
    }
    Matrix::from_vec(half_rows, half_cols, Layout::RowMajor, buf)
}

/// Splits `src` into its four zero-padded quadrants (row-major),
/// relative to padded extents `(pad_rows, pad_cols)` — each quadrant
/// is `pad_rows/2 × pad_cols/2` and reads beyond `src`'s bounds are
/// zero. Public so the proptest suite can pin the lossless
/// split → [`recombine_quadrants`] round-trip on every layout.
///
/// # Panics
///
/// Panics if a padded extent is smaller than `src` or odd.
#[must_use]
pub fn split_quadrants<T: Scalar>(
    src: &Matrix<T>,
    pad_rows: usize,
    pad_cols: usize,
) -> [Matrix<T>; 4] {
    assert!(pad_rows >= src.rows() && pad_cols >= src.cols(), "padding must not truncate");
    assert!(pad_rows.is_multiple_of(2) && pad_cols.is_multiple_of(2), "padded extents must be even");
    let (hr, hc) = (pad_rows / 2, pad_cols / 2);
    let mut pool = BufferPool::new();
    [(0, 0), (0, 1), (1, 0), (1, 1)]
        .map(|(qi, qj)| combine_quadrants(&mut pool, src, hr, hc, &[(qi, qj, 1.0)]))
}

/// Reassembles four quadrants into a `rows × cols` matrix of
/// `layout`, cropping the zero padding. Inverse of
/// [`split_quadrants`] — the round-trip is lossless (bit-exact) for
/// every layout, which the proptest suite pins.
///
/// # Panics
///
/// Panics if the quadrants' extents disagree or cannot cover
/// `rows × cols`.
#[must_use]
pub fn recombine_quadrants<T: Scalar>(
    quads: &[Matrix<T>; 4],
    rows: usize,
    cols: usize,
    layout: Layout,
) -> Matrix<T> {
    let (hr, hc) = (quads[0].rows(), quads[0].cols());
    for q in quads {
        assert!(q.rows() == hr && q.cols() == hc, "quadrant extents must agree");
    }
    assert!(2 * hr >= rows && 2 * hc >= cols, "quadrants must cover the output");
    let mut out = Matrix::<T>::zeros(rows, cols, layout);
    for r in 0..rows {
        let (qi, qr) = (r / hr, r % hr);
        for c in 0..cols {
            let (qj, qc) = (c / hc, c % hc);
            out.set(r, c, quads[qi * 2 + qj].get(qr, qc));
        }
    }
    out
}

/// `dst += src`, elementwise over the raw storage.
fn add_assign<T: Scalar>(dst: &mut Matrix<T>, src: &Matrix<T>) {
    for (d, s) in dst.as_mut_slice().iter_mut().zip(src.as_slice()) {
        *d += *s;
    }
}

/// `dst = src − dst`, elementwise over the raw storage.
fn sub_from<T: Scalar>(dst: &mut Matrix<T>, src: &Matrix<T>) {
    for (d, s) in dst.as_mut_slice().iter_mut().zip(src.as_slice()) {
        *d = *s - *d;
    }
}

/// Winograd recombination: folds the seven products `M1..M7` (each
/// `hm × hn`, row-major) into the four C quadrants **in place** —
/// zero extra temporaries. Returns `(C11, C12, C21, C22)`; the three
/// spent products' storage is recycled into `pool`.
fn winograd_recombine<Acc: Scalar>(
    products: [Matrix<Acc>; 7],
    pool: &mut BufferPool<Acc>,
) -> [Matrix<Acc>; 4] {
    let [mut m1, m2, m3, mut m4, m5, mut m6, mut m7] = products;
    add_assign(&mut m6, &m1); // U2 = M1 + M6
    add_assign(&mut m7, &m6); // U3 = U2 + M7
    sub_from(&mut m4, &m7); //   C21 = U3 − M4
    add_assign(&mut m7, &m5); // C22 = U3 + M5
    add_assign(&mut m6, &m5); // U4 = U2 + M5
    add_assign(&mut m6, &m3); // C12 = U4 + M3
    add_assign(&mut m1, &m2); // C11 = M1 + M2
    pool.recycle(m2.into_vec());
    pool.recycle(m3.into_vec());
    pool.recycle(m5.into_vec());
    [m1, m6, m4, m7] // C11, C12, C21, C22
}

/// Assembles four `hm × hn` quadrants into one row-major
/// `2hm × 2hn` matrix drawn from `pool`, recycling the quadrants.
fn assemble_from_pool<Acc: Scalar>(
    quads: [Matrix<Acc>; 4],
    pool: &mut BufferPool<Acc>,
) -> Matrix<Acc> {
    let (hm, hn) = (quads[0].rows(), quads[0].cols());
    let buf = pool.take_full(4 * hm * hn);
    assemble_into(quads, pool, buf)
}

/// Tiles the four C quadrants into `buf` (every element written, so
/// the buffer's prior contents are irrelevant) and recycles their
/// storage. `buf` may come from the pool or be the launch's own
/// output allocation — the root of the recursion assembles straight
/// into the latter when no crop is needed.
fn assemble_into<Acc: Scalar>(
    quads: [Matrix<Acc>; 4],
    pool: &mut BufferPool<Acc>,
    mut buf: Vec<Acc>,
) -> Matrix<Acc> {
    let (hm, hn) = (quads[0].rows(), quads[0].cols());
    debug_assert_eq!(buf.len(), 4 * hm * hn);
    {
        let full = 2 * hn;
        for (idx, q) in quads.iter().enumerate() {
            let (qi, qj) = (idx / 2, idx % 2);
            let src = q.as_slice();
            for r in 0..hm {
                buf[(qi * hm + r) * full + qj * hn..][..hn]
                    .copy_from_slice(&src[r * hn..][..hn]);
            }
        }
    }
    for q in quads {
        pool.recycle(q.into_vec());
    }
    Matrix::from_vec(2 * hm, 2 * hn, Layout::RowMajor, buf)
}

/// Crops a row-major padded product down to `rows × cols` in
/// `layout` — the final output handed back to the caller (freshly
/// allocated; everything the caller keeps must not come from the
/// arena).
fn crop_to_output<Acc: Scalar>(
    padded: &Matrix<Acc>,
    rows: usize,
    cols: usize,
    layout: Layout,
) -> Matrix<Acc> {
    let mut out = Matrix::<Acc>::zeros(rows, cols, layout);
    if layout == Layout::RowMajor {
        let src = padded.as_slice();
        let full = padded.cols();
        let dst = out.as_mut_slice();
        for r in 0..rows {
            dst[r * cols..][..cols].copy_from_slice(&src[r * full..][..cols]);
        }
    } else {
        for r in 0..rows {
            for c in 0..cols {
                out.set(r, c, padded.get(r, c));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Recursion plan: expand to leaves, one burst, recombine bottom-up
// ---------------------------------------------------------------------------

/// The recombination tree over the flat leaf burst.
enum Node {
    /// Index into the leaf operand/product list.
    Leaf(usize),
    /// Seven children in Winograd `M1..M7` order.
    Inner(Box<[Node; 7]>),
}

/// A fully-expanded hybrid launch: every leaf operand pair (in
/// depth-first `M1..M7` order) plus the tree that recombines their
/// products. All leaves share one shape — `7^depth` instances of
/// `(m, n, k) / 2^depth` after padding — which is what lets the
/// direct path dispatch them as a single uniform grouped launch.
struct Plan<In> {
    pairs: Vec<(Matrix<In>, Matrix<In>)>,
    root: Node,
    leaf_shape: GemmShape,
}

/// Depth-first expansion: build the 14 signed quadrant sums of this
/// level, recurse (or emit leaves), and recycle intermediate operand
/// storage as soon as its children are built.
#[allow(clippy::too_many_arguments)]
fn expand<In: Scalar>(
    a: &Matrix<In>,
    b: &Matrix<In>,
    lm: usize,
    ln: usize,
    lk: usize,
    depth: usize,
    inputs: &mut BufferPool<In>,
    pairs: &mut Vec<(Matrix<In>, Matrix<In>)>,
) -> Node {
    debug_assert!(depth >= 1);
    let (hm, hn, hk) = (lm / 2, ln / 2, lk / 2);
    let mut children = Vec::with_capacity(7);
    for p in 0..7 {
        let a_op = combine_quadrants(inputs, a, hm, hk, A_TERMS[p]);
        let b_op = combine_quadrants(inputs, b, hk, hn, B_TERMS[p]);
        if depth == 1 {
            pairs.push((a_op, b_op));
            children.push(Node::Leaf(pairs.len() - 1));
        } else {
            let child = expand(&a_op, &b_op, hm, hn, hk, depth - 1, inputs, pairs);
            inputs.recycle(a_op.into_vec());
            inputs.recycle(b_op.into_vec());
            children.push(child);
        }
    }
    let children: [Node; 7] = children.try_into().unwrap_or_else(|_| unreachable!("seven products"));
    Node::Inner(Box::new(children))
}

fn make_plan<In: Scalar>(
    a: &Matrix<In>,
    b: &Matrix<In>,
    pm: usize,
    pn: usize,
    pk: usize,
    depth: usize,
    inputs: &mut BufferPool<In>,
) -> Plan<In> {
    let mut pairs = Vec::with_capacity(7usize.pow(depth as u32));
    let root = expand(a, b, pm, pn, pk, depth, inputs, &mut pairs);
    let scale = 1usize << depth;
    Plan { pairs, root, leaf_shape: GemmShape::new(pm / scale, pn / scale, pk / scale) }
}

/// Bottom-up recombination of the leaf products along the tree.
fn recombine<Acc: Scalar>(
    node: &Node,
    products: &mut [Option<Matrix<Acc>>],
    accs: &mut BufferPool<Acc>,
) -> Matrix<Acc> {
    match node {
        Node::Leaf(i) => products[*i].take().expect("leaf product consumed once"),
        Node::Inner(children) => {
            let ms: [Matrix<Acc>; 7] = std::array::from_fn(|p| recombine(&children[p], products, accs));
            let quads = winograd_recombine(ms, accs);
            assemble_from_pool(quads, accs)
        }
    }
}

/// The Stream-K decomposition a leaf sub-product runs under on the
/// service path (the direct path uses one grouped grid instead).
/// Falls back to data-parallel when the Stream-K fixup structure
/// would need more co-resident CTAs than `workers` — the same
/// residency guard every other entry point applies.
#[must_use]
pub fn leaf_decomposition(shape: GemmShape, tile: TileShape, workers: usize) -> Decomposition {
    let workers = workers.max(1);
    let d = Decomposition::stream_k(shape, tile, workers);
    let max_cover = d.fixups().iter().map(TileFixup::covering_ctas).max().unwrap_or(1);
    if max_cover > workers {
        Decomposition::data_parallel(shape, tile)
    } else {
        d
    }
}

fn round_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

// ---------------------------------------------------------------------------
// Error bound
// ---------------------------------------------------------------------------

/// Machine epsilon (unit roundoff `u = 2^{-p}` with `1 + u` rounding
/// to `1`) of `T`, derived through [`Scalar`] arithmetic so callers
/// need no per-type constant: `1.19e-7` for `f32`, `2.22e-16` for
/// `f64`.
#[must_use]
pub fn machine_epsilon<T: Scalar>() -> f64 {
    let mut eps = 1.0f64;
    while eps > 1e-40 {
        let half = eps / 2.0;
        if T::ONE + T::from_f64(half) == T::ONE {
            return eps;
        }
        eps = half;
    }
    eps
}

/// Per-element forward-error bound of a depth-`d` Strassen–Winograd
/// product against the exact result:
///
/// ```text
/// 18^d · (k₀² + 5·k₀) · ε · amax · bmax ,   k₀ = ⌈k / 2^d⌉
/// ```
///
/// (Higham §23.2.2; `d = 0` degenerates to the classical
/// `(k² + 5k)·ε` envelope, so one formula gates both paths). When
/// comparing a hybrid result against a *computed* classical
/// reference, gate on the sum of the two bounds — both sides carry
/// rounding error. DESIGN.md §15 derives the bound and shows it is
/// dominated by the issue-level `c·(m·n·k)·ε·amax·bmax` envelope
/// with `c = 1` whenever the leaf extent `k₀ ≥ 32` and `d ≤ 4` —
/// which covers every shape the cutoff (default 512) lets recurse.
#[must_use]
pub fn strassen_error_bound(
    shape: GemmShape,
    depth: usize,
    amax: f64,
    bmax: f64,
    eps: f64,
) -> f64 {
    let k0 = shape.k.div_ceil(1 << depth) as f64;
    18f64.powi(depth as i32) * (k0 * k0 + 5.0 * k0) * eps * amax * bmax
}

/// Largest absolute element of `m` (the `‖·‖_max` the bound needs).
#[must_use]
pub fn max_abs<T: Scalar>(m: &Matrix<T>) -> f64 {
    m.as_slice().iter().map(|v| v.to_f64().abs()).fold(0.0, f64::max)
}

// ---------------------------------------------------------------------------
// Direct path
// ---------------------------------------------------------------------------

impl CpuExecutor {
    /// Strassen–Winograd hybrid `C = A · B` with a private arena —
    /// see [`gemm_strassen_with_arena`](Self::gemm_strassen_with_arena)
    /// for the allocation-free steady state.
    #[must_use]
    pub fn gemm_strassen<In, Acc>(
        &self,
        a: &Matrix<In>,
        b: &Matrix<In>,
        tile: TileShape,
        config: &StrassenConfig,
    ) -> (Matrix<Acc>, StrassenReport)
    where
        In: Promote<Acc> + Scalar,
        Acc: Scalar,
    {
        let mut arena = StrassenArena::new();
        self.gemm_strassen_with_arena(a, b, tile, config, &mut arena)
    }

    /// Strassen–Winograd hybrid `C = A · B`: the `7^d` leaf
    /// sub-products of the recursion are dispatched as **one**
    /// grouped Stream-K launch
    /// ([`gemm_grouped`](Self::gemm_grouped)), whose work-centric
    /// split absorbs the seven-product skew; quadrant operand sums
    /// and inner assemblies live in `arena` (allocation-free once
    /// warm). Shapes below the config's cutoff — and any launch with
    /// the hybrid disabled — fall back to the classical executor and
    /// return a bit-identical result to [`gemm`](Self::gemm).
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes disagree (`A` is `m × k`, `B`
    /// must be `k × n`).
    #[must_use]
    pub fn gemm_strassen_with_arena<In, Acc>(
        &self,
        a: &Matrix<In>,
        b: &Matrix<In>,
        tile: TileShape,
        config: &StrassenConfig,
        arena: &mut StrassenArena<In, Acc>,
    ) -> (Matrix<Acc>, StrassenReport)
    where
        In: Promote<Acc> + Scalar,
        Acc: Scalar,
    {
        assert_eq!(a.cols(), b.rows(), "A is m x k, B must be k x n");
        let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
        let depth = config.effective_depth(shape);
        if depth == 0 {
            let c = self.gemm(a, b, &leaf_decomposition(shape, tile, self.threads()));
            let report = StrassenReport {
                depth: 0,
                leaf_products: 1,
                fell_back: true,
                padded: (shape.m, shape.n, shape.k),
            };
            return (c, report);
        }

        let scale = 1usize << depth;
        let (pm, pn, pk) =
            (round_up(shape.m, scale), round_up(shape.n, scale), round_up(shape.k, scale));
        let plan = make_plan(a, b, pm, pn, pk, depth, &mut arena.inputs);

        let (a_ops, b_ops): (Vec<Matrix<In>>, Vec<Matrix<In>>) = plan.pairs.into_iter().unzip();
        let products: Vec<Matrix<Acc>> = if self.threads() <= 1 {
            // One worker has no seven-product skew to absorb — the
            // grouped grid would only pay per-instance cache setup
            // (measurably ~10-15% on the burst). Run the leaves
            // back-to-back through the classical single-launch path
            // instead; the grouped burst is the multi-worker form.
            let leaf = leaf_decomposition(plan.leaf_shape, tile, 1);
            a_ops.iter().zip(&b_ops).map(|(la, lb)| self.gemm(la, lb, &leaf)).collect()
        } else {
            let shapes: Vec<GemmShape> = vec![plan.leaf_shape; a_ops.len()];
            let space = GroupedSpace::uniform(plan.leaf_shape, a_ops.len(), tile);
            let decomp = GroupedDecomposition::stream_k(space, self.threads());
            let max_cover =
                decomp.fixups().iter().map(TileFixup::covering_ctas).max().unwrap_or(1);
            let decomp = if max_cover > self.threads() {
                GroupedDecomposition::data_parallel(GroupedSpace::new(&shapes, tile))
            } else {
                decomp
            };
            self.gemm_grouped(&a_ops, &b_ops, &decomp)
        };
        for op in a_ops.into_iter().chain(b_ops) {
            arena.inputs.recycle(op.into_vec());
        }

        let mut slots: Vec<Option<Matrix<Acc>>> = products.into_iter().map(Some).collect();
        let leaf_products = slots.len();
        let c = match &plan.root {
            Node::Leaf(_) => unreachable!("a depth >= 1 recursion always has an inner root"),
            Node::Inner(children) => {
                let ms: [Matrix<Acc>; 7] =
                    std::array::from_fn(|p| recombine(&children[p], &mut slots, &mut arena.accs));
                let quads = winograd_recombine(ms, &mut arena.accs);
                if (pm, pn) == (shape.m, shape.n) && a.layout() == Layout::RowMajor {
                    // No padding to crop and the output layout is the
                    // assembly's native one — assemble straight into
                    // the launch's own output allocation (the one
                    // buffer per launch that must leave the arena).
                    assemble_into(quads, &mut arena.accs, vec![Acc::ZERO; pm * pn])
                } else {
                    let padded = assemble_from_pool(quads, &mut arena.accs);
                    let c = crop_to_output(&padded, shape.m, shape.n, a.layout());
                    arena.accs.recycle(padded.into_vec());
                    c
                }
            }
        };
        let report =
            StrassenReport { depth, leaf_products, fell_back: false, padded: (pm, pn, pk) };
        (c, report)
    }
}

// ---------------------------------------------------------------------------
// Service path
// ---------------------------------------------------------------------------

/// Why a service-path hybrid launch failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StrassenServeError {
    /// The burst was refused at submission — no member was queued.
    Admission(
        /// The underlying admission error.
        AdmissionError,
    ),
    /// An admitted member failed; its siblings were cancelled.
    Group(
        /// The group failure (member index, id, cause).
        GroupError,
    ),
}

impl std::fmt::Display for StrassenServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrassenServeError::Admission(e) => write!(f, "strassen burst refused: {e}"),
            StrassenServeError::Group(e) => write!(f, "strassen burst failed: {e}"),
        }
    }
}

impl std::error::Error for StrassenServeError {}

impl<In, Acc> GemmService<In, Acc>
where
    In: Promote<Acc> + Scalar,
    Acc: Scalar,
{
    /// Strassen–Winograd hybrid through the service: the `7^d` leaf
    /// sub-products are submitted as **one** atomically-admitted
    /// request group ([`submit_group`](Self::submit_group)) and
    /// awaited as a unit, so the burst interleaves with unrelated
    /// tenants under the service's admission and deadline
    /// discipline. Below the cutoff the launch degrades to a single
    /// classical request (bit-identical to the classical path).
    ///
    /// # Errors
    ///
    /// [`StrassenServeError::Admission`] when the burst is refused
    /// outright, [`StrassenServeError::Group`] when a member fails
    /// mid-flight (its siblings are cancelled).
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes disagree.
    pub fn gemm_strassen(
        &self,
        a: &Matrix<In>,
        b: &Matrix<In>,
        tile: TileShape,
        config: &StrassenConfig,
    ) -> Result<(Matrix<Acc>, StrassenReport), StrassenServeError> {
        self.gemm_strassen_with_faults(a, b, tile, config, &[])
    }

    /// [`gemm_strassen`](Self::gemm_strassen) with seeded CTA fault
    /// plans attached to selected leaf sub-products —
    /// `(leaf index, plan)` pairs, the §7 chaos discipline pointed
    /// at the middle of a hybrid burst. Owner-side recovery must
    /// mask every injected fault, so the result is identical to the
    /// fault-free burst; tests pin exactly that.
    ///
    /// # Errors
    ///
    /// As [`gemm_strassen`](Self::gemm_strassen).
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes disagree.
    pub fn gemm_strassen_with_faults(
        &self,
        a: &Matrix<In>,
        b: &Matrix<In>,
        tile: TileShape,
        config: &StrassenConfig,
        faults: &[(usize, FaultPlan)],
    ) -> Result<(Matrix<Acc>, StrassenReport), StrassenServeError> {
        assert_eq!(a.cols(), b.rows(), "A is m x k, B must be k x n");
        let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
        let depth = config.effective_depth(shape);
        let workers = self.workers();

        if depth == 0 {
            let decomp = leaf_decomposition(shape, tile, workers);
            let mut request = LaunchRequest::new(a.clone(), b.clone(), decomp);
            if let Some((_, plan)) = faults.iter().find(|(i, _)| *i == 0) {
                request = request.with_cta_faults(plan.clone());
            }
            let handle = self.submit(request).map_err(StrassenServeError::Admission)?;
            let (c, _stats) = handle.wait().map_err(|error| {
                StrassenServeError::Group(GroupError {
                    member: 0,
                    id: 0,
                    error,
                    cancelled_siblings: 0,
                })
            })?;
            let report = StrassenReport {
                depth: 0,
                leaf_products: 1,
                fell_back: true,
                padded: (shape.m, shape.n, shape.k),
            };
            return Ok((c, report));
        }

        let scale = 1usize << depth;
        let (pm, pn, pk) =
            (round_up(shape.m, scale), round_up(shape.n, scale), round_up(shape.k, scale));
        let mut inputs = BufferPool::new();
        let plan = make_plan(a, b, pm, pn, pk, depth, &mut inputs);
        let leaf_decomp = leaf_decomposition(plan.leaf_shape, tile, workers);

        let requests: Vec<LaunchRequest<In>> = plan
            .pairs
            .into_iter()
            .enumerate()
            .map(|(i, (a_op, b_op))| {
                let mut request = LaunchRequest::new(a_op, b_op, leaf_decomp.clone());
                if let Some((_, fault_plan)) = faults.iter().find(|(fi, _)| *fi == i) {
                    request = request.with_cta_faults(fault_plan.clone());
                }
                request
            })
            .collect();
        let leaf_products = requests.len();

        let group = self.submit_group(requests).map_err(StrassenServeError::Admission)?;
        let outcomes = group.wait_all().map_err(StrassenServeError::Group)?;

        let mut slots: Vec<Option<Matrix<Acc>>> =
            outcomes.into_iter().map(|(c, _stats)| Some(c)).collect();
        let mut accs = BufferPool::new();
        let padded = recombine(&plan.root, &mut slots, &mut accs);
        let c = crop_to_output(&padded, shape.m, shape.n, a.layout());
        let report =
            StrassenReport { depth, leaf_products, fell_back: false, padded: (pm, pn, pk) };
        Ok((c, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn operands(shape: GemmShape, seed: u64) -> (Matrix<f32>, Matrix<f32>) {
        let a = Matrix::<f32>::random::<f32>(shape.m, shape.k, Layout::RowMajor, seed);
        let b = Matrix::<f32>::random::<f32>(shape.k, shape.n, Layout::RowMajor, seed + 1);
        (a, b)
    }

    fn classical(e: &CpuExecutor, a: &Matrix<f32>, b: &Matrix<f32>, tile: TileShape) -> Matrix<f32> {
        let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
        e.gemm(a, b, &leaf_decomposition(shape, tile, e.threads()))
    }

    #[test]
    fn effective_depth_respects_cutoff_and_cap() {
        let cfg = StrassenConfig::enabled().with_cutoff(64).with_max_depth(3);
        assert_eq!(cfg.effective_depth(GemmShape::new(512, 512, 512)), 3);
        assert_eq!(cfg.effective_depth(GemmShape::new(256, 256, 256)), 2);
        assert_eq!(cfg.effective_depth(GemmShape::new(128, 256, 256)), 1);
        assert_eq!(cfg.effective_depth(GemmShape::new(100, 256, 256)), 0);
        assert_eq!(StrassenConfig::default().effective_depth(GemmShape::new(4096, 4096, 4096)), 0);
        let capped = StrassenConfig::enabled().with_cutoff(64).with_max_depth(1);
        assert_eq!(capped.effective_depth(GemmShape::new(512, 512, 512)), 1);
    }

    #[test]
    fn disabled_or_small_shapes_are_bit_exact_classical() {
        let e = CpuExecutor::with_threads(2);
        let tile = TileShape::new(16, 16, 8);
        let shape = GemmShape::new(96, 80, 64);
        let (a, b) = operands(shape, 7);
        let reference = classical(&e, &a, &b, tile);
        for cfg in [
            StrassenConfig::default(),
            StrassenConfig::enabled().with_cutoff(512),
            StrassenConfig::enabled().with_max_depth(0),
        ] {
            let (c, report): (Matrix<f32>, _) = e.gemm_strassen(&a, &b, tile, &cfg);
            assert!(report.fell_back);
            assert_eq!(report.depth, 0);
            assert_eq!(c.max_abs_diff(&reference), 0.0, "fallback must be bit-exact");
        }
    }

    #[test]
    fn one_level_hybrid_is_within_the_bound() {
        let e = CpuExecutor::with_threads(2);
        let tile = TileShape::new(16, 16, 8);
        let shape = GemmShape::new(128, 128, 128);
        let (a, b) = operands(shape, 21);
        let cfg = StrassenConfig::enabled().with_cutoff(32).with_max_depth(1);
        let (c, report): (Matrix<f32>, _) = e.gemm_strassen(&a, &b, tile, &cfg);
        assert!(!report.fell_back);
        assert_eq!(report.depth, 1);
        assert_eq!(report.leaf_products, 7);
        let reference = classical(&e, &a, &b, tile);
        let eps = machine_epsilon::<f32>();
        let bound = strassen_error_bound(shape, 1, max_abs(&a), max_abs(&b), eps)
            + strassen_error_bound(shape, 0, max_abs(&a), max_abs(&b), eps);
        let err = c.max_abs_diff(&reference);
        assert!(err <= bound, "err {err} exceeds bound {bound}");
        assert!(err > 0.0 || shape.k < 4, "hybrid should differ from classical in the last bits");
    }

    #[test]
    fn deep_recursion_and_odd_shapes_stay_within_the_bound() {
        let e = CpuExecutor::with_threads(2);
        let tile = TileShape::new(16, 16, 8);
        for (shape, depth) in [
            (GemmShape::new(96, 96, 96), 2),
            (GemmShape::new(101, 97, 103), 2),
            (GemmShape::new(67, 129, 65), 1),
        ] {
            let (a, b) = operands(shape, 31 + shape.m as u64);
            let cfg = StrassenConfig::enabled().with_cutoff(16).with_max_depth(depth);
            let (c, report): (Matrix<f32>, _) = e.gemm_strassen(&a, &b, tile, &cfg);
            assert!(!report.fell_back, "{shape:?}");
            assert_eq!(report.depth, depth, "{shape:?}");
            assert_eq!(report.leaf_products, 7usize.pow(depth as u32));
            let scale = 1 << depth;
            assert!(report.padded.0 % scale == 0 && report.padded.1 % scale == 0);
            let reference = classical(&e, &a, &b, tile);
            let eps = machine_epsilon::<f32>();
            let bound = strassen_error_bound(shape, depth, max_abs(&a), max_abs(&b), eps)
                + strassen_error_bound(shape, 0, max_abs(&a), max_abs(&b), eps);
            let err = c.max_abs_diff(&reference);
            assert!(err <= bound, "{shape:?}: err {err} exceeds bound {bound}");
        }
    }

    #[test]
    fn f64_hybrid_matches_f64_classical_tightly() {
        let e = CpuExecutor::with_threads(1);
        let tile = TileShape::new(16, 16, 8);
        let shape = GemmShape::new(64, 64, 64);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 5);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 6);
        let cfg = StrassenConfig::enabled().with_cutoff(16).with_max_depth(1);
        let (c, _): (Matrix<f64>, _) = e.gemm_strassen(&a, &b, tile, &cfg);
        let reference: Matrix<f64> =
            e.gemm(&a, &b, &leaf_decomposition(shape, tile, e.threads()));
        let eps = machine_epsilon::<f64>();
        let bound = 2.0 * strassen_error_bound(shape, 1, max_abs(&a), max_abs(&b), eps);
        assert!(c.max_abs_diff(&reference) <= bound);
    }

    #[test]
    fn arena_reaches_allocation_free_steady_state() {
        let e = CpuExecutor::with_threads(2);
        let tile = TileShape::new(16, 16, 8);
        let shape = GemmShape::new(96, 96, 96);
        let (a, b) = operands(shape, 77);
        let cfg = StrassenConfig::enabled().with_cutoff(16).with_max_depth(2);
        let mut arena = StrassenArena::<f32, f32>::new();
        let (c1, _) = e.gemm_strassen_with_arena(&a, &b, tile, &cfg, &mut arena);
        let warm = arena.fresh_allocs();
        assert!(warm > 0, "first launch must populate the pools");
        for _ in 0..3 {
            let (c, _) = e.gemm_strassen_with_arena(&a, &b, tile, &cfg, &mut arena);
            assert_eq!(c.max_abs_diff(&c1), 0.0, "same launch must be deterministic");
        }
        assert_eq!(arena.fresh_allocs(), warm, "steady state must not allocate");
    }

    #[test]
    fn machine_epsilon_matches_the_types() {
        assert_eq!(machine_epsilon::<f32>(), f64::from(f32::EPSILON));
        assert_eq!(machine_epsilon::<f64>(), f64::EPSILON);
    }

    #[test]
    fn error_bound_is_dominated_by_the_mnk_envelope() {
        // DESIGN.md §15: 18^d (k0² + 5 k0) ≤ m·n·k with c = 1 for
        // every shape the cutoff lets recurse (leaf extent ≥ 32,
        // d ≤ 4 — equivalently 2.25^d · (k0 + 5) ≤ k0²).
        let eps = 1.0; // scale-free comparison
        for d in 0..5usize {
            for side in [32usize << d, 64 << d, 512 << d] {
                let shape = GemmShape::new(side, side, side);
                let tight = strassen_error_bound(shape, d, 1.0, 1.0, eps);
                let envelope = (shape.m * shape.n * shape.k) as f64;
                assert!(tight <= envelope, "d={d} side={side}: {tight} > {envelope}");
            }
        }
    }
}
