//! Deterministic fault injection for the fixup protocol.
//!
//! A [`FaultPlan`] declares, per CTA, what goes wrong with its
//! partial-sum *contribution* — the `StorePartials`/`Signal` half of
//! Algorithms 4-5. Three fault kinds cover the failure modes real
//! hardware exhibits under preemption, stragglers, and data
//! corruption:
//!
//! - [`FaultKind::Straggle`]: the signal is delayed — the CTA was
//!   descheduled or its SM is slow;
//! - [`FaultKind::Lose`]: the signal never arrives — the CTA was
//!   preempted and never re-dispatched;
//! - [`FaultKind::Poison`]: the record arrives but is detectably
//!   corrupted, surfaced through the board's poisoned flag state.
//!
//! The fault domain is deliberately the *consolidation protocol*, not
//! the CTA's whole life: a faulted CTA still executes its other
//! segments (including tiles it owns), because that is the part the
//! owner-side recovery identity ([`streamk_core::peer_contribution`])
//! can mask without re-dispatch. Whole-CTA preemption and re-dispatch
//! is modeled in the simulator (`streamk-sim`), where it belongs.
//!
//! Plans are deterministic: [`FaultPlan::seeded`] derives the victim
//! CTA, fault kind, and straggler delay from a seed with SplitMix64,
//! so every chaos campaign replays exactly.

use std::time::Duration;
use streamk_core::Decomposition;

/// What goes wrong with one CTA's partial contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The signal is delayed by this much (straggling peer).
    Straggle(
        /// The injected delay.
        Duration,
    ),
    /// The signal never arrives (lost peer) — the owner's watchdog
    /// must fire and recovery recompute the contribution.
    Lose,
    /// The record arrives corrupted: the slot is poisoned and the
    /// owner must discard and recompute.
    Poison,
}

impl FaultKind {
    /// Short stable name for reports (`straggler` / `lost` / `poison`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Straggle(_) => "straggler",
            FaultKind::Lose => "lost",
            FaultKind::Poison => "poison",
        }
    }
}

/// One injected fault: a victim CTA and what happens to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The victim CTA.
    pub cta: usize,
    /// What happens to its contribution.
    pub kind: FaultKind,
}

/// A deterministic set of faults to inject into one execution — at
/// most one fault per CTA.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: fault-free execution.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with a single fault.
    #[must_use]
    pub fn single(cta: usize, kind: FaultKind) -> Self {
        Self { faults: vec![Fault { cta, kind }] }
    }

    /// Adds a fault, replacing any existing fault on the same CTA.
    #[must_use]
    pub fn with_fault(mut self, cta: usize, kind: FaultKind) -> Self {
        self.faults.retain(|f| f.cta != cta);
        self.faults.push(Fault { cta, kind });
        self
    }

    /// `true` when no faults are planned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of planned faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The planned fault for `cta`, if any.
    #[must_use]
    pub fn fault_for(&self, cta: usize) -> Option<FaultKind> {
        self.faults.iter().find(|f| f.cta == cta).map(|f| f.kind)
    }

    /// The planned faults.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The CTAs that contribute partials under `decomp` — the
    /// meaningful victims (a fault on a non-contributor is a no-op,
    /// because only contributors signal).
    #[must_use]
    pub fn contributors(decomp: &Decomposition) -> Vec<usize> {
        let mut peers: Vec<usize> = decomp.fixups().iter().flat_map(|f| f.peers.iter().copied()).collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    }

    /// A deterministic single-fault plan: picks a victim among
    /// `decomp`'s contributors and a fault kind from `seed`. Straggler
    /// delays are drawn in `[watchdog/8, watchdog/2]`, so a straggling
    /// signal still beats the owner's watchdog (graceful, not lost).
    ///
    /// Returns the empty plan when the decomposition has no split
    /// seams (nothing to fault — data-parallel launches survive
    /// trivially).
    #[must_use]
    pub fn seeded(seed: u64, decomp: &Decomposition, watchdog: Duration) -> Self {
        let contributors = Self::contributors(decomp);
        if contributors.is_empty() {
            return Self::none();
        }
        let mut state = seed;
        let cta = contributors[(splitmix64(&mut state) % contributors.len() as u64) as usize];
        let kind = match splitmix64(&mut state) % 3 {
            0 => {
                let lo = watchdog / 8;
                let span = watchdog / 2 - lo;
                let frac = (splitmix64(&mut state) % 1000) as u32;
                FaultKind::Straggle(lo + span * frac / 1000)
            }
            1 => FaultKind::Lose,
            _ => FaultKind::Poison,
        };
        Self::single(cta, kind)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_types::{GemmShape, TileShape};

    fn split_decomp() -> Decomposition {
        Decomposition::stream_k(GemmShape::new(96, 80, 64), TileShape::new(32, 32, 16), 7)
    }

    #[test]
    fn plans_are_per_cta_and_replaceable() {
        let plan = FaultPlan::none()
            .with_fault(3, FaultKind::Lose)
            .with_fault(5, FaultKind::Poison)
            .with_fault(3, FaultKind::Poison);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.fault_for(3), Some(FaultKind::Poison));
        assert_eq!(plan.fault_for(5), Some(FaultKind::Poison));
        assert_eq!(plan.fault_for(0), None);
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn contributors_are_exactly_the_fixup_peers() {
        let d = split_decomp();
        let contributors = FaultPlan::contributors(&d);
        assert!(!contributors.is_empty());
        for f in d.fixups() {
            for p in &f.peers {
                assert!(contributors.contains(p));
            }
        }
        // A data-parallel launch has no contributors.
        let dp = Decomposition::data_parallel(GemmShape::new(64, 64, 32), TileShape::new(32, 32, 16));
        assert!(FaultPlan::contributors(&dp).is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_valid() {
        let d = split_decomp();
        let watchdog = Duration::from_millis(400);
        let contributors = FaultPlan::contributors(&d);
        let mut kinds_seen = [false; 3];
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, &d, watchdog);
            let b = FaultPlan::seeded(seed, &d, watchdog);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert_eq!(a.len(), 1);
            let fault = a.faults()[0];
            assert!(contributors.contains(&fault.cta));
            match fault.kind {
                FaultKind::Straggle(delay) => {
                    kinds_seen[0] = true;
                    assert!(delay >= watchdog / 8 && delay <= watchdog / 2, "{delay:?}");
                }
                FaultKind::Lose => kinds_seen[1] = true,
                FaultKind::Poison => kinds_seen[2] = true,
            }
        }
        assert!(kinds_seen.iter().all(|&k| k), "64 seeds should cover all kinds: {kinds_seen:?}");
    }

    #[test]
    fn seeded_plan_on_data_parallel_is_empty() {
        let dp = Decomposition::data_parallel(GemmShape::new(64, 64, 32), TileShape::new(32, 32, 16));
        assert!(FaultPlan::seeded(1, &dp, Duration::from_millis(100)).is_empty());
    }
}
